//! Request and command types exchanged with the memory controller.

use serde::{Deserialize, Serialize};

use crate::address::DecodedAddr;

/// Unique identifier the caller uses to match completions to requests.
pub type RequestId = u64;

/// A DRAM command, as issued on the command bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Command {
    Activate,
    Read,
    Write,
    Precharge,
    Refresh,
}

/// A memory request waiting in a controller queue.
#[derive(Debug, Clone, Copy)]
pub struct Request {
    pub id: RequestId,
    /// Physical byte address of the block.
    pub addr: u64,
    pub coords: DecodedAddr,
    pub is_write: bool,
    /// Cycle the request entered the controller queue.
    pub arrival: u64,
    /// Set by the scheduler when this request forced a PRE or ACT, so its
    /// eventual column access is accounted as a row miss.
    pub(crate) caused_row_miss: bool,
    /// Flat `rank * banks_per_rank + bank` index within the channel,
    /// computed once at enqueue so the scheduler's hot loops never
    /// re-derive it from the coordinates.
    pub(crate) bank_index: u32,
}

impl Request {
    pub fn new(
        id: RequestId,
        addr: u64,
        coords: DecodedAddr,
        is_write: bool,
        arrival: u64,
    ) -> Self {
        Request {
            id,
            addr,
            coords,
            is_write,
            arrival,
            caused_row_miss: false,
            bank_index: 0,
        }
    }
}

/// One command issued on the command bus, as recorded by the optional
/// per-channel command log (used by the scheduler-equivalence tests and
/// available for debugging).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IssuedCommand {
    /// DRAM cycle the command issued.
    pub cycle: u64,
    pub cmd: Command,
    pub rank: u32,
    /// Flat bank index within the channel (0 for `Refresh`, which is
    /// rank-wide).
    pub bank: u32,
    /// Row operated on (ACT: opened row; PRE: closed row; RD/WR: open
    /// row; Refresh: 0).
    pub row: u32,
}

/// A finished request: data fully transferred on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    pub id: RequestId,
    pub is_write: bool,
    /// Cycle of the last data beat.
    pub finish: u64,
    /// Cycle the request entered the controller queue.
    pub arrival: u64,
}

impl Completion {
    /// Queueing + service latency in DRAM cycles.
    pub fn latency(&self) -> u64 {
        self.finish - self.arrival
    }
}

/// Aggregate event counts for one channel, consumed by the power model
/// and the figure regenerators.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelStats {
    pub reads: u64,
    pub writes: u64,
    pub activates: u64,
    pub precharges: u64,
    pub refreshes: u64,
    /// Column accesses that hit an already-open row.
    pub row_hits: u64,
    /// Column accesses that required an ACT (and possibly a PRE) first.
    pub row_misses: u64,
    /// Sum of read latencies (arrival to last beat), for averages.
    pub total_read_latency: u64,
    /// Busy data-bus cycles, for utilization.
    pub bus_busy_cycles: u64,
}

impl ChannelStats {
    /// Fraction of column accesses that hit in a row buffer.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Mean read latency in DRAM cycles.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.total_read_latency as f64 / self.reads as f64
        }
    }

    /// Merge another channel's counters into this one.
    pub fn merge(&mut self, other: &ChannelStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.activates += other.activates;
        self.precharges += other.precharges;
        self.refreshes += other.refreshes;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.total_read_latency += other.total_read_latency;
        self.bus_busy_cycles += other.bus_busy_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_latency() {
        let c = Completion {
            id: 1,
            is_write: false,
            finish: 120,
            arrival: 20,
        };
        assert_eq!(c.latency(), 100);
    }

    #[test]
    fn row_hit_rate_handles_empty() {
        assert_eq!(ChannelStats::default().row_hit_rate(), 0.0);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = ChannelStats {
            reads: 1,
            row_hits: 2,
            ..Default::default()
        };
        let b = ChannelStats {
            reads: 3,
            row_misses: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.reads, 4);
        assert_eq!(a.row_hits, 2);
        assert_eq!(a.row_misses, 4);
    }
}
