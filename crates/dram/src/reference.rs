//! Reference (unoptimized) FR-FCFS channel scheduler.
//!
//! This is the original straight-line implementation of the channel
//! scheduler: plain `Vec` queues scanned linearly every cycle, with the
//! quadratic "does an older request still want this open row" check in
//! pass 2. It is kept as the executable specification for the optimized
//! [`crate::channel::Channel`]: the two must issue the *same commands on
//! the same cycles* for any request sequence, which the
//! `scheduler_equivalence` property test checks via the command log.
//!
//! Do not optimize this module; its value is being obviously correct.

use crate::bank::{BankState, RankState};
use crate::command::{ChannelStats, Command, Completion, IssuedCommand, Request};
use crate::config::DramConfig;

/// State of the shared data bus: last burst's rank and end time.
#[derive(Debug, Clone, Copy, Default)]
struct DataBus {
    free_at: u64,
    last_rank: Option<u32>,
}

/// A single DRAM channel with its controller queues, scheduled by
/// exhaustive per-cycle queue scans.
#[derive(Debug)]
pub struct ReferenceChannel {
    cfg: DramConfig,
    banks: Vec<BankState>,
    ranks: Vec<RankState>,
    bus: DataBus,
    read_q: Vec<Request>,
    write_q: Vec<Request>,
    draining_writes: bool,
    stats: ChannelStats,
    completions: Vec<Completion>,
    cmd_log: Option<Vec<IssuedCommand>>,
}

impl ReferenceChannel {
    pub fn new(cfg: DramConfig) -> Self {
        let g = &cfg.geometry;
        let nbanks = (g.ranks_per_channel * g.banks_per_rank) as usize;
        let ranks = (0..g.ranks_per_channel)
            .map(|r| RankState::new(&cfg.timing, u64::from(r)))
            .collect();
        ReferenceChannel {
            cfg,
            banks: vec![BankState::default(); nbanks],
            ranks,
            bus: DataBus::default(),
            read_q: Vec::with_capacity(cfg.queues.read_queue),
            write_q: Vec::with_capacity(cfg.queues.write_queue),
            draining_writes: false,
            stats: ChannelStats::default(),
            completions: Vec::new(),
            cmd_log: None,
        }
    }

    /// Start recording every issued command (including refreshes).
    pub fn enable_cmd_log(&mut self) {
        self.cmd_log = Some(Vec::new());
    }

    /// Drain the recorded command log.
    pub fn take_cmd_log(&mut self) -> Vec<IssuedCommand> {
        self.cmd_log.take().map_or_else(Vec::new, |log| {
            self.cmd_log = Some(Vec::new());
            log
        })
    }

    fn log_cmd(&mut self, cycle: u64, cmd: Command, rank: u32, bank: u32, row: u32) {
        if let Some(log) = &mut self.cmd_log {
            log.push(IssuedCommand {
                cycle,
                cmd,
                rank,
                bank,
                row,
            });
        }
    }

    /// The configuration this channel was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// True if the read queue can accept another request.
    pub fn read_queue_has_space(&self) -> bool {
        self.read_q.len() < self.cfg.queues.read_queue
    }

    /// True if the write queue can accept another request.
    pub fn write_queue_has_space(&self) -> bool {
        self.write_q.len() < self.cfg.queues.write_queue
    }

    /// Current occupancies `(reads, writes)`.
    pub fn occupancy(&self) -> (usize, usize) {
        (self.read_q.len(), self.write_q.len())
    }

    /// Enqueue a request. Returns `false` (and drops it) if the relevant
    /// queue is full; callers are expected to check for space first.
    pub fn enqueue(&mut self, req: Request) -> bool {
        let q = if req.is_write {
            &mut self.write_q
        } else {
            &mut self.read_q
        };
        let cap = if req.is_write {
            self.cfg.queues.write_queue
        } else {
            self.cfg.queues.read_queue
        };
        if q.len() >= cap {
            return false;
        }
        q.push(req);
        true
    }

    /// True when both queues are empty (no work pending).
    pub fn is_idle(&self) -> bool {
        self.read_q.is_empty() && self.write_q.is_empty()
    }

    /// Drain accumulated completions.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Advance one DRAM cycle: handle refresh, pick and issue at most one
    /// command.
    pub fn tick(&mut self, now: u64) {
        self.handle_refresh(now);

        let q = &self.cfg.queues;
        if self.draining_writes {
            if self.write_q.len() <= q.write_low_watermark {
                self.draining_writes = false;
            }
        } else if self.write_q.len() >= q.write_high_watermark
            || (self.read_q.is_empty() && !self.write_q.is_empty())
        {
            self.draining_writes = true;
        }

        let serve_writes = self.draining_writes || self.read_q.is_empty();
        if serve_writes && !self.write_q.is_empty() {
            self.schedule(now, true);
        } else if !self.read_q.is_empty() {
            self.schedule(now, false);
        }
    }

    /// Process refreshes in bulk when the channel has been idle and the
    /// caller jumps time forward from `from` to `to`.
    pub fn fast_forward(&mut self, to: u64) {
        let t = self.cfg.timing;
        for r in 0..self.ranks.len() {
            while self.ranks[r].next_refresh <= to {
                let deadline = self.ranks[r].next_refresh;
                self.ranks[r].refresh(deadline, &t);
                self.stats.refreshes += 1;
                self.log_cmd(deadline, Command::Refresh, r as u32, 0, 0);
            }
        }
    }

    /// Refresh model: at the per-rank deadline, force-close the rank's
    /// rows and block it for tRFC.
    fn handle_refresh(&mut self, now: u64) {
        let t = self.cfg.timing;
        let banks_per_rank = self.cfg.geometry.banks_per_rank as usize;
        for r in 0..self.ranks.len() {
            if now >= self.ranks[r].next_refresh {
                for b in 0..banks_per_rank {
                    let bank = &mut self.banks[r * banks_per_rank + b];
                    if bank.open_row.is_some() {
                        bank.open_row = None;
                        self.stats.precharges += 1;
                    }
                    bank.next_activate = bank.next_activate.max(now + t.t_rfc);
                }
                self.ranks[r].refresh(now, &t);
                self.stats.refreshes += 1;
                self.log_cmd(now, Command::Refresh, r as u32, 0, 0);
            }
        }
    }

    /// FR-FCFS over the selected queue: issue a row-hit CAS if possible,
    /// otherwise make progress (ACT/PRE) for the oldest serviceable request.
    fn schedule(&mut self, now: u64, writes: bool) {
        // Pass 1: oldest request whose row is open and whose CAS can issue.
        let hit = self.queue(writes).iter().position(|req| {
            let bank = &self.banks[self.bank_index(req)];
            bank.open_row == Some(req.coords.row) && self.cas_allowed(req, now)
        });
        if let Some(pos) = hit {
            let req = self.queue(writes)[pos];
            self.issue_cas(&req, now, !req.caused_row_miss);
            self.queue_mut(writes).remove(pos);
            return;
        }

        // Pass 2: for requests in age order, open the needed row.
        // At most one command per cycle.
        let len = self.queue(writes).len();
        for pos in 0..len {
            let req = self.queue(writes)[pos];
            let bi = self.bank_index(&req);
            match self.banks[bi].open_row {
                Some(open) if open != req.coords.row => {
                    // Conflict: precharge, but only if no older request
                    // still wants the open row (preserve row hits).
                    let wanted = self
                        .queue(writes)
                        .iter()
                        .take(pos)
                        .any(|r| self.bank_index(r) == bi && r.coords.row == open);
                    if !wanted && now >= self.banks[bi].next_precharge {
                        self.banks[bi].precharge(now, &self.cfg.timing);
                        self.stats.precharges += 1;
                        self.queue_mut(writes)[pos].caused_row_miss = true;
                        self.log_cmd(now, Command::Precharge, req.coords.rank, bi as u32, open);
                        return;
                    }
                }
                None if self.act_allowed(&req, now) => {
                    let rank = req.coords.rank as usize;
                    self.banks[bi].activate(req.coords.row, now, &self.cfg.timing);
                    self.ranks[rank].activate(now, &self.cfg.timing);
                    self.stats.activates += 1;
                    self.queue_mut(writes)[pos].caused_row_miss = true;
                    self.log_cmd(
                        now,
                        Command::Activate,
                        req.coords.rank,
                        bi as u32,
                        req.coords.row,
                    );
                    return;
                }
                _ => {
                    // Row already open and matching but CAS not yet
                    // allowed: nothing to do for this request.
                }
            }
        }
    }

    fn queue(&self, writes: bool) -> &Vec<Request> {
        if writes {
            &self.write_q
        } else {
            &self.read_q
        }
    }

    fn queue_mut(&mut self, writes: bool) -> &mut Vec<Request> {
        if writes {
            &mut self.write_q
        } else {
            &mut self.read_q
        }
    }

    fn bank_index(&self, req: &Request) -> usize {
        (req.coords.rank * self.cfg.geometry.banks_per_rank + req.coords.bank) as usize
    }

    /// Can this request's column access issue at `now`?
    fn cas_allowed(&self, req: &Request, now: u64) -> bool {
        let t = &self.cfg.timing;
        let bank = &self.banks[self.bank_index(req)];
        let rank = &self.ranks[req.coords.rank as usize];
        if now < rank.ready_at {
            return false;
        }
        let cmd_ok = if req.is_write {
            now >= bank.next_write && now >= rank.next_write
        } else {
            now >= bank.next_read && now >= rank.next_read
        };
        if !cmd_ok {
            return false;
        }
        // Data-bus availability.
        let start = now + if req.is_write { t.t_cwd } else { t.t_cas };
        if start < self.bus.free_at {
            return false;
        }
        if let Some(last) = self.bus.last_rank {
            if last != req.coords.rank && start < self.bus.free_at + t.t_rtrs {
                return false;
            }
        }
        true
    }

    /// Can an ACT for this request issue at `now`?
    fn act_allowed(&self, req: &Request, now: u64) -> bool {
        let bank = &self.banks[self.bank_index(req)];
        let rank = &self.ranks[req.coords.rank as usize];
        now >= bank.next_activate && now >= rank.activate_allowed_at(&self.cfg.timing)
    }

    /// Issue the column access and record its completion.
    fn issue_cas(&mut self, req: &Request, now: u64, row_hit: bool) {
        let t = self.cfg.timing;
        let bi = self.bank_index(req);
        let rank = req.coords.rank as usize;
        let (start, finish) = if req.is_write {
            self.banks[bi].write(now, &t);
            self.ranks[rank].write(now, &t);
            self.stats.writes += 1;
            (now + t.t_cwd, now + t.t_cwd + t.t_burst)
        } else {
            self.banks[bi].read(now, &t);
            self.ranks[rank].read(now, &t);
            self.stats.reads += 1;
            self.stats.total_read_latency += now + t.t_cas + t.t_burst - req.arrival;
            (now + t.t_cas, now + t.t_cas + t.t_burst)
        };
        debug_assert!(start >= self.bus.free_at);
        self.bus.free_at = finish;
        self.bus.last_rank = Some(req.coords.rank);
        self.stats.bus_busy_cycles += t.t_burst;
        if row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }
        let cmd = if req.is_write {
            Command::Write
        } else {
            Command::Read
        };
        self.log_cmd(now, cmd, req.coords.rank, bi as u32, req.coords.row);
        self.completions.push(Completion {
            id: req.id,
            is_write: req.is_write,
            finish,
            arrival: req.arrival,
        });
    }
}
