//! One memory channel: read/write queues, FR-FCFS scheduling with write
//! drain, refresh, and the shared data bus.
//!
//! The scheduler issues at most one command per DRAM cycle (command-bus
//! limit). Reads are prioritized; writes drain in batches between a
//! high and a low watermark, as in USIMM's baseline scheduler.
//!
//! # Performance structure
//!
//! This is the optimized hot path; [`crate::reference::ReferenceChannel`]
//! is the straight-line executable specification it must match
//! command-for-command (checked by the `scheduler_equivalence` property
//! test). Two mechanisms make it fast without changing behavior:
//!
//! * **Per-bank indexed queues** ([`RequestQueue`]): requests live in a
//!   reusable slab, stamped with a monotonically increasing sequence
//!   number (global age) and indexed per bank (oldest-first). One sweep
//!   over the banks that have pending requests decides everything: the
//!   bank's oldest row-matching request is its CAS candidate, its
//!   oldest request owns the PRE/ACT decision, and ties across banks
//!   resolve by sequence number — reproducing the reference
//!   scheduler's full age-order scan (including its quadratic "does an
//!   older request still want this open row" rescan) at
//!   O(pending banks) per cycle. Removal is an ordered slab free, not
//!   a `Vec` shift.
//! * **Next-event skipping**: whenever a tick issues nothing, the
//!   channel computes a lower bound on the next cycle at which *any*
//!   command could issue (earliest CAS/PRE/ACT per pending request, the
//!   next refresh deadline, and the next write-drain flag flip) and
//!   early-returns from `tick` until then. Channel state is frozen
//!   between events, so the skipped ticks are provably no-ops and the
//!   command stream is identical to ticking every cycle.

use crate::address::DecodedAddr;
use crate::bank::{BankState, RankState};
use crate::command::{ChannelStats, Command, Completion, IssuedCommand, Request};
use crate::config::{DramConfig, DramTiming};
use itesp_snap::{SnapError, SnapReader, SnapWriter};

/// State of the shared data bus: last burst's rank and end time.
#[derive(Debug, Clone, Copy, Default)]
struct DataBus {
    free_at: u64,
    last_rank: Option<u32>,
}

/// One occupied or free slab entry.
#[derive(Debug, Clone, Copy)]
struct Slot {
    req: Request,
    live: bool,
}

/// One per-bank index entry: everything the scheduler sweep reads,
/// packed contiguously so a bank decision touches one cache line
/// instead of gathering from the slab.
#[derive(Debug, Clone, Copy)]
struct BankEntry {
    slot: u32,
    row: u32,
    seq: u64,
}

/// Age-ordered request storage with per-bank index lists.
///
/// Requests sit in a slab (`slots` + `free`), stamped with a strictly
/// increasing sequence number (global age); `by_bank` keeps an
/// oldest-first [`BankEntry`] list per bank carrying the row and age
/// inline, so the scheduler sweep never touches the slab until it
/// actually issues. `active` lists the banks with pending requests so
/// sparse queues don't pay for the full bank count.
#[derive(Debug)]
struct RequestQueue {
    slots: Vec<Slot>,
    free: Vec<u32>,
    by_bank: Vec<Vec<BankEntry>>,
    active: Vec<u32>,
    /// Position of each bank in `active`, `u32::MAX` when absent.
    active_pos: Vec<u32>,
    len: usize,
    cap: usize,
    next_seq: u64,
}

impl RequestQueue {
    fn new(cap: usize, nbanks: usize) -> Self {
        RequestQueue {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            by_bank: vec![Vec::new(); nbanks],
            active: Vec::new(),
            active_pos: vec![u32::MAX; nbanks],
            len: 0,
            cap,
            next_seq: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn has_space(&self) -> bool {
        self.len < self.cap
    }

    /// Append a request (its `bank_index` must already be set). Returns
    /// `false` if the queue is at capacity.
    fn push(&mut self, req: Request) -> bool {
        if self.len >= self.cap {
            return false;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Slot { req, live: true };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = entry;
                s
            }
            None => {
                self.slots.push(entry);
                (self.slots.len() - 1) as u32
            }
        };
        let b = req.bank_index as usize;
        if self.by_bank[b].is_empty() {
            self.active_pos[b] = self.active.len() as u32;
            self.active.push(b as u32);
        }
        self.by_bank[b].push(BankEntry {
            slot,
            row: req.coords.row,
            seq,
        });
        self.len += 1;
        true
    }

    /// Ordered removal: frees the slab slot and unlinks the bank list
    /// entry (order-preserving, so bank lists stay oldest-first).
    fn remove(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        debug_assert!(s.live);
        s.live = false;
        let b = s.req.bank_index as usize;
        let list = &mut self.by_bank[b];
        let pos = list
            .iter()
            .position(|e| e.slot == slot)
            .expect("slot present in its bank list");
        list.remove(pos);
        if list.is_empty() {
            let ap = self.active_pos[b] as usize;
            self.active.swap_remove(ap);
            if ap < self.active.len() {
                self.active_pos[self.active[ap] as usize] = ap as u32;
            }
            self.active_pos[b] = u32::MAX;
        }
        self.free.push(slot);
        self.len -= 1;
    }

    fn req(&self, slot: u32) -> &Request {
        &self.slots[slot as usize].req
    }

    /// The bank's pending entries, oldest first (push appends, remove is
    /// order-preserving). Never empty for a bank listed in `active`.
    fn bank_list(&self, bank: usize) -> &[BankEntry] {
        &self.by_bank[bank]
    }

    fn req_mut(&mut self, slot: u32) -> &mut Request {
        &mut self.slots[slot as usize].req
    }

    fn active_banks(&self) -> &[u32] {
        &self.active
    }

    /// Live requests in global age order, for snapshot serialization.
    /// Restore re-pushes them in this order into a fresh queue; absolute
    /// sequence numbers change but the scheduler only compares relative
    /// age, so behavior is identical (canonical restore).
    fn live_by_seq(&self) -> Vec<Request> {
        let mut entries: Vec<(u64, u32)> = self
            .by_bank
            .iter()
            .flat_map(|list| list.iter().map(|e| (e.seq, e.slot)))
            .collect();
        entries.sort_unstable_by_key(|&(seq, _)| seq);
        entries
            .into_iter()
            .map(|(_, slot)| self.slots[slot as usize].req)
            .collect()
    }
}

/// A single DRAM channel with its controller queues.
#[derive(Debug)]
pub struct Channel {
    cfg: DramConfig,
    banks: Vec<BankState>,
    ranks: Vec<RankState>,
    bus: DataBus,
    read_q: RequestQueue,
    write_q: RequestQueue,
    draining_writes: bool,
    stats: ChannelStats,
    completions: Vec<Completion>,
    cmd_log: Option<Vec<IssuedCommand>>,
    /// Lower bound on the next cycle at which any command can issue;
    /// `tick` is a no-op before it. Reset on enqueue and fast-forward.
    next_wake: u64,
    /// Per-rank CAS-gate cache for `schedule` (rank command spacing +
    /// refresh block + bus turnaround, uniform per rank), computed
    /// lazily per sweep; bumping `gate_gen` invalidates all entries in
    /// O(1).
    gate_gen: u64,
    rank_gate: Vec<u64>,
    gate_stamp: Vec<u64>,
}

impl Channel {
    pub fn new(cfg: DramConfig) -> Self {
        let g = &cfg.geometry;
        let nbanks = (g.ranks_per_channel * g.banks_per_rank) as usize;
        let ranks = (0..g.ranks_per_channel)
            .map(|r| RankState::new(&cfg.timing, u64::from(r)))
            .collect();
        Channel {
            cfg,
            banks: vec![BankState::default(); nbanks],
            ranks,
            bus: DataBus::default(),
            read_q: RequestQueue::new(cfg.queues.read_queue, nbanks),
            write_q: RequestQueue::new(cfg.queues.write_queue, nbanks),
            draining_writes: false,
            stats: ChannelStats::default(),
            completions: Vec::new(),
            cmd_log: None,
            next_wake: 0,
            gate_gen: 0,
            rank_gate: vec![0; g.ranks_per_channel as usize],
            gate_stamp: vec![0; g.ranks_per_channel as usize],
        }
    }

    /// Start recording every issued command (including refreshes).
    pub fn enable_cmd_log(&mut self) {
        self.cmd_log = Some(Vec::new());
    }

    /// Drain the recorded command log.
    pub fn take_cmd_log(&mut self) -> Vec<IssuedCommand> {
        self.cmd_log.take().map_or_else(Vec::new, |log| {
            self.cmd_log = Some(Vec::new());
            log
        })
    }

    fn log_cmd(&mut self, cycle: u64, cmd: Command, rank: u32, bank: u32, row: u32) {
        if let Some(log) = &mut self.cmd_log {
            log.push(IssuedCommand {
                cycle,
                cmd,
                rank,
                bank,
                row,
            });
        }
    }

    /// The configuration this channel was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// True if the read queue can accept another request.
    pub fn read_queue_has_space(&self) -> bool {
        self.read_q.has_space()
    }

    /// True if the write queue can accept another request.
    pub fn write_queue_has_space(&self) -> bool {
        self.write_q.has_space()
    }

    /// Current occupancies `(reads, writes)`.
    pub fn occupancy(&self) -> (usize, usize) {
        (self.read_q.len(), self.write_q.len())
    }

    /// Enqueue a request. Returns `false` (and drops it) if the relevant
    /// queue is full; callers are expected to check for space first.
    pub fn enqueue(&mut self, mut req: Request) -> bool {
        req.bank_index = req.coords.rank * self.cfg.geometry.banks_per_rank + req.coords.bank;
        let q = if req.is_write {
            &mut self.write_q
        } else {
            &mut self.read_q
        };
        if !q.push(req) {
            return false;
        }
        // New work may be schedulable immediately.
        self.next_wake = 0;
        true
    }

    /// True when both queues are empty (no work pending).
    pub fn is_idle(&self) -> bool {
        self.read_q.is_empty() && self.write_q.is_empty()
    }

    /// The next DRAM cycle at which [`Self::tick`] does any work: the
    /// precomputed wake time covering command issue, watermark flips,
    /// and refresh deadlines. Ticks strictly before it are no-ops by
    /// construction (the early return above), so a caller that knows no
    /// new requests will arrive may skip straight to it. Any `enqueue`
    /// resets it to 0.
    pub fn next_event(&self) -> u64 {
        self.next_wake
    }

    /// Drain accumulated completions.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Append accumulated completions to `out`, keeping this channel's
    /// buffer (and its capacity) in place.
    pub fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        out.append(&mut self.completions);
    }

    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Advance one DRAM cycle: handle refresh, pick and issue at most one
    /// command. Cycles before the precomputed wake time are no-ops and
    /// return immediately.
    pub fn tick(&mut self, now: u64) {
        if now < self.next_wake {
            return;
        }
        self.handle_refresh(now);

        let q = &self.cfg.queues;
        if self.draining_writes {
            if self.write_q.len() <= q.write_low_watermark {
                self.draining_writes = false;
            }
        } else if self.write_q.len() >= q.write_high_watermark
            || (self.read_q.is_empty() && !self.write_q.is_empty())
        {
            self.draining_writes = true;
        }

        let serve_writes = self.draining_writes || self.read_q.is_empty();
        let queue_wake = if serve_writes && !self.write_q.is_empty() {
            self.schedule(now, true)
        } else if !self.read_q.is_empty() {
            self.schedule(now, false)
        } else {
            Some(u64::MAX)
        };
        self.next_wake = match queue_wake {
            // A command issued; state changed, so re-evaluate next cycle.
            None => now + 1,
            Some(qw) => {
                // If the drain flag is not at a fixed point for the
                // current queue lengths, it flips next tick; don't skip
                // over that.
                let flag = self.draining_writes;
                let qcfg = &self.cfg.queues;
                let next_flag = if flag {
                    self.write_q.len() > qcfg.write_low_watermark
                } else {
                    self.write_q.len() >= qcfg.write_high_watermark
                        || (self.read_q.is_empty() && !self.write_q.is_empty())
                };
                if next_flag != flag {
                    now + 1
                } else {
                    let mut wake = qw;
                    for rank in &self.ranks {
                        wake = wake.min(rank.next_refresh);
                    }
                    wake.max(now + 1)
                }
            }
        };
    }

    /// Process refreshes in bulk when the channel has been idle and the
    /// caller jumps time forward from `from` to `to`.
    pub fn fast_forward(&mut self, to: u64) {
        let t = self.cfg.timing;
        for r in 0..self.ranks.len() {
            while self.ranks[r].next_refresh <= to {
                let deadline = self.ranks[r].next_refresh;
                self.ranks[r].refresh(deadline, &t);
                self.stats.refreshes += 1;
                self.log_cmd(deadline, Command::Refresh, r as u32, 0, 0);
            }
        }
        self.next_wake = 0;
    }

    /// Refresh model: at the per-rank deadline, force-close the rank's
    /// rows and block it for tRFC.
    fn handle_refresh(&mut self, now: u64) {
        let t = self.cfg.timing;
        let banks_per_rank = self.cfg.geometry.banks_per_rank as usize;
        for r in 0..self.ranks.len() {
            if now >= self.ranks[r].next_refresh {
                for b in 0..banks_per_rank {
                    let bank = &mut self.banks[r * banks_per_rank + b];
                    if bank.open_row.is_some() {
                        bank.open_row = None;
                        self.stats.precharges += 1;
                    }
                    bank.next_activate = bank.next_activate.max(now + t.t_rfc);
                }
                self.ranks[r].refresh(now, &t);
                self.stats.refreshes += 1;
                self.log_cmd(now, Command::Refresh, r as u32, 0, 0);
            }
        }
    }

    /// FR-FCFS over the selected queue: issue a row-hit CAS if possible,
    /// otherwise make progress (ACT/PRE) for the oldest serviceable
    /// request.
    ///
    /// Returns `None` if a command issued, or `Some(wake)` — the earliest
    /// cycle at which any of the queue's pending requests could make
    /// progress (`u64::MAX` if none are schedulable) — computed for free
    /// during the same sweep. The bound is exact for the frozen state
    /// between events, so skipping to it never changes behavior.
    ///
    /// The sweep visits each bank with pending requests exactly once,
    /// because every scheduling decision is bank-local given two facts:
    ///
    /// * a CAS candidate is the bank's *oldest row-matching* request
    ///   (CAS legality is uniform across a bank), and
    /// * the PRE/ACT decision belongs to the bank's *oldest* request —
    ///   a younger conflict may never close a row an older request still
    ///   wants, and `act_at` is identical for every request of a closed
    ///   bank.
    ///
    /// Ties across banks resolve by global age (sequence number), which
    /// reproduces the reference scheduler's age-order scan without
    /// walking the whole queue. Rank-level CAS gates (rank command
    /// spacing, refresh block, bus turnaround) are computed lazily once
    /// per rank per sweep.
    fn schedule(&mut self, now: u64, writes: bool) -> Option<u64> {
        let mut wake = u64::MAX;
        let t = self.cfg.timing;
        let banks_per_rank = self.cfg.geometry.banks_per_rank as usize;
        let lat = if writes { t.t_cwd } else { t.t_cas };

        self.gate_gen += 1;
        let gen = self.gate_gen;
        let q = if writes { &self.write_q } else { &self.read_q };
        let banks = &self.banks;
        let ranks = &self.ranks;
        let bus = self.bus;
        let gates = &mut self.rank_gate;
        let stamps = &mut self.gate_stamp;

        // Best issuable CAS / row command, by global age.
        let mut cas_best: Option<(u64, u32)> = None; // (seq, slot)
        let mut open_best: Option<(u64, u32, u32)> = None; // (seq, bank, head slot)

        for &b in q.active_banks() {
            let bi = b as usize;
            let list = q.bank_list(bi);
            let head = list[0];
            let bank = &banks[bi];
            match bank.open_row {
                Some(open) => {
                    // CAS candidate: the bank's oldest row-matching request.
                    if let Some(e) = list.iter().find(|e| e.row == open) {
                        if stamps[bi / banks_per_rank] != gen {
                            let r = bi / banks_per_rank;
                            let rank = &ranks[r];
                            let cmd = if writes {
                                rank.next_write
                            } else {
                                rank.next_read
                            };
                            let mut bus_ready = bus.free_at.saturating_sub(lat);
                            if let Some(last) = bus.last_rank {
                                if last as usize != r {
                                    bus_ready =
                                        bus_ready.max((bus.free_at + t.t_rtrs).saturating_sub(lat));
                                }
                            }
                            gates[r] = rank.ready_at.max(cmd).max(bus_ready);
                            stamps[r] = gen;
                        }
                        let bank_cmd = if writes {
                            bank.next_write
                        } else {
                            bank.next_read
                        };
                        let cas_at = bank_cmd.max(gates[bi / banks_per_rank]);
                        debug_assert_eq!(
                            cas_at,
                            earliest_cas(
                                &t,
                                bank,
                                &ranks[q.req(e.slot).coords.rank as usize],
                                &bus,
                                q.req(e.slot),
                            ),
                            "lazy rank gate must reproduce earliest_cas"
                        );
                        if cas_at <= now {
                            if cas_best.is_none_or(|(bs, _)| e.seq < bs) {
                                cas_best = Some((e.seq, e.slot));
                            }
                        } else {
                            wake = wake.min(cas_at);
                        }
                    }
                    // PRE decision: only the bank's oldest request may
                    // close the row, and only if it conflicts (an older
                    // row hit must drain first).
                    if head.row != open {
                        if now >= bank.next_precharge {
                            if open_best.is_none_or(|(bs, _, _)| head.seq < bs) {
                                open_best = Some((head.seq, b, head.slot));
                            }
                        } else {
                            wake = wake.min(bank.next_precharge);
                        }
                    }
                }
                None => {
                    let act_at = bank
                        .next_activate
                        .max(ranks[bi / banks_per_rank].activate_allowed_at(&t));
                    if act_at <= now {
                        if open_best.is_none_or(|(bs, _, _)| head.seq < bs) {
                            open_best = Some((head.seq, b, head.slot));
                        }
                    } else {
                        wake = wake.min(act_at);
                    }
                }
            }
        }

        if let Some((_, slot)) = cas_best {
            let req = *self.queue(writes).req(slot);
            self.issue_cas(&req, now, !req.caused_row_miss);
            self.queue_mut(writes).remove(slot);
            return None;
        }
        if let Some((_, b, head)) = open_best {
            let bi = b as usize;
            let req = *self.queue(writes).req(head);
            match self.banks[bi].open_row {
                Some(open) => {
                    self.banks[bi].precharge(now, &t);
                    self.stats.precharges += 1;
                    self.queue_mut(writes).req_mut(head).caused_row_miss = true;
                    self.log_cmd(now, Command::Precharge, req.coords.rank, b, open);
                }
                None => {
                    let rank = req.coords.rank as usize;
                    self.banks[bi].activate(req.coords.row, now, &t);
                    self.ranks[rank].activate(now, &t);
                    self.stats.activates += 1;
                    self.queue_mut(writes).req_mut(head).caused_row_miss = true;
                    self.log_cmd(now, Command::Activate, req.coords.rank, b, req.coords.row);
                }
            }
            return None;
        }
        Some(wake)
    }

    fn queue(&self, writes: bool) -> &RequestQueue {
        if writes {
            &self.write_q
        } else {
            &self.read_q
        }
    }

    fn queue_mut(&mut self, writes: bool) -> &mut RequestQueue {
        if writes {
            &mut self.write_q
        } else {
            &mut self.read_q
        }
    }

    /// Issue the column access and record its completion.
    fn issue_cas(&mut self, req: &Request, now: u64, row_hit: bool) {
        let t = self.cfg.timing;
        let bi = req.bank_index as usize;
        let rank = req.coords.rank as usize;
        let (start, finish) = if req.is_write {
            self.banks[bi].write(now, &t);
            self.ranks[rank].write(now, &t);
            self.stats.writes += 1;
            (now + t.t_cwd, now + t.t_cwd + t.t_burst)
        } else {
            self.banks[bi].read(now, &t);
            self.ranks[rank].read(now, &t);
            self.stats.reads += 1;
            self.stats.total_read_latency += now + t.t_cas + t.t_burst - req.arrival;
            (now + t.t_cas, now + t.t_cas + t.t_burst)
        };
        debug_assert!(start >= self.bus.free_at);
        self.bus.free_at = finish;
        self.bus.last_rank = Some(req.coords.rank);
        self.stats.bus_busy_cycles += t.t_burst;
        if row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }
        let cmd = if req.is_write {
            Command::Write
        } else {
            Command::Read
        };
        self.log_cmd(now, cmd, req.coords.rank, bi as u32, req.coords.row);
        self.completions.push(Completion {
            id: req.id,
            is_write: req.is_write,
            finish,
            arrival: req.arrival,
        });
    }
}

impl Channel {
    /// Serialize the full controller state for a crash-recovery
    /// snapshot: bank/rank timing, bus, both queues (age order),
    /// drain flag, stats, and undrained completions.
    ///
    /// # Panics
    /// Panics if command logging is enabled — the log is a debugging
    /// artifact that cannot be restored canonically, so snapshotting a
    /// logged run is refused rather than silently dropping it.
    pub fn save_state(&self, w: &mut SnapWriter) {
        assert!(
            self.cmd_log.is_none(),
            "cannot snapshot a channel with command logging enabled"
        );
        w.section("CHAN", 1);
        w.seq(self.banks.iter(), |w, b| b.save_state(w));
        w.seq(self.ranks.iter(), |w, r| r.save_state(w));
        w.u64(self.bus.free_at);
        w.opt_u64(self.bus.last_rank.map(u64::from));
        save_queue(&self.read_q, w);
        save_queue(&self.write_q, w);
        w.bool(self.draining_writes);
        let s = &self.stats;
        for v in [
            s.reads,
            s.writes,
            s.activates,
            s.precharges,
            s.refreshes,
            s.row_hits,
            s.row_misses,
            s.total_read_latency,
            s.bus_busy_cycles,
        ] {
            w.u64(v);
        }
        w.seq(self.completions.iter(), |w, c| {
            w.u64(c.id);
            w.bool(c.is_write);
            w.u64(c.finish);
            w.u64(c.arrival);
        });
    }

    /// Restore a freshly constructed channel (same config) from
    /// [`Channel::save_state`] bytes. The scheduler's wake time and
    /// rank-gate caches are recomputed, not restored: resetting them
    /// only costs a redundant sweep, never changes the command stream.
    pub fn load_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        r.section("CHAN", 1)?;
        let nbanks = self.banks.len();
        let n = r.seq_len("channel banks")?;
        if n != nbanks {
            return Err(SnapError::Corrupt {
                what: "channel bank count (config mismatch)",
                at: r.pos(),
            });
        }
        for b in &mut self.banks {
            *b = BankState::load_state(r)?;
        }
        let n = r.seq_len("channel ranks")?;
        if n != self.ranks.len() {
            return Err(SnapError::Corrupt {
                what: "channel rank count (config mismatch)",
                at: r.pos(),
            });
        }
        for rank in &mut self.ranks {
            *rank = RankState::load_state(r)?;
        }
        self.bus.free_at = r.u64("bus free_at")?;
        self.bus.last_rank = r.opt_u64("bus last_rank")?.map(|v| v as u32);
        self.read_q = load_queue(r, self.cfg.queues.read_queue, nbanks)?;
        self.write_q = load_queue(r, self.cfg.queues.write_queue, nbanks)?;
        self.draining_writes = r.bool("draining_writes")?;
        self.stats = ChannelStats {
            reads: r.u64("stats reads")?,
            writes: r.u64("stats writes")?,
            activates: r.u64("stats activates")?,
            precharges: r.u64("stats precharges")?,
            refreshes: r.u64("stats refreshes")?,
            row_hits: r.u64("stats row_hits")?,
            row_misses: r.u64("stats row_misses")?,
            total_read_latency: r.u64("stats total_read_latency")?,
            bus_busy_cycles: r.u64("stats bus_busy_cycles")?,
        };
        let n = r.seq_len("channel completions")?;
        self.completions.clear();
        for _ in 0..n {
            self.completions.push(Completion {
                id: r.u64("completion id")?,
                is_write: r.bool("completion is_write")?,
                finish: r.u64("completion finish")?,
                arrival: r.u64("completion arrival")?,
            });
        }
        self.cmd_log = None;
        self.next_wake = 0;
        self.gate_gen = 0;
        self.rank_gate.fill(0);
        self.gate_stamp.fill(0);
        Ok(())
    }
}

fn save_queue(q: &RequestQueue, w: &mut SnapWriter) {
    w.seq(q.live_by_seq().into_iter(), |w, req| {
        w.u64(req.id);
        w.u64(req.addr);
        w.u64(u64::from(req.coords.channel));
        w.u64(u64::from(req.coords.rank));
        w.u64(u64::from(req.coords.bank));
        w.u64(u64::from(req.coords.row));
        w.u64(u64::from(req.coords.column));
        w.bool(req.is_write);
        w.u64(req.arrival);
        w.bool(req.caused_row_miss);
        w.u64(u64::from(req.bank_index));
    });
}

fn load_queue(r: &mut SnapReader, cap: usize, nbanks: usize) -> Result<RequestQueue, SnapError> {
    let n = r.seq_len("queue requests")?;
    let mut q = RequestQueue::new(cap, nbanks);
    for _ in 0..n {
        let id = r.u64("request id")?;
        let addr = r.u64("request addr")?;
        let coords = DecodedAddr {
            channel: r.u64("request channel")? as u32,
            rank: r.u64("request rank")? as u32,
            bank: r.u64("request bank")? as u32,
            row: r.u64("request row")? as u32,
            column: r.u64("request column")? as u32,
        };
        let is_write = r.bool("request is_write")?;
        let arrival = r.u64("request arrival")?;
        let caused_row_miss = r.bool("request caused_row_miss")?;
        let bank_index = r.u64("request bank_index")? as u32;
        let mut req = Request::new(id, addr, coords, is_write, arrival);
        req.caused_row_miss = caused_row_miss;
        req.bank_index = bank_index;
        if !q.push(req) {
            return Err(SnapError::Corrupt {
                what: "queue request count exceeds configured capacity",
                at: r.pos(),
            });
        }
    }
    Ok(q)
}

/// Earliest cycle at which `req`'s column access passes every
/// `cas_allowed` check, given frozen bank/rank/bus state. Each check is
/// of the form `now >= X` (the bus checks after moving the burst latency
/// to the left-hand side), so the earliest legal cycle is their max.
fn earliest_cas(
    t: &DramTiming,
    bank: &BankState,
    rank: &RankState,
    bus: &DataBus,
    req: &Request,
) -> u64 {
    let lat = if req.is_write { t.t_cwd } else { t.t_cas };
    let cmd_ready = if req.is_write {
        bank.next_write.max(rank.next_write)
    } else {
        bank.next_read.max(rank.next_read)
    };
    let mut bus_ready = bus.free_at.saturating_sub(lat);
    if let Some(last) = bus.last_rank {
        if last != req.coords.rank {
            bus_ready = bus_ready.max((bus.free_at + t.t_rtrs).saturating_sub(lat));
        }
    }
    rank.ready_at.max(cmd_ready).max(bus_ready)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::AddressDecoder;
    use crate::config::BLOCK_BYTES;

    fn setup() -> (Channel, AddressDecoder) {
        let cfg = DramConfig::table_iii();
        let dec = AddressDecoder::new(cfg.geometry, cfg.mapping);
        (Channel::new(cfg), dec)
    }

    fn req(dec: &AddressDecoder, id: u64, addr: u64, is_write: bool, arrival: u64) -> Request {
        Request::new(id, addr, dec.decode(addr), is_write, arrival)
    }

    fn run_until_idle(ch: &mut Channel, mut now: u64) -> (Vec<Completion>, u64) {
        let mut done = Vec::new();
        let deadline = now + 1_000_000;
        while !ch.is_idle() && now < deadline {
            ch.tick(now);
            done.extend(ch.take_completions());
            now += 1;
        }
        assert!(now < deadline, "channel failed to drain");
        (done, now)
    }

    #[test]
    fn single_read_latency_is_act_plus_cas_plus_burst() {
        let (mut ch, dec) = setup();
        assert!(ch.enqueue(req(&dec, 1, 0, false, 0)));
        let (done, _) = run_until_idle(&mut ch, 0);
        assert_eq!(done.len(), 1);
        let t = DramConfig::table_iii().timing;
        // ACT at 0, RD at tRCD, last beat at tRCD + CL + burst.
        assert_eq!(done[0].finish, t.t_rcd + t.t_cas + t.t_burst);
    }

    #[test]
    fn row_hit_second_read_is_faster() {
        let (mut ch, dec) = setup();
        // Same row, consecutive columns under 4-RBH (blocks 0..4 share a row).
        assert!(ch.enqueue(req(&dec, 1, 0, false, 0)));
        assert!(ch.enqueue(req(&dec, 2, BLOCK_BYTES, false, 0)));
        let (done, _) = run_until_idle(&mut ch, 0);
        assert_eq!(done.len(), 2);
        assert_eq!(ch.stats().activates, 1, "second access should be a row hit");
        assert_eq!(ch.stats().row_hits, 1);
    }

    #[test]
    fn row_conflict_requires_precharge() {
        let (mut ch, dec) = setup();
        let g = DramConfig::table_iii().geometry;
        // Two addresses in the same bank, different rows: stride one full
        // row's worth of one bank's address space under 4-RBH mapping.
        let stride = u64::from(g.blocks_per_row / 4)
            * u64::from(g.banks_per_rank)
            * u64::from(g.ranks_per_channel)
            * 4
            * BLOCK_BYTES;
        let a = req(&dec, 1, 0, false, 0);
        let b = req(&dec, 2, stride, false, 0);
        assert_eq!(a.coords.bank, b.coords.bank);
        assert_eq!(a.coords.rank, b.coords.rank);
        assert_ne!(a.coords.row, b.coords.row);
        ch.enqueue(a);
        ch.enqueue(b);
        let (done, _) = run_until_idle(&mut ch, 0);
        assert_eq!(done.len(), 2);
        assert_eq!(ch.stats().precharges, 1);
        assert_eq!(ch.stats().activates, 2);
    }

    #[test]
    fn writes_drain_when_read_queue_empty() {
        let (mut ch, dec) = setup();
        ch.enqueue(req(&dec, 1, 0, true, 0));
        let (done, _) = run_until_idle(&mut ch, 0);
        assert_eq!(done.len(), 1);
        assert!(done[0].is_write);
        assert_eq!(ch.stats().writes, 1);
    }

    #[test]
    fn reads_prioritized_over_writes_below_watermark() {
        let (mut ch, dec) = setup();
        ch.enqueue(req(&dec, 1, 1 << 20, true, 0));
        ch.enqueue(req(&dec, 2, 0, false, 0));
        let (done, _) = run_until_idle(&mut ch, 0);
        // The read should finish first even though the write arrived first.
        assert!(!done[0].is_write);
    }

    #[test]
    fn write_drain_mode_triggers_at_high_watermark() {
        let (mut ch, dec) = setup();
        let hi = DramConfig::table_iii().queues.write_high_watermark;
        for i in 0..hi as u64 {
            assert!(ch.enqueue(req(&dec, i, i * BLOCK_BYTES * 1024, true, 0)));
        }
        // Keep a steady read supply; drain mode must still serve writes.
        ch.enqueue(req(&dec, 1000, 0, false, 0));
        let mut now = 0;
        let mut wrote = 0;
        while wrote == 0 && now < 100_000 {
            ch.tick(now);
            wrote = ch.take_completions().iter().filter(|c| c.is_write).count();
            now += 1;
        }
        assert!(wrote > 0, "writes never drained");
    }

    #[test]
    fn queue_capacity_enforced() {
        let (mut ch, dec) = setup();
        let cap = DramConfig::table_iii().queues.read_queue;
        for i in 0..cap as u64 {
            assert!(ch.enqueue(req(&dec, i, i * BLOCK_BYTES, false, 0)));
        }
        assert!(!ch.read_queue_has_space());
        assert!(!ch.enqueue(req(&dec, 999, 0, false, 0)));
    }

    #[test]
    fn refresh_happens_and_is_counted() {
        let (mut ch, dec) = setup();
        let t = DramConfig::table_iii().timing;
        // Tick past two refresh intervals (refreshes are rank-staggered)
        // with sparse traffic.
        let mut now = 0;
        ch.enqueue(req(&dec, 1, 0, false, 0));
        while now < 2 * t.t_refi + t.t_rfc + 100 {
            ch.tick(now);
            ch.take_completions();
            now += 1;
        }
        assert!(ch.stats().refreshes >= 16, "all 16 ranks should refresh");
    }

    #[test]
    fn fast_forward_accumulates_refreshes() {
        let (mut ch, _) = setup();
        let t = DramConfig::table_iii().timing;
        ch.fast_forward(10 * t.t_refi);
        // 16 ranks x ~9-10 intervals each (staggered start).
        assert!(ch.stats().refreshes >= 140);
    }

    #[test]
    fn bank_parallelism_overlaps_requests() {
        let (mut ch, dec) = setup();
        // Two reads to different banks: total time must be far less than
        // two serialized row misses.
        let g = DramConfig::table_iii().geometry;
        let bank_stride =
            u64::from(g.blocks_per_row / 4) * 4 * BLOCK_BYTES * u64::from(g.ranks_per_channel);
        let a = req(&dec, 1, 0, false, 0);
        let b = req(&dec, 2, bank_stride, false, 0);
        assert_ne!(a.coords.bank, b.coords.bank);
        ch.enqueue(a);
        ch.enqueue(b);
        let (done, _) = run_until_idle(&mut ch, 0);
        let t = DramConfig::table_iii().timing;
        let serial = 2 * (t.t_rcd + t.t_cas + t.t_burst);
        let max_finish = done.iter().map(|c| c.finish).max().unwrap();
        assert!(
            max_finish < serial,
            "banks did not overlap: {max_finish} vs serial {serial}"
        );
    }

    #[test]
    fn slab_slots_recycle_across_waves() {
        // Several full capacity waves through the same queue: slot reuse,
        // tombstone compaction, and the active-bank list must all stay
        // consistent, and every request must complete exactly once.
        let (mut ch, dec) = setup();
        let cap = DramConfig::table_iii().queues.read_queue as u64;
        let mut now = 0;
        let mut total = 0u64;
        for wave in 0..4u64 {
            for i in 0..cap {
                let addr = (wave * cap + i) * BLOCK_BYTES * 131;
                assert!(ch.enqueue(req(&dec, wave * cap + i, addr, false, now)));
            }
            let (done, end) = run_until_idle(&mut ch, now);
            total += done.len() as u64;
            now = end;
        }
        assert_eq!(total, 4 * cap);
        assert_eq!(ch.stats().reads, 4 * cap);
    }

    #[test]
    fn idle_ticks_after_wake_computation_are_noops() {
        // After draining, a long idle stretch must still refresh on
        // schedule (next_wake covers refresh deadlines).
        let (mut ch, dec) = setup();
        ch.enqueue(req(&dec, 1, 0, false, 0));
        let (_, end) = run_until_idle(&mut ch, 0);
        let t = DramConfig::table_iii().timing;
        let horizon = end + 2 * t.t_refi;
        for now in end..horizon {
            ch.tick(now);
        }
        assert!(ch.stats().refreshes >= 16);
    }
}
