//! One memory channel: read/write queues, FR-FCFS scheduling with write
//! drain, refresh, and the shared data bus.
//!
//! The scheduler issues at most one command per DRAM cycle (command-bus
//! limit). Reads are prioritized; writes drain in batches between a
//! high and a low watermark, as in USIMM's baseline scheduler.
//!
//! # Performance structure
//!
//! This is the optimized hot path; [`crate::reference::ReferenceChannel`]
//! is the straight-line executable specification it must match
//! command-for-command (checked by the `scheduler_equivalence` property
//! test). Two mechanisms make it fast without changing behavior:
//!
//! * **Per-bank indexed queues** ([`RequestQueue`]): requests live in a
//!   reusable slab and are indexed both globally (age order, by a
//!   monotonically increasing sequence number) and per bank
//!   (oldest-first). Pass 1 of FR-FCFS only inspects banks that have
//!   pending requests, and the quadratic "does an older request still
//!   want this open row" check of pass 2 becomes a single age-order walk
//!   with per-bank marks. Removal is an ordered slab free, not a `Vec`
//!   shift.
//! * **Next-event skipping**: whenever a tick issues nothing, the
//!   channel computes a lower bound on the next cycle at which *any*
//!   command could issue (earliest CAS/PRE/ACT per pending request, the
//!   next refresh deadline, and the next write-drain flag flip) and
//!   early-returns from `tick` until then. Channel state is frozen
//!   between events, so the skipped ticks are provably no-ops and the
//!   command stream is identical to ticking every cycle.

use crate::bank::{BankState, RankState};
use crate::command::{ChannelStats, Command, Completion, IssuedCommand, Request};
use crate::config::{DramConfig, DramTiming};

/// State of the shared data bus: last burst's rank and end time.
#[derive(Debug, Clone, Copy, Default)]
struct DataBus {
    free_at: u64,
    last_rank: Option<u32>,
}

/// One occupied or free slab entry.
#[derive(Debug, Clone, Copy)]
struct Slot {
    req: Request,
    /// Queue-local age stamp; strictly increases across pushes, so a
    /// `(slot, seq)` pair uniquely names one request even after the slot
    /// is recycled.
    seq: u64,
    live: bool,
}

/// Age-ordered request storage with per-bank index lists.
///
/// Requests sit in a slab (`slots` + `free`); `order` holds
/// `(slot, seq)` pairs in arrival order with lazy tombstones (an entry
/// is stale once its slot is freed or recycled, detected by the `seq`
/// mismatch), and `by_bank` keeps an oldest-first slot list per bank so
/// the scheduler can find row-hit candidates without scanning the whole
/// queue. `active` lists the banks with pending requests so sparse
/// queues don't pay for the full bank count.
#[derive(Debug)]
struct RequestQueue {
    slots: Vec<Slot>,
    free: Vec<u32>,
    order: Vec<(u32, u64)>,
    /// Stale entries currently in `order`; compacted when it outgrows
    /// the live population.
    stale: usize,
    by_bank: Vec<Vec<u32>>,
    active: Vec<u32>,
    /// Position of each bank in `active`, `u32::MAX` when absent.
    active_pos: Vec<u32>,
    len: usize,
    cap: usize,
    next_seq: u64,
}

impl RequestQueue {
    fn new(cap: usize, nbanks: usize) -> Self {
        RequestQueue {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            order: Vec::with_capacity(cap),
            stale: 0,
            by_bank: vec![Vec::new(); nbanks],
            active: Vec::new(),
            active_pos: vec![u32::MAX; nbanks],
            len: 0,
            cap,
            next_seq: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn has_space(&self) -> bool {
        self.len < self.cap
    }

    /// Append a request (its `bank_index` must already be set). Returns
    /// `false` if the queue is at capacity.
    fn push(&mut self, req: Request) -> bool {
        if self.len >= self.cap {
            return false;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Slot {
            req,
            seq,
            live: true,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = entry;
                s
            }
            None => {
                self.slots.push(entry);
                (self.slots.len() - 1) as u32
            }
        };
        self.order.push((slot, seq));
        let b = req.bank_index as usize;
        if self.by_bank[b].is_empty() {
            self.active_pos[b] = self.active.len() as u32;
            self.active.push(b as u32);
        }
        self.by_bank[b].push(slot);
        self.len += 1;
        true
    }

    /// Ordered removal: frees the slab slot, unlinks the bank list entry,
    /// and leaves a tombstone in `order` for lazy compaction.
    fn remove(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        debug_assert!(s.live);
        s.live = false;
        let b = s.req.bank_index as usize;
        let list = &mut self.by_bank[b];
        let pos = list
            .iter()
            .position(|&x| x == slot)
            .expect("slot present in its bank list");
        list.remove(pos);
        if list.is_empty() {
            let ap = self.active_pos[b] as usize;
            self.active.swap_remove(ap);
            if ap < self.active.len() {
                self.active_pos[self.active[ap] as usize] = ap as u32;
            }
            self.active_pos[b] = u32::MAX;
        }
        self.free.push(slot);
        self.len -= 1;
        self.stale += 1;
        if self.stale > self.len + 8 {
            let slots = &self.slots;
            self.order
                .retain(|&(s, q)| slots[s as usize].live && slots[s as usize].seq == q);
            self.stale = 0;
        }
    }

    fn order_len(&self) -> usize {
        self.order.len()
    }

    fn order_at(&self, i: usize) -> (u32, u64) {
        self.order[i]
    }

    fn is_live(&self, slot: u32, seq: u64) -> bool {
        let s = &self.slots[slot as usize];
        s.live && s.seq == seq
    }

    fn req(&self, slot: u32) -> &Request {
        &self.slots[slot as usize].req
    }

    fn req_mut(&mut self, slot: u32) -> &mut Request {
        &mut self.slots[slot as usize].req
    }

    fn seq(&self, slot: u32) -> u64 {
        self.slots[slot as usize].seq
    }

    fn active_banks(&self) -> &[u32] {
        &self.active
    }

    /// Oldest pending request in `bank` targeting `row`, if any.
    fn oldest_with_row(&self, bank: usize, row: u32) -> Option<u32> {
        self.by_bank[bank]
            .iter()
            .copied()
            .find(|&s| self.slots[s as usize].req.coords.row == row)
    }
}

/// A single DRAM channel with its controller queues.
#[derive(Debug)]
pub struct Channel {
    cfg: DramConfig,
    banks: Vec<BankState>,
    ranks: Vec<RankState>,
    bus: DataBus,
    read_q: RequestQueue,
    write_q: RequestQueue,
    draining_writes: bool,
    stats: ChannelStats,
    completions: Vec<Completion>,
    cmd_log: Option<Vec<IssuedCommand>>,
    /// Lower bound on the next cycle at which any command can issue;
    /// `tick` is a no-op before it. Reset on enqueue and fast-forward.
    next_wake: u64,
    /// Per-bank generation stamps backing the "an older request wants
    /// this open row" marks; bumping `mark_gen` clears all marks in O(1).
    mark_gen: u64,
    marks: Vec<u64>,
}

impl Channel {
    pub fn new(cfg: DramConfig) -> Self {
        let g = &cfg.geometry;
        let nbanks = (g.ranks_per_channel * g.banks_per_rank) as usize;
        let ranks = (0..g.ranks_per_channel)
            .map(|r| RankState::new(&cfg.timing, u64::from(r)))
            .collect();
        Channel {
            cfg,
            banks: vec![BankState::default(); nbanks],
            ranks,
            bus: DataBus::default(),
            read_q: RequestQueue::new(cfg.queues.read_queue, nbanks),
            write_q: RequestQueue::new(cfg.queues.write_queue, nbanks),
            draining_writes: false,
            stats: ChannelStats::default(),
            completions: Vec::new(),
            cmd_log: None,
            next_wake: 0,
            mark_gen: 0,
            marks: vec![0; nbanks],
        }
    }

    /// Start recording every issued command (including refreshes).
    pub fn enable_cmd_log(&mut self) {
        self.cmd_log = Some(Vec::new());
    }

    /// Drain the recorded command log.
    pub fn take_cmd_log(&mut self) -> Vec<IssuedCommand> {
        self.cmd_log.take().map_or_else(Vec::new, |log| {
            self.cmd_log = Some(Vec::new());
            log
        })
    }

    fn log_cmd(&mut self, cycle: u64, cmd: Command, rank: u32, bank: u32, row: u32) {
        if let Some(log) = &mut self.cmd_log {
            log.push(IssuedCommand {
                cycle,
                cmd,
                rank,
                bank,
                row,
            });
        }
    }

    /// The configuration this channel was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// True if the read queue can accept another request.
    pub fn read_queue_has_space(&self) -> bool {
        self.read_q.has_space()
    }

    /// True if the write queue can accept another request.
    pub fn write_queue_has_space(&self) -> bool {
        self.write_q.has_space()
    }

    /// Current occupancies `(reads, writes)`.
    pub fn occupancy(&self) -> (usize, usize) {
        (self.read_q.len(), self.write_q.len())
    }

    /// Enqueue a request. Returns `false` (and drops it) if the relevant
    /// queue is full; callers are expected to check for space first.
    pub fn enqueue(&mut self, mut req: Request) -> bool {
        req.bank_index = req.coords.rank * self.cfg.geometry.banks_per_rank + req.coords.bank;
        let q = if req.is_write {
            &mut self.write_q
        } else {
            &mut self.read_q
        };
        if !q.push(req) {
            return false;
        }
        // New work may be schedulable immediately.
        self.next_wake = 0;
        true
    }

    /// True when both queues are empty (no work pending).
    pub fn is_idle(&self) -> bool {
        self.read_q.is_empty() && self.write_q.is_empty()
    }

    /// Drain accumulated completions.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Advance one DRAM cycle: handle refresh, pick and issue at most one
    /// command. Cycles before the precomputed wake time are no-ops and
    /// return immediately.
    pub fn tick(&mut self, now: u64) {
        if now < self.next_wake {
            return;
        }
        self.handle_refresh(now);

        let q = &self.cfg.queues;
        if self.draining_writes {
            if self.write_q.len() <= q.write_low_watermark {
                self.draining_writes = false;
            }
        } else if self.write_q.len() >= q.write_high_watermark
            || (self.read_q.is_empty() && !self.write_q.is_empty())
        {
            self.draining_writes = true;
        }

        let serve_writes = self.draining_writes || self.read_q.is_empty();
        let queue_wake = if serve_writes && !self.write_q.is_empty() {
            self.schedule(now, true)
        } else if !self.read_q.is_empty() {
            self.schedule(now, false)
        } else {
            Some(u64::MAX)
        };
        self.next_wake = match queue_wake {
            // A command issued; state changed, so re-evaluate next cycle.
            None => now + 1,
            Some(qw) => {
                // If the drain flag is not at a fixed point for the
                // current queue lengths, it flips next tick; don't skip
                // over that.
                let flag = self.draining_writes;
                let qcfg = &self.cfg.queues;
                let next_flag = if flag {
                    self.write_q.len() > qcfg.write_low_watermark
                } else {
                    self.write_q.len() >= qcfg.write_high_watermark
                        || (self.read_q.is_empty() && !self.write_q.is_empty())
                };
                if next_flag != flag {
                    now + 1
                } else {
                    let mut wake = qw;
                    for rank in &self.ranks {
                        wake = wake.min(rank.next_refresh);
                    }
                    wake.max(now + 1)
                }
            }
        };
    }

    /// Process refreshes in bulk when the channel has been idle and the
    /// caller jumps time forward from `from` to `to`.
    pub fn fast_forward(&mut self, to: u64) {
        let t = self.cfg.timing;
        for r in 0..self.ranks.len() {
            while self.ranks[r].next_refresh <= to {
                let deadline = self.ranks[r].next_refresh;
                self.ranks[r].refresh(deadline, &t);
                self.stats.refreshes += 1;
                self.log_cmd(deadline, Command::Refresh, r as u32, 0, 0);
            }
        }
        self.next_wake = 0;
    }

    /// Refresh model: at the per-rank deadline, force-close the rank's
    /// rows and block it for tRFC.
    fn handle_refresh(&mut self, now: u64) {
        let t = self.cfg.timing;
        let banks_per_rank = self.cfg.geometry.banks_per_rank as usize;
        for r in 0..self.ranks.len() {
            if now >= self.ranks[r].next_refresh {
                for b in 0..banks_per_rank {
                    let bank = &mut self.banks[r * banks_per_rank + b];
                    if bank.open_row.is_some() {
                        bank.open_row = None;
                        self.stats.precharges += 1;
                    }
                    bank.next_activate = bank.next_activate.max(now + t.t_rfc);
                }
                self.ranks[r].refresh(now, &t);
                self.stats.refreshes += 1;
                self.log_cmd(now, Command::Refresh, r as u32, 0, 0);
            }
        }
    }

    /// FR-FCFS over the selected queue: issue a row-hit CAS if possible,
    /// otherwise make progress (ACT/PRE) for the oldest serviceable
    /// request.
    ///
    /// Returns `None` if a command issued, or `Some(wake)` — the earliest
    /// cycle at which any of the queue's pending requests could make
    /// progress (`u64::MAX` if none are schedulable) — computed for free
    /// during the same two passes. The bound is exact for the frozen
    /// state between events, so skipping to it never changes behavior.
    fn schedule(&mut self, now: u64, writes: bool) -> Option<u64> {
        let mut wake = u64::MAX;
        let t = self.cfg.timing;

        // Pass 1: oldest request whose row is open and whose CAS can
        // issue. Only banks with pending requests are inspected; within a
        // bank the oldest row-matching request stands in for all of them,
        // because CAS legality depends only on the bank, rank, and
        // direction — uniform across one bank of one queue.
        let mut best: Option<(u64, u32)> = None;
        let q = self.queue(writes);
        for &b in q.active_banks() {
            let bi = b as usize;
            let Some(open) = self.banks[bi].open_row else {
                continue;
            };
            let Some(slot) = q.oldest_with_row(bi, open) else {
                continue;
            };
            let req = q.req(slot);
            let cas_at = earliest_cas(
                &t,
                &self.banks[bi],
                &self.ranks[req.coords.rank as usize],
                &self.bus,
                req,
            );
            if cas_at <= now {
                let seq = q.seq(slot);
                if best.is_none_or(|(bs, _)| seq < bs) {
                    best = Some((seq, slot));
                }
            } else {
                wake = wake.min(cas_at);
            }
        }
        if let Some((_, slot)) = best {
            let req = *self.queue(writes).req(slot);
            self.issue_cas(&req, now, !req.caused_row_miss);
            self.queue_mut(writes).remove(slot);
            return None;
        }

        // Pass 2: for requests in age order, open the needed row. At most
        // one command per cycle. A bank is marked once an older request
        // targeting its open row has been seen, which replaces the
        // reference scheduler's quadratic rescan per conflict; marked
        // banks contribute no wake candidate because the older request's
        // CAS (a pass-1 candidate) must happen before any precharge.
        self.mark_gen += 1;
        let gen = self.mark_gen;
        for i in 0..self.queue(writes).order_len() {
            let (slot, seq) = self.queue(writes).order_at(i);
            if !self.queue(writes).is_live(slot, seq) {
                continue;
            }
            let req = *self.queue(writes).req(slot);
            let bi = req.bank_index as usize;
            match self.banks[bi].open_row {
                Some(open) if open == req.coords.row => {
                    self.marks[bi] = gen;
                }
                Some(open) => {
                    // Conflict: precharge, but only if no older request
                    // still wants the open row (preserve row hits).
                    if self.marks[bi] != gen {
                        if now >= self.banks[bi].next_precharge {
                            self.banks[bi].precharge(now, &t);
                            self.stats.precharges += 1;
                            self.queue_mut(writes).req_mut(slot).caused_row_miss = true;
                            self.log_cmd(now, Command::Precharge, req.coords.rank, bi as u32, open);
                            return None;
                        }
                        wake = wake.min(self.banks[bi].next_precharge);
                    }
                }
                None => {
                    let act_at = self.banks[bi]
                        .next_activate
                        .max(self.ranks[req.coords.rank as usize].activate_allowed_at(&t));
                    if act_at <= now {
                        let rank = req.coords.rank as usize;
                        self.banks[bi].activate(req.coords.row, now, &t);
                        self.ranks[rank].activate(now, &t);
                        self.stats.activates += 1;
                        self.queue_mut(writes).req_mut(slot).caused_row_miss = true;
                        self.log_cmd(
                            now,
                            Command::Activate,
                            req.coords.rank,
                            bi as u32,
                            req.coords.row,
                        );
                        return None;
                    }
                    wake = wake.min(act_at);
                }
            }
        }
        Some(wake)
    }

    fn queue(&self, writes: bool) -> &RequestQueue {
        if writes {
            &self.write_q
        } else {
            &self.read_q
        }
    }

    fn queue_mut(&mut self, writes: bool) -> &mut RequestQueue {
        if writes {
            &mut self.write_q
        } else {
            &mut self.read_q
        }
    }

    /// Issue the column access and record its completion.
    fn issue_cas(&mut self, req: &Request, now: u64, row_hit: bool) {
        let t = self.cfg.timing;
        let bi = req.bank_index as usize;
        let rank = req.coords.rank as usize;
        let (start, finish) = if req.is_write {
            self.banks[bi].write(now, &t);
            self.ranks[rank].write(now, &t);
            self.stats.writes += 1;
            (now + t.t_cwd, now + t.t_cwd + t.t_burst)
        } else {
            self.banks[bi].read(now, &t);
            self.ranks[rank].read(now, &t);
            self.stats.reads += 1;
            self.stats.total_read_latency += now + t.t_cas + t.t_burst - req.arrival;
            (now + t.t_cas, now + t.t_cas + t.t_burst)
        };
        debug_assert!(start >= self.bus.free_at);
        self.bus.free_at = finish;
        self.bus.last_rank = Some(req.coords.rank);
        self.stats.bus_busy_cycles += t.t_burst;
        if row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }
        let cmd = if req.is_write {
            Command::Write
        } else {
            Command::Read
        };
        self.log_cmd(now, cmd, req.coords.rank, bi as u32, req.coords.row);
        self.completions.push(Completion {
            id: req.id,
            is_write: req.is_write,
            finish,
            arrival: req.arrival,
        });
    }
}

/// Earliest cycle at which `req`'s column access passes every
/// `cas_allowed` check, given frozen bank/rank/bus state. Each check is
/// of the form `now >= X` (the bus checks after moving the burst latency
/// to the left-hand side), so the earliest legal cycle is their max.
fn earliest_cas(
    t: &DramTiming,
    bank: &BankState,
    rank: &RankState,
    bus: &DataBus,
    req: &Request,
) -> u64 {
    let lat = if req.is_write { t.t_cwd } else { t.t_cas };
    let cmd_ready = if req.is_write {
        bank.next_write.max(rank.next_write)
    } else {
        bank.next_read.max(rank.next_read)
    };
    let mut bus_ready = bus.free_at.saturating_sub(lat);
    if let Some(last) = bus.last_rank {
        if last != req.coords.rank {
            bus_ready = bus_ready.max((bus.free_at + t.t_rtrs).saturating_sub(lat));
        }
    }
    rank.ready_at.max(cmd_ready).max(bus_ready)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::AddressDecoder;
    use crate::config::BLOCK_BYTES;

    fn setup() -> (Channel, AddressDecoder) {
        let cfg = DramConfig::table_iii();
        let dec = AddressDecoder::new(cfg.geometry, cfg.mapping);
        (Channel::new(cfg), dec)
    }

    fn req(dec: &AddressDecoder, id: u64, addr: u64, is_write: bool, arrival: u64) -> Request {
        Request::new(id, addr, dec.decode(addr), is_write, arrival)
    }

    fn run_until_idle(ch: &mut Channel, mut now: u64) -> (Vec<Completion>, u64) {
        let mut done = Vec::new();
        let deadline = now + 1_000_000;
        while !ch.is_idle() && now < deadline {
            ch.tick(now);
            done.extend(ch.take_completions());
            now += 1;
        }
        assert!(now < deadline, "channel failed to drain");
        (done, now)
    }

    #[test]
    fn single_read_latency_is_act_plus_cas_plus_burst() {
        let (mut ch, dec) = setup();
        assert!(ch.enqueue(req(&dec, 1, 0, false, 0)));
        let (done, _) = run_until_idle(&mut ch, 0);
        assert_eq!(done.len(), 1);
        let t = DramConfig::table_iii().timing;
        // ACT at 0, RD at tRCD, last beat at tRCD + CL + burst.
        assert_eq!(done[0].finish, t.t_rcd + t.t_cas + t.t_burst);
    }

    #[test]
    fn row_hit_second_read_is_faster() {
        let (mut ch, dec) = setup();
        // Same row, consecutive columns under 4-RBH (blocks 0..4 share a row).
        assert!(ch.enqueue(req(&dec, 1, 0, false, 0)));
        assert!(ch.enqueue(req(&dec, 2, BLOCK_BYTES, false, 0)));
        let (done, _) = run_until_idle(&mut ch, 0);
        assert_eq!(done.len(), 2);
        assert_eq!(ch.stats().activates, 1, "second access should be a row hit");
        assert_eq!(ch.stats().row_hits, 1);
    }

    #[test]
    fn row_conflict_requires_precharge() {
        let (mut ch, dec) = setup();
        let g = DramConfig::table_iii().geometry;
        // Two addresses in the same bank, different rows: stride one full
        // row's worth of one bank's address space under 4-RBH mapping.
        let stride = u64::from(g.blocks_per_row / 4)
            * u64::from(g.banks_per_rank)
            * u64::from(g.ranks_per_channel)
            * 4
            * BLOCK_BYTES;
        let a = req(&dec, 1, 0, false, 0);
        let b = req(&dec, 2, stride, false, 0);
        assert_eq!(a.coords.bank, b.coords.bank);
        assert_eq!(a.coords.rank, b.coords.rank);
        assert_ne!(a.coords.row, b.coords.row);
        ch.enqueue(a);
        ch.enqueue(b);
        let (done, _) = run_until_idle(&mut ch, 0);
        assert_eq!(done.len(), 2);
        assert_eq!(ch.stats().precharges, 1);
        assert_eq!(ch.stats().activates, 2);
    }

    #[test]
    fn writes_drain_when_read_queue_empty() {
        let (mut ch, dec) = setup();
        ch.enqueue(req(&dec, 1, 0, true, 0));
        let (done, _) = run_until_idle(&mut ch, 0);
        assert_eq!(done.len(), 1);
        assert!(done[0].is_write);
        assert_eq!(ch.stats().writes, 1);
    }

    #[test]
    fn reads_prioritized_over_writes_below_watermark() {
        let (mut ch, dec) = setup();
        ch.enqueue(req(&dec, 1, 1 << 20, true, 0));
        ch.enqueue(req(&dec, 2, 0, false, 0));
        let (done, _) = run_until_idle(&mut ch, 0);
        // The read should finish first even though the write arrived first.
        assert!(!done[0].is_write);
    }

    #[test]
    fn write_drain_mode_triggers_at_high_watermark() {
        let (mut ch, dec) = setup();
        let hi = DramConfig::table_iii().queues.write_high_watermark;
        for i in 0..hi as u64 {
            assert!(ch.enqueue(req(&dec, i, i * BLOCK_BYTES * 1024, true, 0)));
        }
        // Keep a steady read supply; drain mode must still serve writes.
        ch.enqueue(req(&dec, 1000, 0, false, 0));
        let mut now = 0;
        let mut wrote = 0;
        while wrote == 0 && now < 100_000 {
            ch.tick(now);
            wrote = ch.take_completions().iter().filter(|c| c.is_write).count();
            now += 1;
        }
        assert!(wrote > 0, "writes never drained");
    }

    #[test]
    fn queue_capacity_enforced() {
        let (mut ch, dec) = setup();
        let cap = DramConfig::table_iii().queues.read_queue;
        for i in 0..cap as u64 {
            assert!(ch.enqueue(req(&dec, i, i * BLOCK_BYTES, false, 0)));
        }
        assert!(!ch.read_queue_has_space());
        assert!(!ch.enqueue(req(&dec, 999, 0, false, 0)));
    }

    #[test]
    fn refresh_happens_and_is_counted() {
        let (mut ch, dec) = setup();
        let t = DramConfig::table_iii().timing;
        // Tick past two refresh intervals (refreshes are rank-staggered)
        // with sparse traffic.
        let mut now = 0;
        ch.enqueue(req(&dec, 1, 0, false, 0));
        while now < 2 * t.t_refi + t.t_rfc + 100 {
            ch.tick(now);
            ch.take_completions();
            now += 1;
        }
        assert!(ch.stats().refreshes >= 16, "all 16 ranks should refresh");
    }

    #[test]
    fn fast_forward_accumulates_refreshes() {
        let (mut ch, _) = setup();
        let t = DramConfig::table_iii().timing;
        ch.fast_forward(10 * t.t_refi);
        // 16 ranks x ~9-10 intervals each (staggered start).
        assert!(ch.stats().refreshes >= 140);
    }

    #[test]
    fn bank_parallelism_overlaps_requests() {
        let (mut ch, dec) = setup();
        // Two reads to different banks: total time must be far less than
        // two serialized row misses.
        let g = DramConfig::table_iii().geometry;
        let bank_stride =
            u64::from(g.blocks_per_row / 4) * 4 * BLOCK_BYTES * u64::from(g.ranks_per_channel);
        let a = req(&dec, 1, 0, false, 0);
        let b = req(&dec, 2, bank_stride, false, 0);
        assert_ne!(a.coords.bank, b.coords.bank);
        ch.enqueue(a);
        ch.enqueue(b);
        let (done, _) = run_until_idle(&mut ch, 0);
        let t = DramConfig::table_iii().timing;
        let serial = 2 * (t.t_rcd + t.t_cas + t.t_burst);
        let max_finish = done.iter().map(|c| c.finish).max().unwrap();
        assert!(
            max_finish < serial,
            "banks did not overlap: {max_finish} vs serial {serial}"
        );
    }

    #[test]
    fn slab_slots_recycle_across_waves() {
        // Several full capacity waves through the same queue: slot reuse,
        // tombstone compaction, and the active-bank list must all stay
        // consistent, and every request must complete exactly once.
        let (mut ch, dec) = setup();
        let cap = DramConfig::table_iii().queues.read_queue as u64;
        let mut now = 0;
        let mut total = 0u64;
        for wave in 0..4u64 {
            for i in 0..cap {
                let addr = (wave * cap + i) * BLOCK_BYTES * 131;
                assert!(ch.enqueue(req(&dec, wave * cap + i, addr, false, now)));
            }
            let (done, end) = run_until_idle(&mut ch, now);
            total += done.len() as u64;
            now = end;
        }
        assert_eq!(total, 4 * cap);
        assert_eq!(ch.stats().reads, 4 * cap);
    }

    #[test]
    fn idle_ticks_after_wake_computation_are_noops() {
        // After draining, a long idle stretch must still refresh on
        // schedule (next_wake covers refresh deadlines).
        let (mut ch, dec) = setup();
        ch.enqueue(req(&dec, 1, 0, false, 0));
        let (_, end) = run_until_idle(&mut ch, 0);
        let t = DramConfig::table_iii().timing;
        let horizon = end + 2 * t.t_refi;
        for now in end..horizon {
            ch.tick(now);
        }
        assert!(ch.stats().refreshes >= 16);
    }
}
