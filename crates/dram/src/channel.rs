//! One memory channel: read/write queues, FR-FCFS scheduling with write
//! drain, refresh, and the shared data bus.
//!
//! The scheduler issues at most one command per DRAM cycle (command-bus
//! limit). Reads are prioritized; writes drain in batches between a
//! high and a low watermark, as in USIMM's baseline scheduler.

use crate::bank::{BankState, RankState};
use crate::command::{ChannelStats, Completion, Request};
use crate::config::DramConfig;

/// State of the shared data bus: last burst's rank and end time.
#[derive(Debug, Clone, Copy, Default)]
struct DataBus {
    free_at: u64,
    last_rank: Option<u32>,
}

/// A single DRAM channel with its controller queues.
#[derive(Debug)]
pub struct Channel {
    cfg: DramConfig,
    banks: Vec<BankState>,
    ranks: Vec<RankState>,
    bus: DataBus,
    read_q: Vec<Request>,
    write_q: Vec<Request>,
    draining_writes: bool,
    stats: ChannelStats,
    completions: Vec<Completion>,
}

impl Channel {
    pub fn new(cfg: DramConfig) -> Self {
        let g = &cfg.geometry;
        let nbanks = (g.ranks_per_channel * g.banks_per_rank) as usize;
        let ranks = (0..g.ranks_per_channel)
            .map(|r| RankState::new(&cfg.timing, u64::from(r)))
            .collect();
        Channel {
            cfg,
            banks: vec![BankState::default(); nbanks],
            ranks,
            bus: DataBus::default(),
            read_q: Vec::with_capacity(cfg.queues.read_queue),
            write_q: Vec::with_capacity(cfg.queues.write_queue),
            draining_writes: false,
            stats: ChannelStats::default(),
            completions: Vec::new(),
        }
    }

    /// True if the read queue can accept another request.
    pub fn read_queue_has_space(&self) -> bool {
        self.read_q.len() < self.cfg.queues.read_queue
    }

    /// True if the write queue can accept another request.
    pub fn write_queue_has_space(&self) -> bool {
        self.write_q.len() < self.cfg.queues.write_queue
    }

    /// Current occupancies `(reads, writes)`.
    pub fn occupancy(&self) -> (usize, usize) {
        (self.read_q.len(), self.write_q.len())
    }

    /// Enqueue a request. Returns `false` (and drops it) if the relevant
    /// queue is full; callers are expected to check for space first.
    pub fn enqueue(&mut self, req: Request) -> bool {
        let q = if req.is_write {
            &mut self.write_q
        } else {
            &mut self.read_q
        };
        let cap = if req.is_write {
            self.cfg.queues.write_queue
        } else {
            self.cfg.queues.read_queue
        };
        if q.len() >= cap {
            return false;
        }
        q.push(req);
        true
    }

    /// True when both queues are empty (no work pending).
    pub fn is_idle(&self) -> bool {
        self.read_q.is_empty() && self.write_q.is_empty()
    }

    /// Drain accumulated completions.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Advance one DRAM cycle: handle refresh, pick and issue at most one
    /// command.
    pub fn tick(&mut self, now: u64) {
        self.handle_refresh(now);

        let q = &self.cfg.queues;
        if self.draining_writes {
            if self.write_q.len() <= q.write_low_watermark {
                self.draining_writes = false;
            }
        } else if self.write_q.len() >= q.write_high_watermark
            || (self.read_q.is_empty() && !self.write_q.is_empty())
        {
            self.draining_writes = true;
        }

        let serve_writes = self.draining_writes || self.read_q.is_empty();
        if serve_writes && !self.write_q.is_empty() {
            self.schedule(now, true);
        } else if !self.read_q.is_empty() {
            self.schedule(now, false);
        }
    }

    /// Process refreshes in bulk when the channel has been idle and the
    /// caller jumps time forward from `from` to `to`.
    pub fn fast_forward(&mut self, to: u64) {
        let t = self.cfg.timing;
        for rank in &mut self.ranks {
            while rank.next_refresh <= to {
                let deadline = rank.next_refresh;
                rank.refresh(deadline, &t);
                self.stats.refreshes += 1;
            }
        }
    }

    /// Refresh model: at the per-rank deadline, force-close the rank's
    /// rows and block it for tRFC.
    fn handle_refresh(&mut self, now: u64) {
        let t = self.cfg.timing;
        let banks_per_rank = self.cfg.geometry.banks_per_rank as usize;
        for (r, rank) in self.ranks.iter_mut().enumerate() {
            if now >= rank.next_refresh {
                for b in 0..banks_per_rank {
                    let bank = &mut self.banks[r * banks_per_rank + b];
                    if bank.open_row.is_some() {
                        bank.open_row = None;
                        self.stats.precharges += 1;
                    }
                    bank.next_activate = bank.next_activate.max(now + t.t_rfc);
                }
                rank.refresh(now, &t);
                self.stats.refreshes += 1;
            }
        }
    }

    /// FR-FCFS over the selected queue: issue a row-hit CAS if possible,
    /// otherwise make progress (ACT/PRE) for the oldest serviceable request.
    fn schedule(&mut self, now: u64, writes: bool) {
        // Pass 1: oldest request whose row is open and whose CAS can issue.
        let hit = self.queue(writes).iter().position(|req| {
            let bank = &self.banks[self.bank_index(req)];
            bank.open_row == Some(req.coords.row) && self.cas_allowed(req, now)
        });
        if let Some(pos) = hit {
            let req = self.queue(writes)[pos];
            self.issue_cas(&req, now, !req.caused_row_miss);
            self.queue_mut(writes).remove(pos);
            return;
        }

        // Pass 2: for requests in age order, open the needed row.
        // At most one command per cycle.
        let len = self.queue(writes).len();
        for pos in 0..len {
            let req = self.queue(writes)[pos];
            let bi = self.bank_index(&req);
            match self.banks[bi].open_row {
                Some(open) if open != req.coords.row => {
                    // Conflict: precharge, but only if no older request
                    // still wants the open row (preserve row hits).
                    let wanted = self
                        .queue(writes)
                        .iter()
                        .take(pos)
                        .any(|r| self.bank_index(r) == bi && r.coords.row == open);
                    if !wanted && now >= self.banks[bi].next_precharge {
                        self.banks[bi].precharge(now, &self.cfg.timing);
                        self.stats.precharges += 1;
                        self.queue_mut(writes)[pos].caused_row_miss = true;
                        return;
                    }
                }
                None if self.act_allowed(&req, now) => {
                    let rank = req.coords.rank as usize;
                    self.banks[bi].activate(req.coords.row, now, &self.cfg.timing);
                    self.ranks[rank].activate(now, &self.cfg.timing);
                    self.stats.activates += 1;
                    self.queue_mut(writes)[pos].caused_row_miss = true;
                    return;
                }
                _ => {
                    // Row already open and matching but CAS not yet
                    // allowed: nothing to do for this request.
                }
            }
        }
    }

    fn queue(&self, writes: bool) -> &Vec<Request> {
        if writes {
            &self.write_q
        } else {
            &self.read_q
        }
    }

    fn queue_mut(&mut self, writes: bool) -> &mut Vec<Request> {
        if writes {
            &mut self.write_q
        } else {
            &mut self.read_q
        }
    }

    fn bank_index(&self, req: &Request) -> usize {
        (req.coords.rank * self.cfg.geometry.banks_per_rank + req.coords.bank) as usize
    }

    /// Can this request's column access issue at `now`?
    fn cas_allowed(&self, req: &Request, now: u64) -> bool {
        let t = &self.cfg.timing;
        let bank = &self.banks[self.bank_index(req)];
        let rank = &self.ranks[req.coords.rank as usize];
        if now < rank.ready_at {
            return false;
        }
        let cmd_ok = if req.is_write {
            now >= bank.next_write && now >= rank.next_write
        } else {
            now >= bank.next_read && now >= rank.next_read
        };
        if !cmd_ok {
            return false;
        }
        // Data-bus availability.
        let start = now + if req.is_write { t.t_cwd } else { t.t_cas };
        if start < self.bus.free_at {
            return false;
        }
        if let Some(last) = self.bus.last_rank {
            if last != req.coords.rank && start < self.bus.free_at + t.t_rtrs {
                return false;
            }
        }
        true
    }

    /// Can an ACT for this request issue at `now`?
    fn act_allowed(&self, req: &Request, now: u64) -> bool {
        let bank = &self.banks[self.bank_index(req)];
        let rank = &self.ranks[req.coords.rank as usize];
        now >= bank.next_activate && now >= rank.activate_allowed_at(&self.cfg.timing)
    }

    /// Issue the column access and record its completion.
    fn issue_cas(&mut self, req: &Request, now: u64, row_hit: bool) {
        let t = self.cfg.timing;
        let bi = self.bank_index(req);
        let rank = req.coords.rank as usize;
        let (start, finish) = if req.is_write {
            self.banks[bi].write(now, &t);
            self.ranks[rank].write(now, &t);
            self.stats.writes += 1;
            (now + t.t_cwd, now + t.t_cwd + t.t_burst)
        } else {
            self.banks[bi].read(now, &t);
            self.ranks[rank].read(now, &t);
            self.stats.reads += 1;
            self.stats.total_read_latency += now + t.t_cas + t.t_burst - req.arrival;
            (now + t.t_cas, now + t.t_cas + t.t_burst)
        };
        debug_assert!(start >= self.bus.free_at);
        self.bus.free_at = finish;
        self.bus.last_rank = Some(req.coords.rank);
        self.stats.bus_busy_cycles += t.t_burst;
        if row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }
        self.completions.push(Completion {
            id: req.id,
            is_write: req.is_write,
            finish,
            arrival: req.arrival,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::AddressDecoder;
    use crate::config::BLOCK_BYTES;

    fn setup() -> (Channel, AddressDecoder) {
        let cfg = DramConfig::table_iii();
        let dec = AddressDecoder::new(cfg.geometry, cfg.mapping);
        (Channel::new(cfg), dec)
    }

    fn req(dec: &AddressDecoder, id: u64, addr: u64, is_write: bool, arrival: u64) -> Request {
        Request::new(id, addr, dec.decode(addr), is_write, arrival)
    }

    fn run_until_idle(ch: &mut Channel, mut now: u64) -> (Vec<Completion>, u64) {
        let mut done = Vec::new();
        let deadline = now + 1_000_000;
        while !ch.is_idle() && now < deadline {
            ch.tick(now);
            done.extend(ch.take_completions());
            now += 1;
        }
        assert!(now < deadline, "channel failed to drain");
        (done, now)
    }

    #[test]
    fn single_read_latency_is_act_plus_cas_plus_burst() {
        let (mut ch, dec) = setup();
        assert!(ch.enqueue(req(&dec, 1, 0, false, 0)));
        let (done, _) = run_until_idle(&mut ch, 0);
        assert_eq!(done.len(), 1);
        let t = DramConfig::table_iii().timing;
        // ACT at 0, RD at tRCD, last beat at tRCD + CL + burst.
        assert_eq!(done[0].finish, t.t_rcd + t.t_cas + t.t_burst);
    }

    #[test]
    fn row_hit_second_read_is_faster() {
        let (mut ch, dec) = setup();
        // Same row, consecutive columns under 4-RBH (blocks 0..4 share a row).
        assert!(ch.enqueue(req(&dec, 1, 0, false, 0)));
        assert!(ch.enqueue(req(&dec, 2, BLOCK_BYTES, false, 0)));
        let (done, _) = run_until_idle(&mut ch, 0);
        assert_eq!(done.len(), 2);
        assert_eq!(ch.stats().activates, 1, "second access should be a row hit");
        assert_eq!(ch.stats().row_hits, 1);
    }

    #[test]
    fn row_conflict_requires_precharge() {
        let (mut ch, dec) = setup();
        let g = DramConfig::table_iii().geometry;
        // Two addresses in the same bank, different rows: stride one full
        // row's worth of one bank's address space under 4-RBH mapping.
        let stride = u64::from(g.blocks_per_row / 4)
            * u64::from(g.banks_per_rank)
            * u64::from(g.ranks_per_channel)
            * 4
            * BLOCK_BYTES;
        let a = req(&dec, 1, 0, false, 0);
        let b = req(&dec, 2, stride, false, 0);
        assert_eq!(a.coords.bank, b.coords.bank);
        assert_eq!(a.coords.rank, b.coords.rank);
        assert_ne!(a.coords.row, b.coords.row);
        ch.enqueue(a);
        ch.enqueue(b);
        let (done, _) = run_until_idle(&mut ch, 0);
        assert_eq!(done.len(), 2);
        assert_eq!(ch.stats().precharges, 1);
        assert_eq!(ch.stats().activates, 2);
    }

    #[test]
    fn writes_drain_when_read_queue_empty() {
        let (mut ch, dec) = setup();
        ch.enqueue(req(&dec, 1, 0, true, 0));
        let (done, _) = run_until_idle(&mut ch, 0);
        assert_eq!(done.len(), 1);
        assert!(done[0].is_write);
        assert_eq!(ch.stats().writes, 1);
    }

    #[test]
    fn reads_prioritized_over_writes_below_watermark() {
        let (mut ch, dec) = setup();
        ch.enqueue(req(&dec, 1, 1 << 20, true, 0));
        ch.enqueue(req(&dec, 2, 0, false, 0));
        let (done, _) = run_until_idle(&mut ch, 0);
        // The read should finish first even though the write arrived first.
        assert!(!done[0].is_write);
    }

    #[test]
    fn write_drain_mode_triggers_at_high_watermark() {
        let (mut ch, dec) = setup();
        let hi = DramConfig::table_iii().queues.write_high_watermark;
        for i in 0..hi as u64 {
            assert!(ch.enqueue(req(&dec, i, i * BLOCK_BYTES * 1024, true, 0)));
        }
        // Keep a steady read supply; drain mode must still serve writes.
        ch.enqueue(req(&dec, 1000, 0, false, 0));
        let mut now = 0;
        let mut wrote = 0;
        while wrote == 0 && now < 100_000 {
            ch.tick(now);
            wrote = ch.take_completions().iter().filter(|c| c.is_write).count();
            now += 1;
        }
        assert!(wrote > 0, "writes never drained");
    }

    #[test]
    fn queue_capacity_enforced() {
        let (mut ch, dec) = setup();
        let cap = DramConfig::table_iii().queues.read_queue;
        for i in 0..cap as u64 {
            assert!(ch.enqueue(req(&dec, i, i * BLOCK_BYTES, false, 0)));
        }
        assert!(!ch.read_queue_has_space());
        assert!(!ch.enqueue(req(&dec, 999, 0, false, 0)));
    }

    #[test]
    fn refresh_happens_and_is_counted() {
        let (mut ch, dec) = setup();
        let t = DramConfig::table_iii().timing;
        // Tick past two refresh intervals (refreshes are rank-staggered)
        // with sparse traffic.
        let mut now = 0;
        ch.enqueue(req(&dec, 1, 0, false, 0));
        while now < 2 * t.t_refi + t.t_rfc + 100 {
            ch.tick(now);
            ch.take_completions();
            now += 1;
        }
        assert!(ch.stats().refreshes >= 16, "all 16 ranks should refresh");
    }

    #[test]
    fn fast_forward_accumulates_refreshes() {
        let (mut ch, _) = setup();
        let t = DramConfig::table_iii().timing;
        ch.fast_forward(10 * t.t_refi);
        // 16 ranks x ~9-10 intervals each (staggered start).
        assert!(ch.stats().refreshes >= 140);
    }

    #[test]
    fn bank_parallelism_overlaps_requests() {
        let (mut ch, dec) = setup();
        // Two reads to different banks: total time must be far less than
        // two serialized row misses.
        let g = DramConfig::table_iii().geometry;
        let bank_stride =
            u64::from(g.blocks_per_row / 4) * 4 * BLOCK_BYTES * u64::from(g.ranks_per_channel);
        let a = req(&dec, 1, 0, false, 0);
        let b = req(&dec, 2, bank_stride, false, 0);
        assert_ne!(a.coords.bank, b.coords.bank);
        ch.enqueue(a);
        ch.enqueue(b);
        let (done, _) = run_until_idle(&mut ch, 0);
        let t = DramConfig::table_iii().timing;
        let serial = 2 * (t.t_rcd + t.t_cas + t.t_burst);
        let max_finish = done.iter().map(|c| c.finish).max().unwrap();
        assert!(
            max_finish < serial,
            "banks did not overlap: {max_finish} vs serial {serial}"
        );
    }
}
