//! Per-bank and per-rank timing state.
//!
//! Each bank tracks its open row and the earliest cycle at which each
//! command class may next be issued to it. Ranks additionally track the
//! four-activate window (tFAW), activate-to-activate spacing (tRRD), and
//! rank-wide write-to-read turnaround (tWTR).

use crate::config::DramTiming;
use itesp_snap::{SnapError, SnapReader, SnapWriter};

/// Row-buffer state and per-command earliest-issue times for one bank.
#[derive(Debug, Clone, Default)]
pub struct BankState {
    /// Currently open row, if any.
    pub open_row: Option<u32>,
    /// Earliest cycle an ACT may issue.
    pub next_activate: u64,
    /// Earliest cycle a RD may issue (requires open row).
    pub next_read: u64,
    /// Earliest cycle a WR may issue (requires open row).
    pub next_write: u64,
    /// Earliest cycle a PRE may issue.
    pub next_precharge: u64,
}

impl BankState {
    /// Apply the effects of an ACT to `row` at cycle `now`.
    pub fn activate(&mut self, row: u32, now: u64, t: &DramTiming) {
        debug_assert!(self.open_row.is_none(), "ACT to a bank with an open row");
        self.open_row = Some(row);
        self.next_read = self.next_read.max(now + t.t_rcd);
        self.next_write = self.next_write.max(now + t.t_rcd);
        self.next_precharge = self.next_precharge.max(now + t.t_ras);
        self.next_activate = self.next_activate.max(now + t.t_rc);
    }

    /// Apply the effects of a RD at cycle `now`.
    pub fn read(&mut self, now: u64, t: &DramTiming) {
        debug_assert!(self.open_row.is_some(), "RD to a closed bank");
        self.next_precharge = self.next_precharge.max(now + t.t_rtp);
        self.next_read = self.next_read.max(now + t.t_ccd);
        self.next_write = self
            .next_write
            .max(now + t.t_cas + t.t_burst + t.t_rtrs - t.t_cwd);
    }

    /// Apply the effects of a WR at cycle `now`.
    pub fn write(&mut self, now: u64, t: &DramTiming) {
        debug_assert!(self.open_row.is_some(), "WR to a closed bank");
        self.next_precharge = self.next_precharge.max(now + t.t_cwd + t.t_burst + t.t_wr);
        self.next_write = self.next_write.max(now + t.t_ccd);
        // Rank-wide tWTR is applied by RankState; the same-bank constraint
        // is subsumed by it but kept here for clarity.
        self.next_read = self.next_read.max(now + t.t_cwd + t.t_burst + t.t_wtr);
    }

    /// Apply the effects of a PRE at cycle `now`.
    pub fn precharge(&mut self, now: u64, t: &DramTiming) {
        debug_assert!(self.open_row.is_some(), "PRE to a closed bank");
        self.open_row = None;
        self.next_activate = self.next_activate.max(now + t.t_rp);
    }

    /// Serialize for a crash-recovery snapshot.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.opt_u64(self.open_row.map(u64::from));
        w.u64(self.next_activate);
        w.u64(self.next_read);
        w.u64(self.next_write);
        w.u64(self.next_precharge);
    }

    /// Restore from [`BankState::save_state`] bytes.
    pub fn load_state(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(BankState {
            open_row: r.opt_u64("bank open row")?.map(|v| v as u32),
            next_activate: r.u64("bank next_activate")?,
            next_read: r.u64("bank next_read")?,
            next_write: r.u64("bank next_write")?,
            next_precharge: r.u64("bank next_precharge")?,
        })
    }
}

/// Rank-wide constraints shared by all banks in the rank.
#[derive(Debug, Clone)]
pub struct RankState {
    /// Issue times of the last four ACTs (for the tFAW window).
    act_history: [u64; 4],
    /// Number of ACTs recorded so far (tFAW only binds after four).
    acts_seen: u64,
    /// Earliest cycle an ACT may issue anywhere in the rank (tRRD).
    pub next_activate: u64,
    /// Earliest cycle a RD may issue anywhere in the rank (tWTR after a
    /// write burst, tCCD after a read).
    pub next_read: u64,
    /// Earliest cycle a WR may issue anywhere in the rank.
    pub next_write: u64,
    /// Rank blocked until this cycle by refresh.
    pub ready_at: u64,
    /// Next scheduled refresh deadline.
    pub next_refresh: u64,
}

impl RankState {
    pub fn new(t: &DramTiming, rank_index: u64) -> Self {
        RankState {
            act_history: [0; 4],
            acts_seen: 0,
            next_activate: 0,
            next_read: 0,
            next_write: 0,
            ready_at: 0,
            // Stagger refreshes across ranks so they don't all block at once.
            next_refresh: t.t_refi + rank_index * (t.t_refi / 16).max(1),
        }
    }

    /// Earliest cycle an ACT can issue in this rank, considering tFAW,
    /// tRRD, and refresh blackout.
    pub fn activate_allowed_at(&self, t: &DramTiming) -> u64 {
        let faw_bound = if self.acts_seen >= 4 {
            self.act_history[0] + t.t_faw
        } else {
            0
        };
        faw_bound.max(self.next_activate).max(self.ready_at)
    }

    /// Record an ACT at `now`.
    pub fn activate(&mut self, now: u64, t: &DramTiming) {
        self.act_history.rotate_left(1);
        self.act_history[3] = now;
        self.acts_seen += 1;
        self.next_activate = self.next_activate.max(now + t.t_rrd);
    }

    /// Record a column read at `now` (tCCD spacing within the rank).
    pub fn read(&mut self, now: u64, t: &DramTiming) {
        self.next_read = self.next_read.max(now + t.t_ccd);
        self.next_write = self
            .next_write
            .max(now + t.t_cas + t.t_burst + t.t_rtrs - t.t_cwd);
    }

    /// Record a column write at `now` (tWTR turnaround for reads).
    pub fn write(&mut self, now: u64, t: &DramTiming) {
        self.next_write = self.next_write.max(now + t.t_ccd);
        self.next_read = self.next_read.max(now + t.t_cwd + t.t_burst + t.t_wtr);
    }

    /// Block the rank for a refresh starting at `now`.
    pub fn refresh(&mut self, now: u64, t: &DramTiming) {
        self.ready_at = now + t.t_rfc;
        self.next_refresh += t.t_refi;
    }

    /// Serialize for a crash-recovery snapshot (including the private
    /// tFAW window, which no public accessor exposes).
    pub fn save_state(&self, w: &mut SnapWriter) {
        for &a in &self.act_history {
            w.u64(a);
        }
        w.u64(self.acts_seen);
        w.u64(self.next_activate);
        w.u64(self.next_read);
        w.u64(self.next_write);
        w.u64(self.ready_at);
        w.u64(self.next_refresh);
    }

    /// Restore from [`RankState::save_state`] bytes.
    pub fn load_state(r: &mut SnapReader) -> Result<Self, SnapError> {
        let mut act_history = [0u64; 4];
        for a in &mut act_history {
            *a = r.u64("rank act_history")?;
        }
        Ok(RankState {
            act_history,
            acts_seen: r.u64("rank acts_seen")?,
            next_activate: r.u64("rank next_activate")?,
            next_read: r.u64("rank next_read")?,
            next_write: r.u64("rank next_write")?,
            ready_at: r.u64("rank ready_at")?,
            next_refresh: r.u64("rank next_refresh")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTiming {
        DramTiming::ddr3_1600()
    }

    #[test]
    fn activate_sets_rcd_and_ras_windows() {
        let t = t();
        let mut b = BankState::default();
        b.activate(7, 100, &t);
        assert_eq!(b.open_row, Some(7));
        assert_eq!(b.next_read, 100 + t.t_rcd);
        assert_eq!(b.next_precharge, 100 + t.t_ras);
        assert_eq!(b.next_activate, 100 + t.t_rc);
    }

    #[test]
    fn precharge_closes_row_and_enforces_rp() {
        let t = t();
        let mut b = BankState::default();
        b.activate(1, 0, &t);
        b.precharge(t.t_ras, &t);
        assert_eq!(b.open_row, None);
        assert_eq!(b.next_activate, t.t_ras + t.t_rp);
    }

    #[test]
    fn read_to_precharge_respects_rtp() {
        let t = t();
        let mut b = BankState::default();
        b.activate(1, 0, &t);
        b.read(t.t_rcd, &t);
        assert!(b.next_precharge >= t.t_rcd + t.t_rtp);
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let t = t();
        let mut b = BankState::default();
        b.activate(1, 0, &t);
        b.write(t.t_rcd, &t);
        assert_eq!(
            b.next_precharge,
            (t.t_rcd + t.t_cwd + t.t_burst + t.t_wr).max(t.t_ras)
        );
    }

    #[test]
    fn faw_limits_fifth_activate() {
        let t = t();
        let mut r = RankState::new(&t, 0);
        for i in 0..4 {
            let at = i * t.t_rrd;
            assert!(r.activate_allowed_at(&t) <= at);
            r.activate(at, &t);
        }
        // The fifth ACT must wait for the first to leave the tFAW window.
        assert_eq!(r.activate_allowed_at(&t), t.t_faw);
    }

    #[test]
    fn wtr_turnaround_after_write() {
        let t = t();
        let mut r = RankState::new(&t, 0);
        r.write(50, &t);
        assert_eq!(r.next_read, 50 + t.t_cwd + t.t_burst + t.t_wtr);
    }

    #[test]
    fn refresh_blocks_rank_for_rfc() {
        let t = t();
        let mut r = RankState::new(&t, 0);
        let deadline = r.next_refresh;
        r.refresh(deadline, &t);
        assert_eq!(r.ready_at, deadline + t.t_rfc);
        assert_eq!(r.next_refresh, deadline + t.t_refi);
        assert!(r.activate_allowed_at(&t) >= r.ready_at);
    }
}
