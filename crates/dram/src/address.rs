//! Address mapping policies (Figure 14 of the paper).
//!
//! The policy decides how the bits of a physical block address are split
//! among channel, rank, bank, row, and column. This controls both
//! row-buffer locality (consecutive blocks in the same row hit in the row
//! buffer) and, for ITESP, metadata-cache locality (blocks sharing a leaf
//! node should be adjacent) and chipkill constraints (blocks sharing a
//! parity must sit in different ranks).
//!
//! The four policies of Figure 14, from least-significant bit upward
//! (after the 6-bit block offset and the channel bits):
//!
//! * **Column** — `| row | rank | bank | column |`: consecutive blocks
//!   fill a row buffer; best row-buffer hit rate, worst parity spread.
//! * **Rank** — `| row | bank | column | rank |`: consecutive blocks
//!   round-robin across ranks; best parity spread, worst row locality.
//! * **RowBufferHit2** — `| row | bank | col_hi | rank | col_lo(1) |`:
//!   2 consecutive blocks share a row, then switch rank.
//! * **RowBufferHit4** — `| row | bank | col_hi | rank | col_lo(2) |`:
//!   4 consecutive blocks share a row, then switch rank. A leaf node in
//!   ITESP holds 4 shared parities, so these 4 blocks also share a leaf.

use serde::{Deserialize, Serialize};

use crate::config::{DramGeometry, BLOCK_SHIFT};

/// How physical addresses map onto DRAM coordinates. See module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AddressMapping {
    /// Consecutive blocks in one row buffer (baseline Synergy's best).
    Column,
    /// Consecutive blocks across ranks.
    Rank,
    /// Pairs of blocks share a row, then rank-interleave.
    RowBufferHit2,
    /// Quads of blocks share a row, then rank-interleave (ITESP's best).
    RowBufferHit4,
}

impl AddressMapping {
    /// All policies, in the order plotted by Figure 15.
    pub const ALL: [AddressMapping; 4] = [
        AddressMapping::Column,
        AddressMapping::Rank,
        AddressMapping::RowBufferHit2,
        AddressMapping::RowBufferHit4,
    ];

    /// Number of consecutive blocks mapped to one row before the rank
    /// bits rotate (the "row-buffer-hit run length").
    pub fn run_length(self) -> u64 {
        match self {
            AddressMapping::Column => u64::MAX,
            AddressMapping::Rank => 1,
            AddressMapping::RowBufferHit2 => 2,
            AddressMapping::RowBufferHit4 => 4,
        }
    }

    /// Short display label used by the figure regenerators.
    pub fn label(self) -> &'static str {
        match self {
            AddressMapping::Column => "Column",
            AddressMapping::Rank => "Rank",
            AddressMapping::RowBufferHit2 => "2-RBH",
            AddressMapping::RowBufferHit4 => "4-RBH",
        }
    }
}

/// A physical address decoded into DRAM coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecodedAddr {
    pub channel: u32,
    pub rank: u32,
    pub bank: u32,
    pub row: u32,
    pub column: u32,
}

impl DecodedAddr {
    /// Flat bank index within the whole system (channel-major), handy for
    /// indexing per-bank state.
    pub fn flat_bank(&self, g: &DramGeometry) -> usize {
        ((self.channel * g.ranks_per_channel + self.rank) * g.banks_per_rank + self.bank) as usize
    }
}

/// Splits physical byte addresses into DRAM coordinates per a policy.
#[derive(Debug, Clone, Copy)]
pub struct AddressDecoder {
    geometry: DramGeometry,
    mapping: AddressMapping,
}

impl AddressDecoder {
    pub fn new(geometry: DramGeometry, mapping: AddressMapping) -> Self {
        AddressDecoder { geometry, mapping }
    }

    pub fn mapping(&self) -> AddressMapping {
        self.mapping
    }

    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// Decode a physical *byte* address. Addresses beyond the installed
    /// capacity wrap (the simulator treats the address space as folded).
    pub fn decode(&self, phys_addr: u64) -> DecodedAddr {
        let g = &self.geometry;
        let mut a = (phys_addr >> BLOCK_SHIFT) % g.capacity_blocks();

        let mut take = |bits: u32| -> u32 {
            let v = (a & ((1 << bits) - 1)) as u32;
            a >>= bits;
            v
        };

        // Channel interleaving always happens at block granularity.
        let channel = take(g.channel_bits());

        let (rank, bank, row, column) = match self.mapping {
            AddressMapping::Column => {
                let column = take(g.column_bits());
                let bank = take(g.bank_bits());
                let rank = take(g.rank_bits());
                let row = take(g.row_bits());
                (rank, bank, row, column)
            }
            AddressMapping::Rank => {
                let rank = take(g.rank_bits());
                let column = take(g.column_bits());
                let bank = take(g.bank_bits());
                let row = take(g.row_bits());
                (rank, bank, row, column)
            }
            AddressMapping::RowBufferHit2 => self.rbh(&mut take, 1),
            AddressMapping::RowBufferHit4 => self.rbh(&mut take, 2),
        };

        DecodedAddr {
            channel,
            rank,
            bank,
            row,
            column,
        }
    }

    /// Shared decode for the row-buffer-hit policies: `lo_bits` column
    /// bits stay below the rank field.
    fn rbh(&self, take: &mut impl FnMut(u32) -> u32, lo_bits: u32) -> (u32, u32, u32, u32) {
        let g = &self.geometry;
        let col_lo = take(lo_bits);
        let rank = take(g.rank_bits());
        let col_hi = take(g.column_bits() - lo_bits);
        let bank = take(g.bank_bits());
        let row = take(g.row_bits());
        (rank, bank, row, (col_hi << lo_bits) | col_lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BLOCK_BYTES;

    fn decoder(m: AddressMapping) -> AddressDecoder {
        AddressDecoder::new(DramGeometry::table_iii(), m)
    }

    #[test]
    fn column_policy_keeps_consecutive_blocks_in_one_row() {
        let d = decoder(AddressMapping::Column);
        let base = d.decode(0);
        for i in 1..128 {
            let a = d.decode(i * BLOCK_BYTES);
            assert_eq!(a.row, base.row);
            assert_eq!(a.bank, base.bank);
            assert_eq!(a.rank, base.rank);
            assert_eq!(a.column, i as u32);
        }
        // Block 128 moves to the next bank.
        let next = d.decode(128 * BLOCK_BYTES);
        assert_ne!(next.bank, base.bank);
    }

    #[test]
    fn rank_policy_rotates_ranks_every_block() {
        let d = decoder(AddressMapping::Rank);
        for i in 0..32 {
            let a = d.decode(i * BLOCK_BYTES);
            assert_eq!(a.rank, (i % 16) as u32);
        }
    }

    #[test]
    fn rbh4_gives_runs_of_four_then_rank_switch() {
        let d = decoder(AddressMapping::RowBufferHit4);
        let first = d.decode(0);
        for i in 0..4 {
            let a = d.decode(i * BLOCK_BYTES);
            assert_eq!(a.rank, first.rank);
            assert_eq!(a.row, first.row);
        }
        let fifth = d.decode(4 * BLOCK_BYTES);
        assert_eq!(fifth.rank, first.rank + 1);
        // After all 16 ranks, we return to rank 0 in the same row.
        let wrap = d.decode(4 * 16 * BLOCK_BYTES);
        assert_eq!(wrap.rank, first.rank);
        assert_eq!(wrap.row, first.row);
        assert_eq!(wrap.bank, first.bank);
        assert_eq!(wrap.column, 4);
    }

    #[test]
    fn rbh2_gives_runs_of_two() {
        let d = decoder(AddressMapping::RowBufferHit2);
        let a0 = d.decode(0);
        let a1 = d.decode(BLOCK_BYTES);
        let a2 = d.decode(2 * BLOCK_BYTES);
        assert_eq!(a0.rank, a1.rank);
        assert_ne!(a0.rank, a2.rank);
    }

    #[test]
    fn decode_is_a_bijection_on_a_sample() {
        // Distinct block addresses must land on distinct coordinates.
        use std::collections::HashSet;
        for m in AddressMapping::ALL {
            let d = decoder(m);
            let mut seen = HashSet::new();
            for i in 0..4096u64 {
                let a = d.decode(i * BLOCK_BYTES);
                assert!(seen.insert(a), "collision under {m:?} at block {i}");
            }
        }
    }

    #[test]
    fn addresses_wrap_at_capacity() {
        let d = decoder(AddressMapping::Column);
        let cap = DramGeometry::table_iii().capacity_bytes();
        assert_eq!(d.decode(cap + 64), d.decode(64));
    }

    #[test]
    fn two_channel_interleaves_blocks() {
        let d = AddressDecoder::new(DramGeometry::two_channel(), AddressMapping::RowBufferHit4);
        assert_eq!(d.decode(0).channel, 0);
        assert_eq!(d.decode(64).channel, 1);
        assert_eq!(d.decode(128).channel, 0);
    }

    #[test]
    fn flat_bank_is_dense_and_unique() {
        let g = DramGeometry::table_iii();
        let d = decoder(AddressMapping::Rank);
        let mut seen = std::collections::HashSet::new();
        for i in 0..(16 * 8) {
            // Walk rank-major addresses to touch every (rank, bank) pair.
            let a = d.decode(i * BLOCK_BYTES * 16 + (i % 16) * BLOCK_BYTES);
            seen.insert(a.flat_bank(&g));
        }
        let total = (g.ranks_per_channel * g.banks_per_rank) as usize;
        for fb in seen {
            assert!(fb < total);
        }
    }
}
