//! Micron-style DRAM energy accounting.
//!
//! Converts [`ChannelStats`] event counts plus elapsed time into energy,
//! with the standard decomposition: activate/precharge energy, read and
//! write burst energy, refresh energy, and per-rank background power.
//! Used to reproduce the memory-energy and EDP trends of Figure 10/12/13.

use serde::{Deserialize, Serialize};

use crate::command::ChannelStats;
use crate::config::{DramConfig, PowerParams};

/// Energy breakdown for one simulation run, in nanojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    pub activate_nj: f64,
    pub read_nj: f64,
    pub write_nj: f64,
    pub refresh_nj: f64,
    pub background_nj: f64,
}

impl EnergyBreakdown {
    /// Total memory energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.activate_nj + self.read_nj + self.write_nj + self.refresh_nj + self.background_nj
    }

    /// Total memory energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_nj() * 1e-6
    }
}

/// Compute the energy for a run of `cycles` DRAM cycles on a system with
/// the given configuration, from the merged channel statistics.
pub fn energy_for_run(cfg: &DramConfig, stats: &ChannelStats, cycles: u64) -> EnergyBreakdown {
    let p: &PowerParams = &cfg.power;
    let ranks = f64::from(cfg.geometry.ranks_per_channel * cfg.geometry.channels);
    let seconds = cycles as f64 * p.clock_ns * 1e-9;
    EnergyBreakdown {
        activate_nj: stats.activates as f64 * p.act_pre_energy_pj * 1e-3,
        read_nj: stats.reads as f64 * p.read_energy_pj * 1e-3,
        write_nj: stats.writes as f64 * p.write_energy_pj * 1e-3,
        refresh_nj: stats.refreshes as f64 * p.refresh_energy_pj * 1e-3,
        // mW x s = mJ = 1e6 nJ.
        background_nj: p.background_mw * ranks * seconds * 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_scales_with_events() {
        let cfg = DramConfig::table_iii();
        let s1 = ChannelStats {
            reads: 1000,
            writes: 500,
            activates: 800,
            refreshes: 10,
            ..Default::default()
        };
        let mut s2 = s1;
        s2.reads *= 2;
        let e1 = energy_for_run(&cfg, &s1, 100_000);
        let e2 = energy_for_run(&cfg, &s2, 100_000);
        assert!(e2.read_nj > e1.read_nj);
        assert_eq!(e2.activate_nj, e1.activate_nj);
        assert!(e2.total_nj() > e1.total_nj());
    }

    #[test]
    fn background_scales_with_time_not_events() {
        let cfg = DramConfig::table_iii();
        let s = ChannelStats::default();
        let e1 = energy_for_run(&cfg, &s, 100_000);
        let e2 = energy_for_run(&cfg, &s, 200_000);
        assert!((e2.background_nj / e1.background_nj - 2.0).abs() < 1e-9);
        assert_eq!(e1.read_nj, 0.0);
    }

    #[test]
    fn totals_add_up() {
        let e = EnergyBreakdown {
            activate_nj: 1.0,
            read_nj: 2.0,
            write_nj: 3.0,
            refresh_nj: 4.0,
            background_nj: 5.0,
        };
        assert_eq!(e.total_nj(), 15.0);
        assert!((e.total_mj() - 15.0e-6).abs() < 1e-15);
    }
}
