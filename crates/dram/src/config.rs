//! DRAM configuration: geometry, timing, and power parameters.
//!
//! Defaults reproduce Table III of the paper: a Micron DDR3-1600 part,
//! 64 GB on one channel organized as 16 ranks of 8 banks each, with the
//! timing constraints listed there (in DRAM cycles at 800 MHz).

use serde::{Deserialize, Serialize};

use crate::address::AddressMapping;

/// Size of a cache block / DRAM burst in bytes.
pub const BLOCK_BYTES: u64 = 64;
/// log2 of [`BLOCK_BYTES`].
pub const BLOCK_SHIFT: u32 = 6;

/// Why a DRAM configuration is invalid.
///
/// Returned by the validating constructors ([`DramGeometry::validated`],
/// [`DramConfig::new`]); the preset constructors (`table_iii` etc.) are
/// valid by construction and stay infallible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A geometry field that feeds address-bit slicing is not a power
    /// of two.
    NotPowerOfTwo { field: &'static str, value: u32 },
    /// A field that must be positive is zero.
    Zero { field: &'static str },
    /// Write-drain watermarks are inconsistent with the queue capacity.
    BadWatermarks {
        high: usize,
        low: usize,
        capacity: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { field, value } => {
                write!(
                    f,
                    "DRAM geometry field {field} must be a power of two, got {value}"
                )
            }
            ConfigError::Zero { field } => {
                write!(f, "DRAM configuration field {field} must be positive")
            }
            ConfigError::BadWatermarks {
                high,
                low,
                capacity,
            } => write!(
                f,
                "write-drain watermarks must satisfy low < high <= write queue capacity, \
                 got low {low}, high {high}, capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Physical organization of the memory system.
///
/// The derived bit-widths (rank/bank/row/column) are used by the address
/// mapping policies in [`crate::address`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramGeometry {
    /// Independent memory channels, each with its own command/data bus.
    pub channels: u32,
    /// Ranks per channel (sets of chips sharing a chip-select).
    pub ranks_per_channel: u32,
    /// Banks per rank.
    pub banks_per_rank: u32,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Cache blocks per row (row size / 64 B).
    pub blocks_per_row: u32,
    /// DRAM chips participating in one rank (x8 parts: 8 data + 1 ECC).
    pub chips_per_rank: u32,
}

impl DramGeometry {
    /// Table III configuration: 64 GB, 1 channel, 16 ranks.
    ///
    /// 16 ranks x 8 banks x 64 K rows x 128 blocks x 64 B = 64 GB.
    pub fn table_iii() -> Self {
        DramGeometry {
            channels: 1,
            ranks_per_channel: 16,
            banks_per_rank: 8,
            rows_per_bank: 1 << 16,
            blocks_per_row: 128,
            chips_per_rank: 9,
        }
    }

    /// The 8-core sensitivity configuration: two channels (Section V-B).
    pub fn two_channel() -> Self {
        DramGeometry {
            channels: 2,
            ..Self::table_iii()
        }
    }

    /// Validate a hand-built geometry: every field that feeds address
    /// slicing must be a nonzero power of two, and the chip count must
    /// be positive.
    ///
    /// # Errors
    /// Names the offending field.
    pub fn validated(self) -> Result<Self, ConfigError> {
        let pow2_fields = [
            ("channels", self.channels),
            ("ranks_per_channel", self.ranks_per_channel),
            ("banks_per_rank", self.banks_per_rank),
            ("rows_per_bank", self.rows_per_bank),
            ("blocks_per_row", self.blocks_per_row),
        ];
        for (field, value) in pow2_fields {
            if value == 0 {
                return Err(ConfigError::Zero { field });
            }
            if !value.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo { field, value });
            }
        }
        if self.chips_per_rank == 0 {
            return Err(ConfigError::Zero {
                field: "chips_per_rank",
            });
        }
        Ok(self)
    }

    /// Total capacity in bytes across all channels.
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.channels)
            * u64::from(self.ranks_per_channel)
            * u64::from(self.banks_per_rank)
            * u64::from(self.rows_per_bank)
            * u64::from(self.blocks_per_row)
            * BLOCK_BYTES
    }

    /// Total cache blocks across all channels.
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_bytes() / BLOCK_BYTES
    }

    /// Number of address bits consumed by the channel field.
    pub fn channel_bits(&self) -> u32 {
        log2_exact(self.channels)
    }

    /// Number of address bits consumed by the rank field.
    pub fn rank_bits(&self) -> u32 {
        log2_exact(self.ranks_per_channel)
    }

    /// Number of address bits consumed by the bank field.
    pub fn bank_bits(&self) -> u32 {
        log2_exact(self.banks_per_rank)
    }

    /// Number of address bits consumed by the row field.
    pub fn row_bits(&self) -> u32 {
        log2_exact(self.rows_per_bank)
    }

    /// Number of address bits consumed by the column (block-in-row) field.
    pub fn column_bits(&self) -> u32 {
        log2_exact(self.blocks_per_row)
    }

    /// Total DRAM devices in the memory system (used by the reliability
    /// model; Table II assumes 288 devices).
    pub fn total_devices(&self) -> u32 {
        self.channels * self.ranks_per_channel * self.chips_per_rank
    }
}

fn log2_exact(v: u32) -> u32 {
    assert!(v.is_power_of_two(), "geometry fields must be powers of two");
    v.trailing_zeros()
}

/// DDR3 timing constraints, in DRAM (bus-clock) cycles.
///
/// Field names follow the JEDEC parameters quoted in Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTiming {
    /// ACT-to-ACT, same bank (row cycle time).
    pub t_rc: u64,
    /// ACT-to-RD/WR, same bank.
    pub t_rcd: u64,
    /// ACT-to-PRE, same bank.
    pub t_ras: u64,
    /// Four-activate window, per rank.
    pub t_faw: u64,
    /// Write recovery: end of write burst to PRE.
    pub t_wr: u64,
    /// PRE-to-ACT, same bank.
    pub t_rp: u64,
    /// Rank-to-rank data-bus switch penalty.
    pub t_rtrs: u64,
    /// RD command to first data beat (CAS latency).
    pub t_cas: u64,
    /// RD-to-PRE, same bank.
    pub t_rtp: u64,
    /// Column-to-column command spacing.
    pub t_ccd: u64,
    /// End of write burst to RD, same rank.
    pub t_wtr: u64,
    /// ACT-to-ACT, different banks same rank.
    pub t_rrd: u64,
    /// Average refresh interval, per rank.
    pub t_refi: u64,
    /// Refresh cycle time (rank blocked).
    pub t_rfc: u64,
    /// WR command to first data beat (CAS write latency).
    pub t_cwd: u64,
    /// Data burst duration (8 beats = 4 clocks for DDR).
    pub t_burst: u64,
}

impl DramTiming {
    /// Table III timings for DDR3-1600 (800 MHz clock, 1.25 ns cycle).
    pub fn ddr3_1600() -> Self {
        DramTiming {
            t_rc: 39,
            t_rcd: 11,
            t_ras: 28,
            t_faw: 20,
            t_wr: 12,
            t_rp: 11,
            t_rtrs: 2,
            t_cas: 11,
            t_rtp: 6,
            t_ccd: 4,
            t_wtr: 6,
            t_rrd: 5,
            // 7.8 us at 1.25 ns/cycle.
            t_refi: 6240,
            // 640 ns at 1.25 ns/cycle.
            t_rfc: 512,
            t_cwd: 8,
            t_burst: 4,
        }
    }

    /// Read latency from RD issue to the last data beat.
    pub fn read_latency(&self) -> u64 {
        self.t_cas + self.t_burst
    }

    /// Write latency from WR issue to the last data beat.
    pub fn write_latency(&self) -> u64 {
        self.t_cwd + self.t_burst
    }
}

/// Energy parameters for the Micron-style power model, in picojoules
/// (per event) and milliwatts (background), for one rank of x8 devices.
///
/// Values are derived from the Micron DDR3 power calculator methodology
/// (IDD0/IDD4R/IDD4W/IDD2P/IDD5) for a 2 Gb DDR3-1600 part; what matters
/// for the paper's Figure 10 trends is the activate/read/write/background
/// decomposition, not absolute calibration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerParams {
    /// Energy of one ACT+PRE pair, per rank (pJ).
    pub act_pre_energy_pj: f64,
    /// Energy of one read burst, per rank, incl. I/O (pJ).
    pub read_energy_pj: f64,
    /// Energy of one write burst, per rank, incl. ODT (pJ).
    pub write_energy_pj: f64,
    /// Energy of one refresh cycle, per rank (pJ).
    pub refresh_energy_pj: f64,
    /// Background power per rank (mW), averaged over power-down states.
    pub background_mw: f64,
    /// DRAM clock period in nanoseconds.
    pub clock_ns: f64,
}

impl PowerParams {
    /// Defaults for a 16-rank DDR3-1600 channel of x8 parts.
    pub fn ddr3_1600() -> Self {
        PowerParams {
            act_pre_energy_pj: 2500.0,
            read_energy_pj: 1800.0,
            write_energy_pj: 1900.0,
            refresh_energy_pj: 24000.0,
            background_mw: 120.0,
            clock_ns: 1.25,
        }
    }
}

/// Read/write queue sizing and scheduler thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Read queue capacity per channel (Table III: 48).
    pub read_queue: usize,
    /// Write queue capacity per channel (Table III: 48).
    pub write_queue: usize,
    /// Enter write-drain mode at this write-queue occupancy.
    pub write_high_watermark: usize,
    /// Leave write-drain mode at this write-queue occupancy.
    pub write_low_watermark: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            read_queue: 48,
            write_queue: 48,
            write_high_watermark: 40,
            write_low_watermark: 20,
        }
    }
}

/// Complete memory-system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    pub geometry: DramGeometry,
    pub timing: DramTiming,
    pub power: PowerParams,
    pub queues: QueueConfig,
    pub mapping: AddressMapping,
}

impl QueueConfig {
    /// Validate queue sizing: capacities positive, watermarks ordered
    /// and within the write-queue capacity.
    ///
    /// # Errors
    /// Names the offending field or watermark pair.
    pub fn validated(self) -> Result<Self, ConfigError> {
        if self.read_queue == 0 {
            return Err(ConfigError::Zero {
                field: "read_queue",
            });
        }
        if self.write_queue == 0 {
            return Err(ConfigError::Zero {
                field: "write_queue",
            });
        }
        if self.write_low_watermark >= self.write_high_watermark
            || self.write_high_watermark > self.write_queue
        {
            return Err(ConfigError::BadWatermarks {
                high: self.write_high_watermark,
                low: self.write_low_watermark,
                capacity: self.write_queue,
            });
        }
        Ok(self)
    }
}

impl DramConfig {
    /// The paper's 4-core baseline: Table III with one channel.
    pub fn table_iii() -> Self {
        DramConfig {
            geometry: DramGeometry::table_iii(),
            timing: DramTiming::ddr3_1600(),
            power: PowerParams::ddr3_1600(),
            queues: QueueConfig::default(),
            mapping: AddressMapping::RowBufferHit4,
        }
    }

    /// The 8-core sensitivity configuration (two channels).
    pub fn two_channel() -> Self {
        DramConfig {
            geometry: DramGeometry::two_channel(),
            ..Self::table_iii()
        }
    }

    /// Build and validate a complete configuration from hand-picked
    /// parts (the presets above are valid by construction).
    ///
    /// # Errors
    /// Names the first invalid field.
    pub fn new(
        geometry: DramGeometry,
        timing: DramTiming,
        power: PowerParams,
        queues: QueueConfig,
        mapping: AddressMapping,
    ) -> Result<Self, ConfigError> {
        let geometry = geometry.validated()?;
        let queues = queues.validated()?;
        if timing.t_burst == 0 {
            return Err(ConfigError::Zero { field: "t_burst" });
        }
        Ok(DramConfig {
            geometry,
            timing,
            power,
            queues,
            mapping,
        })
    }

    /// Same configuration with a different address mapping policy.
    pub fn with_mapping(mut self, mapping: AddressMapping) -> Self {
        self.mapping = mapping;
        self
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::table_iii()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_capacity_is_64_gb() {
        let g = DramGeometry::table_iii();
        assert_eq!(g.capacity_bytes(), 64 << 30);
        assert_eq!(g.capacity_blocks(), 1 << 30);
    }

    #[test]
    fn two_channel_capacity_is_128_gb() {
        let g = DramGeometry::two_channel();
        assert_eq!(g.capacity_bytes(), 128 << 30);
    }

    #[test]
    fn bit_widths_sum_to_address_bits() {
        let g = DramGeometry::table_iii();
        let total =
            g.channel_bits() + g.rank_bits() + g.bank_bits() + g.row_bits() + g.column_bits();
        assert_eq!(1u64 << (total + BLOCK_SHIFT), g.capacity_bytes());
    }

    #[test]
    fn table_iii_devices() {
        // 16 ranks x 9 chips x 2 channels = 288 devices for the two-channel
        // system, matching the Table II reliability analysis.
        assert_eq!(DramGeometry::two_channel().total_devices(), 288);
    }

    #[test]
    fn timing_latencies() {
        let t = DramTiming::ddr3_1600();
        assert_eq!(t.read_latency(), 15);
        assert_eq!(t.write_latency(), 12);
    }

    #[test]
    fn presets_pass_validation() {
        for cfg in [DramConfig::table_iii(), DramConfig::two_channel()] {
            DramConfig::new(cfg.geometry, cfg.timing, cfg.power, cfg.queues, cfg.mapping)
                .expect("preset configuration must validate");
        }
    }

    #[test]
    fn invalid_geometry_names_the_field() {
        let g = DramGeometry {
            ranks_per_channel: 12,
            ..DramGeometry::table_iii()
        };
        match g.validated() {
            Err(ConfigError::NotPowerOfTwo { field, value }) => {
                assert_eq!(field, "ranks_per_channel");
                assert_eq!(value, 12);
            }
            other => panic!("expected NotPowerOfTwo, got {other:?}"),
        }
        let g = DramGeometry {
            chips_per_rank: 0,
            ..DramGeometry::table_iii()
        };
        assert_eq!(
            g.validated(),
            Err(ConfigError::Zero {
                field: "chips_per_rank"
            })
        );
    }

    #[test]
    fn inverted_watermarks_rejected() {
        let q = QueueConfig {
            write_high_watermark: 10,
            write_low_watermark: 20,
            ..QueueConfig::default()
        };
        match q.validated() {
            Err(ConfigError::BadWatermarks { high, low, .. }) => {
                assert_eq!((high, low), (10, 20));
            }
            other => panic!("expected BadWatermarks, got {other:?}"),
        }
        // Errors render with the field context for operator reports.
        let msg = q.validated().unwrap_err().to_string();
        assert!(msg.contains("low 20"), "{msg}");
    }

    #[test]
    fn refresh_interval_matches_7_8_us() {
        let t = DramTiming::ddr3_1600();
        let p = PowerParams::ddr3_1600();
        let us = t.t_refi as f64 * p.clock_ns / 1000.0;
        assert!((us - 7.8).abs() < 0.01);
    }
}
