//! # itesp-dram — cycle-accurate DDR3 memory-system simulator
//!
//! A trace-driven DRAM model in the spirit of USIMM (the simulator used by
//! the ITESP paper), providing:
//!
//! * the Table III DDR3-1600 timing constraints (tRC, tRCD, tFAW, ...),
//! * channels / ranks / banks with open-page row buffers,
//! * an FR-FCFS scheduler with write-drain watermarks and refresh,
//! * the four address-mapping policies of Figure 14,
//! * a Micron-style energy model.
//!
//! The security engine (`itesp-core`) layers metadata traffic on top of
//! this; the full-system driver lives in `itesp-sim`.
//!
//! ## Example
//!
//! ```
//! use itesp_dram::{DramConfig, MemorySystem};
//!
//! let mut mem = MemorySystem::new(DramConfig::table_iii());
//! let id = mem.enqueue_read(0x4000, 0).expect("queue has space");
//! let mut now = 0;
//! let done = loop {
//!     mem.tick(now);
//!     if let Some(c) = mem.take_completions().into_iter().find(|c| c.id == id) {
//!         break c;
//!     }
//!     now += 1;
//! };
//! assert!(done.finish > 0);
//! ```

pub mod address;
pub mod bank;
pub mod channel;
pub mod command;
pub mod config;
pub mod power;
pub mod reference;

pub use address::{AddressDecoder, AddressMapping, DecodedAddr};
pub use channel::Channel;
pub use command::{ChannelStats, Command, Completion, IssuedCommand, Request, RequestId};
pub use config::{
    ConfigError, DramConfig, DramGeometry, DramTiming, PowerParams, QueueConfig, BLOCK_BYTES,
    BLOCK_SHIFT,
};
pub use power::{energy_for_run, EnergyBreakdown};
pub use reference::ReferenceChannel;

/// Error returned when a controller queue cannot accept a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "memory controller queue is full")
    }
}

impl std::error::Error for QueueFull {}

/// The complete multi-channel memory system.
///
/// Owns one [`Channel`] per configured channel and the address decoder.
/// Callers enqueue block-granularity reads and writes and tick the system
/// once per DRAM cycle; completions carry the caller-assigned request ids.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: DramConfig,
    decoder: AddressDecoder,
    channels: Vec<Channel>,
    next_id: RequestId,
    in_flight: u64,
}

impl MemorySystem {
    pub fn new(cfg: DramConfig) -> Self {
        let decoder = AddressDecoder::new(cfg.geometry, cfg.mapping);
        let channels = (0..cfg.geometry.channels)
            .map(|_| Channel::new(cfg))
            .collect();
        MemorySystem {
            cfg,
            decoder,
            channels,
            next_id: 0,
            in_flight: 0,
        }
    }

    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    pub fn decoder(&self) -> &AddressDecoder {
        &self.decoder
    }

    /// Would a read to `addr` be accepted right now?
    pub fn can_accept_read(&self, addr: u64) -> bool {
        self.channels[self.decoder.decode(addr).channel as usize].read_queue_has_space()
    }

    /// Would a write to `addr` be accepted right now?
    pub fn can_accept_write(&self, addr: u64) -> bool {
        self.channels[self.decoder.decode(addr).channel as usize].write_queue_has_space()
    }

    /// Enqueue a block read; returns the assigned request id.
    ///
    /// # Errors
    /// Returns [`QueueFull`] if the target channel's read queue is full.
    pub fn enqueue_read(&mut self, addr: u64, now: u64) -> Result<RequestId, QueueFull> {
        self.enqueue(addr, false, now)
    }

    /// Enqueue a block write; returns the assigned request id.
    ///
    /// # Errors
    /// Returns [`QueueFull`] if the target channel's write queue is full.
    pub fn enqueue_write(&mut self, addr: u64, now: u64) -> Result<RequestId, QueueFull> {
        self.enqueue(addr, true, now)
    }

    fn enqueue(&mut self, addr: u64, is_write: bool, now: u64) -> Result<RequestId, QueueFull> {
        let coords = self.decoder.decode(addr);
        let id = self.next_id;
        let req = Request::new(id, addr, coords, is_write, now);
        if self.channels[coords.channel as usize].enqueue(req) {
            self.next_id += 1;
            self.in_flight += 1;
            Ok(id)
        } else {
            Err(QueueFull)
        }
    }

    /// Advance every channel by one DRAM cycle.
    pub fn tick(&mut self, now: u64) {
        for ch in &mut self.channels {
            ch.tick(now);
        }
    }

    /// Bulk-process refreshes up to `to` while the system is idle.
    pub fn fast_forward(&mut self, to: u64) {
        debug_assert!(self.is_idle());
        for ch in &mut self.channels {
            ch.fast_forward(to);
        }
    }

    /// True when no requests are queued anywhere.
    pub fn is_idle(&self) -> bool {
        self.in_flight == 0
    }

    /// Earliest [`Channel::next_event`] across channels: the next DRAM
    /// cycle at which ticking the system can change any state —
    /// completions, queue space, refreshes, watermark flips. Ticks
    /// strictly before it are no-ops as long as nothing is enqueued in
    /// between (an enqueue resets the owning channel's wake to 0).
    pub fn next_event(&self) -> u64 {
        self.channels
            .iter()
            .map(Channel::next_event)
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Number of requests accepted but not yet completed.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Drain completions from all channels into `out` (appending),
    /// preserving each channel's buffer capacity — the zero-allocation
    /// variant of [`take_completions`](Self::take_completions) for the
    /// simulator's per-tick loop.
    pub fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        let before = out.len();
        for ch in &mut self.channels {
            ch.drain_completions_into(out);
        }
        self.in_flight -= (out.len() - before) as u64;
    }

    /// Collect completions from all channels since the last call.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        for ch in &mut self.channels {
            out.append(&mut ch.take_completions());
        }
        self.in_flight -= out.len() as u64;
        out
    }

    /// Start recording every issued command on every channel.
    pub fn enable_cmd_logs(&mut self) {
        for ch in &mut self.channels {
            ch.enable_cmd_log();
        }
    }

    /// Drain the recorded command log of each channel (one entry per
    /// channel, in channel order).
    pub fn take_cmd_logs(&mut self) -> Vec<Vec<IssuedCommand>> {
        self.channels
            .iter_mut()
            .map(Channel::take_cmd_log)
            .collect()
    }

    /// Merged statistics across channels.
    pub fn stats(&self) -> ChannelStats {
        let mut merged = ChannelStats::default();
        for ch in &self.channels {
            merged.merge(ch.stats());
        }
        merged
    }

    /// Energy consumed over `cycles` DRAM cycles of simulated time.
    pub fn energy(&self, cycles: u64) -> EnergyBreakdown {
        energy_for_run(&self.cfg, &self.stats(), cycles)
    }

    /// Serialize the whole memory system for a crash-recovery snapshot.
    pub fn save_state(&self, w: &mut itesp_snap::SnapWriter) {
        w.section("DMEM", 1);
        w.u64(self.next_id);
        w.u64(self.in_flight);
        w.seq(self.channels.iter(), |w, ch| ch.save_state(w));
    }

    /// Restore a freshly constructed system (same config) from
    /// [`MemorySystem::save_state`] bytes.
    pub fn load_state(
        &mut self,
        r: &mut itesp_snap::SnapReader,
    ) -> Result<(), itesp_snap::SnapError> {
        r.section("DMEM", 1)?;
        self.next_id = r.u64("memory next_id")?;
        self.in_flight = r.u64("memory in_flight")?;
        let n = r.seq_len("memory channels")?;
        if n != self.channels.len() {
            return Err(itesp_snap::SnapError::Corrupt {
                what: "memory channel count (config mismatch)",
                at: r.pos(),
            });
        }
        for ch in &mut self.channels {
            ch.load_state(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_round_trip() {
        let mut mem = MemorySystem::new(DramConfig::table_iii());
        let id = mem.enqueue_read(4096, 0).unwrap();
        let mut now = 0;
        let mut got = None;
        while got.is_none() && now < 10_000 {
            mem.tick(now);
            got = mem.take_completions().into_iter().find(|c| c.id == id);
            now += 1;
        }
        let c = got.expect("read completed");
        assert!(!c.is_write);
        assert!(mem.is_idle());
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let mut mem = MemorySystem::new(DramConfig::table_iii());
        let a = mem.enqueue_read(0, 0).unwrap();
        let b = mem.enqueue_write(64, 0).unwrap();
        assert!(b > a);
    }

    #[test]
    fn queue_full_error() {
        let mut mem = MemorySystem::new(DramConfig::table_iii());
        let cap = mem.config().queues.read_queue;
        for i in 0..cap as u64 {
            mem.enqueue_read(i * 64, 0).unwrap();
        }
        assert_eq!(mem.enqueue_read(0, 0), Err(QueueFull));
        assert!(!mem.can_accept_read(0));
        // Writes still accepted: separate queue.
        assert!(mem.can_accept_write(0));
    }

    #[test]
    fn two_channel_parallelism() {
        let mut one = MemorySystem::new(DramConfig::table_iii());
        let mut two = MemorySystem::new(DramConfig::two_channel());
        // Issue the same burst of reads to both; the 2-channel system
        // should finish sooner.
        let finish = |mem: &mut MemorySystem| {
            for i in 0..32u64 {
                mem.enqueue_read(i * 64, 0).unwrap();
            }
            let mut now = 0;
            let mut done = 0;
            let mut last = 0;
            while done < 32 {
                mem.tick(now);
                for c in mem.take_completions() {
                    done += 1;
                    last = last.max(c.finish);
                }
                now += 1;
            }
            last
        };
        let t1 = finish(&mut one);
        let t2 = finish(&mut two);
        assert!(t2 < t1, "2 channels ({t2}) not faster than 1 ({t1})");
    }

    #[test]
    fn sustained_bandwidth_is_reasonable() {
        // 1000 row-hit reads back to back should approach one burst per
        // tBURST cycles (peak bus utilization), not one per row cycle.
        let cfg = DramConfig::table_iii().with_mapping(AddressMapping::Column);
        let mut mem = MemorySystem::new(cfg);
        let mut issued = 0u64;
        let mut done = 0u64;
        let mut now = 0u64;
        let mut last = 0u64;
        while done < 1000 {
            while issued < 1000 && mem.can_accept_read(issued * 64) {
                mem.enqueue_read(issued * 64, now).unwrap();
                issued += 1;
            }
            mem.tick(now);
            for c in mem.take_completions() {
                done += 1;
                last = last.max(c.finish);
            }
            now += 1;
        }
        let t = cfg.timing;
        // Perfect streaming would take ~1000 * t_burst cycles; allow 2x
        // slack for row crossings and refresh.
        assert!(
            last < 2 * 1000 * t.t_burst + 1000,
            "sustained bandwidth too low: {last} cycles for 1000 reads"
        );
        let s = mem.stats();
        assert!(s.row_hit_rate() > 0.9, "row hit rate {}", s.row_hit_rate());
    }
}
