//! Property test: the optimized [`Channel`] is command-for-command
//! equivalent to the [`ReferenceChannel`] executable specification.
//!
//! Both channels are driven in lockstep with the same request stream,
//! ticking every cycle (so the optimized channel's event skipping must
//! be a provable no-op), and must produce identical command logs
//! (command, cycle, rank, bank, row), identical completion streams, and
//! identical statistics.

use itesp_dram::{AddressDecoder, Channel, DramConfig, ReferenceChannel, Request};
use proptest::prelude::*;

const BLOCK_BYTES: u64 = itesp_dram::BLOCK_BYTES;

/// One element of a generated workload: wait `gap` cycles after the
/// previous arrival, then issue a request derived from `(kind, idx)`.
type Arrival = (u64, u8, u32, bool);

/// Map a generated `(kind, idx)` pair to a block address. `kind == 0`
/// picks dense low blocks (row hits and bank parallelism); other kinds
/// stride by one row of one bank's address space (row conflicts in the
/// same bank) with the row scaled by `kind`.
fn addr_for(cfg: &DramConfig, kind: u8, idx: u32) -> u64 {
    let g = cfg.geometry;
    if kind == 0 {
        u64::from(idx % 256) * BLOCK_BYTES
    } else {
        let conflict_stride = u64::from(g.blocks_per_row / 4)
            * u64::from(g.banks_per_rank)
            * u64::from(g.ranks_per_channel)
            * 4
            * BLOCK_BYTES;
        u64::from(idx % 16) * BLOCK_BYTES + u64::from(kind) * conflict_stride
    }
}

/// Drive both schedulers with the same arrivals and assert equivalence.
fn check_equivalence(arrivals: &[Arrival]) {
    let cfg = DramConfig::table_iii();
    let dec = AddressDecoder::new(cfg.geometry, cfg.mapping);
    let mut opt = Channel::new(cfg);
    let mut refc = ReferenceChannel::new(cfg);
    opt.enable_cmd_log();
    refc.enable_cmd_log();

    // Absolute arrival times from the generated gaps.
    let mut stream: Vec<(u64, u64, bool)> = Vec::new(); // (cycle, addr, is_write)
    let mut at = 0u64;
    for &(gap, kind, idx, is_write) in arrivals {
        at += gap;
        stream.push((at, addr_for(&cfg, kind, idx), is_write));
    }

    let mut next = 0usize; // next stream entry to enqueue
    let mut id = 0u64;
    let mut now = 0u64;
    let deadline = 4_000_000u64;
    while (next < stream.len() || !opt.is_idle() || !refc.is_idle()) && now < deadline {
        // Enqueue everything that has arrived, with identical
        // backpressure: a full queue retries next cycle.
        while next < stream.len() && stream[next].0 <= now {
            let (_, addr, is_write) = stream[next];
            let req = Request::new(id, addr, dec.decode(addr), is_write, now);
            let a = opt.enqueue(req);
            let b = refc.enqueue(req);
            assert_eq!(a, b, "enqueue acceptance diverged at cycle {now}");
            if !a {
                break; // full; retry next cycle
            }
            id += 1;
            next += 1;
        }
        opt.tick(now);
        refc.tick(now);
        let co = opt.take_completions();
        let cr = refc.take_completions();
        assert_eq!(co, cr, "completions diverged at cycle {now}");
        assert_eq!(
            opt.occupancy(),
            refc.occupancy(),
            "occupancy diverged at cycle {now}"
        );
        now += 1;
    }
    assert!(now < deadline, "channels failed to drain");
    assert_eq!(
        opt.take_cmd_log(),
        refc.take_cmd_log(),
        "command streams diverged"
    );
    assert_eq!(opt.stats(), refc.stats(), "stats diverged");
}

proptest! {
    fn optimized_scheduler_matches_reference(
        arrivals in prop::collection::vec(
            (0u64..8, 0u8..4, any::<u32>(), any::<bool>()),
            1..100,
        ),
    ) {
        check_equivalence(&arrivals);
    }

    fn optimized_scheduler_matches_reference_bursty(
        arrivals in prop::collection::vec(
            // Zero gaps: everything arrives at once and saturates the
            // queues, exercising backpressure and write-drain mode.
            (0u64..1, 0u8..2, any::<u32>(), any::<bool>()),
            32..128,
        ),
    ) {
        check_equivalence(&arrivals);
    }
}

/// The write-drain flag oscillates every cycle while the read queue is
/// empty and the write queue sits at or below the low watermark; reads
/// arriving at either parity of that oscillation must see identical
/// scheduling.
#[test]
fn drain_flag_oscillation_parity() {
    for read_arrival in [901u64, 902, 903, 904] {
        let arrivals: Vec<Arrival> = vec![
            (0, 0, 0, true),
            (0, 1, 0, true),
            (read_arrival, 0, 5, false),
            (1, 0, 9, false),
        ];
        check_equivalence(&arrivals);
    }
}

/// Long idle gaps between requests: refreshes fire during the gap and
/// the optimized channel's wake computation must land on them exactly.
#[test]
fn idle_gaps_spanning_refresh() {
    let t = DramConfig::table_iii().timing;
    let arrivals: Vec<Arrival> = vec![
        (0, 0, 0, false),
        (t.t_refi + 3, 1, 1, true),
        (2 * t.t_refi, 0, 77, false),
    ];
    check_equivalence(&arrivals);
}
