//! # itesp-trace — synthetic workload substrate
//!
//! The paper drives USIMM with Pin-captured, LLC-filtered traces of 31
//! benchmarks (SPEC2017, GAP, NAS — Table IV) plus page-table dumps that
//! capture how co-scheduled programs intermingle physical pages. Neither
//! Pin traces nor page-table dumps are available here, so this crate
//! provides the substitute:
//!
//! * [`suites`] — the 31 benchmarks with Table IV working sets and
//!   per-family locality/intensity parameters;
//! * [`workload`] — deterministic generative models producing
//!   LLC-filtered virtual traces;
//! * [`pages`] — a first-touch physical page allocator (interleaved
//!   across programs, as a real OS free-list would) and the per-enclave
//!   dense leaf-id assignment used by isolated trees;
//! * [`multiprog`] — 4/8-copy multiprogrammed composition;
//! * [`churn`] — multi-tenant enclave session schedules (Poisson
//!   arrivals, bounded footprints, mid-life page frees) for the
//!   lifecycle experiments.
//!
//! ```
//! use itesp_trace::{suites::benchmark, MultiProgram};
//!
//! let mp = MultiProgram::homogeneous(benchmark("mcf").unwrap(), 4, 1000, 42);
//! assert_eq!(mp.copies(), 4);
//! ```

pub mod churn;
pub mod error;
pub mod multiprog;
pub mod pages;
pub mod record;
pub mod stream;
pub mod suites;
pub mod workload;

pub use churn::{ChurnConfig, ChurnSession, ChurnWorkload, FlatArrival, PageFree};
pub use error::TraceError;
pub use multiprog::MultiProgram;
pub use pages::{FreeListModel, PageMapper, Translation};
pub use record::{MemOp, PhysRecord, TraceRecord, PAGE_BYTES, PAGE_SHIFT};
pub use stream::{encode_records, StreamDecoder, STREAM_CELL};
pub use suites::{
    benchmark, benchmark_or_err, memory_intensive, AccessPattern, Benchmark, Suite, BENCHMARKS,
};
pub use workload::{WorkloadGen, WorkloadParams};
