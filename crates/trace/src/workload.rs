//! Generative workload models: synthetic stand-ins for the Pin traces.
//!
//! Each benchmark is modeled as a stochastic process over its Table IV
//! working set with four knobs:
//!
//! * **memory intensity** — exponential CPU-cycle gaps between LLC misses
//!   with the per-benchmark mean,
//! * **spatial locality** — geometric runs of consecutive blocks,
//! * **temporal locality** — a hot region revisited with some probability,
//! * **read/write mix** — Bernoulli per access.
//!
//! The generator is deterministic given a seed, so every experiment is
//! reproducible and different scheme runs see *identical* traces.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::TraceError;
use crate::record::{MemOp, TraceRecord, PAGE_BYTES};
use crate::suites::{AccessPattern, Benchmark};

/// Block size assumed by the generators (matches the DRAM model).
const BLOCK: u64 = 64;

/// Tunable generative parameters, normally derived from a [`Benchmark`].
///
/// Temporal locality follows a power law over address-space prefixes:
/// each run starts at block `ws * u^theta` for uniform `u`, so the
/// first `x` fraction of the working set receives `x^(1/theta)` of the
/// accesses. Real LLC-miss streams show exactly this multi-scale reuse
/// — some mass cacheable at every capacity — which is what makes the
/// paper's metadata-cache effects (partial leaf capture, upper-level
/// capture under isolation, thrash under sharing) come out right.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadParams {
    /// Working set in bytes; all addresses fall in `[0, working_set)`.
    pub working_set: u64,
    /// Mean CPU-cycle gap between accesses.
    pub avg_gap: u32,
    /// Probability an access is a read.
    pub read_fraction: f64,
    /// Mean run length of consecutive-block streaks.
    pub mean_run: f64,
    /// Power-law locality exponent theta (1.0 = uniform; larger =
    /// stronger concentration at low addresses).
    pub locality_exponent: f64,
}

impl WorkloadParams {
    /// Derive generator parameters from a Table IV benchmark entry.
    pub fn from_benchmark(b: &Benchmark) -> Self {
        let ws = b.working_set_mb * 1024 * 1024;
        let (mean_run, locality_exponent) = match b.pattern {
            // LLC-filtered streams: long sequential sweeps, little
            // short-distance reuse (the LLC absorbed it).
            AccessPattern::Streaming => (192.0, 1.4),
            // Graph kernels: hub vertices stay hot even past the LLC.
            AccessPattern::Irregular => (2.0, 6.0),
            AccessPattern::PointerChase => (1.5, 5.0),
            AccessPattern::Mixed => (4.0, 5.0),
        };
        WorkloadParams {
            working_set: ws,
            avg_gap: b.avg_gap,
            read_fraction: b.read_fraction,
            mean_run,
            locality_exponent,
        }
    }
}

/// Streaming generator of [`TraceRecord`]s for one program instance.
///
/// Implements `Iterator`, so callers can `take(n)` the desired trace
/// length. Addresses are virtual and block-aligned.
#[derive(Debug)]
pub struct WorkloadGen {
    params: WorkloadParams,
    rng: StdRng,
    /// Next block address of the current streak, and blocks remaining.
    cursor: u64,
    run_left: u32,
    ws_blocks: u64,
}

impl WorkloadGen {
    /// Create a generator for `params`, seeded deterministically.
    ///
    /// # Panics
    /// Panics if the working set is smaller than one page or the
    /// locality exponent is below 1; see [`Self::try_new`] for the
    /// non-panicking variant.
    pub fn new(params: WorkloadParams, seed: u64) -> Self {
        Self::try_new(params, seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Create a generator for `params`, rejecting invalid parameters
    /// with a typed error instead of panicking.
    ///
    /// # Errors
    /// [`TraceError::WorkingSetTooSmall`] or
    /// [`TraceError::LocalityExponentBelowOne`].
    pub fn try_new(params: WorkloadParams, seed: u64) -> Result<Self, TraceError> {
        if params.working_set < PAGE_BYTES {
            return Err(TraceError::WorkingSetTooSmall {
                bytes: params.working_set,
            });
        }
        if params.locality_exponent < 1.0 {
            return Err(TraceError::LocalityExponentBelowOne {
                exponent: params.locality_exponent,
            });
        }
        let ws_blocks = params.working_set / BLOCK;
        Ok(WorkloadGen {
            params,
            rng: StdRng::seed_from_u64(seed),
            cursor: 0,
            run_left: 0,
            ws_blocks,
        })
    }

    /// Convenience constructor from a benchmark table entry.
    pub fn for_benchmark(b: &Benchmark, seed: u64) -> Self {
        Self::new(WorkloadParams::from_benchmark(b), seed)
    }

    fn start_new_run(&mut self) {
        let p = &self.params;
        // Power-law prefix locality: low addresses are revisited often,
        // the tail is swept rarely.
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let base = ((self.ws_blocks as f64) * u.powf(p.locality_exponent)) as u64;
        self.cursor = base.min(self.ws_blocks - 1);
        // Geometric run length with the configured mean (>= 1).
        let q = 1.0 / p.mean_run.max(1.0);
        let mut len = 1u32;
        while !self.rng.gen_bool(q) && len < 1024 {
            len += 1;
        }
        self.run_left = len;
    }

    fn sample_gap(&mut self) -> u32 {
        // Exponential with the configured mean, clamped to u32.
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let g = -(u.ln()) * f64::from(self.params.avg_gap);
        g.min(u32::MAX as f64) as u32
    }
}

impl Iterator for WorkloadGen {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        if self.run_left == 0 {
            self.start_new_run();
        }
        let block = self.cursor % self.ws_blocks;
        self.cursor += 1;
        self.run_left -= 1;
        let op = if self.rng.gen_bool(self.params.read_fraction) {
            MemOp::Read
        } else {
            MemOp::Write
        };
        Some(TraceRecord {
            gap: self.sample_gap(),
            op,
            vaddr: block * BLOCK,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites::benchmark;

    fn gen_n(name: &str, seed: u64, n: usize) -> Vec<TraceRecord> {
        WorkloadGen::for_benchmark(benchmark(name).unwrap(), seed)
            .take(n)
            .collect()
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(gen_n("mcf", 7, 1000), gen_n("mcf", 7, 1000));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(gen_n("mcf", 7, 1000), gen_n("mcf", 8, 1000));
    }

    #[test]
    fn addresses_stay_in_working_set() {
        let b = benchmark("lbm").unwrap();
        let ws = b.working_set_mb * 1024 * 1024;
        for r in gen_n("lbm", 1, 10_000) {
            assert!(r.vaddr < ws);
            assert_eq!(r.vaddr % BLOCK, 0, "addresses are block aligned");
        }
    }

    #[test]
    fn read_fraction_is_respected() {
        let b = benchmark("pr").unwrap();
        let n = 20_000;
        let reads = gen_n("pr", 3, n)
            .iter()
            .filter(|r| r.op == MemOp::Read)
            .count();
        let frac = reads as f64 / n as f64;
        assert!(
            (frac - b.read_fraction).abs() < 0.02,
            "read fraction {frac} vs expected {}",
            b.read_fraction
        );
    }

    #[test]
    fn mean_gap_matches_intensity() {
        let b = benchmark("bwaves").unwrap();
        let recs = gen_n("bwaves", 5, 50_000);
        let mean: f64 = recs.iter().map(|r| f64::from(r.gap)).sum::<f64>() / recs.len() as f64;
        let expect = f64::from(b.avg_gap);
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean gap {mean} vs expected {expect}"
        );
    }

    #[test]
    fn streaming_has_longer_runs_than_pointer_chase() {
        let run_count = |name: &str| {
            let recs = gen_n(name, 11, 20_000);
            let mut runs = 1usize;
            for w in recs.windows(2) {
                if w[1].vaddr != w[0].vaddr + BLOCK {
                    runs += 1;
                }
            }
            runs
        };
        // Fewer distinct runs => longer average run length.
        assert!(run_count("lbm") * 4 < run_count("mcf"));
    }

    #[test]
    fn power_law_concentrates_accesses_at_low_addresses() {
        let b = benchmark("pr").unwrap();
        let p = WorkloadParams::from_benchmark(b);
        let recs = gen_n("pr", 13, 20_000);
        // theta = 6: the first 1% of a 6.5 GB space should receive
        // about (0.01)^(1/6) = 46% of accesses.
        let cutoff = p.working_set / 100;
        let low = recs.iter().filter(|r| r.vaddr < cutoff).count();
        let frac = low as f64 / recs.len() as f64;
        assert!(
            (frac - 0.46).abs() < 0.08,
            "low-prefix fraction {frac}, expected ~0.46"
        );
    }

    #[test]
    fn locality_is_multi_scale() {
        // Each decade of the address space captures additional mass —
        // the property that gives every cache size some marginal hits.
        let b = benchmark("mcf").unwrap();
        let p = WorkloadParams::from_benchmark(b);
        let recs = gen_n("mcf", 17, 40_000);
        let mass = |frac: f64| {
            let cutoff = (p.working_set as f64 * frac) as u64;
            recs.iter().filter(|r| r.vaddr < cutoff).count() as f64 / recs.len() as f64
        };
        let m_tiny = mass(0.001);
        let m_small = mass(0.01);
        let m_mid = mass(0.1);
        assert!(m_tiny > 0.15, "tiny prefix mass {m_tiny}");
        assert!(m_small > m_tiny + 0.05, "{m_small} vs {m_tiny}");
        assert!(m_mid > m_small + 0.05, "{m_mid} vs {m_small}");
        assert!(m_mid < 0.9, "tail must still be swept: {m_mid}");
    }

    #[test]
    #[should_panic(expected = "working set")]
    fn tiny_working_set_rejected() {
        let b = benchmark("mcf").unwrap();
        let mut p = WorkloadParams::from_benchmark(b);
        p.working_set = 100;
        let _ = WorkloadGen::new(p, 0);
    }
}
