//! Multi-program workload composition.
//!
//! The paper's main experiments run 4 (or 8) instances of the same
//! benchmark, each with its own address space, and capture traces of five
//! million memory operations per program. [`MultiProgram`] reproduces
//! that setup: N generator instances with distinct seeds, plus a shared
//! [`PageMapper`] whose first-touch allocation interleaves their physical
//! pages exactly as co-scheduled first-touch allocation would.

use crate::error::TraceError;
use crate::pages::{FreeListModel, PageMapper};
use crate::record::{MemOp, PhysRecord, TraceRecord};
use crate::suites::Benchmark;
use crate::workload::WorkloadGen;

/// A composed multi-program physical trace, ready for replay.
#[derive(Debug, Clone)]
pub struct MultiProgram {
    /// One physical trace per program.
    pub traces: Vec<Vec<PhysRecord>>,
    /// Per-program page/leaf-id mappings (consumed by the isolation
    /// machinery and by statistics).
    pub mapper: PageMapper,
    /// Benchmark name, for reporting.
    pub name: String,
}

impl MultiProgram {
    /// Build `copies` instances of `bench`, each `ops` records long.
    ///
    /// Virtual traces are generated per program with seeds derived from
    /// `seed`, then page-mapped in round-robin record order through a
    /// *fragmented* free list (the realistic OS model), so first-touch
    /// allocation both scatters each program's pages across the span
    /// and intermingles the programs — the baseline behavior the paper
    /// captures with page-table dumps.
    pub fn homogeneous(bench: &Benchmark, copies: usize, ops: usize, seed: u64) -> Self {
        // Mean extent of 4 pages: a well-aged, fragmented free list.
        Self::homogeneous_with_model(
            bench,
            copies,
            ops,
            seed,
            FreeListModel::Fragmented {
                mean_extent_pages: 4.0,
                seed: 0x9A6E_5EED,
            },
        )
    }

    /// [`Self::homogeneous`] with an explicit OS free-list model (the
    /// Figure 2/3 "Small" configuration uses a pristine single-tenant
    /// machine, i.e. [`FreeListModel::Sequential`]).
    pub fn homogeneous_with_model(
        bench: &Benchmark,
        copies: usize,
        ops: usize,
        seed: u64,
        model: FreeListModel,
    ) -> Self {
        let virt: Vec<Vec<TraceRecord>> = (0..copies)
            .map(|i| {
                WorkloadGen::for_benchmark(
                    bench,
                    seed ^ (0x9E37_79B9_7F4A_7C15u64).wrapping_mul(i as u64 + 1),
                )
                .take(ops)
                .collect()
            })
            .collect();
        Self::map_round_robin(virt, bench.name, bench.working_set_mb, copies, model)
    }

    /// Build a heterogeneous mix: one instance of each named benchmark,
    /// co-scheduled (the generalization of the paper's homogeneous runs).
    ///
    /// # Panics
    /// Panics if any name is not in Table IV; see [`Self::try_mixed`]
    /// for the non-panicking variant.
    pub fn mixed(names: &[&str], ops: usize, seed: u64) -> Self {
        Self::try_mixed(names, ops, seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::mixed`], rejecting unknown names with a typed error.
    ///
    /// # Errors
    /// [`TraceError::UnknownBenchmark`] or [`TraceError::EmptyMix`].
    pub fn try_mixed(names: &[&str], ops: usize, seed: u64) -> Result<Self, TraceError> {
        use crate::suites::benchmark_or_err;
        if names.is_empty() {
            return Err(TraceError::EmptyMix);
        }
        let benches: Vec<_> = names
            .iter()
            .map(|n| benchmark_or_err(n).copied())
            .collect::<Result<_, _>>()?;
        let virt: Vec<Vec<TraceRecord>> = benches
            .iter()
            .enumerate()
            .map(|(i, b)| {
                WorkloadGen::for_benchmark(
                    b,
                    seed ^ (0x9E37_79B9_7F4A_7C15u64).wrapping_mul(i as u64 + 1),
                )
                .take(ops)
                .collect()
            })
            .collect();
        let max_ws = benches.iter().map(|b| b.working_set_mb).max().unwrap_or(1);
        Ok(Self::map_round_robin(
            virt,
            &names.join("+"),
            max_ws,
            names.len(),
            FreeListModel::Fragmented {
                mean_extent_pages: 4.0,
                seed: 0x9A6E_5EED,
            },
        ))
    }

    /// Page-map externally supplied virtual traces — the serving path,
    /// where tenants *stream* their records instead of naming a Table
    /// IV generator. Uses the same fragmented free-list model as
    /// [`Self::homogeneous`], so a streamed copy of a generated trace
    /// lands on byte-identical physical addresses.
    ///
    /// # Errors
    /// [`TraceError::EmptyMix`] when `virt` holds no programs.
    pub fn from_virtual(
        virt: Vec<Vec<TraceRecord>>,
        name: &str,
        working_set_mb: u64,
    ) -> Result<Self, TraceError> {
        if virt.is_empty() {
            return Err(TraceError::EmptyMix);
        }
        let copies = virt.len();
        Ok(Self::map_round_robin(
            virt,
            name,
            working_set_mb,
            copies,
            FreeListModel::Fragmented {
                mean_extent_pages: 4.0,
                seed: 0x9A6E_5EED,
            },
        ))
    }

    /// Page-map pre-generated virtual traces with interleaved first touch.
    fn map_round_robin(
        virt: Vec<Vec<TraceRecord>>,
        name: &str,
        working_set_mb: u64,
        copies: usize,
        model: FreeListModel,
    ) -> Self {
        // Allow all copies' working sets, with slack for wrapping.
        let phys_bytes = (working_set_mb * 1024 * 1024)
            .saturating_mul(copies as u64)
            .max(1 << 30);
        let mut mapper = PageMapper::with_model(copies, phys_bytes, model);
        let mut traces: Vec<Vec<PhysRecord>> = (0..copies)
            .map(|i| Vec::with_capacity(virt[i].len()))
            .collect();
        let longest = virt.iter().map(Vec::len).max().unwrap_or(0);
        for idx in 0..longest {
            for (prog, vtrace) in virt.iter().enumerate() {
                if let Some(r) = vtrace.get(idx) {
                    let t = mapper.translate(prog, r.vaddr);
                    traces[prog].push(PhysRecord {
                        gap: r.gap,
                        op: r.op,
                        paddr: t.paddr,
                    });
                }
            }
        }
        MultiProgram {
            traces,
            mapper,
            name: name.to_owned(),
        }
    }

    /// Number of programs.
    pub fn copies(&self) -> usize {
        self.traces.len()
    }

    /// Total records across all programs.
    pub fn total_ops(&self) -> usize {
        self.traces.iter().map(Vec::len).sum()
    }

    /// Fraction of writes across all programs, for sanity checks.
    pub fn write_fraction(&self) -> f64 {
        let writes: usize = self
            .traces
            .iter()
            .flatten()
            .filter(|r| r.op == MemOp::Write)
            .count();
        writes as f64 / self.total_ops().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::PAGE_BYTES;
    use crate::suites::benchmark;

    #[test]
    fn homogeneous_builds_requested_shape() {
        let mp = MultiProgram::homogeneous(benchmark("mcf").unwrap(), 4, 1000, 42);
        assert_eq!(mp.copies(), 4);
        assert_eq!(mp.total_ops(), 4000);
        assert_eq!(mp.name, "mcf");
    }

    #[test]
    fn copies_have_different_access_streams() {
        let mp = MultiProgram::homogeneous(benchmark("mcf").unwrap(), 2, 500, 42);
        assert_ne!(mp.traces[0], mp.traces[1]);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = MultiProgram::homogeneous(benchmark("pr").unwrap(), 2, 500, 7);
        let b = MultiProgram::homogeneous(benchmark("pr").unwrap(), 2, 500, 7);
        assert_eq!(a.traces, b.traces);
    }

    #[test]
    fn physical_pages_are_disjoint_across_programs() {
        use std::collections::HashSet;
        let mp = MultiProgram::homogeneous(benchmark("lbm").unwrap(), 4, 2000, 1);
        let mut owner: std::collections::HashMap<u64, usize> = Default::default();
        let mut clash = false;
        for (prog, trace) in mp.traces.iter().enumerate() {
            let pages: HashSet<u64> = trace.iter().map(|r| r.paddr / PAGE_BYTES).collect();
            for p in pages {
                if let Some(&o) = owner.get(&p) {
                    if o != prog {
                        clash = true;
                    }
                }
                owner.insert(p, prog);
            }
        }
        assert!(!clash, "two programs mapped to the same physical page");
    }

    #[test]
    fn physical_pages_interleave_across_programs() {
        // Count how often adjacent physical pages belong to different
        // programs — the property that pollutes shared tree nodes.
        let mp = MultiProgram::homogeneous(benchmark("mcf").unwrap(), 4, 4000, 3);
        let mut owner: std::collections::HashMap<u64, usize> = Default::default();
        for (prog, trace) in mp.traces.iter().enumerate() {
            for r in trace {
                owner.entry(r.paddr / PAGE_BYTES).or_insert(prog);
            }
        }
        let max_page = *owner.keys().max().unwrap();
        let mut cross = 0;
        let mut total = 0;
        for p in 0..max_page {
            if let (Some(a), Some(b)) = (owner.get(&p), owner.get(&(p + 1))) {
                total += 1;
                if a != b {
                    cross += 1;
                }
            }
        }
        assert!(total > 100);
        assert!(
            cross as f64 / total as f64 > 0.5,
            "pages not interleaved: {cross}/{total}"
        );
    }

    #[test]
    fn from_virtual_matches_homogeneous_mapping() {
        // A tenant that streams the same virtual records a local
        // generator would produce must land on the same physical trace
        // — the property the serve-mode byte-identity drill rests on.
        let b = benchmark("mcf").unwrap();
        let local = MultiProgram::homogeneous(b, 1, 800, 42);
        let virt: Vec<TraceRecord> =
            crate::workload::WorkloadGen::for_benchmark(b, 42 ^ 0x9E37_79B9_7F4A_7C15u64)
                .take(800)
                .collect();
        let streamed = MultiProgram::from_virtual(vec![virt], "mcf", b.working_set_mb).unwrap();
        assert_eq!(streamed.traces, local.traces);
        assert!(matches!(
            MultiProgram::from_virtual(vec![], "x", 1),
            Err(TraceError::EmptyMix)
        ));
    }

    #[test]
    fn mixed_workloads_compose() {
        let mp = MultiProgram::mixed(&["mcf", "lbm", "pr", "gcc"], 500, 9);
        assert_eq!(mp.copies(), 4);
        assert_eq!(mp.name, "mcf+lbm+pr+gcc");
        // Different benchmarks produce visibly different trace shapes.
        assert_ne!(mp.traces[0], mp.traces[1]);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn mixed_rejects_unknown_names() {
        let _ = MultiProgram::mixed(&["not-a-benchmark"], 10, 0);
    }

    #[test]
    fn write_fraction_in_expected_range() {
        let mp = MultiProgram::homogeneous(benchmark("lbm").unwrap(), 2, 10_000, 5);
        let wf = mp.write_fraction();
        assert!((wf - 0.48).abs() < 0.05, "lbm write fraction {wf}");
    }
}
