//! Streamed trace decoding for the serving endpoint.
//!
//! `itesp-serve` clients ship virtual traces over TCP as a sequence of
//! fixed-size cells rather than as one serialized blob, so the daemon
//! can decode incrementally, enforce caps before buffering a whole
//! request, and detect a disconnect mid-cell. The wire cell is 13
//! little-endian bytes:
//!
//! ```text
//! gap: u32 | op: u8 (0 = read, 1 = write) | vaddr: u64
//! ```
//!
//! [`StreamDecoder`] accepts arbitrary byte chunks (frames split cells
//! wherever the sender's buffering happened to cut them) and yields
//! complete [`TraceRecord`]s; anything malformed is a typed
//! [`TraceError`], never a panic.

use crate::error::TraceError;
use crate::record::{MemOp, TraceRecord};

/// Bytes per wire cell.
pub const STREAM_CELL: usize = 13;

/// Encode records into the wire format (the client side).
pub fn encode_records(records: &[TraceRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * STREAM_CELL);
    for r in records {
        out.extend_from_slice(&r.gap.to_le_bytes());
        out.push(match r.op {
            MemOp::Read => 0,
            MemOp::Write => 1,
        });
        out.extend_from_slice(&r.vaddr.to_le_bytes());
    }
    out
}

/// Incremental decoder: push byte chunks as they arrive, collect
/// complete records, and call [`StreamDecoder::finish`] at end of
/// stream to reject a trailing partial cell (a disconnect mid-cell).
#[derive(Debug, Default)]
pub struct StreamDecoder {
    /// Carry of the last partial cell (always < [`STREAM_CELL`] long).
    carry: Vec<u8>,
    decoded: u64,
}

impl StreamDecoder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records decoded so far (for cap enforcement as bytes stream in).
    pub fn decoded(&self) -> u64 {
        self.decoded
    }

    /// Decode every complete cell in `chunk` (plus any carried prefix)
    /// into `out`, keeping the trailing partial cell for the next push.
    ///
    /// # Errors
    /// [`TraceError::StreamBadOp`] on an op byte that is neither 0 nor
    /// 1 — the stream is corrupt and the connection should be failed.
    pub fn push(&mut self, chunk: &[u8], out: &mut Vec<TraceRecord>) -> Result<(), TraceError> {
        self.carry.extend_from_slice(chunk);
        let cells = self.carry.len() / STREAM_CELL;
        for cell in self.carry[..cells * STREAM_CELL].chunks_exact(STREAM_CELL) {
            let gap = u32::from_le_bytes(cell[0..4].try_into().expect("4-byte slice"));
            let op = match cell[4] {
                0 => MemOp::Read,
                1 => MemOp::Write,
                op => return Err(TraceError::StreamBadOp { op }),
            };
            let vaddr = u64::from_le_bytes(cell[5..13].try_into().expect("8-byte slice"));
            out.push(TraceRecord { gap, op, vaddr });
            self.decoded += 1;
        }
        self.carry.drain(..cells * STREAM_CELL);
        Ok(())
    }

    /// End of stream: total records decoded, or a typed error if the
    /// sender stopped mid-cell.
    ///
    /// # Errors
    /// [`TraceError::StreamTrailingBytes`] when a partial cell remains.
    pub fn finish(self) -> Result<u64, TraceError> {
        if self.carry.is_empty() {
            Ok(self.decoded)
        } else {
            Err(TraceError::StreamTrailingBytes {
                len: self.carry.len(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites::benchmark;
    use crate::workload::WorkloadGen;

    fn sample(n: usize) -> Vec<TraceRecord> {
        WorkloadGen::for_benchmark(benchmark("mcf").unwrap(), 7)
            .take(n)
            .collect()
    }

    #[test]
    fn round_trips_whole_buffer() {
        let records = sample(500);
        let wire = encode_records(&records);
        let mut dec = StreamDecoder::new();
        let mut out = Vec::new();
        dec.push(&wire, &mut out).unwrap();
        assert_eq!(dec.finish().unwrap(), 500);
        assert_eq!(out, records);
    }

    #[test]
    fn round_trips_under_any_chunking() {
        let records = sample(64);
        let wire = encode_records(&records);
        // Chunk sizes deliberately misaligned with the 13-byte cell.
        for chunk in [1usize, 2, 3, 5, 7, 12, 13, 14, 64, 1000] {
            let mut dec = StreamDecoder::new();
            let mut out = Vec::new();
            for piece in wire.chunks(chunk) {
                dec.push(piece, &mut out).unwrap();
            }
            assert_eq!(dec.finish().unwrap(), 64, "chunk size {chunk}");
            assert_eq!(out, records, "chunk size {chunk}");
        }
    }

    #[test]
    fn bad_op_byte_is_a_typed_error() {
        let mut wire = encode_records(&sample(2));
        wire[4] = 9; // first cell's op byte
        let mut dec = StreamDecoder::new();
        let mut out = Vec::new();
        assert_eq!(
            dec.push(&wire, &mut out),
            Err(TraceError::StreamBadOp { op: 9 })
        );
    }

    #[test]
    fn partial_trailing_cell_is_a_typed_error() {
        let wire = encode_records(&sample(3));
        let mut dec = StreamDecoder::new();
        let mut out = Vec::new();
        dec.push(&wire[..wire.len() - 5], &mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(
            dec.finish(),
            Err(TraceError::StreamTrailingBytes {
                len: STREAM_CELL - 5
            })
        );
    }
}
