//! Trace record types.
//!
//! Traces are LLC-filtered, as in the paper's methodology: each record is
//! one memory access that missed the 8 MB LLC (or a dirty writeback),
//! preceded by `gap` CPU cycles of non-memory work. The ROB model in
//! `itesp-sim` replays these records.

use serde::{Deserialize, Serialize};

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemOp {
    /// A demand read (LLC load miss); blocks retirement at ROB head.
    Read,
    /// A writeback (dirty LLC eviction); retires into the write queue.
    Write,
}

/// One record of a virtual-address trace, before page mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// CPU cycles of non-memory instructions preceding this access.
    pub gap: u32,
    pub op: MemOp,
    /// Virtual byte address (block aligned).
    pub vaddr: u64,
}

/// One record of a physical-address trace, after page mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhysRecord {
    /// CPU cycles of non-memory instructions preceding this access.
    pub gap: u32,
    pub op: MemOp,
    /// Physical byte address (block aligned).
    pub paddr: u64,
}

impl PhysRecord {
    pub fn is_write(&self) -> bool {
        self.op == MemOp::Write
    }
}

/// Page size used for virtual-to-physical mapping and leaf-id assignment.
pub const PAGE_BYTES: u64 = 4096;
/// log2 of [`PAGE_BYTES`].
pub const PAGE_SHIFT: u32 = 12;

/// Virtual or physical page number of a byte address.
pub fn page_of(addr: u64) -> u64 {
    addr >> PAGE_SHIFT
}

/// Byte offset within its page.
pub fn page_offset(addr: u64) -> u64 {
    addr & (PAGE_BYTES - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_arithmetic() {
        assert_eq!(page_of(0), 0);
        assert_eq!(page_of(4095), 0);
        assert_eq!(page_of(4096), 1);
        assert_eq!(page_offset(4096 + 128), 128);
    }

    #[test]
    fn phys_record_is_write() {
        let r = PhysRecord {
            gap: 0,
            op: MemOp::Write,
            paddr: 64,
        };
        assert!(r.is_write());
        let r = PhysRecord {
            op: MemOp::Read,
            ..r
        };
        assert!(!r.is_write());
    }
}
