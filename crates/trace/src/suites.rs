//! The 31 benchmarks of Table IV: 15 from SPEC2017, 6 from GAP, 10 from
//! NAS, with their working-set sizes and our generative-model parameters.
//!
//! The paper drives its simulator with Pin traces of the real programs;
//! we substitute parameterized synthetic models (see `workload.rs`) whose
//! working sets come straight from Table IV and whose memory intensity,
//! spatial locality, and read/write mix are chosen per benchmark family
//! so the *relative* behavior (which benchmarks are memory-bound, which
//! stream, which pointer-chase) matches the published characterization.

use serde::{Deserialize, Serialize};

/// Benchmark suite of origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    Spec2017,
    Gap,
    Nas,
}

impl Suite {
    pub fn label(self) -> &'static str {
        match self {
            Suite::Spec2017 => "SPEC2017",
            Suite::Gap => "GAP",
            Suite::Nas => "NAS",
        }
    }
}

/// Broad access-pattern family, which sets the locality defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Long unit-stride runs (stencils, dense linear algebra).
    Streaming,
    /// Short runs with a reused hot region (irregular graph analytics).
    Irregular,
    /// Single-block accesses, pointer chasing.
    PointerChase,
    /// Mixed: moderate runs plus a hot set.
    Mixed,
}

/// Static description of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Benchmark {
    pub name: &'static str,
    pub suite: Suite,
    /// Working set in megabytes (Table IV).
    pub working_set_mb: u64,
    /// Mean CPU cycles between LLC misses (memory intensity knob).
    pub avg_gap: u32,
    /// Fraction of accesses that are reads.
    pub read_fraction: f64,
    pub pattern: AccessPattern,
    /// Bold in Table IV: one of the 15 most memory-intensive benchmarks
    /// that the paper's averages report on.
    pub memory_intensive: bool,
}

/// Every benchmark in Table IV, in the paper's order.
pub const BENCHMARKS: &[Benchmark] = &[
    // SPEC2017.
    bm(
        "perlbench",
        Suite::Spec2017,
        48,
        2600,
        0.75,
        AccessPattern::Mixed,
        false,
    ),
    bm(
        "gcc",
        Suite::Spec2017,
        6425,
        700,
        0.72,
        AccessPattern::Mixed,
        false,
    ),
    bm(
        "bwaves",
        Suite::Spec2017,
        10763,
        14,
        0.60,
        AccessPattern::Streaming,
        true,
    ),
    bm(
        "mcf",
        Suite::Spec2017,
        1760,
        18,
        0.62,
        AccessPattern::PointerChase,
        true,
    ),
    bm(
        "cactuBSSN",
        Suite::Spec2017,
        6476,
        40,
        0.58,
        AccessPattern::Mixed,
        true,
    ),
    bm(
        "namd",
        Suite::Spec2017,
        239,
        2200,
        0.70,
        AccessPattern::Mixed,
        false,
    ),
    bm(
        "lbm",
        Suite::Spec2017,
        42,
        12,
        0.52,
        AccessPattern::Streaming,
        true,
    ),
    bm(
        "omnetpp",
        Suite::Spec2017,
        3210,
        40,
        0.63,
        AccessPattern::PointerChase,
        true,
    ),
    bm(
        "xalancbmk",
        Suite::Spec2017,
        156,
        900,
        0.78,
        AccessPattern::PointerChase,
        false,
    ),
    bm(
        "cam4",
        Suite::Spec2017,
        168,
        1500,
        0.68,
        AccessPattern::Mixed,
        false,
    ),
    bm(
        "deepsjeng",
        Suite::Spec2017,
        6976,
        1100,
        0.74,
        AccessPattern::Mixed,
        false,
    ),
    bm(
        "imagick",
        Suite::Spec2017,
        3245,
        1900,
        0.66,
        AccessPattern::Streaming,
        false,
    ),
    bm(
        "fotonik3d",
        Suite::Spec2017,
        310,
        18,
        0.60,
        AccessPattern::Streaming,
        true,
    ),
    bm(
        "roms",
        Suite::Spec2017,
        76,
        30,
        0.58,
        AccessPattern::Mixed,
        true,
    ),
    bm(
        "xz",
        Suite::Spec2017,
        7370,
        650,
        0.60,
        AccessPattern::Mixed,
        false,
    ),
    // GAP (all six are memory-intensive graph kernels).
    bm(
        "bc",
        Suite::Gap,
        12654,
        16,
        0.66,
        AccessPattern::Irregular,
        true,
    ),
    bm(
        "bfs",
        Suite::Gap,
        8179,
        18,
        0.68,
        AccessPattern::Irregular,
        true,
    ),
    bm(
        "cc",
        Suite::Gap,
        6326,
        16,
        0.66,
        AccessPattern::Irregular,
        true,
    ),
    bm(
        "sssp",
        Suite::Gap,
        1884,
        22,
        0.64,
        AccessPattern::Irregular,
        true,
    ),
    bm(
        "pr",
        Suite::Gap,
        6530,
        14,
        0.70,
        AccessPattern::Irregular,
        true,
    ),
    bm(
        "tc",
        Suite::Gap,
        9746,
        120,
        0.88,
        AccessPattern::Irregular,
        false,
    ),
    // NAS.
    bm(
        "bt",
        Suite::Nas,
        2600,
        500,
        0.65,
        AccessPattern::Streaming,
        false,
    ),
    bm(
        "cg",
        Suite::Nas,
        9000,
        18,
        0.65,
        AccessPattern::Irregular,
        true,
    ),
    bm(
        "ep",
        Suite::Nas,
        24,
        4000,
        0.70,
        AccessPattern::Mixed,
        false,
    ),
    bm(
        "lu",
        Suite::Nas,
        2700,
        300,
        0.66,
        AccessPattern::Streaming,
        false,
    ),
    bm(
        "ua",
        Suite::Nas,
        4200,
        400,
        0.68,
        AccessPattern::Mixed,
        false,
    ),
    bm(
        "is",
        Suite::Nas,
        1000,
        150,
        0.60,
        AccessPattern::Irregular,
        false,
    ),
    bm(
        "mg",
        Suite::Nas,
        15000,
        16,
        0.58,
        AccessPattern::Streaming,
        true,
    ),
    bm("sp", Suite::Nas, 2700, 25, 0.57, AccessPattern::Mixed, true),
    bm(
        "ft",
        Suite::Nas,
        137,
        800,
        0.62,
        AccessPattern::Streaming,
        false,
    ),
    bm(
        "dc",
        Suite::Nas,
        100,
        1200,
        0.72,
        AccessPattern::Mixed,
        false,
    ),
];

const fn bm(
    name: &'static str,
    suite: Suite,
    working_set_mb: u64,
    avg_gap: u32,
    read_fraction: f64,
    pattern: AccessPattern,
    memory_intensive: bool,
) -> Benchmark {
    Benchmark {
        name,
        suite,
        working_set_mb,
        avg_gap,
        read_fraction,
        pattern,
        memory_intensive,
    }
}

/// Look up a benchmark by name.
pub fn benchmark(name: &str) -> Option<&'static Benchmark> {
    BENCHMARKS.iter().find(|b| b.name == name)
}

/// Look up a benchmark by name, with a typed error for reporting.
///
/// # Errors
/// [`TraceError::UnknownBenchmark`] when the name is not in Table IV.
pub fn benchmark_or_err(name: &str) -> Result<&'static Benchmark, crate::TraceError> {
    benchmark(name).ok_or_else(|| crate::TraceError::UnknownBenchmark(name.to_owned()))
}

/// The 15 memory-intensive benchmarks the paper's averages report on.
pub fn memory_intensive() -> impl Iterator<Item = &'static Benchmark> {
    BENCHMARKS.iter().filter(|b| b.memory_intensive)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_one_benchmarks() {
        assert_eq!(BENCHMARKS.len(), 31);
    }

    #[test]
    fn suite_counts_match_table_iv() {
        let count = |s: Suite| BENCHMARKS.iter().filter(|b| b.suite == s).count();
        assert_eq!(count(Suite::Spec2017), 15);
        assert_eq!(count(Suite::Gap), 6);
        assert_eq!(count(Suite::Nas), 10);
    }

    #[test]
    fn fifteen_memory_intensive() {
        assert_eq!(memory_intensive().count(), 15);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = BENCHMARKS.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 31);
    }

    #[test]
    fn lookup_by_name() {
        let b = benchmark("mcf").unwrap();
        assert_eq!(b.working_set_mb, 1760);
        assert!(benchmark("nonexistent").is_none());
    }

    #[test]
    fn intensive_benchmarks_have_small_gaps() {
        for b in memory_intensive() {
            assert!(
                b.avg_gap <= 200,
                "{} marked intensive but gap {}",
                b.name,
                b.avg_gap
            );
        }
    }

    #[test]
    fn working_sets_match_table_iv_spot_checks() {
        assert_eq!(benchmark("bwaves").unwrap().working_set_mb, 10763);
        assert_eq!(benchmark("bc").unwrap().working_set_mb, 12654);
        assert_eq!(benchmark("mg").unwrap().working_set_mb, 15000);
        assert_eq!(benchmark("ep").unwrap().working_set_mb, 24);
        assert_eq!(benchmark("lbm").unwrap().working_set_mb, 42);
    }
}
