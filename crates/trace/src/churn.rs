//! Multi-tenant churn workloads: enclave sessions that arrive, touch a
//! bounded footprint, free pages mid-life, and depart.
//!
//! The static experiments co-schedule one immortal program per core.
//! Server TEEs instead see a renewal process per slot: an enclave is
//! created, runs for a while over its own working set, returns some
//! pages early, and exits — at which point the slot waits out a
//! Poisson think time and admits the next tenant. [`ChurnWorkload`]
//! generates exactly that, reusing the benchmark-derived access model
//! of [`crate::workload`] for the intra-session streams, so the only
//! new degrees of freedom are the lifecycle ones: arrival rate,
//! footprint, and mid-session page frees.
//!
//! Everything is deterministic given [`ChurnConfig::seed`]; benches
//! pass a seed resolved from `ITESP_TEST_SEED` so failures replay.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::record::{page_of, TraceRecord, PAGE_BYTES};
use crate::suites::Benchmark;
use crate::workload::{WorkloadGen, WorkloadParams};

/// Parameters of one churn generation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Enclave slots (hardware contexts / cores).
    pub slots: usize,
    /// Sessions each slot serves before the run ends.
    pub sessions_per_slot: usize,
    /// Memory operations per session.
    pub ops_per_session: usize,
    /// Mean CPU-cycle think time between a slot's consecutive session
    /// arrivals (exponential; the next session also waits for the
    /// previous one to finish).
    pub mean_arrival_gap: f64,
    /// Virtual footprint of each session, pages. The session's whole
    /// access stream falls inside this many pages.
    pub footprint_pages: u64,
    /// Fraction of a session's touched pages that are freed before the
    /// session exits (each may be re-touched later, which is what
    /// exercises leaf-id recycling).
    pub free_fraction: f64,
    /// Master seed; every stream below derives from it.
    pub seed: u64,
}

/// A page-free event inside a session: once the record at index
/// `after_record` has been issued, the page holding `vaddr` is
/// returned to the enclave's free list. Later records may touch the
/// same virtual page again — that re-touch is a fresh first-touch
/// (new physical frame, recycled leaf-id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageFree {
    pub after_record: usize,
    pub vaddr: u64,
}

/// One enclave's life: arrival delay, its access stream, and its
/// mid-life page frees (sorted by `after_record`).
#[derive(Debug, Clone)]
pub struct ChurnSession {
    /// CPU cycles after the *previous* session's arrival on this slot
    /// before this one may start (renewal inter-arrival time).
    pub arrival_gap: u64,
    pub footprint_pages: u64,
    pub records: Vec<TraceRecord>,
    pub frees: Vec<PageFree>,
}

/// A full churn schedule: per slot, the queue of sessions it serves.
#[derive(Debug, Clone)]
pub struct ChurnWorkload {
    pub name: String,
    pub slots: Vec<Vec<ChurnSession>>,
}

impl ChurnWorkload {
    /// Generate a churn schedule from a benchmark's access model.
    ///
    /// # Panics
    /// Panics if any count is zero or `free_fraction` is outside
    /// `[0, 1)`.
    pub fn generate(bench: &Benchmark, cfg: &ChurnConfig) -> Self {
        assert!(cfg.slots > 0 && cfg.sessions_per_slot > 0 && cfg.ops_per_session > 0);
        assert!(cfg.footprint_pages > 0, "footprint must be at least a page");
        assert!(
            (0.0..1.0).contains(&cfg.free_fraction),
            "free_fraction must be in [0, 1)"
        );
        let mut params = WorkloadParams::from_benchmark(bench);
        params.working_set = cfg.footprint_pages * PAGE_BYTES;
        let slots = (0..cfg.slots)
            .map(|slot| {
                // Independent arrival process per slot.
                let mut arrivals =
                    StdRng::seed_from_u64(cfg.seed ^ 0xA881_1E5Du64.wrapping_add(slot as u64));
                (0..cfg.sessions_per_slot)
                    .map(|k| {
                        let stream_seed = mix(cfg.seed, slot as u64, k as u64);
                        let records: Vec<TraceRecord> = WorkloadGen::new(params, stream_seed)
                            .take(cfg.ops_per_session)
                            .collect();
                        let frees = pick_frees(&records, cfg.free_fraction, stream_seed ^ 0xF4EE);
                        let u: f64 = arrivals.gen_range(f64::EPSILON..1.0);
                        let arrival_gap = (-(u.ln()) * cfg.mean_arrival_gap) as u64;
                        ChurnSession {
                            arrival_gap,
                            footprint_pages: cfg.footprint_pages,
                            records,
                            frees,
                        }
                    })
                    .collect()
            })
            .collect();
        ChurnWorkload {
            name: bench.name.to_owned(),
            slots,
        }
    }

    /// Total sessions across all slots.
    pub fn session_count(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// Total memory operations across all sessions.
    pub fn total_ops(&self) -> usize {
        self.slots.iter().flatten().map(|s| s.records.len()).sum()
    }

    /// Flatten the per-slot session queues into one global arrival
    /// order. Each session's arrival time is the prefix sum of its
    /// slot's renewal gaps; ties break by `(slot, index)`, so the
    /// order is a pure function of the workload. A cluster scheduler
    /// admits tenants in exactly this order and numbers them by their
    /// position, which is what makes per-tenant identities — and the
    /// MAC keys derived from them — placement-independent.
    pub fn arrival_order(&self) -> Vec<FlatArrival> {
        let mut flat = Vec::with_capacity(self.session_count());
        for (slot, sessions) in self.slots.iter().enumerate() {
            let mut at = 0u64;
            for (index, s) in sessions.iter().enumerate() {
                at = at.saturating_add(s.arrival_gap);
                flat.push(FlatArrival {
                    arrival: at,
                    slot,
                    index,
                });
            }
        }
        flat.sort_by_key(|a| (a.arrival, a.slot, a.index));
        flat
    }

    /// The session a [`FlatArrival`] points at.
    pub fn session(&self, a: &FlatArrival) -> &ChurnSession {
        &self.slots[a.slot][a.index]
    }
}

/// One entry of [`ChurnWorkload::arrival_order`]: which session
/// arrives when, in the workload's global admission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlatArrival {
    /// Cumulative arrival time (CPU cycles from the run's start).
    pub arrival: u64,
    /// Slot whose queue the session came from.
    pub slot: usize,
    /// Position within that slot's queue.
    pub index: usize,
}

/// Deterministic per-(slot, session) seed derivation.
fn mix(seed: u64, slot: u64, session: u64) -> u64 {
    let mut x = seed ^ (slot << 32) ^ (session.wrapping_add(1));
    // splitmix64 finalizer: decorrelates adjacent (slot, session) pairs.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Choose which touched pages a session frees early, and when. Each
/// chosen page is freed at a record index strictly after its first
/// touch, so the driver always sees the allocation before the free;
/// records after that index may re-touch the page.
fn pick_frees(records: &[TraceRecord], fraction: f64, seed: u64) -> Vec<PageFree> {
    if fraction <= 0.0 || records.len() < 2 {
        return Vec::new();
    }
    // First-touch record index per page, in touch order.
    let mut first_touch: Vec<(u64, usize)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (i, r) in records.iter().enumerate() {
        let page = page_of(r.vaddr);
        if seen.insert(page) {
            first_touch.push((page, i));
        }
    }
    let n_free = ((first_touch.len() as f64) * fraction) as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut frees: Vec<PageFree> = Vec::with_capacity(n_free);
    // Deterministic partial Fisher-Yates over the touch-ordered list.
    let mut pool = first_touch;
    for _ in 0..n_free {
        let pick = rng.gen_range(0..pool.len());
        let (page, first) = pool.swap_remove(pick);
        if first + 1 >= records.len() {
            continue; // touched by the final record: nothing after it
        }
        let after_record = rng.gen_range(first..records.len() - 1);
        frees.push(PageFree {
            after_record,
            vaddr: page * PAGE_BYTES,
        });
    }
    frees.sort_unstable_by_key(|f| (f.after_record, f.vaddr));
    frees
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites::benchmark;

    fn cfg() -> ChurnConfig {
        ChurnConfig {
            slots: 4,
            sessions_per_slot: 3,
            ops_per_session: 2000,
            mean_arrival_gap: 10_000.0,
            footprint_pages: 16,
            free_fraction: 0.3,
            seed: 0xC0FFEE,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let b = benchmark("mcf").unwrap();
        let (a, c) = (
            ChurnWorkload::generate(b, &cfg()),
            ChurnWorkload::generate(b, &cfg()),
        );
        for (sa, sc) in a.slots.iter().flatten().zip(c.slots.iter().flatten()) {
            assert_eq!(sa.records, sc.records);
            assert_eq!(sa.frees, sc.frees);
            assert_eq!(sa.arrival_gap, sc.arrival_gap);
        }
        let mut other = cfg();
        other.seed ^= 1;
        let d = ChurnWorkload::generate(b, &other);
        assert_ne!(
            a.slots[0][0].records, d.slots[0][0].records,
            "different seeds must differ"
        );
    }

    #[test]
    fn sessions_stay_inside_their_footprint() {
        let b = benchmark("mcf").unwrap();
        let w = ChurnWorkload::generate(b, &cfg());
        assert_eq!(w.session_count(), 12);
        let bound = 16 * PAGE_BYTES;
        for s in w.slots.iter().flatten() {
            assert_eq!(s.records.len(), 2000);
            assert!(s.records.iter().all(|r| r.vaddr < bound));
        }
    }

    #[test]
    fn frees_follow_first_touch_and_are_sorted() {
        let b = benchmark("mcf").unwrap();
        let w = ChurnWorkload::generate(b, &cfg());
        let mut total_frees = 0;
        for s in w.slots.iter().flatten() {
            let mut first = std::collections::HashMap::new();
            for (i, r) in s.records.iter().enumerate() {
                first.entry(page_of(r.vaddr)).or_insert(i);
            }
            for f in &s.frees {
                let ft = first[&page_of(f.vaddr)];
                assert!(
                    f.after_record >= ft,
                    "free scheduled before first touch ({} < {ft})",
                    f.after_record
                );
                assert!(f.after_record < s.records.len());
            }
            assert!(s
                .frees
                .windows(2)
                .all(|w| w[0].after_record <= w[1].after_record));
            // No page is freed twice within one session.
            let pages: std::collections::HashSet<u64> =
                s.frees.iter().map(|f| page_of(f.vaddr)).collect();
            assert_eq!(pages.len(), s.frees.len());
            total_frees += s.frees.len();
        }
        assert!(total_frees > 0, "free_fraction 0.3 must schedule frees");
    }

    #[test]
    fn distinct_sessions_get_distinct_streams() {
        let b = benchmark("mcf").unwrap();
        let w = ChurnWorkload::generate(b, &cfg());
        assert_ne!(w.slots[0][0].records, w.slots[0][1].records);
        assert_ne!(w.slots[0][0].records, w.slots[1][0].records);
    }

    #[test]
    fn arrival_order_is_total_and_deterministic() {
        let b = benchmark("mcf").unwrap();
        let w = ChurnWorkload::generate(b, &cfg());
        let order = w.arrival_order();
        assert_eq!(order.len(), w.session_count());
        assert!(
            order
                .windows(2)
                .all(|p| (p[0].arrival, p[0].slot, p[0].index)
                    < (p[1].arrival, p[1].slot, p[1].index))
        );
        // Every session appears exactly once, and later sessions of a
        // slot never jump ahead of earlier ones (prefix-sum arrivals).
        let mut seen = std::collections::HashSet::new();
        for a in &order {
            assert!(seen.insert((a.slot, a.index)));
            assert_eq!(w.session(a).records.len(), 2000);
        }
        for s in 0..4 {
            let positions: Vec<usize> = order
                .iter()
                .enumerate()
                .filter(|(_, a)| a.slot == s)
                .map(|(i, _)| i)
                .collect();
            let indices: Vec<usize> = positions.iter().map(|&i| order[i].index).collect();
            assert!(indices.windows(2).all(|w| w[0] < w[1]));
        }
        assert_eq!(order, w.arrival_order());
    }

    #[test]
    fn zero_free_fraction_schedules_none() {
        let b = benchmark("mcf").unwrap();
        let mut c = cfg();
        c.free_fraction = 0.0;
        let w = ChurnWorkload::generate(b, &c);
        assert!(w.slots.iter().flatten().all(|s| s.frees.is_empty()));
    }
}
