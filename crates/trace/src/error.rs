//! Typed errors for trace and workload construction.
//!
//! The panicking constructors remain (they delegate here), but callers
//! that want to report bad input instead of aborting — the bench
//! binaries and `itesp_core::Error` — use the `try_*` variants, which
//! return [`TraceError`].

use crate::record::PAGE_BYTES;

/// Why a trace or workload could not be constructed.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// A benchmark name is not in Table IV.
    UnknownBenchmark(String),
    /// The working set is smaller than one page.
    WorkingSetTooSmall { bytes: u64 },
    /// The power-law locality exponent is below 1 (1 = uniform).
    LocalityExponentBelowOne { exponent: f64 },
    /// A multi-program mix was requested with zero programs.
    EmptyMix,
    /// A streamed trace cell carried an op byte that is neither 0
    /// (read) nor 1 (write).
    StreamBadOp { op: u8 },
    /// A streamed trace ended mid-cell (client disconnect or
    /// truncation); `len` bytes of the final cell arrived.
    StreamTrailingBytes { len: usize },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::UnknownBenchmark(name) => {
                write!(f, "unknown benchmark {name} (not in Table IV)")
            }
            TraceError::WorkingSetTooSmall { bytes } => write!(
                f,
                "working set must be at least one page ({PAGE_BYTES} B), got {bytes} B"
            ),
            TraceError::LocalityExponentBelowOne { exponent } => write!(
                f,
                "locality exponent must be >= 1 (1 = uniform), got {exponent}"
            ),
            TraceError::EmptyMix => write!(f, "multi-program mix needs at least one benchmark"),
            TraceError::StreamBadOp { op } => {
                write!(f, "streamed trace cell has invalid op byte {op} (want 0|1)")
            }
            TraceError::StreamTrailingBytes { len } => {
                write!(f, "streamed trace ended mid-cell with {len} trailing bytes")
            }
        }
    }
}

impl std::error::Error for TraceError {}
