//! Physical page allocation and per-enclave leaf-id assignment.
//!
//! The baseline systems build one integrity tree over *physical* page
//! numbers, so OS page placement decides which pages share tree nodes.
//! The paper captures real placement with page-table dumps; we model
//! the same effect with a **fragmented free list**: the allocator hands
//! out short runs ("extents") of contiguous pages scattered across the
//! physical span, the way a long-running kernel's free list looks. Two
//! consequences, both central to Section II-D:
//!
//! 1. a program's temporally-adjacent pages land in different physical
//!    neighborhoods, so upper tree nodes (which cover *physically*
//!    consecutive pages) aggregate unrelated pages;
//! 2. co-scheduled programs split each extent between them, so tree
//!    nodes intermingle enclaves — the interference and leakage the
//!    paper attacks.
//!
//! The proposed isolation instead assigns each enclave page a dense
//! *leaf-id* in first-touch order within its private tree
//! (Section III-A), restoring temporal adjacency regardless of where
//! the OS put the page. [`PageMapper`] implements both mappings.

use std::collections::{HashMap, HashSet};

use itesp_snap::{SnapError, SnapReader, SnapWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::record::{page_of, page_offset, PAGE_BYTES};

/// Per-program virtual-to-physical and virtual-to-leaf-id mappings.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProgramMap {
    /// Virtual page number -> physical page number.
    v2p: HashMap<u64, u64>,
    /// Virtual page number -> leaf-id (dense, first-touch order).
    v2leaf: HashMap<u64, u64>,
    next_leaf: u64,
}

impl ProgramMap {
    /// Pages this program has touched.
    pub fn pages_touched(&self) -> usize {
        self.v2p.len()
    }
}

/// A translation result for one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Translation {
    /// Physical byte address.
    pub paddr: u64,
    /// Dense per-enclave page id (the isolated tree's leaf-id space).
    pub leaf_page: u64,
}

/// How the simulated OS free list hands out physical pages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FreeListModel {
    /// Pristine machine: one giant extent, pages handed out in order.
    Sequential,
    /// Long-running machine: extents of geometrically-distributed
    /// length (given mean) scattered uniformly over the span.
    Fragmented { mean_extent_pages: f64, seed: u64 },
}

/// System-wide first-touch page allocator for a set of co-scheduled
/// programs.
#[derive(Debug, Clone)]
pub struct PageMapper {
    programs: Vec<ProgramMap>,
    phys_page_limit: u64,
    model: FreeListModel,
    rng: StdRng,
    /// Pages already allocated (fragmented mode only).
    used: HashSet<u64>,
    /// Sequential-mode cursor.
    next_seq: u64,
    /// Current extent: next page and pages remaining.
    extent_next: u64,
    extent_left: u64,
    pages_allocated: u64,
}

impl PageMapper {
    /// Pristine free list: pages allocated in physical order.
    pub fn sequential(programs: usize, phys_bytes: u64) -> Self {
        Self::with_model(programs, phys_bytes, FreeListModel::Sequential)
    }

    /// Fragmented free list with the given mean extent length (pages).
    ///
    /// # Panics
    /// Panics if `mean_extent_pages < 1`.
    pub fn fragmented(programs: usize, phys_bytes: u64, mean_extent_pages: f64, seed: u64) -> Self {
        assert!(mean_extent_pages >= 1.0);
        Self::with_model(
            programs,
            phys_bytes,
            FreeListModel::Fragmented {
                mean_extent_pages,
                seed,
            },
        )
    }

    /// Build for `programs` programs over `phys_bytes` of allocatable
    /// physical memory under the chosen free-list model.
    pub fn with_model(programs: usize, phys_bytes: u64, model: FreeListModel) -> Self {
        let seed = match model {
            FreeListModel::Sequential => 0,
            FreeListModel::Fragmented { seed, .. } => seed,
        };
        PageMapper {
            programs: vec![ProgramMap::default(); programs],
            phys_page_limit: (phys_bytes / PAGE_BYTES).max(1),
            model,
            rng: StdRng::seed_from_u64(seed),
            used: HashSet::new(),
            next_seq: 0,
            extent_next: 0,
            extent_left: 0,
            pages_allocated: 0,
        }
    }

    /// Number of co-scheduled programs.
    pub fn program_count(&self) -> usize {
        self.programs.len()
    }

    /// Pull the next free physical page from the free list.
    fn alloc_page(&mut self) -> u64 {
        self.pages_allocated += 1;
        match self.model {
            FreeListModel::Sequential => {
                let p = self.next_seq % self.phys_page_limit;
                self.next_seq += 1;
                p
            }
            FreeListModel::Fragmented {
                mean_extent_pages, ..
            } => {
                // Continue the current extent while it lasts and its
                // pages are free.
                while self.extent_left > 0 {
                    let p = self.extent_next % self.phys_page_limit;
                    self.extent_next += 1;
                    self.extent_left -= 1;
                    if self.used.insert(p) {
                        return p;
                    }
                }
                // Start a new extent at a random free location.
                loop {
                    let base = self.rng.gen_range(0..self.phys_page_limit);
                    if self.used.contains(&base) {
                        // Span nearly full: fall back to linear probe.
                        if self.used.len() as u64 >= self.phys_page_limit {
                            self.used.clear();
                        }
                        continue;
                    }
                    // Geometric extent length with the configured mean.
                    let q = 1.0 / mean_extent_pages;
                    let mut len = 1u64;
                    while !self.rng.gen_bool(q) && len < 512 {
                        len += 1;
                    }
                    self.used.insert(base);
                    self.extent_next = base + 1;
                    self.extent_left = len - 1;
                    return base;
                }
            }
        }
    }

    /// Translate a virtual address of `prog`, allocating on first touch.
    ///
    /// # Panics
    /// Panics if `prog` is out of range.
    pub fn translate(&mut self, prog: usize, vaddr: u64) -> Translation {
        let vpage = page_of(vaddr);
        let needs_page = !self.programs[prog].v2p.contains_key(&vpage);
        if needs_page {
            let ppage = self.alloc_page();
            let map = &mut self.programs[prog];
            map.v2p.insert(vpage, ppage);
            let leaf = map.next_leaf;
            map.v2leaf.insert(vpage, leaf);
            map.next_leaf += 1;
        }
        let map = &self.programs[prog];
        Translation {
            paddr: map.v2p[&vpage] * PAGE_BYTES + page_offset(vaddr),
            leaf_page: map.v2leaf[&vpage],
        }
    }

    /// Unmap one virtual page of `prog`, returning its physical page to
    /// the free list (the fragmented model can hand it out again; the
    /// sequential model's wrapping cursor needs no bookkeeping).
    /// Returns the physical page number, or `None` if the page was
    /// never touched. A later re-touch allocates a *fresh* physical
    /// page and a fresh mapper leaf-id — recycled per-enclave leaf-ids
    /// are the enclave manager's job, not the mapper's.
    pub fn unmap_page(&mut self, prog: usize, vaddr: u64) -> Option<u64> {
        let vpage = page_of(vaddr);
        let map = &mut self.programs[prog];
        let ppage = map.v2p.remove(&vpage)?;
        map.v2leaf.remove(&vpage);
        self.used.remove(&ppage);
        Some(ppage)
    }

    /// Release every mapping of `prog` at once (enclave teardown),
    /// resetting its map for the slot's next tenant. Returns how many
    /// pages went back to the free list. Without this (and
    /// [`Self::unmap_page`]), `v2p`/`v2leaf` grow without bound under
    /// churn: every session would leak its translations forever.
    pub fn release_program(&mut self, prog: usize) -> usize {
        let map = std::mem::take(&mut self.programs[prog]);
        let released = map.v2p.len();
        for ppage in map.v2p.into_values() {
            self.used.remove(&ppage);
        }
        released
    }

    /// Currently mapped pages across all programs. The enclave
    /// manager's invariant checks compare this against its own
    /// live-page count — the two are updated on disjoint code paths,
    /// so divergence means a leaked or double-freed page.
    pub fn live_pages(&self) -> usize {
        self.programs.iter().map(|p| p.v2p.len()).sum()
    }

    /// Per-program statistics.
    pub fn program(&self, prog: usize) -> &ProgramMap {
        &self.programs[prog]
    }

    /// Total physical pages allocated so far.
    pub fn pages_allocated(&self) -> u64 {
        self.pages_allocated
    }

    /// Serialize the mapper: translation tables (sorted for
    /// deterministic bytes), the free-list model and its RNG stream
    /// position, and the allocation cursors.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.section("PMAP", 1);
        match self.model {
            FreeListModel::Sequential => w.u8(0),
            FreeListModel::Fragmented {
                mean_extent_pages,
                seed,
            } => {
                w.u8(1);
                w.f64(mean_extent_pages);
                w.u64(seed);
            }
        }
        w.u64(self.phys_page_limit);
        for word in self.rng.state() {
            w.u64(word);
        }
        w.seq(self.programs.iter(), |w, p| {
            let mut v2p: Vec<_> = p.v2p.iter().map(|(&v, &pp)| (v, pp)).collect();
            v2p.sort_unstable();
            w.seq(v2p.iter(), |w, &(v, pp)| {
                w.u64(v);
                w.u64(pp);
            });
            let mut v2leaf: Vec<_> = p.v2leaf.iter().map(|(&v, &l)| (v, l)).collect();
            v2leaf.sort_unstable();
            w.seq(v2leaf.iter(), |w, &(v, l)| {
                w.u64(v);
                w.u64(l);
            });
            w.u64(p.next_leaf);
        });
        let mut used: Vec<u64> = self.used.iter().copied().collect();
        used.sort_unstable();
        w.seq(used.iter(), |w, &p| w.u64(p));
        w.u64(self.next_seq);
        w.u64(self.extent_next);
        w.u64(self.extent_left);
        w.u64(self.pages_allocated);
    }

    /// Restore from [`Self::save_state`] bytes into a mapper built
    /// with the same construction parameters.
    pub fn load_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        r.section("PMAP", 1)?;
        let model = match r.u8("free-list model tag")? {
            0 => FreeListModel::Sequential,
            1 => FreeListModel::Fragmented {
                mean_extent_pages: r.f64("mean extent pages")?,
                seed: r.u64("free-list seed")?,
            },
            _ => {
                return Err(SnapError::Corrupt {
                    what: "free-list model tag",
                    at: r.pos(),
                })
            }
        };
        let phys_page_limit = r.u64("phys page limit")?;
        if model != self.model || phys_page_limit != self.phys_page_limit {
            return Err(SnapError::Corrupt {
                what: "mapper config (snapshot from a different configuration)",
                at: r.pos(),
            });
        }
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = r.u64("mapper rng state")?;
        }
        self.rng = StdRng::from_state(rng_state);
        let nprogs = r.seq_len("mapper programs")?;
        if nprogs != self.programs.len() {
            return Err(SnapError::Corrupt {
                what: "mapper program count (snapshot from a different configuration)",
                at: r.pos(),
            });
        }
        for p in &mut self.programs {
            let n = r.seq_len("v2p map")?;
            let mut v2p = HashMap::with_capacity(n);
            for _ in 0..n {
                let v = r.u64("vpage")?;
                let pp = r.u64("ppage")?;
                v2p.insert(v, pp);
            }
            let n = r.seq_len("v2leaf map")?;
            let mut v2leaf = HashMap::with_capacity(n);
            for _ in 0..n {
                let v = r.u64("vpage")?;
                let l = r.u64("leaf")?;
                v2leaf.insert(v, l);
            }
            let next_leaf = r.u64("next leaf")?;
            *p = ProgramMap {
                v2p,
                v2leaf,
                next_leaf,
            };
        }
        let nused = r.seq_len("used page set")?;
        let mut used = HashSet::with_capacity(nused);
        for _ in 0..nused {
            used.insert(r.u64("used page")?);
        }
        self.used = used;
        self.next_seq = r.u64("sequential cursor")?;
        self.extent_next = r.u64("extent next")?;
        self.extent_left = r.u64("extent left")?;
        self.pages_allocated = r.u64("pages allocated")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_allocates_in_order() {
        let mut m = PageMapper::sequential(2, 1 << 30);
        assert_eq!(m.translate(0, 0).paddr, 0);
        assert_eq!(m.translate(1, 0).paddr, PAGE_BYTES);
        assert_eq!(m.translate(0, PAGE_BYTES).paddr, 2 * PAGE_BYTES);
    }

    #[test]
    fn repeat_touch_is_stable() {
        for mut m in [
            PageMapper::sequential(1, 1 << 30),
            PageMapper::fragmented(1, 1 << 30, 8.0, 7),
        ] {
            let a = m.translate(0, 123 * PAGE_BYTES + 64);
            let b = m.translate(0, 123 * PAGE_BYTES + 128);
            assert_eq!(page_of(a.paddr), page_of(b.paddr));
            assert_eq!(a.leaf_page, b.leaf_page);
            assert_eq!(m.program(0).pages_touched(), 1);
        }
    }

    #[test]
    fn fragmented_pages_are_unique() {
        let mut m = PageMapper::fragmented(2, 1 << 34, 8.0, 3);
        let mut seen = HashSet::new();
        for i in 0..5000u64 {
            let t = m.translate((i % 2) as usize, (i / 2) * PAGE_BYTES);
            assert!(seen.insert(t.paddr), "page reused at {i}");
        }
    }

    #[test]
    fn fragmented_scatters_across_the_span() {
        // Consecutive allocations must NOT be physically adjacent on
        // average: this is what dilutes shared upper tree nodes.
        let span = 1u64 << 34; // 16 GB
        let mut m = PageMapper::fragmented(1, span, 8.0, 11);
        let pages: Vec<u64> = (0..2000u64)
            .map(|i| m.translate(0, i * PAGE_BYTES).paddr / PAGE_BYTES)
            .collect();
        let adjacent = pages.windows(2).filter(|w| w[1] == w[0] + 1).count();
        // Mean extent 8 => ~7/8 of consecutive allocations adjacent,
        // the rest jump far away.
        let frac = adjacent as f64 / (pages.len() - 1) as f64;
        assert!(frac > 0.7 && frac < 0.95, "adjacency fraction {frac}");
        // And the span coverage is broad.
        let max = *pages.iter().max().unwrap();
        assert!(max > span / PAGE_BYTES / 4, "allocations not scattered");
    }

    #[test]
    fn coscheduled_programs_split_extents() {
        // Interleaved first touches slice each extent across programs:
        // a physically-adjacent pair often belongs to different programs.
        let mut m = PageMapper::fragmented(4, 1 << 32, 8.0, 5);
        let mut owner: HashMap<u64, usize> = HashMap::new();
        for i in 0..4000u64 {
            let prog = (i % 4) as usize;
            let t = m.translate(prog, (i / 4) * PAGE_BYTES);
            owner.insert(t.paddr / PAGE_BYTES, prog);
        }
        let mut cross = 0;
        let mut total = 0;
        for (&p, &o) in &owner {
            if let Some(&o2) = owner.get(&(p + 1)) {
                total += 1;
                if o != o2 {
                    cross += 1;
                }
            }
        }
        assert!(total > 500);
        assert!(
            cross as f64 / total as f64 > 0.5,
            "extents not split: {cross}/{total}"
        );
    }

    #[test]
    fn leaf_ids_are_dense_per_program_regardless_of_placement() {
        let mut m = PageMapper::fragmented(2, 1 << 32, 8.0, 9);
        for (i, vp) in [500u64, 3, 99, 1_000_000].iter().enumerate() {
            let t = m.translate(1, vp * PAGE_BYTES);
            assert_eq!(t.leaf_page, i as u64);
        }
        assert_eq!(m.translate(0, 0).leaf_page, 0);
    }

    #[test]
    fn offsets_preserved_within_page() {
        let mut m = PageMapper::fragmented(1, 1 << 30, 8.0, 1);
        let t = m.translate(0, 5 * PAGE_BYTES + 320);
        assert_eq!(t.paddr % PAGE_BYTES, 320);
    }

    #[test]
    fn sequential_wraps_at_physical_limit() {
        let mut m = PageMapper::sequential(1, 4 * PAGE_BYTES);
        for i in 0..6u64 {
            m.translate(0, i * PAGE_BYTES);
        }
        assert_eq!(m.translate(0, 4 * PAGE_BYTES).paddr / PAGE_BYTES, 0);
        assert_eq!(m.translate(0, 5 * PAGE_BYTES).paddr / PAGE_BYTES, 1);
    }

    #[test]
    fn unmap_returns_page_to_the_free_list() {
        let mut m = PageMapper::fragmented(1, 8 * PAGE_BYTES, 4.0, 13);
        // Exhaust the tiny span.
        let pages: HashSet<u64> = (0..8u64)
            .map(|i| m.translate(0, i * PAGE_BYTES).paddr / PAGE_BYTES)
            .collect();
        assert_eq!(pages.len(), 8);
        assert_eq!(m.live_pages(), 8);
        let freed = m.unmap_page(0, 3 * PAGE_BYTES).expect("was mapped");
        assert_eq!(m.live_pages(), 7);
        assert!(m.unmap_page(0, 3 * PAGE_BYTES).is_none(), "double unmap");
        // The freed frame is allocatable again: the only free page in
        // the span must be the one just returned.
        let t = m.translate(0, 100 * PAGE_BYTES);
        assert_eq!(t.paddr / PAGE_BYTES, freed);
    }

    #[test]
    fn release_program_resets_the_slot_for_the_next_tenant() {
        let mut m = PageMapper::fragmented(2, 1 << 24, 4.0, 21);
        for i in 0..50u64 {
            m.translate(0, i * PAGE_BYTES);
            m.translate(1, i * PAGE_BYTES);
        }
        assert_eq!(m.release_program(0), 50);
        assert_eq!(m.live_pages(), 50, "program 1 untouched");
        assert_eq!(m.program(0).pages_touched(), 0);
        // Long-churn leak fix: cycling sessions through a slot keeps
        // the translation tables bounded by the live working set.
        for round in 0..20u64 {
            for i in 0..50u64 {
                m.translate(0, (round * 1000 + i) * PAGE_BYTES);
            }
            assert_eq!(m.release_program(0), 50);
        }
        assert_eq!(m.program(0).pages_touched(), 0);
        assert_eq!(m.live_pages(), 50);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut m = PageMapper::fragmented(2, 1 << 32, 8.0, 42);
            (0..100u64)
                .map(|i| m.translate((i % 2) as usize, i * PAGE_BYTES).paddr)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
