//! The enclave lifecycle state machine.
//!
//! [`EnclaveManager`] owns one slot per hardware context. Each slot
//! holds at most one live [`Enclave`]; create/destroy cycles reuse
//! slots but never ids. Every lifecycle transition returns the
//! [`MetaAccess`] list the security engine charged for it, so callers
//! (the simulator's churn driver, tests) can route lifecycle cost
//! through the same DRAM model as ordinary metadata traffic.

use std::collections::BTreeMap;

use itesp_core::{MacKey, MetaAccess, SecurityEngine};
use itesp_snap::{SnapError, SnapReader, SnapWriter};

use crate::alloc::{LeafAllocator, LeafGrant};

/// Blocks per page (4 KB pages, 64 B blocks). Kept local so this crate
/// depends only on itesp-core.
pub const PAGE_BLOCKS: u64 = 64;

/// Globally unique enclave identity; monotone across a manager's
/// lifetime, never reused even when slots are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EnclaveId(pub u64);

/// Where one of an enclave's virtual pages lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageInfo {
    /// Dense leaf-id inside the enclave's private tree.
    pub leaf: u64,
    /// Physical frame backing the page.
    pub ppage: u64,
}

/// One live enclave: identity, key, page table, per-leaf write
/// counters, and the leaf-id namespace.
#[derive(Debug, Clone)]
pub struct Enclave {
    id: EnclaveId,
    key: MacKey,
    footprint_pages: u64,
    /// Pages the current private tree covers (grows by doubling).
    tree_pages: u64,
    pages: BTreeMap<u64, PageInfo>,
    /// Per-leaf write counters — the model of the tree's counter
    /// state that the oracle checks freshness against.
    counters: BTreeMap<u64, u64>,
    allocator: LeafAllocator,
}

impl Enclave {
    pub fn id(&self) -> EnclaveId {
        self.id
    }

    pub fn key(&self) -> MacKey {
        self.key
    }

    pub fn footprint_pages(&self) -> u64 {
        self.footprint_pages
    }

    /// Pages the currently-installed tree can address.
    pub fn tree_pages(&self) -> u64 {
        self.tree_pages
    }

    pub fn live_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    pub fn leaf_of(&self, vpage: u64) -> Option<u64> {
        self.pages.get(&vpage).map(|p| p.leaf)
    }

    pub fn page(&self, vpage: u64) -> Option<&PageInfo> {
        self.pages.get(&vpage)
    }

    pub fn allocator(&self) -> &LeafAllocator {
        &self.allocator
    }

    /// Iterate the live page map in ascending vpage order. Cluster
    /// drivers use this for placement-independent checksums (vpage,
    /// leaf, counter — never the node-local physical frame).
    pub fn iter_pages(&self) -> impl Iterator<Item = (u64, PageInfo)> + '_ {
        self.pages.iter().map(|(&vpage, &info)| (vpage, info))
    }

    /// Serialize one enclave's mutable state. The MAC key is *not*
    /// serialized: it re-derives from the manager's master key and the
    /// enclave id, so snapshot bytes never carry key material.
    fn save_state(&self, w: &mut SnapWriter) {
        w.section("ENCL", 1);
        w.u64(self.id.0);
        w.u64(self.footprint_pages);
        w.u64(self.tree_pages);
        w.seq(self.pages.iter(), |w, (&vpage, info)| {
            w.u64(vpage);
            w.u64(info.leaf);
            w.u64(info.ppage);
        });
        w.seq(self.counters.iter(), |w, (&leaf, &c)| {
            w.u64(leaf);
            w.u64(c);
        });
        self.allocator.save_state(w);
    }

    /// Rebuild from [`Self::save_state`] bytes, re-deriving the key
    /// from `master`.
    fn load_state(r: &mut SnapReader, master: u64) -> Result<Self, SnapError> {
        r.section("ENCL", 1)?;
        let id = EnclaveId(r.u64("enclave id")?);
        let footprint_pages = r.u64("enclave footprint")?;
        let tree_pages = r.u64("enclave tree pages")?;
        let npages = r.seq_len("enclave page map")?;
        let mut pages = BTreeMap::new();
        for _ in 0..npages {
            let vpage = r.u64("vpage")?;
            let leaf = r.u64("page leaf")?;
            let ppage = r.u64("page frame")?;
            pages.insert(vpage, PageInfo { leaf, ppage });
        }
        let ncounters = r.seq_len("enclave counters")?;
        let mut counters = BTreeMap::new();
        for _ in 0..ncounters {
            let leaf = r.u64("counter leaf")?;
            let c = r.u64("counter value")?;
            counters.insert(leaf, c);
        }
        let allocator = LeafAllocator::load_state(r)?;
        Ok(Enclave {
            id,
            key: MacKey::derive(master, id.0),
            footprint_pages,
            tree_pages,
            pages,
            counters,
            allocator,
        })
    }
}

/// Lifecycle event counts, accumulated across the manager's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleStats {
    pub created: u64,
    pub destroyed: u64,
    /// Tree re-roots (first-touch allocation outgrew leaf capacity).
    pub grows: u64,
    pub pages_freed: u64,
    /// Grants that reused a previously-freed leaf-id.
    pub leaves_recycled: u64,
    /// High-water mark of live pages across all slots.
    pub peak_live_pages: u64,
}

/// The lifecycle manager: one slot per hardware context, each serving
/// a sequence of enclaves.
#[derive(Debug)]
pub struct EnclaveManager {
    slots: Vec<Option<Enclave>>,
    /// Master key material the per-enclave MAC keys derive from.
    master: u64,
    next_id: u64,
    /// Rebuild parity groups covering freed leaves (`true`, the
    /// reliable choice) or break them (`false`: the group is marked
    /// unprotected until next written — cheaper, no RMW traffic).
    pub rebuild_parity: bool,
    stats: LifecycleStats,
}

impl EnclaveManager {
    pub fn new(slots: usize, master: u64) -> Self {
        assert!(slots > 0, "need at least one slot");
        EnclaveManager {
            slots: (0..slots).map(|_| None).collect(),
            master,
            next_id: 0,
            rebuild_parity: true,
            stats: LifecycleStats::default(),
        }
    }

    /// The engine cache/tree partition a slot maps to: its own under
    /// isolation, the single shared partition otherwise.
    fn part(engine: &SecurityEngine, slot: usize) -> usize {
        if engine.spec().isolated {
            slot
        } else {
            0
        }
    }

    /// Partition liveness mask sized for the engine (for isolated
    /// schemes, slot i ↔ partition i; shared schemes have one
    /// partition that is live while any slot is).
    fn mask(&self, engine: &SecurityEngine) -> Vec<bool> {
        let parts = engine.partitions();
        if parts == 1 {
            vec![self.slots.iter().any(Option::is_some)]
        } else {
            (0..parts)
                .map(|p| self.slots.get(p).is_some_and(Option::is_some))
                .collect()
        }
    }

    /// Admit an enclave into `slot`: install a footprint-sized private
    /// tree (a quarter of the requested footprint, at least one page —
    /// first-touch growth pays for the rest) and repartition the
    /// metadata caches so the newcomer gets its share.
    ///
    /// # Panics
    /// Panics if the slot is occupied — callers must destroy first.
    pub fn create(
        &mut self,
        engine: &mut SecurityEngine,
        slot: usize,
        footprint_pages: u64,
    ) -> (EnclaveId, Vec<MetaAccess>) {
        self.create_with_id(engine, slot, footprint_pages, EnclaveId(self.next_id))
    }

    /// [`Self::create`] with a caller-chosen identity. A cluster-level
    /// directory hands out globally unique ids so the same tenant
    /// derives the same MAC key on every node; the manager only
    /// enforces its local never-reuse watermark.
    ///
    /// # Panics
    /// Panics if the slot is occupied or the id is below an id this
    /// manager has already issued (local reuse).
    pub fn create_with_id(
        &mut self,
        engine: &mut SecurityEngine,
        slot: usize,
        footprint_pages: u64,
        id: EnclaveId,
    ) -> (EnclaveId, Vec<MetaAccess>) {
        assert!(
            self.slots[slot].is_none(),
            "slot {slot} already holds a live enclave"
        );
        assert!(footprint_pages > 0, "an enclave needs at least one page");
        assert!(
            id.0 >= self.next_id,
            "id {} was already issued by this manager (next is {})",
            id.0,
            self.next_id
        );
        self.next_id = id.0 + 1;
        let tree_pages = (footprint_pages / 4).max(1);
        let part = Self::part(engine, slot);
        let mut traffic = engine.install_tree(part, tree_pages * PAGE_BLOCKS);
        self.slots[slot] = Some(Enclave {
            id,
            key: MacKey::derive(self.master, id.0),
            footprint_pages,
            tree_pages,
            pages: BTreeMap::new(),
            counters: BTreeMap::new(),
            allocator: LeafAllocator::new(tree_pages),
        });
        let mask = self.mask(engine);
        traffic.extend(engine.repartition_caches(&mask));
        self.stats.created += 1;
        (id, traffic)
    }

    /// First-touch a virtual page: grant it a leaf-id (growing the
    /// tree if the namespace is exhausted, resetting counters if the
    /// leaf is recycled) and record its physical frame. Touching an
    /// already-mapped page is free and returns its existing leaf.
    pub fn touch_page(
        &mut self,
        engine: &mut SecurityEngine,
        slot: usize,
        vpage: u64,
        ppage: u64,
    ) -> (u64, Vec<MetaAccess>) {
        let part = Self::part(engine, slot);
        let enc = self.slots[slot].as_mut().expect("touch on an empty slot");
        if let Some(info) = enc.pages.get(&vpage) {
            return (info.leaf, Vec::new());
        }
        let mut traffic = Vec::new();
        let grant = loop {
            match enc.allocator.alloc() {
                Some(g) => break g,
                None => {
                    // Out of leaves: double the tree. The engine pays
                    // migration reads over the old nodes and init
                    // writes over the new layout.
                    let new_pages = enc.tree_pages * 2;
                    traffic.extend(engine.grow_tree(part, new_pages * PAGE_BLOCKS));
                    enc.tree_pages = new_pages;
                    enc.allocator.grow(new_pages);
                    self.stats.grows += 1;
                }
            }
        };
        let leaf = grant.leaf();
        if matches!(grant, LeafGrant::Recycled(_)) {
            self.stats.leaves_recycled += 1;
        }
        // Fresh leaves were zeroed by install/grow; recycled leaves
        // were reset at free time. Either way the model counter starts
        // from zero.
        enc.counters.insert(leaf, 0);
        enc.pages.insert(vpage, PageInfo { leaf, ppage });
        let live: u64 = self.slots.iter().flatten().map(Enclave::live_pages).sum();
        self.stats.peak_live_pages = self.stats.peak_live_pages.max(live);
        (leaf, traffic)
    }

    /// Return a page early: its leaf's counters are reset in memory
    /// and its parity groups rebuilt (or broken, per
    /// [`Self::rebuild_parity`]) *before* the leaf enters the free
    /// list, so whoever receives it next cannot replay this page's
    /// history. Returns the freed physical frame.
    pub fn free_page(
        &mut self,
        engine: &mut SecurityEngine,
        slot: usize,
        vpage: u64,
    ) -> Option<(u64, Vec<MetaAccess>)> {
        let part = Self::part(engine, slot);
        let rebuild = self.rebuild_parity;
        let enc = self.slots[slot].as_mut()?;
        let info = enc.pages.remove(&vpage)?;
        // Isolated trees index by the dense leaf-id; shared trees by
        // the physical block (matching `SecurityEngine::on_access`).
        let first_block = if engine.spec().isolated {
            info.leaf * PAGE_BLOCKS
        } else {
            info.ppage * PAGE_BLOCKS
        };
        let traffic = engine.reset_leaves(part, first_block, PAGE_BLOCKS, rebuild);
        enc.counters.insert(info.leaf, 0);
        enc.allocator.free(info.leaf);
        self.stats.pages_freed += 1;
        Some((info.ppage, traffic))
    }

    /// Secure teardown: zeroize the enclave's tree and MAC regions,
    /// drop its cached metadata without writeback, and repartition the
    /// survivors' cache shares deterministically.
    pub fn destroy(&mut self, engine: &mut SecurityEngine, slot: usize) -> Vec<MetaAccess> {
        let part = Self::part(engine, slot);
        let Some(_) = self.slots[slot].take() else {
            return Vec::new();
        };
        let mut traffic = engine.reset_partition(part);
        let mask = self.mask(engine);
        traffic.extend(engine.repartition_caches(&mask));
        self.stats.destroyed += 1;
        traffic
    }

    /// Bump the write counter of the leaf backing `vpage`; returns the
    /// new counter value.
    pub fn record_write(&mut self, slot: usize, vpage: u64) -> Option<u64> {
        let enc = self.slots[slot].as_mut()?;
        let leaf = enc.pages.get(&vpage)?.leaf;
        let c = enc.counters.entry(leaf).or_insert(0);
        *c += 1;
        Some(*c)
    }

    /// The model counter of a leaf (0 after reset/recycle).
    pub fn counter_of(&self, slot: usize, leaf: u64) -> Option<u64> {
        self.slots[slot].as_ref()?.counters.get(&leaf).copied()
    }

    pub fn key_of(&self, slot: usize) -> Option<MacKey> {
        self.slots[slot].as_ref().map(Enclave::key)
    }

    pub fn enclave(&self, slot: usize) -> Option<&Enclave> {
        self.slots[slot].as_ref()
    }

    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    pub fn live_count(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Live pages across all slots — must always equal the page
    /// mapper's `live_pages()` for the churn programs (the driver's
    /// cross-layer invariant).
    pub fn total_live_pages(&self) -> u64 {
        self.slots.iter().flatten().map(Enclave::live_pages).sum()
    }

    pub fn stats(&self) -> LifecycleStats {
        self.stats
    }

    /// Serialize one slot's enclave into `w` for a migration blob:
    /// tree geometry, page map, counters, and the leaf-id namespace —
    /// **never the MAC key**, which re-derives from the destination
    /// manager's master. Returns the enclave's id, or `None` for an
    /// empty slot. The enclave stays live at the source; migration
    /// freezes it by simply not driving it while the blob is in
    /// flight.
    pub fn export_enclave(&self, slot: usize, w: &mut SnapWriter) -> Option<EnclaveId> {
        let enc = self.slots[slot].as_ref()?;
        enc.save_state(w);
        Some(enc.id())
    }

    /// Install an enclave serialized by [`Self::export_enclave`] into
    /// an empty slot: re-derive its key from this manager's master,
    /// remap every physical frame through `remap_frame` (frames are
    /// node-local; the transferred page map carries source frames),
    /// rebuild a private tree of the transferred geometry, and
    /// repartition the caches. Lifecycle stats are untouched — a
    /// migration is not a create; callers account it separately.
    ///
    /// # Panics
    /// Panics if the slot is occupied.
    ///
    /// # Errors
    /// [`SnapError`] if the blob doesn't decode.
    pub fn import_enclave(
        &mut self,
        engine: &mut SecurityEngine,
        slot: usize,
        r: &mut SnapReader,
        mut remap_frame: impl FnMut(u64) -> u64,
    ) -> Result<(EnclaveId, Vec<MetaAccess>), SnapError> {
        assert!(
            self.slots[slot].is_none(),
            "slot {slot} already holds a live enclave"
        );
        let mut enc = Enclave::load_state(r, self.master)?;
        for info in enc.pages.values_mut() {
            info.ppage = remap_frame(info.ppage);
        }
        let id = enc.id();
        self.next_id = self.next_id.max(id.0 + 1);
        let part = Self::part(engine, slot);
        let mut traffic = engine.install_tree(part, enc.tree_pages * PAGE_BLOCKS);
        self.slots[slot] = Some(enc);
        let mask = self.mask(engine);
        traffic.extend(engine.repartition_caches(&mask));
        Ok((id, traffic))
    }

    /// Serialize the full lifecycle state: every slot's enclave, the
    /// id watermark, and the accumulated stats. The master key *is*
    /// serialized (it's simulation seed material, not a secret) so a
    /// recovered manager derives identical per-enclave keys.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.section("EMGR", 1);
        w.u64(self.master);
        w.u64(self.next_id);
        w.bool(self.rebuild_parity);
        w.seq(self.slots.iter(), |w, slot| {
            w.bool(slot.is_some());
            if let Some(enc) = slot {
                enc.save_state(w);
            }
        });
        let s = &self.stats;
        w.u64(s.created);
        w.u64(s.destroyed);
        w.u64(s.grows);
        w.u64(s.pages_freed);
        w.u64(s.leaves_recycled);
        w.u64(s.peak_live_pages);
    }

    /// Restore from [`Self::save_state`] bytes. `self` must have been
    /// built with the same slot count as the snapshotted manager.
    pub fn load_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        r.section("EMGR", 1)?;
        self.master = r.u64("manager master key")?;
        self.next_id = r.u64("manager next id")?;
        self.rebuild_parity = r.bool("manager rebuild_parity")?;
        let nslots = r.seq_len("manager slots")?;
        if nslots != self.slots.len() {
            return Err(SnapError::Corrupt {
                what: "manager slot count (snapshot from a different configuration)",
                at: r.pos(),
            });
        }
        for slot in &mut self.slots {
            *slot = if r.bool("slot occupancy")? {
                Some(Enclave::load_state(r, self.master)?)
            } else {
                None
            };
        }
        self.stats = LifecycleStats {
            created: r.u64("stats created")?,
            destroyed: r.u64("stats destroyed")?,
            grows: r.u64("stats grows")?,
            pages_freed: r.u64("stats pages_freed")?,
            leaves_recycled: r.u64("stats leaves_recycled")?,
            peak_live_pages: r.u64("stats peak_live_pages")?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itesp_core::{EngineConfig, MetaKind, Scheme, SecurityEngine};

    fn engine(scheme: Scheme) -> SecurityEngine {
        SecurityEngine::new(EngineConfig::paper_default(scheme))
    }

    #[test]
    fn create_installs_a_footprint_sized_tree_and_carves_the_caches() {
        let mut e = engine(Scheme::Itesp);
        let mut m = EnclaveManager::new(4, 0x5A17);
        let (id, traffic) = m.create(&mut e, 0, 64);
        assert_eq!(id, EnclaveId(0));
        // 64-page footprint -> 16-page initial tree, every node
        // zero-written.
        assert!(traffic
            .iter()
            .any(|a| a.kind == MetaKind::Tree && a.is_write));
        let geo = e.active_geometry(0).unwrap();
        assert_eq!(geo.data_blocks(), 16 * PAGE_BLOCKS);
        assert_eq!(m.enclave(0).unwrap().tree_pages(), 16);
        assert_eq!(m.stats().created, 1);
    }

    #[test]
    fn ids_are_never_reused_and_keys_differ() {
        let mut e = engine(Scheme::Itesp);
        let mut m = EnclaveManager::new(2, 0x5A17);
        let (a, _) = m.create(&mut e, 0, 8);
        let ka = m.key_of(0).unwrap();
        m.destroy(&mut e, 0);
        let (b, _) = m.create(&mut e, 0, 8);
        let kb = m.key_of(0).unwrap();
        assert_ne!(a, b, "slot reuse must not reuse the id");
        assert_ne!(ka, kb, "each enclave gets its own MAC key");
    }

    #[test]
    fn touch_grows_the_tree_when_leaves_run_out() {
        let mut e = engine(Scheme::Itesp);
        let mut m = EnclaveManager::new(4, 1);
        // Footprint 8 -> initial tree of 2 pages.
        m.create(&mut e, 0, 8);
        let (_, t0) = m.touch_page(&mut e, 0, 0, 100);
        let (_, t1) = m.touch_page(&mut e, 0, 1, 101);
        assert!(t0.is_empty() && t1.is_empty(), "inside capacity: free");
        let (leaf2, grow_traffic) = m.touch_page(&mut e, 0, 2, 102);
        assert_eq!(leaf2, 2);
        assert_eq!(m.stats().grows, 1);
        assert!(
            grow_traffic.iter().any(|a| !a.is_write),
            "growth pays migration reads"
        );
        assert!(
            grow_traffic.iter().any(|a| a.is_write),
            "growth pays re-init writes"
        );
        assert_eq!(m.enclave(0).unwrap().tree_pages(), 4);
        assert_eq!(e.active_geometry(0).unwrap().data_blocks(), 4 * PAGE_BLOCKS);
        // Re-touching a mapped page stays free.
        let (leaf_again, t) = m.touch_page(&mut e, 0, 2, 102);
        assert_eq!(leaf_again, 2);
        assert!(t.is_empty());
    }

    #[test]
    fn free_resets_counters_before_the_leaf_can_be_recycled() {
        let mut e = engine(Scheme::Itesp);
        let mut m = EnclaveManager::new(4, 2);
        m.create(&mut e, 0, 16);
        let (leaf, _) = m.touch_page(&mut e, 0, 7, 200);
        m.record_write(0, 7);
        m.record_write(0, 7);
        assert_eq!(m.counter_of(0, leaf), Some(2));
        let (ppage, traffic) = m.free_page(&mut e, 0, 7).unwrap();
        assert_eq!(ppage, 200);
        assert!(
            traffic
                .iter()
                .any(|a| a.kind == MetaKind::Tree && a.is_write),
            "free must rewrite the leaf's counters in memory"
        );
        assert_eq!(m.counter_of(0, leaf), Some(0), "counter reset at free");
        assert!(!m.enclave(0).unwrap().allocator().is_live(leaf));
        // The next touch recycles the freed leaf, fresh.
        let (again, _) = m.touch_page(&mut e, 0, 9, 201);
        assert_eq!(again, leaf, "LIFO free list hands the leaf back");
        assert_eq!(m.counter_of(0, leaf), Some(0));
        assert_eq!(m.stats().leaves_recycled, 1);
        assert_eq!(m.stats().pages_freed, 1);
    }

    #[test]
    fn parity_rebuild_is_optional_on_free() {
        let mut e = engine(Scheme::Itesp);
        let mut m = EnclaveManager::new(4, 3);
        m.rebuild_parity = false;
        m.create(&mut e, 0, 16);
        m.touch_page(&mut e, 0, 0, 10);
        let (_, traffic) = m.free_page(&mut e, 0, 0).unwrap();
        assert!(
            traffic.iter().all(|a| a.kind != MetaKind::Parity),
            "break-not-rebuild frees skip parity traffic"
        );
    }

    #[test]
    fn destroy_zeroizes_and_repartitions_survivors() {
        let mut e = engine(Scheme::Itesp);
        let mut m = EnclaveManager::new(4, 4);
        for slot in 0..4 {
            m.create(&mut e, slot, 16);
            m.touch_page(&mut e, slot, 0, 300 + slot as u64);
        }
        let traffic = m.destroy(&mut e, 2);
        assert!(
            traffic
                .iter()
                .any(|a| a.kind == MetaKind::Tree && a.is_write),
            "teardown zeroizes the tree region"
        );
        assert!(m.enclave(2).is_none());
        assert_eq!(m.live_count(), 3);
        assert_eq!(m.total_live_pages(), 3);
        // Destroying an empty slot is a no-op.
        assert!(m.destroy(&mut e, 2).is_empty());
        assert_eq!(m.stats().destroyed, 1);
    }

    #[test]
    fn shared_schemes_track_state_without_private_tree_traffic() {
        let mut e = engine(Scheme::Synergy);
        let mut m = EnclaveManager::new(4, 5);
        let (_, create_t) = m.create(&mut e, 1, 16);
        assert!(
            create_t.is_empty(),
            "shared tree: no private install traffic"
        );
        let (leaf, _) = m.touch_page(&mut e, 1, 0, 50);
        assert_eq!(leaf, 0);
        // Frees still reset the shared tree's leaves covering the page.
        let (_, free_t) = m.free_page(&mut e, 1, 0).unwrap();
        assert!(free_t
            .iter()
            .any(|a| a.kind == MetaKind::Tree && a.is_write));
    }

    #[test]
    fn export_import_moves_an_enclave_without_key_material() {
        let master = 0xBEEF;
        let mut e_src = engine(Scheme::Itesp);
        let mut m_src = EnclaveManager::new(4, master);
        let (id, _) = m_src.create_with_id(&mut e_src, 1, 16, EnclaveId(7));
        assert_eq!(id, EnclaveId(7));
        let (leaf, _) = m_src.touch_page(&mut e_src, 1, 3, 500);
        m_src.record_write(1, 3);
        m_src.record_write(1, 3);
        m_src.free_page(&mut e_src, 1, 3);
        m_src.touch_page(&mut e_src, 1, 4, 501);

        let mut w = SnapWriter::new();
        assert_eq!(m_src.export_enclave(1, &mut w), Some(id));
        assert!(m_src.export_enclave(0, &mut SnapWriter::new()).is_none());
        let blob = w.into_bytes();

        // The destination remaps frames into its own namespace and
        // re-derives the key from the shared master.
        let mut e_dst = engine(Scheme::Itesp);
        let mut m_dst = EnclaveManager::new(4, master);
        let mut r = SnapReader::new(&blob);
        let (got, traffic) = m_dst
            .import_enclave(&mut e_dst, 2, &mut r, |old| old + 1000)
            .unwrap();
        assert_eq!(got, id);
        assert!(!traffic.is_empty(), "import rebuilds the private tree");
        let enc = m_dst.enclave(2).unwrap();
        assert_eq!(enc.page(4).unwrap().ppage, 1501);
        assert_eq!(enc.leaf_of(4), Some(leaf), "recycled leaf survives");
        assert_eq!(m_dst.counter_of(2, leaf), Some(0), "reset survives");
        assert_eq!(m_dst.key_of(2), m_src.key_of(1), "same master, same key");
        // next_id watermark advances past the imported id.
        let (next, _) = m_dst.create(&mut e_dst, 0, 8);
        assert!(next.0 > 7);

        // A different master derives a different key: the blob itself
        // carries no key material.
        let mut e_other = engine(Scheme::Itesp);
        let mut m_other = EnclaveManager::new(4, master ^ 1);
        let mut r = SnapReader::new(&blob);
        m_other
            .import_enclave(&mut e_other, 0, &mut r, |old| old)
            .unwrap();
        assert_ne!(m_other.key_of(0), m_src.key_of(1));
    }

    #[test]
    fn peak_live_pages_tracks_the_high_water_mark() {
        let mut e = engine(Scheme::Itesp);
        let mut m = EnclaveManager::new(2, 6);
        m.create(&mut e, 0, 16);
        m.create(&mut e, 1, 16);
        for v in 0..3 {
            m.touch_page(&mut e, 0, v, v);
            m.touch_page(&mut e, 1, v, 10 + v);
        }
        m.free_page(&mut e, 0, 0);
        m.free_page(&mut e, 0, 1);
        assert_eq!(m.total_live_pages(), 4);
        assert_eq!(m.stats().peak_live_pages, 6);
    }
}
