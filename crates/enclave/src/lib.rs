//! # itesp-enclave — multi-tenant enclave lifecycle
//!
//! The paper's isolation story (Section III) gives every enclave its
//! own integrity tree, dense first-touch leaf-ids, and a private
//! metadata-cache partition. The rest of the workspace models those
//! structures statically: trees are sized once at engine construction
//! and leaf-ids only ever grow. Server TEEs are not static — enclaves
//! spawn, outgrow their initial tree, return pages early, and exit —
//! and each transition has a security obligation attached:
//!
//! * **create** — size a private tree from the requested footprint,
//!   carve a metadata-cache share, open a fresh leaf-id namespace
//!   under a per-enclave MAC key;
//! * **grow** — when first-touch allocation exceeds the tree's leaf
//!   capacity, re-root onto a larger geometry, paying migration reads
//!   and re-initialization writes;
//! * **free/shrink** — returned leaf-ids go to a free list only after
//!   their counters are reset in memory and their parity groups are
//!   rebuilt (or broken), so a recycled leaf can never replay the
//!   previous owner's state;
//! * **destroy** — zeroize the enclave's counters and MACs, release
//!   its cache partition, and repartition the survivors
//!   deterministically.
//!
//! [`EnclaveManager`] owns that state machine and charges every
//! transition as real metadata DRAM traffic through
//! [`itesp_core::SecurityEngine`]'s lifecycle entry points.

pub mod alloc;
pub mod manager;

pub use alloc::{LeafAllocator, LeafGrant};
pub use manager::{Enclave, EnclaveId, EnclaveManager, LifecycleStats, PageInfo, PAGE_BLOCKS};
