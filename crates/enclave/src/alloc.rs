//! Dense leaf-id allocation with safe recycling.
//!
//! Leaf-ids index an enclave's private tree: the paper keeps them
//! dense (first-touch order) so a footprint-sized tree stays compact.
//! Under churn the same density demands recycling — and recycling is
//! where replay attacks live, so the allocator is strict: a leaf is
//! either live or free, never both, and the caller is told whether a
//! grant is fresh (already covered by tree init) or recycled (must be
//! counter-reset before use).

use std::collections::BTreeSet;

use itesp_snap::{SnapError, SnapReader, SnapWriter};

/// The result of [`LeafAllocator::alloc`]: the id, tagged with whether
/// it has a history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafGrant {
    /// Never handed out before; its tree leaf was zeroed by the
    /// install/grow initialization pass.
    Fresh(u64),
    /// Previously owned and freed; its counters were reset at free
    /// time, but the caller accounts it separately because recycling
    /// is the security-sensitive path.
    Recycled(u64),
}

impl LeafGrant {
    /// The granted leaf-id, regardless of provenance.
    pub fn leaf(self) -> u64 {
        match self {
            LeafGrant::Fresh(l) | LeafGrant::Recycled(l) => l,
        }
    }
}

/// First-touch leaf-id allocator for one enclave: dense fresh ids up
/// to the tree's current leaf capacity, plus a LIFO free list of
/// recycled ids.
#[derive(Debug, Clone)]
pub struct LeafAllocator {
    /// Leaf-ids the current tree geometry can address.
    capacity: u64,
    /// Next never-used id (fresh ids are `0..next`, handed out in
    /// order — the paper's dense first-touch assignment).
    next: u64,
    /// Freed ids, reused most-recently-freed first.
    free: Vec<u64>,
    live: BTreeSet<u64>,
}

impl LeafAllocator {
    pub fn new(capacity: u64) -> Self {
        LeafAllocator {
            capacity,
            next: 0,
            free: Vec::new(),
            live: BTreeSet::new(),
        }
    }

    /// Grant a leaf-id, preferring the free list (keeps `next` dense).
    /// `None` means the tree is out of leaves and must grow first.
    pub fn alloc(&mut self) -> Option<LeafGrant> {
        let grant = if let Some(leaf) = self.free.pop() {
            LeafGrant::Recycled(leaf)
        } else if self.next < self.capacity {
            self.next += 1;
            LeafGrant::Fresh(self.next - 1)
        } else {
            return None;
        };
        let inserted = self.live.insert(grant.leaf());
        debug_assert!(inserted, "granted a leaf that was already live");
        Some(grant)
    }

    /// Return a leaf to the free list.
    ///
    /// # Panics
    /// Panics if the leaf is not currently live — a double free here
    /// would let two owners share one counter slot.
    pub fn free(&mut self, leaf: u64) {
        assert!(
            self.live.remove(&leaf),
            "freeing a leaf that is not live: {leaf}"
        );
        self.free.push(leaf);
    }

    /// Raise the capacity after the tree grew. Never shrinks: live
    /// leaves above a smaller capacity would become unaddressable.
    pub fn grow(&mut self, new_capacity: u64) {
        assert!(
            new_capacity >= self.capacity,
            "allocator capacity cannot shrink ({} -> {new_capacity})",
            self.capacity
        );
        self.capacity = new_capacity;
    }

    pub fn is_live(&self, leaf: u64) -> bool {
        self.live.contains(&leaf)
    }

    pub fn live_count(&self) -> u64 {
        self.live.len() as u64
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Highest fresh id handed out so far (the dense watermark).
    pub fn high_water(&self) -> u64 {
        self.next
    }

    /// Serialize for a crash-recovery snapshot. The free list keeps its
    /// LIFO order (recycling order is behavior, not just bookkeeping).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.section("LEAF", 1);
        w.u64(self.capacity);
        w.u64(self.next);
        w.seq(self.free.iter(), |w, &l| w.u64(l));
        w.seq(self.live.iter(), |w, &l| w.u64(l));
    }

    /// Rebuild from [`Self::save_state`] bytes, re-validating the
    /// live/free disjointness invariant.
    pub fn load_state(r: &mut SnapReader) -> Result<Self, SnapError> {
        r.section("LEAF", 1)?;
        let capacity = r.u64("allocator capacity")?;
        let next = r.u64("allocator next")?;
        let nfree = r.seq_len("allocator free list")?;
        let mut free = Vec::with_capacity(nfree);
        for _ in 0..nfree {
            free.push(r.u64("free leaf")?);
        }
        let nlive = r.seq_len("allocator live set")?;
        let mut live = BTreeSet::new();
        for _ in 0..nlive {
            let leaf = r.u64("live leaf")?;
            if !live.insert(leaf) {
                return Err(SnapError::Corrupt {
                    what: "duplicate live leaf",
                    at: r.pos(),
                });
            }
        }
        if next > capacity || free.iter().any(|l| live.contains(l)) {
            return Err(SnapError::Corrupt {
                what: "allocator invariant (live/free overlap or next past capacity)",
                at: r.pos(),
            });
        }
        Ok(LeafAllocator {
            capacity,
            next,
            free,
            live,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_dense_and_in_order() {
        let mut a = LeafAllocator::new(4);
        let got: Vec<_> = (0..4).map(|_| a.alloc().unwrap()).collect();
        assert_eq!(
            got,
            vec![
                LeafGrant::Fresh(0),
                LeafGrant::Fresh(1),
                LeafGrant::Fresh(2),
                LeafGrant::Fresh(3)
            ]
        );
        assert_eq!(a.alloc(), None, "capacity 4 exhausted");
    }

    #[test]
    fn recycling_is_lifo_and_tagged() {
        let mut a = LeafAllocator::new(8);
        for _ in 0..3 {
            a.alloc().unwrap();
        }
        a.free(1);
        a.free(2);
        assert_eq!(a.alloc(), Some(LeafGrant::Recycled(2)));
        assert_eq!(a.alloc(), Some(LeafGrant::Recycled(1)));
        // Free list drained: back to dense fresh ids.
        assert_eq!(a.alloc(), Some(LeafGrant::Fresh(3)));
    }

    #[test]
    fn a_leaf_is_never_live_twice() {
        let mut a = LeafAllocator::new(2);
        a.alloc().unwrap();
        a.alloc().unwrap();
        a.free(0);
        assert!(!a.is_live(0));
        assert_eq!(a.alloc(), Some(LeafGrant::Recycled(0)));
        assert!(a.is_live(0));
        // While 0 is live it cannot come out of the allocator again.
        assert_eq!(a.alloc(), None);
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn double_free_panics() {
        let mut a = LeafAllocator::new(2);
        a.alloc().unwrap();
        a.free(0);
        a.free(0);
    }

    #[test]
    fn grow_extends_the_fresh_range() {
        let mut a = LeafAllocator::new(1);
        a.alloc().unwrap();
        assert_eq!(a.alloc(), None);
        a.grow(3);
        assert_eq!(a.alloc(), Some(LeafGrant::Fresh(1)));
        assert_eq!(a.alloc(), Some(LeafGrant::Fresh(2)));
        assert_eq!(a.live_count(), 3);
        assert_eq!(a.high_water(), 3);
    }
}
