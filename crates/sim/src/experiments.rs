//! Canned experiment configurations for every figure and table.
//!
//! Each figure regenerator in `itesp-bench` calls these helpers so the
//! parameters live in one place and match Section IV:
//!
//! * 4 cores, 1 channel (8 cores, 2 channels for the sensitivity runs);
//! * 64 KB total metadata cache (16 KB per enclave when isolated);
//! * 4 copies of the same benchmark per run;
//! * traces of N memory operations per program (the paper uses 5 M; the
//!   regenerators default lower so a full sweep finishes in minutes —
//!   the *relative* results are stable well below 5 M).

use itesp_core::{EngineConfig, Scheme};
use itesp_dram::{AddressMapping, DramConfig};
use itesp_trace::{Benchmark, ChurnWorkload, MultiProgram};

use crate::ras::{RasConfig, RasError};
use crate::stats::RunResult;
use crate::system::{System, SystemConfig};

/// Parameters of one experiment run.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentParams {
    pub scheme: Scheme,
    /// Program copies = cores = enclaves.
    pub copies: usize,
    /// Memory operations per program.
    pub ops: usize,
    /// DRAM channels (1 for 4 cores, 2 for 8 cores).
    pub channels: u32,
    /// Total metadata cache bytes (all cores).
    pub metadata_cache_bytes: usize,
    pub mapping: AddressMapping,
    /// Model local-counter overflow stalls (Figure 11).
    pub model_overflow: bool,
    /// Trace RNG seed.
    pub seed: u64,
}

impl ExperimentParams {
    /// The paper's main configuration for `scheme` (Figure 8): 4 cores,
    /// 1 channel, 64 KB metadata cache, 4-RBH mapping.
    pub fn paper_4core(scheme: Scheme, ops: usize) -> Self {
        ExperimentParams {
            scheme,
            copies: 4,
            ops,
            channels: 1,
            metadata_cache_bytes: 64 << 10,
            mapping: AddressMapping::RowBufferHit4,
            model_overflow: false,
            seed: 0xC0FFEE,
        }
    }

    /// The 8-core, 2-channel sensitivity configuration (Figures 11/12).
    pub fn paper_8core(scheme: Scheme, ops: usize) -> Self {
        ExperimentParams {
            copies: 8,
            channels: 2,
            metadata_cache_bytes: 128 << 10,
            ..Self::paper_4core(scheme, ops)
        }
    }

    fn dram_config(&self) -> DramConfig {
        let base = if self.channels == 2 {
            DramConfig::two_channel()
        } else {
            DramConfig::table_iii()
        };
        base.with_mapping(self.mapping)
    }

    /// Rank-rotation stride in blocks implied by the mapping (how many
    /// consecutive blocks share a rank — decides parity grouping).
    fn rank_stride_blocks(&self, dram: &DramConfig) -> u64 {
        match self.mapping {
            AddressMapping::Rank => 1,
            AddressMapping::RowBufferHit2 => 2,
            AddressMapping::RowBufferHit4 => 4,
            AddressMapping::Column => {
                u64::from(dram.geometry.blocks_per_row) * u64::from(dram.geometry.banks_per_rank)
            }
        }
    }

    fn engine_config(&self, dram: &DramConfig) -> EngineConfig {
        EngineConfig {
            scheme: self.scheme,
            enclaves: self.copies,
            // The shared tree covers the whole installed memory; each
            // isolated tree covers an equal share.
            data_capacity: dram.geometry.capacity_bytes(),
            enclave_capacity: dram.geometry.capacity_bytes() / self.copies as u64,
            metadata_cache_bytes: self.metadata_cache_bytes,
            cache_ways: 8,
            model_overflow: self.model_overflow,
            rank_stride_blocks: self.rank_stride_blocks(dram),
        }
    }
}

/// Run one benchmark under one parameter set.
pub fn run_experiment(bench: &Benchmark, p: ExperimentParams) -> RunResult {
    let mp = MultiProgram::homogeneous(bench, p.copies, p.ops, p.seed);
    run_workload(&mp, p)
}

/// Run a pre-built workload under one parameter set (used when several
/// schemes must see the *same* trace).
pub fn run_workload(mp: &MultiProgram, p: ExperimentParams) -> RunResult {
    let dram = p.dram_config();
    let engine = p.engine_config(&dram);
    let cfg = SystemConfig::table_iii(dram, engine);
    System::new(cfg, mp).run()
}

/// Run a churn schedule: cores start idle and the lifecycle driver
/// admits, grows, shrinks, and destroys enclave sessions as their
/// arrival clocks pass, charging every transition as metadata DRAM
/// traffic. The parameter set's `seed` keys page placement and
/// per-enclave MAC keys; its `copies` must match the schedule's slots.
pub fn run_workload_churn(w: &ChurnWorkload, p: ExperimentParams) -> RunResult {
    let dram = p.dram_config();
    let engine = p.engine_config(&dram);
    let cfg = SystemConfig::table_iii(dram, engine);
    System::new_churn(cfg, w, p.seed, true).run()
}

/// Build (without running) the churn+RAS system the crash-recovery
/// drill exercises: enclave lifecycle churn with the online fault
/// pipeline active. The caller attaches a snapshot sink and/or
/// restores state before calling [`System::try_run`].
pub fn build_churn_ras_system(w: &ChurnWorkload, p: ExperimentParams, ras: RasConfig) -> System {
    let dram = p.dram_config();
    let engine = p.engine_config(&dram);
    let cfg = SystemConfig::table_iii(dram, engine).with_ras(ras);
    System::new_churn(cfg, w, p.seed, true)
}

/// Run a pre-built workload with the online RAS pipeline enabled.
///
/// # Errors
/// The first [`RasError`] raised when [`RasConfig::halt_on_due`] is
/// set.
pub fn run_workload_ras(
    mp: &MultiProgram,
    p: ExperimentParams,
    ras: RasConfig,
) -> Result<RunResult, RasError> {
    let dram = p.dram_config();
    let engine = p.engine_config(&dram);
    let cfg = SystemConfig::table_iii(dram, engine).with_ras(ras);
    System::new(cfg, mp).try_run()
}

/// Run one benchmark by name.
///
/// # Panics
/// Panics if the name is not in Table IV; see [`try_run_named`] for the
/// non-panicking variant.
pub fn run_named(name: &str, p: ExperimentParams) -> RunResult {
    try_run_named(name, p).unwrap_or_else(|e| panic!("{}", itesp_core::error::render_chain(&e)))
}

/// Run one benchmark by name, reporting bad input as a typed error.
///
/// # Errors
/// [`itesp_core::Error`] for an unknown benchmark or a parameter set the
/// engine rejects.
pub fn try_run_named(name: &str, p: ExperimentParams) -> Result<RunResult, itesp_core::Error> {
    let b = itesp_trace::benchmark_or_err(name)?;
    let dram = p.dram_config();
    p.engine_config(&dram)
        .validate()
        .map_err(itesp_core::Error::Engine)?;
    Ok(run_experiment(b, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_core_defaults_match_section_iv() {
        let p = ExperimentParams::paper_4core(Scheme::Itesp, 1000);
        assert_eq!(p.copies, 4);
        assert_eq!(p.channels, 1);
        assert_eq!(p.metadata_cache_bytes, 64 << 10);
        let dram = p.dram_config();
        let e = p.engine_config(&dram);
        // 16 KB per enclave for the isolated designs.
        assert_eq!(e.metadata_cache_bytes / e.enclaves, 16 << 10);
        assert_eq!(e.rank_stride_blocks, 4);
    }

    #[test]
    fn eight_core_uses_two_channels() {
        let p = ExperimentParams::paper_8core(Scheme::Synergy, 1000);
        assert_eq!(p.dram_config().geometry.channels, 2);
        assert_eq!(p.copies, 8);
    }

    #[test]
    fn column_mapping_has_large_rank_stride() {
        let mut p = ExperimentParams::paper_4core(Scheme::Itesp, 100);
        p.mapping = AddressMapping::Column;
        let dram = p.dram_config();
        assert_eq!(p.rank_stride_blocks(&dram), 1024);
    }

    #[test]
    fn small_run_executes_end_to_end() {
        let r = run_named("lbm", ExperimentParams::paper_4core(Scheme::Itesp, 300));
        assert_eq!(r.engine.data_accesses(), 1200);
        assert!(r.cycles > 0);
    }
}
