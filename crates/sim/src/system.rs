//! The full-system simulator: N cores replaying LLC-filtered traces
//! through the security engine into the DRAM model.
//!
//! Core model (USIMM-style, Table III): a 64-entry, 4-wide ROB per
//! core. Trace gaps are non-memory instructions fetched 4 per cycle;
//! reads issue to memory at fetch (out-of-order execute) but block
//! retirement at the ROB head until data returns; writes enter the
//! memory controller's write queue at retirement. Metadata transactions
//! produced by the engine contend for the same controller queues —
//! verification latency itself is hidden by speculation, so metadata
//! costs *bandwidth*, which is the paper's premise.

use std::collections::{HashMap, VecDeque};

use itesp_core::{EngineConfig, MetaAccess, SecurityEngine};
use itesp_dram::{Completion, DramConfig, IssuedCommand, MemorySystem, RequestId};
use itesp_snap::{SnapError, SnapReader, SnapWriter};
use itesp_trace::{ChurnWorkload, MemOp, MultiProgram, PhysRecord, PAGE_BYTES};

use crate::churn::{ChurnDriver, ChurnStats};
use crate::ras::{RasConfig, RasEngine, RasError, RasStats, ReadCheck};
use crate::recovery::SnapshotSink;
use crate::stats::RunResult;

/// CPU cycles per DRAM bus cycle (3.2 GHz core, 800 MHz DDR3 bus).
pub const CPU_PER_DRAM_CYCLE: u64 = 4;

/// Full-system configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    pub dram: DramConfig,
    pub engine: EngineConfig,
    /// ROB entries per core.
    pub rob_size: u64,
    /// Fetch/retire width, instructions per cycle.
    pub width: u64,
    /// Safety valve: abort after this many CPU cycles (0 = unlimited).
    pub max_cycles: u64,
    /// Online RAS pipeline (fault injection, correction traffic, patrol
    /// scrub, page retirement); `None` = faults off, zero overhead.
    pub ras: Option<RasConfig>,
}

impl SystemConfig {
    /// Table III defaults for the given engine configuration.
    pub fn table_iii(dram: DramConfig, engine: EngineConfig) -> Self {
        SystemConfig {
            dram,
            engine,
            rob_size: 64,
            width: 4,
            max_cycles: 0,
            ras: None,
        }
    }

    /// Enable the online RAS pipeline.
    pub fn with_ras(mut self, ras: RasConfig) -> Self {
        self.ras = Some(ras);
        self
    }
}

/// A completed demand read's owner; writes and metadata requests are
/// fire-and-forget and never enter this map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ReqTag {
    core: usize,
    rob_pos: u64,
}

#[derive(Debug, Clone, Copy)]
struct PendingRead {
    rob_pos: u64,
    done: bool,
}

/// Per-core replay state.
#[derive(Debug)]
struct Core {
    trace: Vec<PhysRecord>,
    /// Next record index.
    pos: usize,
    /// Remaining gap instructions of the current record still to fetch.
    gap_left: u64,
    /// True when the current record's memory op has been fetched/issued.
    op_issued: bool,
    /// Cumulative instructions fetched / retired.
    fetched: u64,
    retired: u64,
    reads: VecDeque<PendingRead>,
    /// A write waiting at the head of the ROB for write-queue space.
    blocked_write: Option<u64>,
    /// Fetch frozen until this cycle (counter-overflow re-encryption).
    stall_until: u64,
    /// Cycle at which this core retired its last instruction.
    finish: Option<u64>,
}

impl Core {
    fn new(trace: Vec<PhysRecord>) -> Self {
        let gap_left = trace.first().map_or(0, |r| u64::from(r.gap));
        Core {
            trace,
            pos: 0,
            gap_left,
            op_issued: false,
            fetched: 0,
            retired: 0,
            reads: VecDeque::new(),
            blocked_write: None,
            stall_until: 0,
            finish: None,
        }
    }

    fn trace_done(&self) -> bool {
        self.pos >= self.trace.len()
    }

    fn done(&self) -> bool {
        self.trace_done() && self.retired == self.fetched && self.blocked_write.is_none()
    }

    fn rob_occupancy(&self) -> u64 {
        self.fetched - self.retired
    }

    /// Advance to the next trace record after the current one's op
    /// has been fetched.
    fn advance_record(&mut self) {
        self.pos += 1;
        self.op_issued = false;
        self.gap_left = self.trace.get(self.pos).map_or(0, |r| u64::from(r.gap));
    }

    /// Replace the trace for the slot's next enclave session (churn
    /// only; the previous session has fully drained by then).
    fn reload(&mut self, trace: Vec<PhysRecord>) {
        debug_assert!(self.done(), "reloading a core with work in flight");
        *self = Core::new(trace);
    }
}

/// Per-core first-touch leaf-id assignment: physical page -> leaf id.
/// `next` outlives removals and retirement remaps, so a retired page's
/// fresh leaf id never collides with a live one.
#[derive(Debug, Clone, Default)]
struct LeafMap {
    map: HashMap<u64, u64>,
    next: u64,
}

/// The assembled system.
pub struct System {
    cfg: SystemConfig,
    mem: MemorySystem,
    engine: SecurityEngine,
    cores: Vec<Core>,
    tags: HashMap<RequestId, ReqTag>,
    /// Metadata (and data-write) transactions waiting for queue space.
    pending_meta: VecDeque<(u64, bool)>,
    /// First-touch leaf-id maps, one per core; the RAS retirement path
    /// remaps entries, which is why they live on the system.
    leaf_maps: Vec<LeafMap>,
    /// Online RAS pipeline, if configured (`take`n during hooks to keep
    /// the borrow checker happy).
    ras: Option<RasEngine>,
    /// Where each DRAM data block's metadata lives: block address ->
    /// (partition, engine-domain block), for recovery parity lookups on
    /// patrol reads.
    ras_loc: HashMap<u64, (usize, u64)>,
    /// Enclave lifecycle driver (`take`n during fetch/tick, like the
    /// RAS engine); `None` = static workload.
    churn: Option<ChurnDriver>,
    isolated: bool,
    cycle: u64,
    /// Cores proven stalled until a memory completion (or finished for
    /// good): their per-cycle retire/fetch calls are provable no-ops and
    /// are skipped. Only maintained for static workloads without a RAS
    /// pipeline — lifecycle hooks can unblock a core from outside the
    /// memory path, so parking is disabled when either is active.
    parked: Vec<bool>,
    /// Number of `true` entries in `parked` (all-parked cycles take an
    /// even shorter event-skip path).
    nparked: usize,
    /// Reusable completion-drain buffer for the run loop.
    comp_buf: Vec<Completion>,
    /// Durable checkpoint sink, if crash recovery is enabled
    /// (`take`n around captures, like the RAS engine).
    snap: Option<SnapshotSink>,
}

impl System {
    /// Build a system replaying `workload` (one trace per core).
    pub fn new(cfg: SystemConfig, workload: &MultiProgram) -> Self {
        Self::from_traces(cfg, workload.traces.clone())
    }

    fn from_traces(cfg: SystemConfig, traces: Vec<Vec<PhysRecord>>) -> Self {
        let mem = MemorySystem::new(cfg.dram);
        let engine = SecurityEngine::new(cfg.engine);
        let cores: Vec<Core> = traces.into_iter().map(Core::new).collect();
        let ncores = cores.len();
        let isolated = engine.spec().isolated;
        let ras = cfg.ras.clone().map(|rc| {
            RasEngine::new(
                rc,
                engine.parity_group_share(),
                cfg.engine.rank_stride_blocks,
                // Detection is a model property, not a tree property:
                // SecDDR detects through the link MAC with no tree at
                // all (its faults become DUEs, not SDCs).
                engine.detects_errors(),
            )
        });
        let leaf_maps = vec![LeafMap::default(); cores.len()];
        System {
            cfg,
            mem,
            engine,
            cores,
            tags: HashMap::new(),
            pending_meta: VecDeque::new(),
            leaf_maps,
            ras,
            ras_loc: HashMap::new(),
            churn: None,
            isolated,
            cycle: 0,
            parked: vec![false; ncores],
            nparked: 0,
            comp_buf: Vec::new(),
            snap: None,
        }
    }

    /// Enable durable checkpointing: the run loop captures a full-state
    /// snapshot through `sink` on its cadence (always on a DRAM-aligned
    /// CPU cycle, at the top of the loop, so a recovered run resumes at
    /// exactly the captured point).
    pub fn attach_snapshots(&mut self, sink: SnapshotSink) {
        self.snap = Some(sink);
    }

    /// Current CPU cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Build a system serving a churn schedule: cores start empty and
    /// the lifecycle driver admits/destroys enclave sessions as their
    /// arrival times pass. `seed` keys page placement and per-enclave
    /// MAC keys; `rebuild_parity` picks the free-time parity policy.
    ///
    /// # Panics
    /// Panics if the workload's slot count differs from the engine's
    /// enclave count (slot i maps to cache/tree partition i).
    pub fn new_churn(
        cfg: SystemConfig,
        workload: &ChurnWorkload,
        seed: u64,
        rebuild_parity: bool,
    ) -> Self {
        let slots = workload.slots.len();
        assert_eq!(
            cfg.engine.enclaves, slots,
            "churn needs one engine enclave per slot"
        );
        let phys_bytes = cfg.dram.geometry.capacity_bytes();
        let mut sys = Self::from_traces(cfg, vec![Vec::new(); slots]);
        sys.churn = Some(ChurnDriver::new(workload, phys_bytes, seed, rebuild_parity));
        sys
    }

    /// Dense per-enclave block index for an access: the engine needs
    /// the leaf-id page plus the in-page offset. The physical trace was
    /// produced by first-touch allocation, so per-enclave leaf pages are
    /// recovered from the shared mapper at composition time; here we
    /// derive them from the physical page directly via a per-core map.
    fn enclave_block(lm: &mut LeafMap, paddr: u64) -> u64 {
        let page = paddr / PAGE_BYTES;
        let leaf = match lm.map.get(&page) {
            Some(&l) => l,
            None => {
                let l = lm.next;
                lm.map.insert(page, l);
                lm.next += 1;
                l
            }
        };
        leaf * (PAGE_BYTES / 64) + (paddr % PAGE_BYTES) / 64
    }

    /// The DRAM frame currently backing `paddr` (identity unless the
    /// RAS pipeline has retired its page).
    fn frame_addr(&self, paddr: u64) -> u64 {
        self.ras.as_ref().map_or(paddr, |r| r.translate(paddr))
    }

    /// Run to completion; returns the collected results.
    ///
    /// # Panics
    /// Panics if `max_cycles` is exceeded (deadlock guard), or on a
    /// fatal RAS error when `halt_on_due` is set — use
    /// [`try_run`](Self::try_run) to handle that as a typed error.
    pub fn run(self) -> RunResult {
        self.try_run()
            .unwrap_or_else(|e| panic!("fatal RAS error: {e}"))
    }

    /// Run to completion, reporting a fatal RAS error (uncorrectable or
    /// retirement-degraded block under `halt_on_due`) as a typed error
    /// instead of panicking.
    ///
    /// # Errors
    /// The first [`RasError`] raised when [`RasConfig::halt_on_due`] is
    /// set.
    ///
    /// # Panics
    /// Panics if `max_cycles` is exceeded (deadlock guard).
    pub fn try_run(mut self) -> Result<RunResult, RasError> {
        self.run_loop();
        self.take_fatal()?;
        Ok(self.finish_run())
    }

    /// Like [`run`](Self::run), but records every DRAM command issued
    /// during the run and returns the per-channel logs plus the last
    /// DRAM cycle, so an external protocol checker can validate the
    /// whole stack's command stream.
    pub fn run_logged(self) -> (RunResult, Vec<Vec<IssuedCommand>>, u64) {
        self.try_run_logged()
            .unwrap_or_else(|e| panic!("fatal RAS error: {e}"))
    }

    /// [`run_logged`](Self::run_logged) with fatal RAS errors reported
    /// as typed errors.
    ///
    /// # Errors
    /// The first [`RasError`] raised when [`RasConfig::halt_on_due`] is
    /// set.
    ///
    /// # Panics
    /// Panics if `max_cycles` is exceeded (deadlock guard).
    #[allow(clippy::type_complexity)]
    pub fn try_run_logged(mut self) -> Result<(RunResult, Vec<Vec<IssuedCommand>>, u64), RasError> {
        self.mem.enable_cmd_logs();
        self.run_loop();
        self.take_fatal()?;
        let logs = self.mem.take_cmd_logs();
        let end = self.cycle.saturating_sub(1) / CPU_PER_DRAM_CYCLE;
        Ok((self.finish_run(), logs, end))
    }

    fn take_fatal(&mut self) -> Result<(), RasError> {
        match self.ras.as_mut().and_then(|r| r.fatal.take()) {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn run_loop(&mut self) {
        let ncores = self.cores.len();
        let limit = if self.cfg.max_cycles == 0 {
            u64::MAX
        } else {
            self.cfg.max_cycles
        };
        let parking = self.ras.is_none() && self.churn.is_none();

        while !self.all_done() {
            assert!(self.cycle < limit, "simulation exceeded max_cycles");
            if self.ras.as_ref().is_some_and(|r| r.fatal.is_some()) {
                break; // halt_on_due: stop issuing, report the error
            }

            // Durable checkpoint, always at the top of a DRAM-aligned
            // cycle so the captured state is exactly what a recovered
            // run resumes from. A pending fatal error never checkpoints
            // (the branch above broke out first).
            if self
                .snap
                .as_ref()
                .is_some_and(|s| s.due(self.cycle) && self.cycle.is_multiple_of(CPU_PER_DRAM_CYCLE))
            {
                let mut sink = self.snap.take().expect("checked above");
                sink.capture(self)
                    .unwrap_or_else(|e| panic!("snapshot capture failed: {e}"));
                self.snap = Some(sink);
            }

            // Memory ticks at the DRAM clock.
            if self.cycle.is_multiple_of(CPU_PER_DRAM_CYCLE) {
                let dram_now = self.cycle / CPU_PER_DRAM_CYCLE;
                self.ras_tick(dram_now);
                self.drain_pending_meta(dram_now);
                self.mem.tick(dram_now);
                let mut buf = std::mem::take(&mut self.comp_buf);
                buf.clear();
                self.mem.drain_completions_into(&mut buf);
                for c in &buf {
                    if let Some(tag) = self.tags.remove(&c.id) {
                        if std::mem::replace(&mut self.parked[tag.core], false) {
                            self.nparked -= 1;
                        }
                        if let Some(p) = self.cores[tag.core]
                            .reads
                            .iter_mut()
                            .find(|p| p.rob_pos == tag.rob_pos)
                        {
                            p.done = true;
                        }
                    }
                }
                self.comp_buf = buf;
            }

            self.churn_tick();

            for core_idx in 0..ncores {
                if self.parked[core_idx] {
                    continue;
                }
                self.retire(core_idx);
                self.fetch(core_idx);
                if parking {
                    self.maybe_park(core_idx);
                }
            }

            self.try_fast_forward();
            if parking {
                self.try_bulk_advance();
            }
            self.try_event_skip();
            self.cycle += 1;
        }
    }

    /// Park a core whose retire/fetch are provably no-ops until a read
    /// completion arrives. Two cases:
    ///
    /// * the core is [`done`](Core::done) — with no churn driver there
    ///   is nothing left to do, ever;
    /// * the ROB head is an outstanding read (blocks retirement) and
    ///   fetch cannot add work either (ROB full, or the trace is
    ///   drained). The head read's completion is then the only event
    ///   that can change this core's state, and its delivery unparks.
    ///
    /// Skipping the calls is pure: it elides work that would not have
    /// mutated anything, so cycle-level behavior is bit-identical.
    fn maybe_park(&mut self, ci: usize) {
        let core = &self.cores[ci];
        let park = core.done()
            || (core.blocked_write.is_none()
                && (core.trace_done() || core.rob_occupancy() >= self.cfg.rob_size)
                && core
                    .reads
                    .front()
                    .is_some_and(|f| f.rob_pos == core.retired && !f.done));
        if park && !std::mem::replace(&mut self.parked[ci], true) {
            self.nparked += 1;
        }
    }

    /// One CPU-cycle step of the enclave lifecycle: fire page-free
    /// events whose records have issued, tear down sessions whose
    /// traces drained, and admit arrivals whose clocks have passed.
    /// All resulting metadata traffic joins the pending queue.
    fn churn_tick(&mut self) {
        let Some(mut ch) = self.churn.take() else {
            return;
        };
        for s in 0..self.cores.len() {
            if ch.live[s] {
                while ch.frees[s]
                    .front()
                    .is_some_and(|f| f.after_record < self.cores[s].pos)
                {
                    let f = ch.frees[s].pop_front().expect("checked front");
                    let traffic = ch.free_page(s, f.vaddr, &mut self.engine);
                    self.queue_meta(&traffic);
                }
                if self.cores[s].done() {
                    let traffic = ch.session_end(s, &mut self.engine);
                    self.queue_meta(&traffic);
                }
            }
            if !ch.live[s] && self.cycle >= ch.ready_at[s] {
                if let Some((trace, traffic)) = ch.create(s, self.cycle, &mut self.engine) {
                    self.queue_meta(&traffic);
                    self.cores[s].reload(trace);
                }
            }
        }
        self.churn = Some(ch);
    }

    /// One DRAM-cycle step of the RAS pipeline: execute deferred page
    /// retirements, then advance the fault process and issue the patrol
    /// reads due this cycle. Issuance stops once every core has
    /// finished so the run can drain.
    fn ras_tick(&mut self, dram_now: u64) {
        let Some(mut ras) = self.ras.take() else {
            return;
        };
        for page in std::mem::take(&mut ras.pending_retires) {
            self.do_retire(&mut ras, page);
        }
        if !self.cores.iter().all(Core::done) {
            for addr in ras.tick(dram_now) {
                ras.stats.patrol_reads += 1;
                self.pending_meta.push_back((addr, false));
                let check = ras.check_read(addr, self.mem.decoder(), dram_now);
                self.apply_check(&mut ras, addr, check);
            }
        }
        self.ras = Some(ras);
    }

    /// RAS hook on a demand access: record the block's metadata
    /// location, register it with the fault process, and (for reads)
    /// check it against the live fault state.
    fn ras_on_demand(&mut self, ci: usize, paddr: u64, daddr: u64, eb: u64, is_write: bool) {
        let Some(mut ras) = self.ras.take() else {
            return;
        };
        let loc = if self.isolated {
            (ci, eb)
        } else {
            (0, paddr / 64)
        };
        self.ras_loc.insert(daddr & !63, loc);
        ras.on_data_access(daddr, is_write);
        if !is_write {
            let dram_now = self.cycle / CPU_PER_DRAM_CYCLE;
            let check = ras.check_read(daddr, self.mem.decoder(), dram_now);
            self.apply_check(&mut ras, daddr, check);
        }
        self.ras = Some(ras);
    }

    /// Turn a read-check outcome into recovery traffic: the parity
    /// fetch, the cross-rank companion reads (shared parity), and —
    /// when correction succeeded — the corrected-data writeback
    /// (demand scrub). A failed reconstruction still pays for the
    /// attempt; it just has nothing to write back.
    fn apply_check(&mut self, ras: &mut RasEngine, addr: u64, check: ReadCheck) {
        match check {
            ReadCheck::Corrected { companions } => {
                self.queue_recovery(ras, addr, &companions);
                ras.stats.scrub_writebacks += 1;
                self.pending_meta.push_back((addr, true));
            }
            ReadCheck::Due { companions } => {
                self.queue_recovery(ras, addr, &companions);
            }
            ReadCheck::Clean
            | ReadCheck::Benign
            | ReadCheck::Silent
            | ReadCheck::DetectedOnly
            | ReadCheck::Degraded => {}
        }
    }

    fn queue_recovery(&mut self, ras: &mut RasEngine, addr: u64, companions: &[u64]) {
        if let Some(line) = self.parity_line_for(addr) {
            ras.stats.parity_reads += 1;
            self.pending_meta.push_back((line, false));
        }
        for &c in companions {
            ras.stats.companion_reads += 1;
            self.pending_meta.push_back((c, false));
        }
    }

    /// The DRAM line holding the recovery parity covering `addr`, per
    /// the configured scheme's metadata layout.
    fn parity_line_for(&self, addr: u64) -> Option<u64> {
        let block = addr & !63;
        let (part, rblock) = self.ras_loc.get(&block).copied().unwrap_or((0, block / 64));
        self.engine.recovery_parity_addr(part, rblock)
    }

    /// Execute one page retirement: emit the migration traffic, remap
    /// the page's leaf id (a fresh id, exercising the indirection
    /// layer), update metadata locations for the moved blocks, and
    /// rebuild or degrade parity groups that span the page boundary.
    fn do_retire(&mut self, ras: &mut RasEngine, page: u64) {
        let (orig, moves, affected) = ras.retire_page(page);
        for &(old, new) in &moves {
            ras.stats.migration_reads += 1;
            ras.stats.migration_writes += 1;
            self.pending_meta.push_back((old, false));
            self.pending_meta.push_back((new, true));
        }

        // The indirection layer assigns the page a fresh leaf id so the
        // per-enclave metadata follows the migrated data.
        let mut remap = None;
        for (ci, lm) in self.leaf_maps.iter_mut().enumerate() {
            if let Some(leaf) = lm.map.get_mut(&orig) {
                *leaf = lm.next;
                remap = Some((ci, lm.next));
                lm.next += 1;
                break;
            }
        }
        let bpp = PAGE_BYTES / 64; // blocks per page
        for &(old, new) in &moves {
            let off = (old % PAGE_BYTES) / 64;
            let prev = self.ras_loc.remove(&old);
            let loc = if self.isolated {
                match remap {
                    Some((ci, leaf)) => (ci, leaf * bpp + off),
                    None => match prev {
                        Some(l) => l,
                        None => continue,
                    },
                }
            } else {
                (0, orig * bpp + off)
            };
            self.ras_loc.insert(new, loc);
        }

        for gid in affected {
            if ras.cfg.rebuild_parity_on_retire {
                let members = ras.group_members_outside(gid, page);
                let line = members.first().and_then(|&m| self.parity_line_for(m));
                for m in members {
                    ras.stats.parity_rebuild_reads += 1;
                    self.pending_meta.push_back((m, false));
                }
                if let Some(line) = line {
                    ras.stats.parity_rebuild_writes += 1;
                    self.pending_meta.push_back((line, true));
                }
            } else {
                ras.break_group(gid);
            }
        }
    }

    fn all_done(&self) -> bool {
        self.mem.is_idle()
            && self.pending_meta.is_empty()
            && self.cores.iter().all(Core::done)
            && self.churn.as_ref().is_none_or(ChurnDriver::done)
    }

    /// Issue queued metadata / writeback transactions as space frees up.
    fn drain_pending_meta(&mut self, dram_now: u64) {
        while let Some(&(addr, is_write)) = self.pending_meta.front() {
            let ok = if is_write {
                self.mem.enqueue_write(addr, dram_now).is_ok()
            } else {
                self.mem.enqueue_read(addr, dram_now).is_ok()
            };
            if ok {
                self.pending_meta.pop_front();
            } else {
                break;
            }
        }
    }

    fn queue_meta(&mut self, mem_list: &[MetaAccess]) {
        for m in mem_list {
            self.pending_meta.push_back((m.addr, m.is_write));
        }
    }

    /// Retire up to `width` instructions from the ROB head.
    fn retire(&mut self, ci: usize) {
        let dram_now = self.cycle / CPU_PER_DRAM_CYCLE;
        // A write blocked on a full write queue stalls retirement.
        if let Some(addr) = self.cores[ci].blocked_write {
            if self.mem.enqueue_write(addr, dram_now).is_ok() {
                self.cores[ci].blocked_write = None;
            } else {
                return;
            }
        }
        let core = &mut self.cores[ci];
        let mut budget = self.cfg.width;
        while budget > 0 && core.retired < core.fetched {
            if let Some(front) = core.reads.front() {
                if front.rob_pos == core.retired {
                    if front.done {
                        core.reads.pop_front();
                        core.retired += 1;
                        budget -= 1;
                        continue;
                    }
                    break; // read at head still outstanding
                }
                let plain = (front.rob_pos - core.retired).min(budget);
                core.retired += plain;
                budget -= plain;
            } else {
                let plain = (core.fetched - core.retired).min(budget);
                core.retired += plain;
                budget -= plain;
            }
        }
        if core.done() && core.finish.is_none() {
            core.finish = Some(self.cycle);
        }
    }

    /// Fetch up to `width` instructions into the ROB; memory ops issue
    /// their DRAM and metadata traffic here (reads) or at retire
    /// (writes, via `blocked_write` when the queue is full).
    fn fetch(&mut self, ci: usize) {
        if self.cores[ci].stall_until > self.cycle {
            return;
        }
        // The leaf map and churn driver step aside so fetch can borrow
        // the rest of the system mutably; retirement remaps run at DRAM
        // ticks, never inside fetch, so this window is safe.
        let mut lm = std::mem::take(&mut self.leaf_maps[ci]);
        let mut ch = self.churn.take();
        self.fetch_with(ci, &mut lm, ch.as_mut());
        self.churn = ch;
        self.leaf_maps[ci] = lm;
    }

    fn fetch_with(&mut self, ci: usize, lm: &mut LeafMap, mut ch: Option<&mut ChurnDriver>) {
        let dram_now = self.cycle / CPU_PER_DRAM_CYCLE;
        let mut budget = self.cfg.width;
        while budget > 0 {
            let core = &mut self.cores[ci];
            if core.trace_done() || core.rob_occupancy() >= self.cfg.rob_size {
                break;
            }
            if core.gap_left > 0 {
                let take = core
                    .gap_left
                    .min(budget)
                    .min(self.cfg.rob_size - core.rob_occupancy());
                core.fetched += take;
                core.gap_left -= take;
                budget -= take;
                continue;
            }
            if core.op_issued {
                core.advance_record();
                continue;
            }
            // Fetch the record's memory operation (one ROB slot). The
            // engine sees the original physical address (metadata is
            // keyed by it); DRAM sees the frame currently backing it.
            // Churn traces carry *virtual* addresses, translated here
            // lazily — pages can be freed and re-touched mid-session,
            // so translations cannot be precomputed.
            let rec = core.trace[core.pos];
            let is_write = rec.op == MemOp::Write;
            let (paddr, eb) = match ch.as_deref_mut() {
                Some(d) => {
                    let (paddr, eb, lifecycle) = d.on_access(ci, rec.paddr, &mut self.engine);
                    self.queue_meta(&lifecycle);
                    (paddr, eb)
                }
                None => (rec.paddr, Self::enclave_block(lm, rec.paddr)),
            };
            let daddr = self.frame_addr(paddr);
            let core = &mut self.cores[ci];
            if is_write {
                // Writes retire into the write queue; metadata issues now.
                let rob_pos = core.fetched;
                core.fetched += 1;
                core.op_issued = true;
                budget -= 1;
                let _ = rob_pos;
                let ok = self.mem.enqueue_write(daddr, dram_now).is_ok();
                if !ok {
                    self.cores[ci].blocked_write = Some(daddr);
                }
                let out = self.engine.on_access(ci, paddr, eb, true);
                if out.stall_cycles > 0 {
                    self.cores[ci].stall_until = self.cycle + out.stall_cycles;
                }
                self.queue_meta(&out.mem);
                if let Some(d) = ch.as_deref_mut() {
                    d.record_write(ci, rec.paddr);
                }
                self.ras_on_demand(ci, paddr, daddr, eb, true);
                if self.cores[ci].blocked_write.is_some() {
                    break; // can't run ahead past a blocked write
                }
            } else {
                // Reads need queue space at fetch.
                match self.mem.enqueue_read(daddr, dram_now) {
                    Ok(id) => {
                        let rob_pos = core.fetched;
                        core.fetched += 1;
                        core.op_issued = true;
                        budget -= 1;
                        core.reads.push_back(PendingRead {
                            rob_pos,
                            done: false,
                        });
                        self.tags.insert(id, ReqTag { core: ci, rob_pos });
                        let out = self.engine.on_access(ci, paddr, eb, false);
                        if out.stall_cycles > 0 {
                            self.cores[ci].stall_until = self.cycle + out.stall_cycles;
                        }
                        self.queue_meta(&out.mem);
                        self.ras_on_demand(ci, paddr, daddr, eb, false);
                    }
                    Err(_) => break, // fetch stalls on a full read queue
                }
            }
        }
    }

    /// Closed-form multi-cycle advance for *linear* core phases: every
    /// core is either frozen (parked, done) or provably repeats the
    /// exact same full-width step — fetching gap instructions and/or
    /// retiring plain instructions — for the next `j` cycles. Those
    /// cycles are applied arithmetically in one shot.
    ///
    /// Exactness argument, per linear case (retire runs before fetch
    /// each cycle, both at `width` per cycle):
    ///
    /// * gap flow (no reads, occupancy >= width, gap >= width): retire
    ///   takes `width`, fetch refills `width`; occupancy is invariant,
    ///   so every cycle is identical while the gap lasts;
    /// * approach (oldest read still behind the ROB head): plain
    ///   instructions retire at `width` until `retired` reaches the
    ///   read's slot — the window stops exactly there;
    /// * fill (undone read at the ROB head): retirement is frozen;
    ///   fetch adds `width` gap instructions until the ROB fills;
    /// * drain (trace done, no reads): retire `width` per cycle,
    ///   stopping one instruction short of empty so the `finish`
    ///   stamp is taken by the normal per-cycle path.
    ///
    /// The window is clipped below the next memory event, so no
    /// completion, queue-space change, or refresh can land inside it,
    /// and nothing is enqueued during it (only gap instructions are
    /// fetched) — DRAM ticks inside the window are no-ops by the
    /// channel contract. Anything nonlinear (a memory op due, a stall
    /// deadline, a blocked write, a record advance, a completed head
    /// read) zeroes the window and falls back to per-cycle stepping.
    /// Only active for static workloads without RAS, like parking.
    fn try_bulk_advance(&mut self) {
        // Only while memory has work: an idle-memory jump could pass
        // the cycle where the run-loop would have observed `all_done`
        // (fast-forward owns the idle regime), and a busy memory also
        // pins the window below a real future event.
        if !self.pending_meta.is_empty() || self.mem.is_idle() {
            return;
        }
        let now = self.cycle;
        let w = self.cfg.width;
        // Cycles strictly inside the window must precede the next
        // memory event (completions / queue space / refresh).
        let cur_dram = now / CPU_PER_DRAM_CYCLE;
        let ev = self.mem.next_event();
        let ev_cpu = ev.max(cur_dram + 1).saturating_mul(CPU_PER_DRAM_CYCLE);
        let mut j = (ev_cpu - now).saturating_sub(1);
        for (ci, c) in self.cores.iter().enumerate() {
            if j == 0 {
                return;
            }
            if self.parked[ci] || c.done() {
                continue; // frozen until a completion (bounded by ev_cpu)
            }
            if c.blocked_write.is_some() || c.stall_until > now || c.op_issued {
                return; // nonlinear now: step per-cycle
            }
            let o = c.fetched - c.retired;
            let jc = match c.reads.front() {
                None => {
                    if c.trace_done() {
                        // Pure drain; stop short of the finish edge.
                        if o > w {
                            (o - 1) / w
                        } else {
                            0
                        }
                    } else if c.gap_left >= w && o >= w {
                        c.gap_left / w
                    } else {
                        0
                    }
                }
                Some(f) if f.done => 0,
                Some(f) if f.rob_pos > c.retired => {
                    let to_block = (f.rob_pos - c.retired) / w;
                    if c.trace_done() {
                        to_block
                    } else if c.gap_left >= w {
                        to_block.min(c.gap_left / w)
                    } else {
                        0
                    }
                }
                Some(_) => {
                    // Undone head read: retirement frozen.
                    let space = self.cfg.rob_size - o;
                    if c.trace_done() || space == 0 {
                        u64::MAX // fully frozen until its completion
                    } else if c.gap_left >= w && space >= w {
                        (space / w).min(c.gap_left / w)
                    } else {
                        0
                    }
                }
            };
            j = j.min(jc);
        }
        if j == 0 {
            return;
        }
        for (ci, c) in self.cores.iter_mut().enumerate() {
            if self.parked[ci] || c.done() {
                continue;
            }
            let insts = j * w;
            match c.reads.front() {
                None => {
                    if c.trace_done() {
                        c.retired += insts;
                    } else {
                        c.fetched += insts;
                        c.retired += insts;
                        c.gap_left -= insts;
                    }
                }
                Some(f) if f.rob_pos > c.retired => {
                    c.retired += insts;
                    if !c.trace_done() {
                        c.fetched += insts;
                        c.gap_left -= insts;
                    }
                }
                Some(_) => {
                    if !c.trace_done() && self.cfg.rob_size > c.fetched - c.retired {
                        c.fetched += insts;
                        c.gap_left -= insts;
                    }
                }
            }
        }
        self.cycle = now + j;
    }

    /// When nothing is in flight anywhere, jump time to the next event:
    /// pure gap-crunching proceeds at `width` instructions per cycle.
    fn try_fast_forward(&mut self) {
        if !self.mem.is_idle() || !self.pending_meta.is_empty() {
            return;
        }
        if self
            .cores
            .iter()
            .any(|c| !c.reads.is_empty() || c.blocked_write.is_some() || c.stall_until > self.cycle)
        {
            return;
        }
        // Cycles until any core reaches its next memory op (bounded by
        // ROB drain, which is also width-limited -> gap/width is exact
        // only when the ROB never fills; be conservative by half).
        let mut jump = u64::MAX;
        for c in &self.cores {
            if c.done() {
                continue;
            }
            let insts = c.gap_left + (c.fetched - c.retired);
            jump = jump.min(insts / (2 * self.cfg.width));
        }
        // The RAS fault process needs the clock at its next arrival,
        // drill, or patrol slot: never jump past it.
        if let Some(ras) = &self.ras {
            let ev_cpu = ras.next_event(false).saturating_mul(CPU_PER_DRAM_CYCLE);
            jump = jump.min(ev_cpu.saturating_sub(self.cycle));
        }
        // Likewise the next enclave arrival: idle slots may only sleep
        // until their session's admission time.
        if let Some(ready) = self.churn.as_ref().and_then(ChurnDriver::next_ready) {
            jump = jump.min(ready.saturating_sub(self.cycle));
        }
        if jump == u64::MAX || jump < 8 {
            return;
        }
        // Bulk-run each core for `jump` cycles of pure instruction flow.
        for c in &mut self.cores {
            if c.done() {
                continue;
            }
            let mut work = jump * self.cfg.width;
            // Retire backlog first (these insts are already fetched).
            let backlog = (c.fetched - c.retired).min(work);
            c.retired += backlog;
            work -= backlog;
            let gap = c.gap_left.min(work);
            c.fetched += gap;
            c.retired += gap;
            c.gap_left -= gap;
        }
        self.cycle += jump;
        for c in &mut self.cores {
            if c.done() && c.finish.is_none() {
                c.finish = Some(self.cycle);
            }
        }
        self.mem.fast_forward(self.cycle / CPU_PER_DRAM_CYCLE);
    }

    /// Event-driven idle skip: when every core is provably stalled on a
    /// *timed* event — a DRAM wake-up (completion, queue space, refresh),
    /// a `stall_until` deadline, a RAS arrival/patrol slot, or a churn
    /// admission — jump the clock to the earliest such event instead of
    /// ticking through cycles that are guaranteed no-ops.
    ///
    /// Complements [`try_fast_forward`](Self::try_fast_forward), which
    /// only fires when nothing is in flight anywhere: this skip fires
    /// *while* requests are in flight, bridging the dead CPU cycles
    /// between DRAM events. Soundness rests on the channel contract
    /// ([`MemorySystem::next_event`]): ticks strictly before the wake-up
    /// are no-ops as long as nothing is enqueued in between, and we only
    /// skip when no core, metadata drain, RAS hook, or churn event can
    /// enqueue anything.
    fn try_event_skip(&mut self) {
        let cur_dram = self.cycle / CPU_PER_DRAM_CYCLE;
        // Earliest CPU cycle at which a memory event can fire: the
        // system's wake-up, clamped to the next DRAM tick boundary.
        let dram_to_cpu = |ev: u64| match ev {
            u64::MAX => u64::MAX,
            e => e.max(cur_dram + 1).saturating_mul(CPU_PER_DRAM_CYCLE),
        };
        let mut target = dram_to_cpu(self.mem.next_event());

        // Queued metadata the next DRAM tick could drain makes that
        // tick a real event; a blocked head waits on queue space, which
        // only frees at the memory wake-up already in `target`.
        if let Some(&(addr, is_write)) = self.pending_meta.front() {
            let ok = if is_write {
                self.mem.can_accept_write(addr)
            } else {
                self.mem.can_accept_read(addr)
            };
            if ok {
                return;
            }
        }

        if let Some(ras) = &self.ras {
            if !ras.pending_retires.is_empty() {
                return; // retirements execute at the next DRAM tick
            }
            target = target.min(dram_to_cpu(ras.next_event(false)));
        }

        if let Some(ch) = &self.churn {
            for s in 0..self.cores.len() {
                if ch.live[s] {
                    // A fireable page free or a drained session acts on
                    // the very next `churn_tick`.
                    if ch.frees[s]
                        .front()
                        .is_some_and(|f| f.after_record < self.cores[s].pos)
                        || self.cores[s].done()
                    {
                        return;
                    }
                }
            }
            if let Some(ready) = ch.next_ready() {
                if ready <= self.cycle {
                    return; // an admission is due (or retrying) now
                }
                target = target.min(ready);
            }
        }

        // Parked cores are provably frozen until a read completion, and
        // completions only happen at memory work ticks — already bounded
        // by `target`. (Their `stall_until` deadlines are unobservable
        // while parked: fetch stays ROB- or trace-blocked regardless.)
        if self.nparked == self.cores.len() {
            let lim = if self.mem.is_idle() {
                CPU_PER_DRAM_CYCLE
            } else {
                1
            };
            if target == u64::MAX || target <= self.cycle + lim {
                return;
            }
            self.cycle = target - 1;
            return;
        }

        for core in &self.cores {
            // Retire side. A blocked write drains as soon as the queue
            // has space; an undone head read waits on its completion.
            if let Some(addr) = core.blocked_write {
                if self.mem.can_accept_write(addr) {
                    return;
                }
            } else if core.retired < core.fetched {
                match core.reads.front() {
                    Some(front) if front.rob_pos == core.retired => {
                        if front.done {
                            return; // head read retires now
                        }
                    }
                    _ => return, // plain instructions retire every cycle
                }
            }
            // Fetch side.
            if core.stall_until > self.cycle {
                target = target.min(core.stall_until);
                continue;
            }
            if core.trace_done() || core.rob_occupancy() >= self.cfg.rob_size {
                continue; // nothing to fetch / unblocks only via retire
            }
            if core.gap_left > 0 || core.op_issued {
                return; // gap instructions or a record advance fetch now
            }
            // At a memory-op boundary. Churn translation has lifecycle
            // side effects we must not reason past: stay conservative.
            if self.churn.is_some() {
                return;
            }
            let rec = core.trace[core.pos];
            if rec.op == MemOp::Write {
                return; // writes always fetch (possibly into blocked_write)
            }
            if self.mem.can_accept_read(self.frame_addr(rec.paddr)) {
                return; // the read issues now
            }
            // Read blocked on queue space: waits on the memory wake-up.
        }

        // Sub-DRAM-tick skips (bridging the dead CPU cycles between
        // consecutive DRAM ticks) are taken only while the memory
        // system still has work: the loop cannot exit before the next
        // memory event then, so the jump cannot overshoot the recorded
        // end-of-run cycle. Once memory drains, fall back to whole-tick
        // skips so the exit check runs at the same cycle it always did.
        let lim = if self.mem.is_idle() {
            CPU_PER_DRAM_CYCLE
        } else {
            1
        };
        if target == u64::MAX || target <= self.cycle + lim {
            return; // nothing to gain (or a genuine deadlock: let the
                    // max_cycles guard report it)
        }
        // Land exactly on the event cycle: the loop's `+= 1` follows.
        self.cycle = target - 1;
    }

    /// Serialize the complete simulation state — clock, DRAM, engine,
    /// cores, in-flight bookkeeping, RAS fault process, and churn
    /// driver — for a crash-recovery checkpoint. Core traces are stored
    /// verbatim for churn runs (sessions swap traces at admission);
    /// static traces are construction inputs and only length-checked.
    ///
    /// # Panics
    /// Panics if DRAM command logging is enabled (logs are unbounded
    /// diagnostic state, not checkpointable) or a fatal RAS error is
    /// pending.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.section("SYST", 1);
        w.u64(self.cycle);
        w.bool(self.ras.is_some());
        w.bool(self.churn.is_some());
        self.mem.save_state(w);
        self.engine.save_state(w);
        if let Some(ch) = &self.churn {
            ch.save_state(w);
        }
        if let Some(ras) = &self.ras {
            ras.save_state(w);
        }
        let inline_traces = self.churn.is_some();
        w.seq(self.cores.iter(), |w, c| {
            if inline_traces {
                w.seq(c.trace.iter(), |w, r| {
                    w.u32(r.gap);
                    w.u8(match r.op {
                        MemOp::Read => 0,
                        MemOp::Write => 1,
                    });
                    w.u64(r.paddr);
                });
            } else {
                w.usize(c.trace.len());
            }
            w.usize(c.pos);
            w.u64(c.gap_left);
            w.bool(c.op_issued);
            w.u64(c.fetched);
            w.u64(c.retired);
            w.seq(c.reads.iter(), |w, p| {
                w.u64(p.rob_pos);
                w.bool(p.done);
            });
            w.opt_u64(c.blocked_write);
            w.u64(c.stall_until);
            w.opt_u64(c.finish);
        });
        let mut tags: Vec<_> = self.tags.iter().map(|(&id, &t)| (id, t)).collect();
        tags.sort_unstable_by_key(|&(id, _)| id);
        w.seq(tags.iter(), |w, &(id, t)| {
            w.u64(id);
            w.usize(t.core);
            w.u64(t.rob_pos);
        });
        w.seq(self.pending_meta.iter(), |w, &(addr, is_write)| {
            w.u64(addr);
            w.bool(is_write);
        });
        w.seq(self.leaf_maps.iter(), |w, lm| {
            let mut entries: Vec<_> = lm.map.iter().map(|(&p, &l)| (p, l)).collect();
            entries.sort_unstable();
            w.seq(entries.iter(), |w, &(p, l)| {
                w.u64(p);
                w.u64(l);
            });
            w.u64(lm.next);
        });
        let mut locs: Vec<_> = self
            .ras_loc
            .iter()
            .map(|(&b, &(part, rb))| (b, part, rb))
            .collect();
        locs.sort_unstable();
        w.seq(locs.iter(), |w, &(b, part, rb)| {
            w.u64(b);
            w.usize(part);
            w.u64(rb);
        });
        w.seq(self.parked.iter(), |w, &p| w.bool(p));
    }

    /// Restore from [`Self::save_state`] bytes into a system freshly
    /// built with the same configuration and workload. After this the
    /// run continues deterministically from the captured cycle.
    pub fn load_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        r.section("SYST", 1)?;
        self.cycle = r.u64("system cycle")?;
        let has_ras = r.bool("ras present")?;
        let has_churn = r.bool("churn present")?;
        if has_ras != self.ras.is_some() || has_churn != self.churn.is_some() {
            return Err(SnapError::Corrupt {
                what: "system shape (snapshot from a different configuration)",
                at: r.pos(),
            });
        }
        self.mem.load_state(r)?;
        self.engine.load_state(r)?;
        if let Some(ch) = &mut self.churn {
            ch.load_state(r)?;
        }
        if let Some(ras) = &mut self.ras {
            ras.load_state(r)?;
        }
        let ncores = r.seq_len("system cores")?;
        if ncores != self.cores.len() {
            return Err(SnapError::Corrupt {
                what: "core count (snapshot from a different configuration)",
                at: r.pos(),
            });
        }
        for c in &mut self.cores {
            if has_churn {
                let n = r.seq_len("core trace")?;
                let mut trace = Vec::with_capacity(n);
                for _ in 0..n {
                    let gap = r.u32("record gap")?;
                    let op = match r.u8("record op")? {
                        0 => MemOp::Read,
                        1 => MemOp::Write,
                        _ => {
                            return Err(SnapError::Corrupt {
                                what: "record op tag",
                                at: r.pos(),
                            })
                        }
                    };
                    let paddr = r.u64("record paddr")?;
                    trace.push(PhysRecord { gap, op, paddr });
                }
                c.trace = trace;
            } else {
                let n = r.usize("trace length")?;
                if n != c.trace.len() {
                    return Err(SnapError::Corrupt {
                        what: "trace length (snapshot from a different workload)",
                        at: r.pos(),
                    });
                }
            }
            c.pos = r.usize("core pos")?;
            c.gap_left = r.u64("core gap_left")?;
            c.op_issued = r.bool("core op_issued")?;
            c.fetched = r.u64("core fetched")?;
            c.retired = r.u64("core retired")?;
            let n = r.seq_len("pending reads")?;
            let mut reads = VecDeque::with_capacity(n);
            for _ in 0..n {
                let rob_pos = r.u64("read rob_pos")?;
                let done = r.bool("read done")?;
                reads.push_back(PendingRead { rob_pos, done });
            }
            c.reads = reads;
            c.blocked_write = r.opt_u64("blocked write")?;
            c.stall_until = r.u64("core stall_until")?;
            c.finish = r.opt_u64("core finish")?;
        }
        let n = r.seq_len("request tags")?;
        let mut tags = HashMap::with_capacity(n);
        for _ in 0..n {
            let id = r.u64("tag id")?;
            let core = r.usize("tag core")?;
            let rob_pos = r.u64("tag rob_pos")?;
            if core >= self.cores.len() {
                return Err(SnapError::Corrupt {
                    what: "tag core index",
                    at: r.pos(),
                });
            }
            tags.insert(id, ReqTag { core, rob_pos });
        }
        self.tags = tags;
        let n = r.seq_len("pending metadata")?;
        let mut pending = VecDeque::with_capacity(n);
        for _ in 0..n {
            let addr = r.u64("pending addr")?;
            let is_write = r.bool("pending is_write")?;
            pending.push_back((addr, is_write));
        }
        self.pending_meta = pending;
        let n = r.seq_len("leaf maps")?;
        if n != self.leaf_maps.len() {
            return Err(SnapError::Corrupt {
                what: "leaf-map count",
                at: r.pos(),
            });
        }
        for lm in &mut self.leaf_maps {
            let n = r.seq_len("leaf map entries")?;
            let mut map = HashMap::with_capacity(n);
            for _ in 0..n {
                let p = r.u64("leaf map page")?;
                let l = r.u64("leaf map leaf")?;
                map.insert(p, l);
            }
            let next = r.u64("leaf map next")?;
            *lm = LeafMap { map, next };
        }
        let n = r.seq_len("ras locations")?;
        let mut locs = HashMap::with_capacity(n);
        for _ in 0..n {
            let b = r.u64("loc block")?;
            let part = r.usize("loc partition")?;
            let rb = r.u64("loc rblock")?;
            locs.insert(b, (part, rb));
        }
        self.ras_loc = locs;
        let n = r.seq_len("parked flags")?;
        if n != self.parked.len() {
            return Err(SnapError::Corrupt {
                what: "parked-flag count",
                at: r.pos(),
            });
        }
        for p in &mut self.parked {
            *p = r.bool("parked")?;
        }
        self.nparked = self.parked.iter().filter(|&&p| p).count();
        self.comp_buf.clear();
        Ok(())
    }

    fn finish_run(mut self) -> RunResult {
        // Drain dirty metadata state so its write traffic is accounted.
        let leftovers = self.engine.drain();
        let extra_writes = leftovers.len() as u64;

        let ras = match self.ras.as_mut() {
            Some(r) => {
                r.finalize_stats();
                r.stats.clone()
            }
            None => RasStats::default(),
        };

        let churn = self
            .churn
            .as_ref()
            .map_or_else(ChurnStats::default, ChurnDriver::stats);

        let finishes: Vec<u64> = self
            .cores
            .iter()
            .map(|c| c.finish.unwrap_or(self.cycle))
            .collect();
        RunResult::collect(
            self.cycle,
            finishes,
            &self.engine,
            &self.mem,
            extra_writes,
            ras,
            churn,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itesp_core::Scheme;
    use itesp_trace::benchmark;

    fn run(scheme: Scheme, ops: usize) -> RunResult {
        let mp = MultiProgram::homogeneous(benchmark("mcf").unwrap(), 2, ops, 7);
        let engine = EngineConfig {
            enclaves: 2,
            ..EngineConfig::paper_default(scheme)
        };
        let cfg = SystemConfig::table_iii(DramConfig::table_iii(), engine);
        System::new(cfg, &mp).run()
    }

    #[test]
    fn unsecure_run_completes() {
        let r = run(Scheme::Unsecure, 500);
        assert!(r.cycles > 0);
        assert_eq!(r.engine.data_accesses(), 1000);
        assert_eq!(r.engine.meta_accesses(), 0);
    }

    #[test]
    fn secure_schemes_are_slower_than_unsecure() {
        let base = run(Scheme::Unsecure, 1500);
        let vault = run(Scheme::Vault, 1500);
        assert!(
            vault.cycles > base.cycles,
            "vault {} vs unsecure {}",
            vault.cycles,
            base.cycles
        );
    }

    #[test]
    fn itesp_beats_synergy() {
        let syn = run(Scheme::Synergy, 1500);
        let itesp = run(Scheme::Itesp, 1500);
        assert!(
            itesp.cycles < syn.cycles,
            "itesp {} vs synergy {}",
            itesp.cycles,
            syn.cycles
        );
    }

    #[test]
    fn metadata_traffic_reaches_dram() {
        let r = run(Scheme::Vault, 500);
        let dram_total = r.dram.reads + r.dram.writes;
        assert!(
            dram_total > r.engine.data_accesses(),
            "metadata must add DRAM traffic: {dram_total}"
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = run(Scheme::Itesp, 400);
        let b = run(Scheme::Itesp, 400);
        assert_eq!(a.cycles, b.cycles);
    }
}
