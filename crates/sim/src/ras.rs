//! Online RAS pipeline: runtime fault injection, correction traffic,
//! patrol scrubbing, and page retirement inside the timing loop.
//!
//! The rest of the workspace computes the paper's reliability numbers
//! *analytically* (Table II) or exercises the chipkill decoder on
//! standalone codewords. This module is the runtime half: a fault
//! process (seeded Poisson arrivals plus scripted chip-kill drills)
//! plants [`Fault`]s into live DRAM state; demand and patrol reads
//! detect corruption via MAC mismatch and trigger the scheme-correct
//! recovery flow as *real* DRAM traffic — the parity fetch (per-block
//! line, shared-parity line, or the ITESP tree leaf) plus the N−1
//! cross-rank group reads for reconstruction — followed by a
//! corrected-data writeback (demand scrub). A leaky-bucket error log
//! retires pages with repeated correctable errors, remapping their
//! leaf-ids through the paper's indirection layer; retirement that
//! breaks a cross-rank parity group without rebuilding it degrades the
//! group to detection-only, and a later fault there is a typed
//! [`RasError`], not a panic.
//!
//! Faulty codewords are decoded *for real*: block contents are
//! materialized deterministically from the address, MACed with a
//! run-seeded key, corrupted through [`itesp_reliability::inject`], and
//! pushed through [`verify_and_correct`] / [`correct_shared`] — so SDC
//! and DUE classifications come from the actual decoder, not a lookup
//! table.
//!
//! Modeling decisions (see DESIGN.md §5):
//! * Recovery grouping is computed in the *physical* block domain with
//!   the engine's `rank_stride_blocks`, matching the cross-rank layout
//!   every scheme's parity assumes; the parity *line address* comes
//!   from [`itesp_core::SecurityEngine::recovery_parity_addr`] so it
//!   lands in the right metadata structure per scheme.
//! * MAC counters are fixed at 1 for materialized codewords: fault
//!   detection depends on MAC mismatch, not on counter history.
//! * Detection is accounted when the read is *issued* (the check rides
//!   the read); recovery traffic is queued behind it in program order.

use std::collections::{HashMap, HashSet};
use std::fmt;

use itesp_snap::{SnapError, SnapReader, SnapWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use itesp_core::mac::{mac_block, MacKey};
use itesp_dram::AddressDecoder;
use itesp_reliability::{
    column_parity, correct_shared, inject, verify_and_correct, CodeWord, Correction, Fault,
    Scrubber,
};
use itesp_trace::PAGE_BYTES;

/// Base address of the spare-frame region pages are retired into: far
/// above the data span and every metadata stripe (64 GB data + a few
/// GB of per-enclave metadata), so spare frames never collide.
pub const SPARE_FRAME_BASE: u64 = 1 << 42;

/// Patrol reads issued per DRAM cycle while a scrub-on-detect burst
/// pass is draining.
const BURST_READS_PER_CYCLE: usize = 4;

/// A scripted fault drill: kill chip `chip` of (`channel`, `rank`) at
/// DRAM cycle `at_dram_cycle`. The chip stays dead for the rest of the
/// run — every block in that rank reads back corrupted until corrected
/// (and re-corrupted on the next read, like real dead silicon).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Drill {
    pub at_dram_cycle: u64,
    pub channel: u32,
    pub rank: u32,
    pub chip: u8,
}

/// Runtime RAS configuration, attached to
/// [`SystemConfig`](crate::SystemConfig).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RasConfig {
    /// Seed for the fault process (arrival times, fault classes, chip
    /// garbage) and the materialized-codeword MAC key.
    pub seed: u64,
    /// Poisson fault-arrival rate, faults per million DRAM cycles
    /// (0 = no random faults; drills still fire).
    pub fault_rate_per_mcycle: f64,
    /// Scripted chip-kill drills, any order (sorted internally).
    pub drills: Vec<Drill>,
    /// DRAM cycles between background patrol-scrub reads (0 = no
    /// patrol).
    pub patrol_interval: u64,
    /// Leaky-bucket level at which a page is retired (0 = never
    /// retire). Only *transient* (block-level) corrected errors fill
    /// buckets; a dead chip is a device-replacement event, not a page
    /// problem.
    pub retire_threshold: u32,
    /// DRAM cycles between leaky-bucket decrements (0 = buckets never
    /// leak).
    pub leak_interval: u64,
    /// Scrub policy/accounting; `scrub_on_detect` triggers a burst
    /// patrol pass over the whole footprint after any corrected error.
    pub scrubber: Scrubber,
    /// Rebuild parity for groups that lose a member to page retirement
    /// (extra read/write traffic). When `false`, such groups degrade to
    /// detection-only and a later fault there is a [`RasError`].
    pub rebuild_parity_on_retire: bool,
    /// Abort the run with a typed [`RasError`] on the first
    /// detected-but-uncorrectable error instead of counting it.
    pub halt_on_due: bool,
}

impl RasConfig {
    /// A quiet pipeline: no random faults, moderate patrol, retirement
    /// after 4 strikes, scrub-on-detect enabled.
    pub fn new(seed: u64) -> Self {
        RasConfig {
            seed,
            fault_rate_per_mcycle: 0.0,
            drills: Vec::new(),
            patrol_interval: 1024,
            retire_threshold: 4,
            leak_interval: 1 << 20,
            scrubber: Scrubber::hourly().with_scrub_on_detect(),
            rebuild_parity_on_retire: true,
            halt_on_due: false,
        }
    }

    /// Add a Poisson fault process at `rate` faults per million DRAM
    /// cycles.
    pub fn with_fault_rate(mut self, rate: f64) -> Self {
        self.fault_rate_per_mcycle = rate;
        self
    }

    /// Add a scripted chip-kill drill.
    pub fn with_drill(mut self, drill: Drill) -> Self {
        self.drills.push(drill);
        self
    }
}

/// Everything the RAS pipeline measured in one run; attached to
/// [`RunResult`](crate::RunResult) (all zeros when RAS was off).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RasStats {
    /// Random faults planted by the Poisson process.
    pub faults_injected: u64,
    /// Scripted drills executed.
    pub drills_executed: u64,
    /// Reads whose MAC check failed (demand + patrol).
    pub detections: u64,
    /// Detections corrected back to the original data.
    pub corrections: u64,
    /// Silent data corruptions: corrupted data consumed with no MAC to
    /// catch it, or a MAC-collision miscorrection.
    pub sdc_events: u64,
    /// Detected-but-uncorrectable events (all causes).
    pub due_events: u64,
    /// The subset of `due_events` caused by a parity group degraded by
    /// page retirement (chipkill lost, detection retained).
    pub degraded_due: u64,
    /// Parity-line fetches issued for recovery.
    pub parity_reads: u64,
    /// Cross-rank companion reads issued for shared-parity
    /// reconstruction.
    pub companion_reads: u64,
    /// Corrected-data writebacks (demand scrub).
    pub scrub_writebacks: u64,
    /// Background patrol-scrub reads issued.
    pub patrol_reads: u64,
    /// Complete patrol passes over the live footprint.
    pub patrol_passes: u64,
    /// Pages retired by the leaky-bucket error log.
    pub pages_retired: u64,
    /// Block reads/writes migrating retired pages to spare frames.
    pub migration_reads: u64,
    pub migration_writes: u64,
    /// Reads/writes rebuilding parity groups broken by retirement.
    pub parity_rebuild_reads: u64,
    pub parity_rebuild_writes: u64,
    /// Parity groups degraded to detection-only by retirement.
    pub broken_groups: u64,
    /// Scrubber bookkeeping (copied out at end of run).
    pub scrubs_run: u64,
    pub errors_cleared: u64,
    /// Worst observed inter-scrub gap, DRAM cycles.
    pub worst_scrub_gap_cycles: u64,
}

impl RasStats {
    /// Extra DRAM reads the pipeline issued beyond the fault-free run.
    pub fn extra_reads(&self) -> u64 {
        self.parity_reads
            + self.companion_reads
            + self.patrol_reads
            + self.migration_reads
            + self.parity_rebuild_reads
    }

    /// Extra DRAM writes the pipeline issued beyond the fault-free run.
    pub fn extra_writes(&self) -> u64 {
        self.scrub_writebacks + self.migration_writes + self.parity_rebuild_writes
    }

    /// Detections that did not end in a correction.
    pub fn uncorrected(&self) -> u64 {
        self.due_events + self.sdc_events
    }
}

/// A detected-but-uncorrectable error, reported as a typed error when
/// [`RasConfig::halt_on_due`] is set (degraded mode never panics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RasError {
    /// No reconstruction produced a matching MAC (or the scheme has no
    /// parity at all): Table II's Case 3/4 DUE class.
    Uncorrectable { addr: u64, dram_cycle: u64 },
    /// The block's parity group lost a member to page retirement and
    /// was not rebuilt: chipkill coverage is gone, detection remains.
    ChipkillLost {
        addr: u64,
        group: u64,
        dram_cycle: u64,
    },
}

impl fmt::Display for RasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RasError::Uncorrectable { addr, dram_cycle } => write!(
                f,
                "detected-but-uncorrectable error at {addr:#x} (DRAM cycle {dram_cycle})"
            ),
            RasError::ChipkillLost {
                addr,
                group,
                dram_cycle,
            } => write!(
                f,
                "error at {addr:#x} in parity group {group} degraded by page retirement \
                 (DRAM cycle {dram_cycle}): chipkill lost, detection only"
            ),
        }
    }
}

impl std::error::Error for RasError {}

/// What a checked read turned out to be; the system translates this
/// into recovery traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ReadCheck {
    /// No fault present.
    Clean,
    /// Fault present but the word verified clean (XOR-cancelled).
    Benign,
    /// Corrupted data consumed silently (no MAC, or miscorrected).
    Silent,
    /// Detected, but the scheme has no parity to reconstruct from.
    DetectedOnly,
    /// Detected in a retirement-degraded group: no reconstruction
    /// attempted.
    Degraded,
    /// Detected and corrected; reconstruction read the group's
    /// `companions` (empty for per-block parity).
    Corrected { companions: Vec<u64> },
    /// Reconstruction was attempted over `companions` but failed
    /// (multi-device corruption in the group).
    Due { companions: Vec<u64> },
}

/// SplitMix64, for deterministic per-address material.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Runtime fault state and RAS bookkeeping for one simulation.
#[derive(Debug)]
pub(crate) struct RasEngine {
    pub(crate) cfg: RasConfig,
    /// RNG for the fault process (arrivals, classes, target picks).
    rng: StdRng,
    /// MAC key for materialized codewords.
    key: MacKey,
    /// Blocks one correction parity covers (0 = no parity, 1 =
    /// per-block, N = cross-rank group).
    share: u64,
    /// Rank-rotation stride in blocks (group member spacing).
    stride: u64,
    /// Whether the scheme can detect corruption at all (has a MAC).
    detects: bool,
    /// Dead chips by (channel, rank), from drills.
    dead_chips: HashMap<(u32, u32), u8>,
    /// Transient faults planted on specific blocks (current physical
    /// address -> fault).
    block_faults: HashMap<u64, Fault>,
    /// Touched data blocks in first-touch order (the patrol walk).
    footprint: Vec<u64>,
    live: HashSet<u64>,
    patrol_pos: usize,
    next_patrol: u64,
    /// Patrol reads left in the current scrub-on-detect burst pass.
    burst_remaining: usize,
    /// Next Poisson fault arrival, DRAM cycles (`u64::MAX` = never).
    next_arrival: u64,
    /// Pending drills, sorted by cycle; `drill_pos` advances past fired
    /// ones.
    drills: Vec<Drill>,
    drill_pos: usize,
    /// Leaky buckets: physical page -> correctable-error count.
    buckets: HashMap<u64, u32>,
    next_leak: u64,
    /// Retirement indirection: original page -> current physical page,
    /// and the reverse for chained retirement.
    forward: HashMap<u64, u64>,
    reverse: HashMap<u64, u64>,
    spare_pages: u64,
    /// Pages whose retirement is decided but not yet executed (the
    /// migration runs at the next DRAM tick, outside the fetch path).
    pub(crate) pending_retires: Vec<u64>,
    /// Parity groups degraded to detection-only by retirement.
    broken_groups: HashSet<u64>,
    pub(crate) scrubber: Scrubber,
    pub(crate) stats: RasStats,
    pub(crate) fatal: Option<RasError>,
}

impl RasEngine {
    pub(crate) fn new(cfg: RasConfig, share: u64, stride: u64, detects: bool) -> Self {
        let mut drills = cfg.drills.clone();
        drills.sort_by_key(|d| d.at_dram_cycle);
        let key = MacKey::derive(cfg.seed ^ 0x5EED_0BA5, 0);
        let mut e = RasEngine {
            rng: StdRng::seed_from_u64(cfg.seed),
            key,
            share,
            stride: stride.max(1),
            detects,
            dead_chips: HashMap::new(),
            block_faults: HashMap::new(),
            footprint: Vec::new(),
            live: HashSet::new(),
            patrol_pos: 0,
            next_patrol: cfg.patrol_interval.max(1),
            burst_remaining: 0,
            next_arrival: u64::MAX,
            drills,
            drill_pos: 0,
            buckets: HashMap::new(),
            next_leak: cfg.leak_interval.max(1),
            forward: HashMap::new(),
            reverse: HashMap::new(),
            spare_pages: 0,
            pending_retires: Vec::new(),
            broken_groups: HashSet::new(),
            scrubber: cfg.scrubber,
            stats: RasStats::default(),
            fatal: None,
            cfg,
        };
        e.schedule_arrival(0);
        e
    }

    /// Translate an original physical address through the retirement
    /// map.
    pub(crate) fn translate(&self, paddr: u64) -> u64 {
        let page = paddr / PAGE_BYTES;
        match self.forward.get(&page) {
            Some(&cur) => cur * PAGE_BYTES + paddr % PAGE_BYTES,
            None => paddr,
        }
    }

    /// Record a demand access: the block joins the patrol footprint;
    /// writes clear any planted transient fault (fresh data overwrites
    /// the upset; dead chips of course persist).
    pub(crate) fn on_data_access(&mut self, addr: u64, is_write: bool) {
        let block = addr & !63;
        if self.live.insert(block) {
            self.footprint.push(block);
        }
        if is_write {
            self.block_faults.remove(&block);
        }
    }

    fn schedule_arrival(&mut self, dram_now: u64) {
        if self.cfg.fault_rate_per_mcycle <= 0.0 {
            self.next_arrival = u64::MAX;
            return;
        }
        let u: f64 = self.rng.gen();
        let gap = -(1.0 - u).ln() / (self.cfg.fault_rate_per_mcycle / 1e6);
        let gap = if gap.is_finite() {
            gap.ceil() as u64
        } else {
            1
        };
        self.next_arrival = dram_now.saturating_add(gap.max(1));
    }

    /// The next DRAM cycle at which the fault process or scrubber needs
    /// the clock (bounds fast-forward jumps). `u64::MAX` once the
    /// workload is done — the pipeline winds down so the run can drain.
    pub(crate) fn next_event(&self, cores_done: bool) -> u64 {
        if cores_done {
            return u64::MAX;
        }
        let mut e = self.next_arrival;
        if let Some(d) = self.drills.get(self.drill_pos) {
            e = e.min(d.at_dram_cycle);
        }
        if !self.footprint.is_empty() {
            if self.burst_remaining > 0 {
                return 0;
            }
            if self.cfg.patrol_interval > 0 {
                e = e.min(self.next_patrol);
            }
        }
        e
    }

    /// Advance the fault process to `dram_now`: fire due drills, plant
    /// due Poisson faults, leak buckets, and emit the patrol reads due
    /// this cycle (burst passes first).
    pub(crate) fn tick(&mut self, dram_now: u64) -> Vec<u64> {
        while let Some(d) = self.drills.get(self.drill_pos) {
            if d.at_dram_cycle > dram_now {
                break;
            }
            self.dead_chips.insert((d.channel, d.rank), d.chip);
            self.stats.drills_executed += 1;
            self.drill_pos += 1;
        }

        while self.next_arrival <= dram_now {
            if !self.footprint.is_empty() {
                // Pick a live block; a few retries skate past retired
                // entries.
                for _ in 0..8 {
                    let idx = self.rng.gen_range(0..self.footprint.len());
                    let addr = self.footprint[idx];
                    if self.live.contains(&addr) {
                        let fault = Fault::random(&mut self.rng);
                        self.block_faults.insert(addr, fault);
                        self.stats.faults_injected += 1;
                        break;
                    }
                }
            }
            self.schedule_arrival(dram_now);
        }

        if self.cfg.leak_interval > 0 && dram_now >= self.next_leak {
            self.buckets.retain(|_, level| {
                *level = level.saturating_sub(1);
                *level > 0
            });
            self.next_leak = dram_now + self.cfg.leak_interval;
        }

        let mut reads = Vec::new();
        if !self.footprint.is_empty() {
            if self.burst_remaining > 0 {
                let n = self.burst_remaining.min(BURST_READS_PER_CYCLE);
                for _ in 0..n {
                    if let Some(addr) = self.patrol_next(dram_now) {
                        reads.push(addr);
                    }
                    self.burst_remaining -= 1;
                }
            } else if self.cfg.patrol_interval > 0 && dram_now >= self.next_patrol {
                if let Some(addr) = self.patrol_next(dram_now) {
                    reads.push(addr);
                }
                self.next_patrol = dram_now + self.cfg.patrol_interval;
            }
        }
        reads
    }

    /// Next live block on the patrol walk; wrapping completes a pass.
    fn patrol_next(&mut self, dram_now: u64) -> Option<u64> {
        for _ in 0..=self.footprint.len() {
            if self.patrol_pos >= self.footprint.len() {
                self.patrol_pos = 0;
                self.stats.patrol_passes += 1;
                self.scrubber.on_periodic_scrub(dram_now);
            }
            let addr = self.footprint[self.patrol_pos];
            self.patrol_pos += 1;
            if self.live.contains(&addr) {
                return Some(addr);
            }
        }
        None
    }

    /// Deterministic "stored" contents of a block: what an uncorrupted
    /// read would return.
    fn pristine(&self, addr: u64) -> CodeWord {
        let mut data = [0u8; 64];
        let mut x = splitmix(addr ^ 0xB10C_DA7A);
        for chunk in data.chunks_mut(8) {
            x = splitmix(x);
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        let mac = mac_block(&self.key, &data, 1, addr);
        CodeWord::new(data, mac)
    }

    /// Faults affecting a read of `addr` right now: a dead chip in its
    /// rank, plus any planted block fault.
    fn faults_at(&self, addr: u64, decoder: &AddressDecoder) -> Vec<Fault> {
        let mut v = Vec::new();
        let d = decoder.decode(addr);
        if let Some(&chip) = self.dead_chips.get(&(d.channel, d.rank)) {
            v.push(Fault::Chip { chip });
        }
        if let Some(&f) = self.block_faults.get(&(addr & !63)) {
            v.push(f);
        }
        v
    }

    /// The word a read of `addr` returns: pristine contents with every
    /// active fault injected. Injection garbage is derived from the
    /// address and run seed so repeated reads are deterministic.
    fn word_as_read(&self, addr: u64, decoder: &AddressDecoder) -> CodeWord {
        let mut word = self.pristine(addr);
        let faults = self.faults_at(addr, decoder);
        if !faults.is_empty() {
            let mut grng = StdRng::seed_from_u64(splitmix(self.cfg.seed ^ addr));
            for f in faults {
                inject(&mut word, f, &mut grng);
            }
        }
        word
    }

    /// All members of `block`'s cross-rank parity group (including
    /// itself), in rank order.
    fn group_blocks(&self, block: u64) -> Vec<u64> {
        let window = self.stride * self.share;
        let base = (block / window) * window + block % self.stride;
        (0..self.share).map(|k| base + k * self.stride).collect()
    }

    /// Stable id of `block`'s parity group (physical domain).
    fn group_id(&self, block: u64) -> u64 {
        let window = self.stride * self.share;
        (block / window) * self.stride + block % self.stride
    }

    /// Run the real decoder on `addr` as read; returns the outcome and
    /// whether the fixed word matches the pristine contents.
    fn decode(&self, addr: u64, decoder: &AddressDecoder) -> (Correction, bool, Vec<u64>) {
        let pristine = self.pristine(addr);
        let word = self.word_as_read(addr, decoder);
        if self.share <= 1 {
            let parity = column_parity(&pristine);
            let (c, fixed) = verify_and_correct(&word, parity, &self.key, 1, addr);
            (c, fixed == pristine, Vec::new())
        } else {
            let block = addr / 64;
            let members = self.group_blocks(block);
            let mut companions = Vec::with_capacity(members.len() - 1);
            let mut companion_words = Vec::with_capacity(members.len() - 1);
            let mut shared = 0u64;
            for &m in &members {
                shared ^= column_parity(&self.pristine(m * 64));
                if m != block {
                    companions.push(m * 64);
                    companion_words.push(self.word_as_read(m * 64, decoder));
                }
            }
            let (c, fixed) = correct_shared(&word, shared, &companion_words, &self.key, 1, addr);
            (c, fixed == pristine, companions)
        }
    }

    fn raise(&mut self, err: RasError) {
        if self.cfg.halt_on_due && self.fatal.is_none() {
            self.fatal = Some(err);
        }
    }

    /// Check a read of `addr` (demand or patrol) against the live fault
    /// state and classify it, updating fault state and statistics. The
    /// caller turns the result into recovery traffic.
    pub(crate) fn check_read(
        &mut self,
        addr: u64,
        decoder: &AddressDecoder,
        dram_now: u64,
    ) -> ReadCheck {
        let block_addr = addr & !63;
        if self.faults_at(block_addr, decoder).is_empty() {
            return ReadCheck::Clean;
        }

        if !self.detects {
            // No MAC: corrupted data is consumed as-is.
            self.stats.sdc_events += 1;
            return ReadCheck::Silent;
        }

        if self.share == 0 {
            // Detection without correction (no parity anywhere).
            let word = self.word_as_read(block_addr, decoder);
            if mac_block(&self.key, &word.data, 1, block_addr) == word.mac() {
                self.block_faults.remove(&block_addr);
                return ReadCheck::Benign;
            }
            self.stats.detections += 1;
            self.stats.due_events += 1;
            self.raise(RasError::Uncorrectable {
                addr: block_addr,
                dram_cycle: dram_now,
            });
            return ReadCheck::DetectedOnly;
        }

        let block = block_addr / 64;
        if self.share > 1 && self.broken_groups.contains(&self.group_id(block)) {
            // Chipkill lost to retirement: detect, don't reconstruct.
            self.stats.detections += 1;
            self.stats.due_events += 1;
            self.stats.degraded_due += 1;
            self.raise(RasError::ChipkillLost {
                addr: block_addr,
                group: self.group_id(block),
                dram_cycle: dram_now,
            });
            return ReadCheck::Degraded;
        }

        let (correction, restored, companions) = self.decode(block_addr, decoder);
        match correction {
            Correction::Clean => {
                // The injected fault XOR-cancelled: data verifies fine.
                self.block_faults.remove(&block_addr);
                ReadCheck::Benign
            }
            Correction::Corrected { .. } => {
                self.stats.detections += 1;
                if !restored {
                    // MAC collision on the wrong candidate: silent.
                    self.stats.sdc_events += 1;
                    return ReadCheck::Silent;
                }
                self.stats.corrections += 1;
                if self.scrubber.on_error_detected(dram_now) {
                    // Scrub-on-detect: burst-patrol the whole footprint.
                    self.burst_remaining = self.burst_remaining.max(self.footprint.len());
                }
                let transient = self.block_faults.remove(&block_addr).is_some();
                if transient && self.cfg.retire_threshold > 0 {
                    let page = block_addr / PAGE_BYTES;
                    let level = self.buckets.entry(page).or_insert(0);
                    *level += 1;
                    if *level >= self.cfg.retire_threshold {
                        self.buckets.remove(&page);
                        self.pending_retires.push(page);
                    }
                }
                ReadCheck::Corrected { companions }
            }
            Correction::Ambiguous | Correction::Uncorrectable => {
                self.stats.detections += 1;
                self.stats.due_events += 1;
                self.raise(RasError::Uncorrectable {
                    addr: block_addr,
                    dram_cycle: dram_now,
                });
                ReadCheck::Due { companions }
            }
        }
    }

    /// Execute the retirement of physical page `page`: allocate a spare
    /// frame, update the indirection maps and footprint, and return the
    /// *original* page (for leaf-id remapping), the migration plan
    /// `(old_block, new_block)` pairs, and the parity groups that lose
    /// an external member. The caller emits the traffic and remaps
    /// leaf-ids.
    pub(crate) fn retire_page(&mut self, page: u64) -> (u64, Vec<(u64, u64)>, Vec<u64>) {
        let orig = self.reverse.get(&page).copied().unwrap_or(page);
        let new_page = SPARE_FRAME_BASE / PAGE_BYTES + self.spare_pages;
        self.spare_pages += 1;
        self.forward.insert(orig, new_page);
        self.reverse.remove(&page);
        self.reverse.insert(new_page, orig);
        self.stats.pages_retired += 1;

        let blocks = PAGE_BYTES / 64;
        let mut moves = Vec::with_capacity(blocks as usize);
        for b in 0..blocks {
            let old = page * PAGE_BYTES + b * 64;
            let new = new_page * PAGE_BYTES + b * 64;
            moves.push((old, new));
            // Migration rereads (and corrects) each block, so planted
            // transient faults do not follow the data.
            self.block_faults.remove(&old);
            if self.live.remove(&old) {
                self.live.insert(new);
                self.footprint.push(new);
            }
        }
        self.buckets.remove(&page);

        // Groups with members outside the page lose chipkill unless
        // rebuilt.
        let mut affected = Vec::new();
        if self.share > 1 {
            let first = page * PAGE_BYTES / 64;
            let mut seen = HashSet::new();
            for b in first..first + blocks {
                let gid = self.group_id(b);
                if !seen.insert(gid) {
                    continue;
                }
                let outside = self
                    .group_blocks(b)
                    .iter()
                    .any(|&m| m < first || m >= first + blocks);
                if outside {
                    affected.push(gid);
                }
            }
        }
        (orig, moves, affected)
    }

    /// Mark a parity group as degraded (retired member, no rebuild).
    pub(crate) fn break_group(&mut self, gid: u64) {
        if self.broken_groups.insert(gid) {
            self.stats.broken_groups += 1;
        }
    }

    /// External members of group `gid` outside page `page` (for parity
    /// rebuild traffic).
    pub(crate) fn group_members_outside(&self, gid: u64, page: u64) -> Vec<u64> {
        let window = self.stride * self.share;
        let base = (gid / self.stride) * window + gid % self.stride;
        let first = page * PAGE_BYTES / 64;
        let last = first + PAGE_BYTES / 64;
        (0..self.share)
            .map(|k| base + k * self.stride)
            .filter(|&m| m < first || m >= last)
            .map(|m| m * 64)
            .collect()
    }

    /// Fold the scrubber's counters into the stats snapshot.
    pub(crate) fn finalize_stats(&mut self) {
        self.stats.scrubs_run = self.scrubber.scrubs_run();
        self.stats.errors_cleared = self.scrubber.errors_cleared();
        self.stats.worst_scrub_gap_cycles = self.scrubber.worst_gap_cycles();
    }

    /// Serialize the whole fault process (RNG position, planted faults,
    /// patrol walk, retirement maps, stats). Config-derived fields
    /// (`key`, `share`, `stride`, `detects`, the sorted drill list) are
    /// rebuilt from `cfg` on restore and not serialized.
    ///
    /// # Panics
    /// Panics if a fatal [`RasError`] is pending — a run that is about
    /// to abort must not checkpoint as healthy.
    pub(crate) fn save_state(&self, w: &mut SnapWriter) {
        assert!(
            self.fatal.is_none(),
            "refusing to snapshot a RAS pipeline with a pending fatal error"
        );
        w.section("RASE", 1);
        for word in self.rng.state() {
            w.u64(word);
        }
        let mut dead: Vec<_> = self.dead_chips.iter().map(|(&k, &c)| (k, c)).collect();
        dead.sort_unstable();
        w.seq(dead.iter(), |w, &((ch, rk), chip)| {
            w.u32(ch);
            w.u32(rk);
            w.u8(chip);
        });
        let mut faults: Vec<_> = self.block_faults.iter().map(|(&a, &f)| (a, f)).collect();
        faults.sort_unstable_by_key(|&(a, _)| a);
        w.seq(faults.iter(), |w, &(addr, fault)| {
            w.u64(addr);
            match fault {
                Fault::Bit { chip, beat, pin } => {
                    w.u8(0);
                    w.u8(chip);
                    w.u8(beat);
                    w.u8(pin);
                }
                Fault::Pin { chip, pin } => {
                    w.u8(1);
                    w.u8(chip);
                    w.u8(pin);
                }
                Fault::Chip { chip } => {
                    w.u8(2);
                    w.u8(chip);
                }
            }
        });
        w.seq(self.footprint.iter(), |w, &b| w.u64(b));
        let mut live: Vec<u64> = self.live.iter().copied().collect();
        live.sort_unstable();
        w.seq(live.iter(), |w, &b| w.u64(b));
        w.usize(self.patrol_pos);
        w.u64(self.next_patrol);
        w.usize(self.burst_remaining);
        w.u64(self.next_arrival);
        w.usize(self.drill_pos);
        let mut buckets: Vec<_> = self.buckets.iter().map(|(&p, &l)| (p, l)).collect();
        buckets.sort_unstable();
        w.seq(buckets.iter(), |w, &(page, level)| {
            w.u64(page);
            w.u32(level);
        });
        w.u64(self.next_leak);
        let mut forward: Vec<_> = self.forward.iter().map(|(&a, &b)| (a, b)).collect();
        forward.sort_unstable();
        w.seq(forward.iter(), |w, &(a, b)| {
            w.u64(a);
            w.u64(b);
        });
        let mut reverse: Vec<_> = self.reverse.iter().map(|(&a, &b)| (a, b)).collect();
        reverse.sort_unstable();
        w.seq(reverse.iter(), |w, &(a, b)| {
            w.u64(a);
            w.u64(b);
        });
        w.u64(self.spare_pages);
        w.seq(self.pending_retires.iter(), |w, &p| w.u64(p));
        let mut broken: Vec<u64> = self.broken_groups.iter().copied().collect();
        broken.sort_unstable();
        w.seq(broken.iter(), |w, &g| w.u64(g));
        self.scrubber.save_state(w);
        let s = &self.stats;
        for v in [
            s.faults_injected,
            s.drills_executed,
            s.detections,
            s.corrections,
            s.sdc_events,
            s.due_events,
            s.degraded_due,
            s.parity_reads,
            s.companion_reads,
            s.scrub_writebacks,
            s.patrol_reads,
            s.patrol_passes,
            s.pages_retired,
            s.migration_reads,
            s.migration_writes,
            s.parity_rebuild_reads,
            s.parity_rebuild_writes,
            s.broken_groups,
            s.scrubs_run,
            s.errors_cleared,
            s.worst_scrub_gap_cycles,
        ] {
            w.u64(v);
        }
    }

    /// Restore from [`Self::save_state`] bytes into an engine freshly
    /// built with the same `RasConfig` and scheme parameters.
    pub(crate) fn load_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        r.section("RASE", 1)?;
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = r.u64("ras rng state")?;
        }
        self.rng = StdRng::from_state(rng_state);
        let n = r.seq_len("dead chips")?;
        let mut dead_chips = HashMap::with_capacity(n);
        for _ in 0..n {
            let ch = r.u32("dead chip channel")?;
            let rk = r.u32("dead chip rank")?;
            let chip = r.u8("dead chip index")?;
            dead_chips.insert((ch, rk), chip);
        }
        self.dead_chips = dead_chips;
        let n = r.seq_len("block faults")?;
        let mut block_faults = HashMap::with_capacity(n);
        for _ in 0..n {
            let addr = r.u64("fault addr")?;
            let fault = match r.u8("fault tag")? {
                0 => Fault::Bit {
                    chip: r.u8("fault chip")?,
                    beat: r.u8("fault beat")?,
                    pin: r.u8("fault pin")?,
                },
                1 => Fault::Pin {
                    chip: r.u8("fault chip")?,
                    pin: r.u8("fault pin")?,
                },
                2 => Fault::Chip {
                    chip: r.u8("fault chip")?,
                },
                _ => {
                    return Err(SnapError::Corrupt {
                        what: "fault tag",
                        at: r.pos(),
                    })
                }
            };
            block_faults.insert(addr, fault);
        }
        self.block_faults = block_faults;
        let n = r.seq_len("patrol footprint")?;
        let mut footprint = Vec::with_capacity(n);
        for _ in 0..n {
            footprint.push(r.u64("footprint block")?);
        }
        self.footprint = footprint;
        let n = r.seq_len("live blocks")?;
        let mut live = HashSet::with_capacity(n);
        for _ in 0..n {
            live.insert(r.u64("live block")?);
        }
        self.live = live;
        self.patrol_pos = r.usize("patrol pos")?;
        self.next_patrol = r.u64("next patrol")?;
        self.burst_remaining = r.usize("burst remaining")?;
        self.next_arrival = r.u64("next arrival")?;
        let drill_pos = r.usize("drill pos")?;
        if drill_pos > self.drills.len() {
            return Err(SnapError::Corrupt {
                what: "drill position past the drill list",
                at: r.pos(),
            });
        }
        self.drill_pos = drill_pos;
        let n = r.seq_len("leaky buckets")?;
        let mut buckets = HashMap::with_capacity(n);
        for _ in 0..n {
            let page = r.u64("bucket page")?;
            let level = r.u32("bucket level")?;
            buckets.insert(page, level);
        }
        self.buckets = buckets;
        self.next_leak = r.u64("next leak")?;
        let n = r.seq_len("retire forward map")?;
        let mut forward = HashMap::with_capacity(n);
        for _ in 0..n {
            let a = r.u64("orig page")?;
            let b = r.u64("current page")?;
            forward.insert(a, b);
        }
        self.forward = forward;
        let n = r.seq_len("retire reverse map")?;
        let mut reverse = HashMap::with_capacity(n);
        for _ in 0..n {
            let a = r.u64("current page")?;
            let b = r.u64("orig page")?;
            reverse.insert(a, b);
        }
        self.reverse = reverse;
        self.spare_pages = r.u64("spare pages")?;
        let n = r.seq_len("pending retires")?;
        let mut pending = Vec::with_capacity(n);
        for _ in 0..n {
            pending.push(r.u64("pending retire")?);
        }
        self.pending_retires = pending;
        let n = r.seq_len("broken groups")?;
        let mut broken = HashSet::with_capacity(n);
        for _ in 0..n {
            broken.insert(r.u64("broken group")?);
        }
        self.broken_groups = broken;
        self.scrubber = Scrubber::load_state(r)?;
        self.stats = RasStats {
            faults_injected: r.u64("ras stat")?,
            drills_executed: r.u64("ras stat")?,
            detections: r.u64("ras stat")?,
            corrections: r.u64("ras stat")?,
            sdc_events: r.u64("ras stat")?,
            due_events: r.u64("ras stat")?,
            degraded_due: r.u64("ras stat")?,
            parity_reads: r.u64("ras stat")?,
            companion_reads: r.u64("ras stat")?,
            scrub_writebacks: r.u64("ras stat")?,
            patrol_reads: r.u64("ras stat")?,
            patrol_passes: r.u64("ras stat")?,
            pages_retired: r.u64("ras stat")?,
            migration_reads: r.u64("ras stat")?,
            migration_writes: r.u64("ras stat")?,
            parity_rebuild_reads: r.u64("ras stat")?,
            parity_rebuild_writes: r.u64("ras stat")?,
            broken_groups: r.u64("ras stat")?,
            scrubs_run: r.u64("ras stat")?,
            errors_cleared: r.u64("ras stat")?,
            worst_scrub_gap_cycles: r.u64("ras stat")?,
        };
        self.fatal = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itesp_dram::{AddressMapping, DramGeometry};

    fn decoder() -> AddressDecoder {
        AddressDecoder::new(DramGeometry::table_iii(), AddressMapping::RowBufferHit4)
    }

    fn engine(share: u64) -> RasEngine {
        RasEngine::new(RasConfig::new(11), share, 4, true)
    }

    #[test]
    fn clean_reads_stay_clean() {
        let d = decoder();
        let mut e = engine(8);
        e.on_data_access(0x4000, false);
        assert_eq!(e.check_read(0x4000, &d, 10), ReadCheck::Clean);
        assert_eq!(e.stats.detections, 0);
    }

    #[test]
    fn transient_fault_is_detected_corrected_and_cleared() {
        let d = decoder();
        let mut e = engine(8);
        e.on_data_access(0x4000, false);
        e.block_faults.insert(0x4000, Fault::Chip { chip: 3 });
        match e.check_read(0x4000, &d, 10) {
            ReadCheck::Corrected { companions } => {
                assert_eq!(companions.len(), 7, "N-1 cross-rank reads");
                // Companions are the other group members, 4 blocks apart.
                for c in &companions {
                    assert_ne!(*c, 0x4000);
                    assert_eq!((c / 64) % 4, (0x4000u64 / 64) % 4);
                }
            }
            other => panic!("expected correction, got {other:?}"),
        }
        assert_eq!(e.stats.corrections, 1);
        // Fault cleared: the next read is clean.
        assert_eq!(e.check_read(0x4000, &d, 11), ReadCheck::Clean);
    }

    #[test]
    fn per_block_parity_corrects_without_companions() {
        let d = decoder();
        let mut e = engine(1);
        e.block_faults.insert(0x80, Fault::Pin { chip: 2, pin: 5 });
        match e.check_read(0x80, &d, 5) {
            ReadCheck::Corrected { companions } => assert!(companions.is_empty()),
            other => panic!("expected correction, got {other:?}"),
        }
    }

    #[test]
    fn dead_chip_faults_every_block_in_the_rank() {
        let d = decoder();
        let mut e = engine(8);
        // Rank of block 0 under 4-RBH is rank 0.
        e.dead_chips.insert((0, 0), 5);
        assert!(matches!(
            e.check_read(0, &d, 5),
            ReadCheck::Corrected { .. }
        ));
        // Still faulted on the next read: the chip is dead silicon.
        assert!(matches!(
            e.check_read(0, &d, 6),
            ReadCheck::Corrected { .. }
        ));
        assert_eq!(e.stats.corrections, 2);
        // A block in another rank is untouched (block 4 -> rank 1).
        assert_eq!(e.check_read(4 * 64, &d, 7), ReadCheck::Clean);
    }

    #[test]
    fn no_mac_means_silent_corruption() {
        let d = decoder();
        let mut e = RasEngine::new(RasConfig::new(3), 0, 4, false);
        e.block_faults.insert(0, Fault::Chip { chip: 1 });
        assert_eq!(e.check_read(0, &d, 5), ReadCheck::Silent);
        assert_eq!(e.stats.sdc_events, 1);
        assert_eq!(e.stats.detections, 0);
    }

    #[test]
    fn detection_without_parity_is_a_due() {
        let d = decoder();
        let mut cfg = RasConfig::new(3);
        cfg.halt_on_due = true;
        let mut e = RasEngine::new(cfg, 0, 4, true);
        e.block_faults.insert(0, Fault::Chip { chip: 1 });
        assert_eq!(e.check_read(0, &d, 5), ReadCheck::DetectedOnly);
        assert_eq!(e.stats.due_events, 1);
        assert!(matches!(
            e.fatal,
            Some(RasError::Uncorrectable { addr: 0, .. })
        ));
    }

    #[test]
    fn two_dead_chips_in_one_group_defeat_correction() {
        let d = decoder();
        let mut e = engine(8);
        // Block 0's group members sit in ranks 0..8 (stride 4); kill a
        // chip in two of them.
        e.dead_chips.insert((0, 0), 2);
        e.dead_chips.insert((0, 3), 7);
        match e.check_read(0, &d, 5) {
            ReadCheck::Due { companions } => assert_eq!(companions.len(), 7),
            other => panic!("expected DUE, got {other:?}"),
        }
        assert_eq!(e.stats.due_events, 1);
    }

    #[test]
    fn degraded_group_reports_chipkill_lost() {
        let d = decoder();
        let mut cfg = RasConfig::new(9);
        cfg.halt_on_due = true;
        let mut e = RasEngine::new(cfg, 8, 4, true);
        let gid = e.group_id(0);
        e.break_group(gid);
        e.block_faults.insert(0, Fault::Chip { chip: 4 });
        assert_eq!(e.check_read(0, &d, 42), ReadCheck::Degraded);
        assert_eq!(e.stats.degraded_due, 1);
        assert!(matches!(
            e.fatal,
            Some(RasError::ChipkillLost { group, .. }) if group == gid
        ));
    }

    #[test]
    fn retirement_moves_the_page_and_translates_addresses() {
        let mut e = engine(8);
        e.on_data_access(0x1000, false);
        let page = 0x1000 / PAGE_BYTES;
        let (orig, moves, affected) = e.retire_page(page);
        assert_eq!(orig, page);
        assert_eq!(moves.len(), (PAGE_BYTES / 64) as usize);
        // 4-RBH groups (stride 4, share 8 -> 32-block windows) sit
        // entirely inside a 64-block page: nothing is broken.
        assert!(affected.is_empty());
        let t = e.translate(0x1000);
        assert!(t >= SPARE_FRAME_BASE, "translated into the spare region");
        assert_eq!(t % PAGE_BYTES, 0x1000 % PAGE_BYTES);
        assert_eq!(e.stats.pages_retired, 1);
        // The footprint follows the data.
        assert!(e.live.contains(&t));
        assert!(!e.live.contains(&0x1000));
    }

    #[test]
    fn chained_retirement_keeps_one_hop_translation() {
        let mut e = engine(8);
        let page = 7u64;
        e.retire_page(page);
        let first = e.translate(page * PAGE_BYTES) / PAGE_BYTES;
        let (orig, _, _) = e.retire_page(first);
        assert_eq!(orig, page, "retiring a spare frame traces to the origin");
        let second = e.translate(page * PAGE_BYTES) / PAGE_BYTES;
        assert_ne!(second, first);
        assert_ne!(second, page);
        assert!(second >= SPARE_FRAME_BASE / PAGE_BYTES);
    }

    #[test]
    fn wide_stride_retirement_breaks_cross_page_groups() {
        // Column mapping: stride 1024 -> groups span 8 K blocks, far
        // beyond one page; retirement must report every page group.
        let mut e = RasEngine::new(RasConfig::new(5), 8, 1024, true);
        let (_, _, affected) = e.retire_page(3);
        assert!(!affected.is_empty());
        for gid in &affected {
            let outside = e.group_members_outside(*gid, 3);
            assert!(!outside.is_empty());
            assert!(outside.len() < 8, "the retired member is excluded");
        }
    }

    #[test]
    fn drills_fire_at_their_cycle() {
        let cfg = RasConfig::new(1).with_drill(Drill {
            at_dram_cycle: 100,
            channel: 0,
            rank: 3,
            chip: 6,
        });
        let mut e = RasEngine::new(cfg, 8, 4, true);
        e.tick(99);
        assert_eq!(e.stats.drills_executed, 0);
        e.tick(100);
        assert_eq!(e.stats.drills_executed, 1);
        assert_eq!(e.dead_chips.get(&(0, 3)), Some(&6));
    }

    #[test]
    fn poisson_arrivals_plant_faults_on_the_footprint() {
        let cfg = RasConfig::new(2).with_fault_rate(1e5);
        let mut e = RasEngine::new(cfg, 8, 4, true);
        for b in 0..32u64 {
            e.on_data_access(b * 64, false);
        }
        for now in 0..2000 {
            e.tick(now);
        }
        assert!(e.stats.faults_injected > 0, "high rate must plant faults");
        assert!(e.block_faults.keys().all(|a| e.live.contains(&(a & !63))));
    }

    #[test]
    fn patrol_walks_the_footprint_and_counts_passes() {
        let mut cfg = RasConfig::new(4);
        cfg.patrol_interval = 1;
        let mut e = RasEngine::new(cfg, 8, 4, true);
        for b in 0..8u64 {
            e.on_data_access(b * 64, false);
        }
        let mut issued = Vec::new();
        for now in 1..=17 {
            issued.extend(e.tick(now));
        }
        assert_eq!(issued.len(), 17);
        assert_eq!(e.stats.patrol_passes, 2, "17 reads over 8 blocks");
        assert!(e.scrubber.scrubs_run() >= 2);
    }

    #[test]
    fn scrub_on_detect_burst_covers_the_footprint() {
        let d = decoder();
        let mut cfg = RasConfig::new(6);
        cfg.patrol_interval = 0; // no periodic patrol
        let mut e = RasEngine::new(cfg, 8, 4, true);
        for b in 0..16u64 {
            e.on_data_access(b * 64, false);
        }
        e.block_faults.insert(0, Fault::Pin { chip: 0, pin: 0 });
        assert!(matches!(
            e.check_read(0, &d, 50),
            ReadCheck::Corrected { .. }
        ));
        assert_eq!(e.burst_remaining, 16, "burst pass over the footprint");
        let mut burst = Vec::new();
        for now in 51..60 {
            burst.extend(e.tick(now));
        }
        assert_eq!(burst.len(), 16, "burst drains at a bounded rate");
        assert_eq!(e.burst_remaining, 0);
    }

    #[test]
    fn deterministic_fault_process() {
        let mk = || {
            let cfg = RasConfig::new(77).with_fault_rate(5e4);
            let mut e = RasEngine::new(cfg, 8, 4, true);
            for b in 0..64u64 {
                e.on_data_access(b * 64, false);
            }
            for now in 0..5000 {
                e.tick(now);
            }
            (e.stats.faults_injected, e.block_faults.len())
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn next_event_bounds_fast_forward() {
        let cfg = RasConfig::new(1).with_fault_rate(10.0).with_drill(Drill {
            at_dram_cycle: 500,
            channel: 0,
            rank: 0,
            chip: 0,
        });
        let e = RasEngine::new(cfg, 8, 4, true);
        assert!(e.next_event(false) <= 500, "drill bounds the jump");
        assert_eq!(e.next_event(true), u64::MAX, "wind-down after cores done");
    }
}
