//! # itesp-sim — the full-system evaluation driver
//!
//! Glues the substrates together into the paper's methodology
//! (Section IV): synthetic multi-program traces ([`itesp-trace`])
//! replayed through per-core ROB models, filtered by the security
//! metadata engine ([`itesp-core`]), into the cycle-accurate DRAM model
//! ([`itesp-dram`]).
//!
//! * [`system`] — cores, ROBs, metadata/DRAM glue, the main loop;
//! * [`churn`] — the enclave lifecycle driver: session admission,
//!   tree growth, page frees, and secure teardown under churn;
//! * [`ras`] — the online RAS pipeline: fault injection, correction
//!   traffic, patrol scrub, and page retirement;
//! * [`stats`] — run results and normalized metrics;
//! * [`experiments`] — canned parameter sets for every figure;
//! * [`covert`] — the Figure 5 covert-channel demonstration.
//!
//! ```
//! use itesp_core::Scheme;
//! use itesp_sim::{run_named, ExperimentParams};
//!
//! let base = run_named("lbm", ExperimentParams::paper_4core(Scheme::Unsecure, 500));
//! let itesp = run_named("lbm", ExperimentParams::paper_4core(Scheme::Itesp, 500));
//! assert!(itesp.normalized_time(&base) >= 1.0);
//! ```

pub mod churn;
pub mod covert;
pub mod experiments;
pub mod ras;
pub mod recovery;
pub mod stats;
pub mod system;

pub use churn::{ChurnDriver, ChurnStats};
pub use covert::{run_channel, ChannelPoint, CovertConfig, LatencyRange};
pub use experiments::{
    build_churn_ras_system, run_experiment, run_named, run_workload, run_workload_churn,
    run_workload_ras, try_run_named, ExperimentParams,
};
pub use ras::{Drill, RasConfig, RasError, RasStats};
pub use recovery::{
    recover_system, recover_system_strict, RecoverError, SnapshotConfig, SnapshotSink,
    DEFAULT_SNAPSHOT_EVERY,
};
pub use stats::RunResult;
pub use system::{System, SystemConfig, CPU_PER_DRAM_CYCLE};
