//! The Figure 5 covert channel, replayed against the simulated
//! metadata machinery.
//!
//! The paper demonstrates the channel on SGX v1 hardware; we reproduce
//! the *mechanism* on the simulator: an attacker and a victim enclave
//! whose pages are interleaved share integrity-tree nodes and metadata
//! cache sets, so the victim's activity (touching many pages vs. none)
//! modulates the attacker's probe latency. With isolated trees and
//! partitioned caches the modulation disappears.
//!
//! Protocol per measurement (Section III-B):
//! 1. the attacker touches dummy structure `D` to evict relevant
//!    metadata ("prime");
//! 2. the victim either touches `blocks` blocks of `V` (transmit 1) or
//!    stays idle (transmit 0);
//! 3. the attacker touches its structure `A` — whose pages are
//!    interleaved with `V`'s, so they share upper tree nodes — and
//!    times it ("probe"). If the victim ran, the shared nodes are warm
//!    and the attacker sees *low* latency: "a 1 is transmitted when the
//!    victim is memory-intensive and the attacker experiences low
//!    latencies".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use itesp_core::{EngineConfig, Scheme, SecurityEngine};

/// Simulated latencies per probe access (CPU cycles): an on-chip
/// metadata hit vs. a DRAM fetch per missing level.
const HIT_CYCLES: u64 = 2;
const MISS_CYCLES: u64 = 200;

/// One latency sample range over repeated trials.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyRange {
    pub min: u64,
    pub max: u64,
    pub mean: f64,
}

impl LatencyRange {
    fn from_samples(samples: &[u64]) -> Self {
        let min = *samples.iter().min().expect("nonempty");
        let max = *samples.iter().max().expect("nonempty");
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        LatencyRange { min, max, mean }
    }

    /// Ranges overlap when neither is strictly above the other.
    pub fn overlaps(&self, other: &LatencyRange) -> bool {
        self.min <= other.max && other.min <= self.max
    }
}

/// Result of one covert-channel experiment at a given block count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelPoint {
    /// Blocks touched per measurement.
    pub blocks: usize,
    /// Attacker probe latency when the victim transmits 0 (idle).
    pub zero: LatencyRange,
    /// Attacker probe latency when the victim transmits 1 (active).
    pub one: LatencyRange,
}

impl ChannelPoint {
    /// The channel is reliable when the 0- and 1-ranges don't overlap.
    pub fn reliable(&self) -> bool {
        !self.zero.overlaps(&self.one)
    }

    /// Estimated channel bandwidth in bits/s at a 3.2 GHz clock, from
    /// the mean measurement duration (prime + transmit + probe ~ 3
    /// structure sweeps).
    pub fn bandwidth_bps(&self) -> f64 {
        let cycles_per_bit = 3.0 * self.zero.mean.max(self.one.mean).max(1.0);
        3.2e9 / cycles_per_bit
    }
}

/// Configuration of the covert-channel experiment.
#[derive(Debug, Clone, Copy)]
pub struct CovertConfig {
    /// Secure-memory design under attack.
    pub scheme: Scheme,
    /// Measurement trials per point.
    pub trials: usize,
    /// RNG seed for page placement noise.
    pub seed: u64,
}

impl Default for CovertConfig {
    fn default() -> Self {
        CovertConfig {
            scheme: Scheme::Vault,
            trials: 10,
            seed: 42,
        }
    }
}

/// Engine wrapper exposing prime/touch/probe in terms of enclave pages.
struct Harness {
    engine: SecurityEngine,
    /// Physical page of (enclave, page-index): interleaved or separated.
    interleaved: bool,
}

const ATTACKER: usize = 0;
const VICTIM: usize = 1;
/// 4 KB pages; one block per page touched.
const PAGE: u64 = 4096;

impl Harness {
    fn new(scheme: Scheme, interleaved: bool) -> Self {
        let cfg = EngineConfig {
            enclaves: 2,
            // Small metadata cache, as in the paper's MEE-like setup.
            metadata_cache_bytes: 16 << 10,
            ..EngineConfig::paper_default(scheme)
        };
        Harness {
            engine: SecurityEngine::new(cfg),
            interleaved,
        }
    }

    /// Physical address of `enclave`'s page `i`: interleaved placement
    /// alternates attacker/victim pages, separated placement gives each
    /// a contiguous region.
    fn paddr(&self, enclave: usize, page: u64) -> u64 {
        if self.interleaved {
            (page * 2 + enclave as u64) * PAGE
        } else {
            (enclave as u64) * (1 << 30) + page * PAGE
        }
    }

    /// Touch `n` pages of `enclave` starting at page index `base`;
    /// returns simulated latency.
    fn touch(&mut self, enclave: usize, base: u64, n: usize) -> u64 {
        let mut lat = 0;
        for i in 0..n as u64 {
            let page = base + i;
            let paddr = self.paddr(enclave, page);
            let eb = page * (PAGE / 64);
            let out = self.engine.on_access(enclave, paddr, eb, false);
            lat += if out.mem.is_empty() {
                HIT_CYCLES
            } else {
                HIT_CYCLES + MISS_CYCLES * out.mem.len() as u64
            };
        }
        lat
    }
}

/// Run the experiment of Figure 5A (interleaved pages, shared design)
/// or 5B (separated pages / isolated design) at the given block counts.
///
/// When `cfg.scheme` is isolated (e.g. [`Scheme::ItVault`]), partitioned
/// caches and private trees make placement irrelevant — that is the
/// defense.
pub fn run_channel(
    cfg: CovertConfig,
    interleaved: bool,
    block_counts: &[usize],
) -> Vec<ChannelPoint> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    block_counts
        .iter()
        .map(|&blocks| {
            let mut zero = Vec::with_capacity(cfg.trials);
            let mut one = Vec::with_capacity(cfg.trials);
            for bit in [false, true] {
                for _ in 0..cfg.trials {
                    let mut h = Harness::new(cfg.scheme, interleaved);
                    // Prime: attacker sweeps its dummy structure D,
                    // evicting all relevant metadata.
                    h.touch(ATTACKER, 10_000, 512);
                    // Victim transmits: touching its pages warms the
                    // tree nodes its pages share with the attacker's
                    // (interleaved placement only).
                    if bit {
                        h.touch(VICTIM, 0, blocks);
                    }
                    // Small placement noise: victim touches a few
                    // unrelated pages either way (system activity).
                    let noise = rng.gen_range(0..8);
                    h.touch(VICTIM, 50_000 + noise as u64 * 64, noise);
                    // Probe: attacker touches A cold and times it.
                    let lat = h.touch(ATTACKER, 0, blocks);
                    if bit {
                        one.push(lat);
                    } else {
                        zero.push(lat);
                    }
                }
            }
            ChannelPoint {
                blocks,
                zero: LatencyRange::from_samples(&zero),
                one: LatencyRange::from_samples(&one),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_interleaved_design_leaks() {
        let cfg = CovertConfig::default();
        let pts = run_channel(cfg, true, &[256]);
        assert!(
            pts[0].reliable(),
            "256-block probe should separate 0 from 1: {:?}",
            pts[0]
        );
        // Victim activity warms shared tree nodes: a transmitted 1 must
        // read as *lower* attacker latency (the paper's sign).
        assert!(
            pts[0].one.mean < pts[0].zero.mean,
            "1 should be faster: {:?}",
            pts[0]
        );
    }

    #[test]
    fn isolated_design_closes_the_channel() {
        let cfg = CovertConfig {
            scheme: Scheme::ItVault,
            ..Default::default()
        };
        let pts = run_channel(cfg, true, &[64, 256]);
        for p in &pts {
            assert!(
                p.zero.overlaps(&p.one) || (p.zero.mean - p.one.mean).abs() < 1.0,
                "isolation must collapse the ranges: {p:?}"
            );
        }
    }

    #[test]
    fn separated_pages_reduce_leakage_even_when_shared() {
        // Figure 5B: same shared design, non-interleaved placement.
        let cfg = CovertConfig::default();
        let inter = run_channel(cfg, true, &[256]);
        let sep = run_channel(cfg, false, &[256]);
        let gap = |p: &ChannelPoint| (p.one.mean - p.zero.mean).abs();
        assert!(
            gap(&sep[0]) < gap(&inter[0]),
            "separation should shrink the signal: {} vs {}",
            gap(&sep[0]),
            gap(&inter[0])
        );
    }

    #[test]
    fn more_blocks_improve_fidelity() {
        let cfg = CovertConfig::default();
        let pts = run_channel(cfg, true, &[16, 256]);
        let margin = |p: &ChannelPoint| p.one.mean - p.zero.mean;
        assert!(margin(&pts[1]).abs() > margin(&pts[0]).abs());
    }

    #[test]
    fn bandwidth_is_positive_and_finite() {
        let cfg = CovertConfig::default();
        let pts = run_channel(cfg, true, &[256]);
        let bw = pts[0].bandwidth_bps();
        assert!(bw > 0.0 && bw.is_finite());
    }

    #[test]
    fn latency_range_overlap_logic() {
        let a = LatencyRange {
            min: 0,
            max: 10,
            mean: 5.0,
        };
        let b = LatencyRange {
            min: 11,
            max: 20,
            mean: 15.0,
        };
        assert!(!a.overlaps(&b));
        let c = LatencyRange {
            min: 8,
            max: 12,
            mean: 10.0,
        };
        assert!(a.overlaps(&c) && c.overlaps(&b));
    }
}
