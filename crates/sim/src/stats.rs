//! Run results and the derived metrics the figures plot.

use serde::{Deserialize, Serialize};

use itesp_core::{CacheStats, EngineStats, SecurityEngine};
use itesp_dram::{ChannelStats, EnergyBreakdown, MemorySystem};

use crate::churn::ChurnStats;
use crate::ras::RasStats;
use crate::system::CPU_PER_DRAM_CYCLE;

/// Everything measured in one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Total execution time in CPU cycles (last core to finish).
    pub cycles: u64,
    /// Per-core finish times, CPU cycles.
    pub core_finish: Vec<u64>,
    /// Security-engine traffic statistics.
    pub engine: EngineStats,
    /// Metadata-cache statistics (tree + MAC merged).
    pub metadata_cache: CacheStats,
    /// Parity-cache statistics (zeroes when the scheme has none).
    pub parity_cache: CacheStats,
    /// Merged DRAM channel statistics.
    pub dram: ChannelStats,
    /// Memory energy breakdown for the run.
    pub energy: EnergyBreakdown,
    /// Writes emitted by the end-of-run metadata drain (bookkeeping).
    pub drained_writes: u64,
    /// Online RAS pipeline statistics (all zeros when RAS was off).
    pub ras: RasStats,
    /// Enclave lifecycle statistics (all zeros for static workloads).
    pub churn: ChurnStats,
}

impl RunResult {
    /// Gather results from the simulator's components.
    pub fn collect(
        cycles: u64,
        core_finish: Vec<u64>,
        engine: &SecurityEngine,
        mem: &MemorySystem,
        drained_writes: u64,
        ras: RasStats,
        churn: ChurnStats,
    ) -> Self {
        let dram_cycles = cycles / CPU_PER_DRAM_CYCLE;
        RunResult {
            cycles,
            core_finish,
            engine: engine.stats().clone(),
            metadata_cache: engine.metadata_cache_stats(),
            parity_cache: engine.parity_cache_stats(),
            dram: mem.stats(),
            energy: mem.energy(dram_cycles),
            drained_writes,
            ras,
            churn,
        }
    }

    /// Execution time normalized to a baseline run (Figure 8's y-axis).
    pub fn normalized_time(&self, baseline: &RunResult) -> f64 {
        self.cycles as f64 / baseline.cycles.max(1) as f64
    }

    /// Memory energy normalized to a baseline run (Figure 10, left).
    pub fn normalized_memory_energy(&self, baseline: &RunResult) -> f64 {
        self.energy.total_nj() / baseline.energy.total_nj().max(f64::MIN_POSITIVE)
    }

    /// System energy-delay product, normalized (Figure 10, right).
    /// System power follows the Memory Scheduling Championship
    /// convention: a fixed core-side power plus measured memory power.
    pub fn normalized_system_edp(&self, baseline: &RunResult, cores: usize) -> f64 {
        self.system_edp(cores) / baseline.system_edp(cores).max(f64::MIN_POSITIVE)
    }

    /// Absolute system EDP in (nJ x cycles) units.
    pub fn system_edp(&self, cores: usize) -> f64 {
        self.system_energy_nj(cores) * self.cycles as f64
    }

    /// System energy: 10 W per core plus memory energy.
    pub fn system_energy_nj(&self, cores: usize) -> f64 {
        // CPU cycle at 3.2 GHz = 0.3125 ns; 10 W = 10 nJ per 1e9 ns.
        let seconds = self.cycles as f64 * 0.3125e-9;
        let core_nj = 10.0 * cores as f64 * seconds * 1e9;
        core_nj + self.energy.total_nj()
    }

    /// Geometric-mean helper used when averaging normalized metrics
    /// across benchmarks (the convention for ratios).
    pub fn geomean(values: &[f64]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
        (log_sum / values.len() as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(cycles: u64, energy_nj: f64) -> RunResult {
        RunResult {
            cycles,
            core_finish: vec![cycles],
            engine: EngineStats::default(),
            metadata_cache: CacheStats::default(),
            parity_cache: CacheStats::default(),
            dram: ChannelStats::default(),
            energy: EnergyBreakdown {
                activate_nj: energy_nj,
                ..Default::default()
            },
            drained_writes: 0,
            ras: RasStats::default(),
            churn: ChurnStats::default(),
        }
    }

    #[test]
    fn normalization_is_a_ratio() {
        let base = result(1000, 50.0);
        let slow = result(2300, 80.0);
        assert!((slow.normalized_time(&base) - 2.3).abs() < 1e-9);
        assert!((slow.normalized_memory_energy(&base) - 1.6).abs() < 1e-9);
    }

    #[test]
    fn edp_scales_quadratically_with_time() {
        let base = result(1000, 0.0);
        let slow = result(2000, 0.0);
        // Same power, double time -> double energy -> 4x EDP.
        let edp = slow.normalized_system_edp(&base, 4);
        assert!((edp - 4.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_of_identical_values() {
        assert!((RunResult::geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(RunResult::geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_is_between_min_and_max() {
        let g = RunResult::geomean(&[1.0, 4.0]);
        assert!(g > 1.0 && g < 4.0);
        assert!((g - 2.0).abs() < 1e-12);
    }
}
