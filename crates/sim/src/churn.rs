//! Driving multi-tenant enclave churn through the full system.
//!
//! [`ChurnDriver`] sits between the cores and the security engine: it
//! admits sessions from a [`ChurnWorkload`] schedule into slots as
//! their Poisson arrival times pass, translates their virtual accesses
//! lazily (pages can be freed and re-touched, so translations cannot
//! be precomputed), fires mid-session page frees, and tears enclaves
//! down when their traces drain. Every lifecycle transition's metadata
//! traffic — tree init writes, migration reads, counter resets, parity
//! rebuilds, teardown zeroization — is returned to the system and
//! contends for DRAM bandwidth like any other metadata.

use std::collections::VecDeque;

use itesp_snap::{SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};

use itesp_core::{MetaAccess, SecurityEngine};
use itesp_enclave::EnclaveManager;
use itesp_trace::{ChurnSession, ChurnWorkload, PageFree, PageMapper, PhysRecord, PAGE_BYTES};

/// Mixed into the run seed for the churn mapper's fragmented free
/// list, so page placement and session streams draw from independent
/// randomness.
const MAPPER_SEED_SALT: u64 = 0x9A6E_5EED;

/// Mean extent length of the churn mapper's fragmented free list
/// (matches the static experiments' long-running-kernel model).
const MAPPER_MEAN_EXTENT: f64 = 4.0;

/// Lifecycle activity measured over a churn run. Event counts come
/// from the enclave manager; the traffic counters split the metadata
/// DRAM accesses each lifecycle phase charged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnStats {
    pub created: u64,
    pub destroyed: u64,
    /// Tree re-roots (first-touch allocation outgrew leaf capacity).
    pub grows: u64,
    pub pages_freed: u64,
    /// Leaf-id grants that reused a previously-freed id.
    pub leaves_recycled: u64,
    /// High-water mark of live pages across all slots.
    pub peak_live_pages: u64,
    /// Create: cache-repartition read-modify-writes.
    pub init_reads: u64,
    /// Create: private-tree initialization + repartition writebacks.
    pub init_writes: u64,
    /// Grow: old-tree migration reads.
    pub migration_reads: u64,
    /// Grow: new-layout initialization writes.
    pub grow_writes: u64,
    /// Free: parity-group rebuild reads.
    pub reset_reads: u64,
    /// Free: counter-reset and parity writes.
    pub reset_writes: u64,
    /// Destroy: survivor-repartition read-modify-writes.
    pub zeroize_reads: u64,
    /// Destroy: counter/MAC zeroization + repartition writebacks.
    pub zeroize_writes: u64,
}

impl ChurnStats {
    /// All metadata accesses charged to lifecycle operations.
    pub fn lifecycle_accesses(&self) -> u64 {
        self.init_reads
            + self.init_writes
            + self.migration_reads
            + self.grow_writes
            + self.reset_reads
            + self.reset_writes
            + self.zeroize_reads
            + self.zeroize_writes
    }
}

fn tally(traffic: &[MetaAccess], reads: &mut u64, writes: &mut u64) {
    for t in traffic {
        if t.is_write {
            *writes += 1;
        } else {
            *reads += 1;
        }
    }
}

/// The churn state machine the system consults every cycle.
pub struct ChurnDriver {
    /// Sessions not yet admitted, per slot.
    pub(crate) queues: Vec<VecDeque<ChurnSession>>,
    /// The running session's remaining free events, per slot.
    pub(crate) frees: Vec<VecDeque<PageFree>>,
    pub(crate) live: Vec<bool>,
    /// Earliest cycle the slot's next session may start (`u64::MAX`
    /// once the queue is empty).
    pub(crate) ready_at: Vec<u64>,
    mapper: PageMapper,
    manager: EnclaveManager,
    traffic: ChurnStats,
}

impl ChurnDriver {
    /// Build a driver for `workload` over `phys_bytes` of allocatable
    /// memory. `seed` keys the mapper's free-list placement and the
    /// per-enclave MAC keys; `rebuild_parity` picks the free-time
    /// parity policy (rebuild vs break).
    pub fn new(workload: &ChurnWorkload, phys_bytes: u64, seed: u64, rebuild_parity: bool) -> Self {
        let slots = workload.slots.len();
        assert!(slots > 0, "churn workload needs at least one slot");
        let queues: Vec<VecDeque<ChurnSession>> = workload
            .slots
            .iter()
            .map(|q| q.iter().cloned().collect())
            .collect();
        let ready_at = queues
            .iter()
            .map(|q| q.front().map_or(u64::MAX, |s| s.arrival_gap))
            .collect();
        let mut manager = EnclaveManager::new(slots, seed);
        manager.rebuild_parity = rebuild_parity;
        ChurnDriver {
            frees: vec![VecDeque::new(); slots],
            live: vec![false; slots],
            ready_at,
            queues,
            mapper: PageMapper::fragmented(
                slots,
                phys_bytes,
                MAPPER_MEAN_EXTENT,
                seed ^ MAPPER_SEED_SALT,
            ),
            manager,
            traffic: ChurnStats::default(),
        }
    }

    /// All sessions served and none running.
    pub fn done(&self) -> bool {
        self.live.iter().all(|l| !l) && self.queues.iter().all(VecDeque::is_empty)
    }

    /// Earliest pending arrival across slots waiting for one, for the
    /// fast-forward clock.
    pub(crate) fn next_ready(&self) -> Option<u64> {
        self.live
            .iter()
            .zip(&self.ready_at)
            .filter(|(live, _)| !**live)
            .map(|(_, &r)| r)
            .filter(|&r| r != u64::MAX)
            .min()
    }

    /// Admit the slot's next session: create the enclave (tree install
    /// and cache carve), arm its free events, and hand back the
    /// physical trace for the core — virtual addresses, translated
    /// lazily at fetch via [`Self::on_access`].
    pub(crate) fn create(
        &mut self,
        slot: usize,
        cycle: u64,
        engine: &mut SecurityEngine,
    ) -> Option<(Vec<PhysRecord>, Vec<MetaAccess>)> {
        let session = self.queues[slot].pop_front()?;
        let (_, traffic) = self.manager.create(engine, slot, session.footprint_pages);
        tally(
            &traffic,
            &mut self.traffic.init_reads,
            &mut self.traffic.init_writes,
        );
        self.frees[slot] = session.frees.into();
        self.live[slot] = true;
        // The next tenant's arrival clock starts at this admission.
        self.ready_at[slot] = match self.queues[slot].front() {
            Some(next) => cycle.saturating_add(next.arrival_gap),
            None => u64::MAX,
        };
        let trace = session
            .records
            .iter()
            .map(|r| PhysRecord {
                gap: r.gap,
                op: r.op,
                // Virtual: the mapper translates at fetch time.
                paddr: r.vaddr,
            })
            .collect();
        Some((trace, traffic))
    }

    /// Translate one access of a running session, paying first-touch
    /// costs (leaf grant, tree growth) as they arise. Returns the
    /// physical address, the enclave-domain block index, and the
    /// lifecycle traffic to enqueue.
    pub(crate) fn on_access(
        &mut self,
        slot: usize,
        vaddr: u64,
        engine: &mut SecurityEngine,
    ) -> (u64, u64, Vec<MetaAccess>) {
        let t = self.mapper.translate(slot, vaddr);
        let vpage = vaddr / PAGE_BYTES;
        let (leaf, traffic) = self
            .manager
            .touch_page(engine, slot, vpage, t.paddr / PAGE_BYTES);
        tally(
            &traffic,
            &mut self.traffic.migration_reads,
            &mut self.traffic.grow_writes,
        );
        let eb = leaf * (PAGE_BYTES / 64) + (vaddr % PAGE_BYTES) / 64;
        (t.paddr, eb, traffic)
    }

    /// Bump the write counter backing `vaddr`'s leaf.
    pub(crate) fn record_write(&mut self, slot: usize, vaddr: u64) {
        self.manager.record_write(slot, vaddr / PAGE_BYTES);
    }

    /// Fire one page-free event: unmap the frame and reset the leaf's
    /// counters (plus parity rebuild-or-break) before recycling.
    pub(crate) fn free_page(
        &mut self,
        slot: usize,
        vaddr: u64,
        engine: &mut SecurityEngine,
    ) -> Vec<MetaAccess> {
        if self.mapper.unmap_page(slot, vaddr).is_none() {
            return Vec::new(); // page never materialized
        }
        let (_, traffic) = self
            .manager
            .free_page(engine, slot, vaddr / PAGE_BYTES)
            .expect("mapper and manager page tables diverged");
        tally(
            &traffic,
            &mut self.traffic.reset_reads,
            &mut self.traffic.reset_writes,
        );
        traffic
    }

    /// Tear the slot's enclave down after its trace drained: zeroize
    /// its metadata, release its pages, repartition the survivors.
    pub(crate) fn session_end(
        &mut self,
        slot: usize,
        engine: &mut SecurityEngine,
    ) -> Vec<MetaAccess> {
        // The two page tables are maintained on disjoint code paths;
        // divergence means a leaked or double-freed page.
        assert_eq!(
            self.mapper.live_pages() as u64,
            self.manager.total_live_pages(),
            "mapper/manager live-page divergence at teardown"
        );
        self.frees[slot].clear();
        self.mapper.release_program(slot);
        let traffic = self.manager.destroy(engine, slot);
        tally(
            &traffic,
            &mut self.traffic.zeroize_reads,
            &mut self.traffic.zeroize_writes,
        );
        self.live[slot] = false;
        traffic
    }

    /// Serialize the churn state machine. Pending session queues are
    /// stored as *remaining counts* — the schedule itself regenerates
    /// deterministically from the workload the driver was built with,
    /// so only consumption progress needs to persist. Mid-session free
    /// events are stored verbatim (they are partially consumed).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.section("CHRN", 1);
        w.seq(self.queues.iter(), |w, q| w.usize(q.len()));
        w.seq(self.frees.iter(), |w, fs| {
            w.seq(fs.iter(), |w, f| {
                w.usize(f.after_record);
                w.u64(f.vaddr);
            });
        });
        w.seq(self.live.iter(), |w, &l| w.bool(l));
        w.seq(self.ready_at.iter(), |w, &r| w.u64(r));
        self.mapper.save_state(w);
        self.manager.save_state(w);
        let t = &self.traffic;
        for v in [
            t.init_reads,
            t.init_writes,
            t.migration_reads,
            t.grow_writes,
            t.reset_reads,
            t.reset_writes,
            t.zeroize_reads,
            t.zeroize_writes,
        ] {
            w.u64(v);
        }
    }

    /// Restore from [`Self::save_state`] bytes into a driver freshly
    /// built from the *same workload and seed*: already-consumed
    /// sessions are popped off the regenerated queues.
    pub fn load_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        r.section("CHRN", 1)?;
        let nslots = r.seq_len("churn slot queues")?;
        if nslots != self.queues.len() {
            return Err(SnapError::Corrupt {
                what: "churn slot count (snapshot from a different workload)",
                at: r.pos(),
            });
        }
        for q in &mut self.queues {
            let remaining = r.usize("remaining sessions")?;
            if remaining > q.len() {
                return Err(SnapError::Corrupt {
                    what: "remaining sessions exceed the workload schedule",
                    at: r.pos(),
                });
            }
            while q.len() > remaining {
                q.pop_front();
            }
        }
        let n = r.seq_len("churn free queues")?;
        if n != self.frees.len() {
            return Err(SnapError::Corrupt {
                what: "churn free-queue count",
                at: r.pos(),
            });
        }
        for fs in &mut self.frees {
            let nf = r.seq_len("pending frees")?;
            let mut q = VecDeque::with_capacity(nf);
            for _ in 0..nf {
                let after_record = r.usize("free after_record")?;
                let vaddr = r.u64("free vaddr")?;
                q.push_back(PageFree {
                    after_record,
                    vaddr,
                });
            }
            *fs = q;
        }
        let n = r.seq_len("churn live flags")?;
        if n != self.live.len() {
            return Err(SnapError::Corrupt {
                what: "churn live-flag count",
                at: r.pos(),
            });
        }
        for l in &mut self.live {
            *l = r.bool("slot live")?;
        }
        let n = r.seq_len("churn ready_at")?;
        if n != self.ready_at.len() {
            return Err(SnapError::Corrupt {
                what: "churn ready_at count",
                at: r.pos(),
            });
        }
        for ra in &mut self.ready_at {
            *ra = r.u64("slot ready_at")?;
        }
        self.mapper.load_state(r)?;
        self.manager.load_state(r)?;
        self.traffic = ChurnStats {
            init_reads: r.u64("churn traffic")?,
            init_writes: r.u64("churn traffic")?,
            migration_reads: r.u64("churn traffic")?,
            grow_writes: r.u64("churn traffic")?,
            reset_reads: r.u64("churn traffic")?,
            reset_writes: r.u64("churn traffic")?,
            zeroize_reads: r.u64("churn traffic")?,
            zeroize_writes: r.u64("churn traffic")?,
            ..ChurnStats::default()
        };
        Ok(())
    }

    /// Merged lifecycle statistics for the run result.
    pub fn stats(&self) -> ChurnStats {
        let m = self.manager.stats();
        ChurnStats {
            created: m.created,
            destroyed: m.destroyed,
            grows: m.grows,
            pages_freed: m.pages_freed,
            leaves_recycled: m.leaves_recycled,
            peak_live_pages: m.peak_live_pages,
            ..self.traffic
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{run_workload_churn, ExperimentParams};
    use crate::stats::RunResult;
    use itesp_core::Scheme;
    use itesp_trace::{benchmark, ChurnConfig};

    fn workload(seed: u64) -> ChurnWorkload {
        ChurnWorkload::generate(
            benchmark("mcf").unwrap(),
            &ChurnConfig {
                slots: 4,
                sessions_per_slot: 2,
                ops_per_session: 400,
                mean_arrival_gap: 5_000.0,
                footprint_pages: 16,
                free_fraction: 0.4,
                seed,
            },
        )
    }

    fn run(scheme: Scheme, seed: u64) -> RunResult {
        let p = ExperimentParams {
            seed,
            ..ExperimentParams::paper_4core(scheme, 400)
        };
        run_workload_churn(&workload(seed), p)
    }

    #[test]
    fn churn_serves_every_session_to_completion() {
        let r = run(Scheme::Itesp, 11);
        assert_eq!(r.churn.created, 8, "4 slots x 2 sessions");
        assert_eq!(r.churn.destroyed, 8);
        assert_eq!(r.engine.data_accesses(), 8 * 400);
        assert!(r.churn.pages_freed > 0);
        assert!(r.churn.peak_live_pages > 0);
        assert!(r.cycles > 0);
    }

    #[test]
    fn lifecycle_transitions_cost_metadata_traffic() {
        let r = run(Scheme::Itesp, 12);
        // 16-page footprints over 4-page initial trees: growth and
        // teardown both fire.
        assert!(r.churn.grows > 0, "first touch must outgrow the tree");
        assert!(r.churn.init_writes > 0, "create pays tree init");
        assert!(r.churn.migration_reads > 0, "grow pays migration");
        assert!(r.churn.reset_writes > 0, "free pays counter resets");
        assert!(r.churn.zeroize_writes > 0, "destroy pays zeroization");
    }

    #[test]
    fn freed_pages_recycle_leaf_ids() {
        // Heavy freeing over a small footprint: later records re-touch
        // freed pages, exercising the recycle path end to end.
        let w = ChurnWorkload::generate(
            benchmark("mcf").unwrap(),
            &ChurnConfig {
                slots: 4,
                sessions_per_slot: 1,
                ops_per_session: 1500,
                mean_arrival_gap: 1_000.0,
                footprint_pages: 8,
                free_fraction: 0.5,
                seed: 21,
            },
        );
        let p = ExperimentParams {
            seed: 21,
            ..ExperimentParams::paper_4core(Scheme::Itesp, 1500)
        };
        let r = run_workload_churn(&w, p);
        assert!(
            r.churn.leaves_recycled > 0,
            "freed leaves must be handed out again: {:?}",
            r.churn
        );
    }

    #[test]
    fn unsecure_churn_is_metadata_free() {
        let r = run(Scheme::Unsecure, 13);
        assert_eq!(r.churn.created, 8);
        assert_eq!(r.churn.lifecycle_accesses(), 0);
        assert_eq!(r.engine.meta_accesses(), 0);
    }

    #[test]
    fn churn_runs_are_deterministic() {
        let a = run(Scheme::Itesp, 14);
        let b = run(Scheme::Itesp, 14);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.churn, b.churn);
        assert_eq!(a.dram.reads, b.dram.reads);
        assert_eq!(a.dram.writes, b.dram.writes);
    }

    #[test]
    fn shared_scheme_churn_completes() {
        let r = run(Scheme::Synergy, 15);
        assert_eq!(r.churn.created, 8);
        // No private trees to install/zeroize, but frees still reset
        // the shared tree's leaves over the freed frames.
        assert_eq!(r.churn.init_writes, 0);
        assert_eq!(r.churn.zeroize_writes, 0);
        assert!(r.churn.reset_writes > 0);
    }
}
