//! Crash recovery glue: durable checkpointing for a live [`System`]
//! and the restore path that resumes a killed run.
//!
//! The mechanism is the classic snapshot + write-ahead log pair from
//! [`itesp_snap`]: on its cadence the run loop serializes the *entire*
//! simulation state (clock, DRAM timing, engine, caches, cores, RAS
//! fault process, churn driver) into an atomically-committed snapshot
//! file, and the WAL records the acknowledged `(seq, cycle)` head.
//! Because the simulator is deterministic, recovery is "load the
//! newest good snapshot, replay the suffix": rebuild the system from
//! the same configuration and workload, restore the snapshot, and run
//! to completion — the final [`RunResult`](crate::RunResult) is
//! byte-identical to the uninterrupted run's.
//!
//! Anti-rollback: [`recover_system`] checks the restored snapshot
//! against the WAL head. Restoring any *stale* snapshot as if it were
//! the latest state is a [`StoreError::RollbackDetected`] — no engine
//! counter ever rewinds and no freed leaf-id comes back live, because
//! the state that freed it is provably newer than the state being
//! restored. (Recovery *with* deterministic suffix replay from an old
//! snapshot is always legitimate; it reproduces the exact same run.)
//!
//! Knobs (read by [`SnapshotConfig::from_env`], used by the bench
//! binaries):
//!
//! * `ITESP_SNAPSHOT_DIR` — checkpoint directory (enables snapshots);
//! * `ITESP_SNAPSHOT_EVERY` — CPU cycles between captures (default
//!   [`DEFAULT_SNAPSHOT_EVERY`]).

use std::fmt;
use std::path::{Path, PathBuf};

use itesp_snap::{SnapError, SnapReader, SnapWriter, SnapshotMeta, SnapshotStore, StoreError};

use crate::system::{System, CPU_PER_DRAM_CYCLE};

/// Default CPU cycles between snapshot captures.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 200_000;

/// Snapshot files kept on disk; older ones are pruned, and the WAL is
/// compacted to the retained suffix (the head — the rollback evidence
/// — always survives).
const KEEP_SNAPSHOTS: usize = 4;

/// Where and how often a run checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotConfig {
    /// Checkpoint directory (snapshot files + WAL).
    pub dir: PathBuf,
    /// CPU cycles between captures.
    pub every: u64,
}

impl SnapshotConfig {
    /// Build from `ITESP_SNAPSHOT_DIR` / `ITESP_SNAPSHOT_EVERY`;
    /// `None` when no directory is configured (snapshots off).
    pub fn from_env() -> Option<Self> {
        let dir = std::env::var_os("ITESP_SNAPSHOT_DIR")?;
        if dir.is_empty() {
            return None;
        }
        let every = std::env::var("ITESP_SNAPSHOT_EVERY")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(DEFAULT_SNAPSHOT_EVERY);
        Some(SnapshotConfig {
            dir: PathBuf::from(dir),
            every,
        })
    }

    /// Open the store and build the run loop's sink.
    ///
    /// # Errors
    /// Propagates store-open failures.
    pub fn sink(&self) -> Result<SnapshotSink, StoreError> {
        SnapshotSink::new(&self.dir, self.every)
    }
}

/// The run loop's checkpoint writer: owns the durable store and the
/// capture cadence.
#[derive(Debug)]
pub struct SnapshotSink {
    store: SnapshotStore,
    every: u64,
    next_due: u64,
}

impl SnapshotSink {
    /// Open (creating if needed) a sink writing to `dir` every
    /// `every` CPU cycles (clamped to at least one DRAM cycle).
    ///
    /// # Errors
    /// Propagates store-open failures.
    pub fn new(dir: impl Into<PathBuf>, every: u64) -> Result<Self, StoreError> {
        Ok(SnapshotSink {
            store: SnapshotStore::open(dir)?,
            every: every.max(CPU_PER_DRAM_CYCLE),
            next_due: 0,
        })
    }

    /// Is a capture due at `cycle`? (The run loop additionally aligns
    /// captures to DRAM-tick boundaries.)
    pub fn due(&self, cycle: u64) -> bool {
        cycle >= self.next_due
    }

    /// Serialize `sys` and commit it as the next snapshot, advancing
    /// the cadence and pruning old snapshot files.
    ///
    /// # Errors
    /// Propagates store I/O failures.
    pub fn capture(&mut self, sys: &System) -> Result<SnapshotMeta, StoreError> {
        self.capture_with(sys.cycle(), |w| sys.save_state(w))
    }

    /// Commit a snapshot whose payload `write` serializes — the same
    /// cadence, prune, and WAL discipline as [`Self::capture`], for
    /// state machines other than a [`System`] (the migrate cluster
    /// checkpoints through this).
    ///
    /// # Errors
    /// Propagates store I/O failures.
    pub fn capture_with(
        &mut self,
        cycle: u64,
        write: impl FnOnce(&mut SnapWriter),
    ) -> Result<SnapshotMeta, StoreError> {
        let mut w = SnapWriter::new();
        write(&mut w);
        let meta = self.store.append(cycle, &w.into_bytes())?;
        self.store.prune(KEEP_SNAPSHOTS)?;
        self.next_due = cycle.saturating_add(self.every);
        Ok(meta)
    }

    /// The underlying store (for drills and tests).
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }
}

/// Why a recovery attempt failed.
#[derive(Debug)]
pub enum RecoverError {
    /// The durable store rejected the read (I/O, torn file, empty
    /// store, rollback).
    Store(StoreError),
    /// The snapshot payload did not decode against this system (codec
    /// corruption or a configuration mismatch).
    Decode(SnapError),
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Store(e) => write!(f, "snapshot store: {e}"),
            RecoverError::Decode(e) => write!(f, "snapshot payload: {e}"),
        }
    }
}

impl std::error::Error for RecoverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoverError::Store(e) => Some(e),
            RecoverError::Decode(e) => Some(e),
        }
    }
}

impl From<StoreError> for RecoverError {
    fn from(e: StoreError) -> Self {
        RecoverError::Store(e)
    }
}

impl From<SnapError> for RecoverError {
    fn from(e: SnapError) -> Self {
        RecoverError::Decode(e)
    }
}

/// Restore `sys` (freshly built with the run's configuration and
/// workload) from the newest good snapshot in `dir`, skipping torn
/// files, and verify freshness against the WAL head (anti-rollback).
/// Returns the restored snapshot's metadata; the caller then runs the
/// system to completion, deterministically replaying the suffix.
///
/// # Errors
/// [`RecoverError::Store`] on I/O failure, an empty store, or a
/// rollback (the newest *good* snapshot is older than the WAL head
/// and the caller asked for strict freshness); [`RecoverError::Decode`]
/// when the payload does not match the rebuilt system.
pub fn recover_system(sys: &mut System, dir: &Path) -> Result<SnapshotMeta, RecoverError> {
    let store = SnapshotStore::open(dir)?;
    let (meta, payload, _skipped) = store.load_latest_good()?;
    let mut r = SnapReader::new(&payload);
    sys.load_state(&mut r)?;
    r.finish()?;
    Ok(meta)
}

/// Like [`recover_system`], but *refuse* any snapshot that is not the
/// WAL head — the strict restore an anti-rollback oracle demands when
/// suffix replay is not possible (e.g. resuming as-if-latest). A stale
/// snapshot — even a perfectly intact one — yields
/// [`StoreError::RollbackDetected`].
///
/// # Errors
/// Everything [`recover_system`] returns, plus
/// [`StoreError::RollbackDetected`] for stale snapshots.
pub fn recover_system_strict(sys: &mut System, dir: &Path) -> Result<SnapshotMeta, RecoverError> {
    let store = SnapshotStore::open(dir)?;
    let (meta, payload, _skipped) = store.load_latest_good()?;
    store.verify_fresh(meta.seq)?;
    let mut r = SnapReader::new(&payload);
    sys.load_state(&mut r)?;
    r.finish()?;
    Ok(meta)
}
