//! Whole-stack protocol validation: cores → security engine → DRAM.
//!
//! Full-system runs (trace replay through the security engine into the
//! multi-channel memory system, including metadata traffic, write
//! drains, fast-forward, and refresh) record every DRAM command, and the
//! independent Table III protocol checker validates each channel's log.

use itesp_core::{EngineConfig, Scheme};
use itesp_dram::DramConfig;
use itesp_oracle::ProtocolChecker;
use itesp_sim::{System, SystemConfig};
use itesp_trace::{benchmark, MultiProgram};

fn check_system(dram: DramConfig, scheme: Scheme, bench: &str, ops: usize) {
    let mp = MultiProgram::homogeneous(benchmark(bench).unwrap(), 2, ops, 7);
    let engine = EngineConfig {
        enclaves: 2,
        ..EngineConfig::paper_default(scheme)
    };
    let cfg = SystemConfig::table_iii(dram, engine);
    let (result, logs, end) = System::new(cfg, &mp).run_logged();
    assert!(result.cycles > 0);
    assert_eq!(logs.len(), dram.geometry.channels as usize);
    for (ch, log) in logs.iter().enumerate() {
        assert!(
            !log.is_empty(),
            "[{scheme:?}] channel {ch} issued no commands"
        );
        if let Err(v) = ProtocolChecker::check_log(dram, log, end) {
            panic!("[{scheme:?}] channel {ch}: {v}");
        }
    }
}

/// The unsecure baseline on the paper's single-channel Table III system.
#[test]
fn full_stack_obeys_protocol_unsecure() {
    check_system(DramConfig::table_iii(), Scheme::Unsecure, "mcf", 1200);
}

/// Tree + MAC + embedded-parity metadata traffic interleaved with demand
/// traffic across two channels.
#[test]
fn full_stack_obeys_protocol_itesp_two_channel() {
    check_system(DramConfig::two_channel(), Scheme::Itesp, "mcf", 1200);
}

/// The heaviest metadata scheme (separate MACs, per-block parity) with a
/// write-heavy benchmark: exercises write drains and metadata writebacks.
#[test]
fn full_stack_obeys_protocol_itsynergy_write_heavy() {
    check_system(DramConfig::two_channel(), Scheme::ItSynergy, "lbm", 1000);
}
