//! Crash-recovery integration: snapshots taken mid-run restore into a
//! freshly built system and the replayed suffix reproduces the
//! uninterrupted run byte for byte; torn snapshot files are rejected
//! with a typed error naming the path and recovery falls back to the
//! last good one.

use std::fs;

use itesp_core::Scheme;
use itesp_sim::recovery::{recover_system, recover_system_strict, RecoverError, SnapshotSink};
use itesp_sim::{build_churn_ras_system, ExperimentParams, RasConfig, RunResult, System};
use itesp_snap::{SnapReader, SnapshotStore, StoreError};
use itesp_trace::{benchmark, ChurnConfig, ChurnWorkload};

fn seed() -> u64 {
    std::env::var("ITESP_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED)
}

fn workload(seed: u64) -> ChurnWorkload {
    ChurnWorkload::generate(
        benchmark("mcf").unwrap(),
        &ChurnConfig {
            slots: 4,
            sessions_per_slot: 3,
            ops_per_session: 400,
            mean_arrival_gap: 5_000.0,
            footprint_pages: 16,
            free_fraction: 0.3,
            seed,
        },
    )
}

fn params(seed: u64) -> ExperimentParams {
    ExperimentParams {
        seed,
        ..ExperimentParams::paper_4core(Scheme::Itesp, 400)
    }
}

fn build(seed: u64) -> System {
    build_churn_ras_system(
        &workload(seed),
        params(seed),
        RasConfig::new(seed ^ 0xFA17).with_fault_rate(20.0),
    )
}

/// Byte-exact fingerprint of a finished run (Debug covers every field).
fn fp(r: &RunResult) -> String {
    format!("{r:?}")
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "itesp-recovery-{tag}-{}-{}",
        std::process::id(),
        seed()
    ));
    let _ = fs::remove_dir_all(&d);
    d
}

#[test]
fn every_snapshot_resumes_to_the_identical_final_result() {
    let seed = seed();
    let dir = tmpdir("resume");
    let baseline = {
        let mut sys = build(seed);
        sys.attach_snapshots(SnapshotSink::new(&dir, 100_000).unwrap());
        fp(&sys.try_run().unwrap())
    };

    let store = SnapshotStore::open(&dir).unwrap();
    let records = store.wal_records().unwrap();
    assert!(
        records.len() >= 2,
        "run too short to checkpoint more than once (seed {seed}): {records:?}"
    );
    // Monotone WAL: seq and cycle never rewind.
    for w in records.windows(2) {
        assert!(w[1].seq > w[0].seq, "seq rewound: {records:?}");
        assert!(w[1].cycle > w[0].cycle, "cycle rewound: {records:?}");
    }

    // A crash immediately after *any* surviving snapshot recovers to the
    // same final result: load it, replay the suffix, compare bytes.
    let mut checked = 0;
    for rec in &records {
        let Ok((meta, payload)) = store.load(rec.seq) else {
            continue; // pruned (old snapshots are deleted, WAL kept)
        };
        assert_eq!(meta.seq, rec.seq);
        let mut sys = build(seed);
        let mut r = SnapReader::new(&payload);
        sys.load_state(&mut r)
            .unwrap_or_else(|e| panic!("snapshot {} failed to decode (seed {seed}): {e}", rec.seq));
        r.finish().unwrap();
        assert_eq!(sys.cycle(), rec.cycle, "WAL cycle mismatch");
        let resumed = fp(&sys.try_run().unwrap());
        assert_eq!(
            resumed, baseline,
            "suffix replay from snapshot {} diverged (seed {seed})",
            rec.seq
        );
        checked += 1;
    }
    assert!(checked >= 1, "no loadable snapshot to check (seed {seed})");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovery_skips_a_torn_snapshot_and_uses_the_last_good_one() {
    let seed = seed();
    let dir = tmpdir("torn");
    let baseline = {
        let mut sys = build(seed);
        sys.attach_snapshots(SnapshotSink::new(&dir, 100_000).unwrap());
        fp(&sys.try_run().unwrap())
    };

    let store = SnapshotStore::open(&dir).unwrap();
    let head = store.wal_head().unwrap().expect("snapshots were written");
    // Tear the newest snapshot mid-write: truncate to half its length.
    let path = dir.join(format!("snap-{:016}.bin", head.seq));
    let len = fs::metadata(&path).unwrap().len();
    let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(len / 2).unwrap();
    drop(f);

    // Direct load of the torn file is a typed error naming the path.
    match store.load(head.seq) {
        Err(StoreError::Torn { path: p, .. }) => assert_eq!(p, path),
        other => panic!("expected Torn, got {other:?}"),
    }

    // Recovery falls back to the previous good snapshot and still
    // reproduces the uninterrupted run.
    let mut sys = build(seed);
    let meta = recover_system(&mut sys, &dir).unwrap();
    assert!(meta.seq < head.seq, "must fall back past the torn head");
    assert_eq!(fp(&sys.try_run().unwrap()), baseline);

    // Strict (as-if-latest) restore of the same stale state is a
    // detected rollback: the WAL proves fresher state existed.
    let mut sys = build(seed);
    match recover_system_strict(&mut sys, &dir) {
        Err(RecoverError::Store(StoreError::RollbackDetected {
            snapshot_seq,
            wal_seq,
        })) => {
            assert_eq!(snapshot_seq, meta.seq);
            assert_eq!(wal_seq, head.seq);
        }
        other => panic!("expected RollbackDetected, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn snapshots_from_a_different_configuration_are_rejected() {
    let seed = seed();
    let dir = tmpdir("confmix");
    {
        let mut sys = build(seed);
        sys.attach_snapshots(SnapshotSink::new(&dir, 100_000).unwrap());
        sys.try_run().unwrap();
    }
    // Same workload shape, different scheme: the engine fingerprint
    // must refuse the restore instead of resuming corrupted state.
    let mut other = build_churn_ras_system(
        &workload(seed),
        ExperimentParams {
            seed,
            ..ExperimentParams::paper_4core(Scheme::Synergy, 400)
        },
        RasConfig::new(seed ^ 0xFA17).with_fault_rate(20.0),
    );
    match recover_system(&mut other, &dir) {
        Err(RecoverError::Decode(e)) => {
            let msg = e.to_string();
            assert!(
                msg.contains("fingerprint") || msg.contains("configuration"),
                "unhelpful mismatch error: {msg}"
            );
        }
        other => panic!("expected a decode rejection, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}
