//! End-to-end drills for the online RAS pipeline: kill a chip mid-run
//! and prove every affected block is corrected with the reconstruction
//! traffic visible in the per-channel DRAM command log.

use std::collections::HashMap;

use itesp_core::{EngineConfig, Scheme};
use itesp_dram::{Command, DramConfig, IssuedCommand};
use itesp_sim::{Drill, RasConfig, RasError, RunResult, System, SystemConfig};
use itesp_trace::{benchmark, MultiProgram};

const OPS: usize = 500;

fn workload() -> MultiProgram {
    MultiProgram::homogeneous(benchmark("mcf").unwrap(), 2, OPS, 7)
}

fn config(scheme: Scheme, ras: Option<RasConfig>) -> SystemConfig {
    let engine = EngineConfig {
        enclaves: 2,
        ..EngineConfig::paper_default(scheme)
    };
    let mut cfg = SystemConfig::table_iii(DramConfig::table_iii(), engine);
    cfg.ras = ras;
    cfg
}

fn chip_kill(seed: u64) -> RasConfig {
    let mut ras = RasConfig::new(seed).with_drill(Drill {
        at_dram_cycle: 200,
        channel: 0,
        rank: 2,
        chip: 3,
    });
    // Plain periodic patrol: keeps the recovery-traffic arithmetic
    // exact (scrub-on-detect bursts are exercised separately).
    ras.scrubber = itesp_reliability::Scrubber::hourly();
    ras.patrol_interval = 256;
    ras
}

/// Read/write command counts per rank for channel 0.
fn per_rank(log: &[IssuedCommand]) -> (HashMap<u32, u64>, u64, u64) {
    let mut reads = HashMap::new();
    let mut nread = 0;
    let mut nwrite = 0;
    for c in log {
        match c.cmd {
            Command::Read => {
                *reads.entry(c.rank).or_insert(0) += 1;
                nread += 1;
            }
            Command::Write => nwrite += 1,
            _ => {}
        }
    }
    (reads, nread, nwrite)
}

#[test]
fn chip_kill_drill_corrects_every_affected_block() {
    let mp = workload();
    let (base, base_log, _) = System::new(config(Scheme::Itesp, None), &mp).run_logged();
    let (ras, ras_log, _) =
        System::new(config(Scheme::Itesp, Some(chip_kill(21))), &mp).run_logged();

    assert_eq!(base.ras, Default::default(), "RAS off leaves zero stats");
    let s = &ras.ras;
    assert_eq!(s.drills_executed, 1);
    assert!(s.corrections > 0, "dead-rank reads must trigger recovery");
    assert_eq!(
        s.detections, s.corrections,
        "a single dead chip is always correctable"
    );
    assert_eq!(s.uncorrected(), 0, "no SDC, no DUE: {s:?}");
    assert_eq!(s.sdc_events, 0);
    assert_eq!(s.due_events, 0);
    assert_eq!(s.faults_injected, 0, "no Poisson process configured");
    assert_eq!(s.pages_retired, 0, "chip faults never retire pages");

    // ITESP reconstruction: one leaf-embedded parity fetch plus the
    // seven cross-rank companion reads per corrected block, then the
    // corrected-data writeback.
    assert_eq!(s.parity_reads, s.corrections);
    assert_eq!(s.companion_reads, 7 * s.corrections);
    assert_eq!(s.scrub_writebacks, s.corrections);
    assert!(s.patrol_reads > 0, "periodic patrol must run");

    // Every extra DRAM command is accounted recovery/patrol traffic,
    // visible in the command log.
    let (base_ranks, base_reads, base_writes) = per_rank(&base_log[0]);
    let (ras_ranks, ras_reads, ras_writes) = per_rank(&ras_log[0]);
    assert_eq!(ras_reads - base_reads, s.extra_reads());
    assert_eq!(ras_writes - base_writes, s.extra_writes());

    // The cross-rank reconstruction reads fan out: at least the 7
    // companion ranks plus the re-read dead rank see extra reads.
    let widened = ras_ranks
        .iter()
        .filter(|(rank, n)| **n > base_ranks.get(rank).copied().unwrap_or(0))
        .count();
    assert!(widened >= 8, "reconstruction spans ranks, got {widened}");
}

#[test]
fn scrub_on_detect_bursts_over_the_footprint() {
    let mp = workload();
    let mut cfg = chip_kill(22);
    cfg.scrubber = itesp_reliability::Scrubber::hourly().with_scrub_on_detect();
    cfg.patrol_interval = 0; // burst passes only
    let r = System::new(config(Scheme::Itesp, Some(cfg)), &mp).run();
    let s = &r.ras;
    assert!(s.corrections > 0);
    assert!(
        s.patrol_reads > 0,
        "corrections must trigger burst scrub passes"
    );
    assert!(s.scrubs_run > 0);
    assert_eq!(s.errors_cleared, s.corrections);
    assert_eq!(s.uncorrected(), 0);
}

#[test]
fn detection_only_scheme_reports_typed_uncorrectable() {
    let mp = workload();
    // VAULT detects via its MAC store but has no recovery parity: a
    // dead chip is detected-but-uncorrectable, surfaced as a typed
    // error under halt_on_due — never a panic.
    let mut cfg = chip_kill(23);
    cfg.halt_on_due = true;
    let err = System::new(config(Scheme::Vault, Some(cfg)), &mp)
        .try_run()
        .expect_err("a dead chip without parity must halt");
    match err {
        RasError::Uncorrectable { dram_cycle, .. } => {
            assert!(dram_cycle >= 200, "cannot fail before the drill fires")
        }
        other => panic!("expected Uncorrectable, got {other}"),
    }
}

#[test]
fn detection_only_scheme_counts_due_without_halt() {
    let mp = workload();
    let r = System::new(config(Scheme::Vault, Some(chip_kill(23))), &mp).run();
    let s = &r.ras;
    assert!(s.due_events > 0, "every dead-rank read is a DUE");
    assert_eq!(s.detections, s.due_events);
    assert_eq!(s.corrections, 0);
    assert_eq!(s.parity_reads + s.companion_reads + s.scrub_writebacks, 0);
}

#[test]
fn secddr_chip_kill_is_detected_but_uncorrectable() {
    let mp = workload();
    // SecDDR has no tree at all, yet its link MAC detects every
    // corrupted transfer — and, with no parity structure, can never
    // correct one: all dead-rank reads are DUEs, none silent. (Before
    // detection became a model property this scheme would have been
    // misclassified as MAC-less and suffered SDCs.)
    let r = System::new(config(Scheme::SecDdr, Some(chip_kill(26))), &mp).run();
    let s = &r.ras;
    assert!(s.due_events > 0, "dead-rank reads must surface as DUEs");
    assert_eq!(s.detections, s.due_events);
    assert_eq!(s.sdc_events, 0, "the link MAC leaves nothing silent");
    assert_eq!(s.corrections, 0);
    assert_eq!(s.parity_reads + s.companion_reads + s.scrub_writebacks, 0);
}

#[test]
fn iroram_chip_kill_corrects_through_bucket_parity() {
    let mp = workload();
    // IRO: every detected dead-rank read recovers through the 8-wide
    // bucket parity group — one parity fetch plus seven companion
    // reads per corrected block, like ITESP's shared-parity decode.
    let r = System::new(config(Scheme::IrOram, Some(chip_kill(27))), &mp).run();
    let s = &r.ras;
    assert_eq!(s.drills_executed, 1);
    assert!(s.corrections > 0, "dead-rank reads must trigger recovery");
    assert_eq!(s.detections, s.corrections);
    assert_eq!(s.uncorrected(), 0, "no SDC, no DUE: {s:?}");
    assert_eq!(s.parity_reads, s.corrections);
    assert_eq!(s.companion_reads, 7 * s.corrections);
    assert_eq!(s.scrub_writebacks, s.corrections);
}

#[test]
fn unsecure_scheme_suffers_silent_corruption() {
    let mp = workload();
    let r = System::new(config(Scheme::Unsecure, Some(chip_kill(24))), &mp).run();
    let s = &r.ras;
    assert!(s.sdc_events > 0, "no MAC means silent consumption");
    assert_eq!(s.detections, 0);
}

#[test]
fn ras_runs_are_deterministic() {
    let mp = workload();
    let mut cfg = chip_kill(25);
    cfg.fault_rate_per_mcycle = 50.0;
    let a = System::new(config(Scheme::Itesp, Some(cfg.clone())), &mp).run();
    let b = System::new(config(Scheme::Itesp, Some(cfg)), &mp).run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.ras, b.ras);
    assert_eq!(a.dram.reads, b.dram.reads);
}

#[test]
fn transient_fault_storm_retires_pages_through_the_indirection_layer() {
    let mp = workload();
    // Synergy's per-block parity corrects any single-device fault with
    // a local RMW, so a dense transient-fault storm stays fully
    // correctable while the leaky bucket (threshold 1) retires every
    // faulting page.
    let mut cfg = RasConfig::new(31);
    cfg.fault_rate_per_mcycle = 2000.0;
    cfg.patrol_interval = 16; // aggressive patrol: find faults fast
    cfg.retire_threshold = 1;
    cfg.leak_interval = 0; // buckets never leak
    cfg.scrubber = itesp_reliability::Scrubber::hourly();
    let r = System::new(config(Scheme::Synergy, Some(cfg)), &mp).run();
    let s = &r.ras;
    assert!(s.faults_injected > 0);
    assert!(s.corrections > 0);
    assert_eq!(s.uncorrected(), 0, "single-device faults stay correctable");
    assert!(
        s.pages_retired > 0,
        "threshold-1 buckets must retire pages: {s:?}"
    );
    assert_eq!(s.migration_reads, s.pages_retired * 64);
    assert_eq!(s.migration_writes, s.pages_retired * 64);
    // Per-block parity travels with the block: no groups to break.
    assert_eq!(s.broken_groups, 0);
    assert_eq!(s.parity_reads, s.corrections, "local parity RMW per fix");
    assert_eq!(s.companion_reads, 0);
}

fn count_kind(r: &RunResult) -> (u64, u64) {
    (r.ras.detections, r.ras.corrections)
}

#[test]
fn drill_timing_is_honored() {
    let mp = workload();
    // A drill far past the end of the run never fires.
    let mut late = chip_kill(40);
    late.drills[0].at_dram_cycle = u64::MAX / 8;
    let r = System::new(config(Scheme::Itesp, Some(late)), &mp).run();
    assert_eq!(r.ras.drills_executed, 0);
    assert_eq!(count_kind(&r), (0, 0));
}
