//! Live-daemon smoke tests: concurrent well-behaved tenants, admission
//! control under a full queue, hostile clients, and the drain → restart
//! → byte-identical recovery loop — all over real sockets.

mod common;

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use itesp_serve::chaos::ChaosMode;
use itesp_serve::client::{misbehave, run_once, run_with_retry};
use itesp_serve::protocol::{encode_end, encode_records_frame, read_frame, write_frame, FrameKind};
use itesp_serve::ServeError;

use common::{hello, multi_frame_ops, records, scratch_dir, TestDaemon};

#[test]
fn concurrent_tenants_each_get_deterministic_stats() {
    let daemon = TestDaemon::start(scratch_dir("concurrent"), 4, 8);
    let addr = daemon.traffic;
    let ops = multi_frame_ops();
    let handles: Vec<_> = (1..=8u64)
        .map(|tenant| {
            std::thread::spawn(move || {
                let recs = records(tenant, ops);
                run_once(addr, &hello(tenant, "ITESP"), &recs)
            })
        })
        .collect();
    for h in handles {
        let reply = h.join().unwrap().expect("tenant request succeeds");
        assert!(reply.stats_json.contains("\"slowdown\""));
    }
    // Re-running a tenant's identical request is idempotent: the
    // deterministic JSON does not change.
    let before = daemon.tenants_json();
    run_once(addr, &hello(3, "ITESP"), &records(3, ops)).expect("replay");
    assert_eq!(daemon.tenants_json(), before, "re-completion is idempotent");
    daemon.drain();
}

#[test]
fn full_queue_yields_busy_and_frees_on_completion() {
    // One shard, one slot: a client that is admitted but still
    // streaming holds the only reservation.
    let daemon = TestDaemon::start(scratch_dir("busy"), 1, 1);
    let addr = daemon.traffic;

    let mut holder = TcpStream::connect(addr).unwrap();
    holder
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write_frame(&mut holder, FrameKind::Hello, &hello(1, "ITESP").encode()).unwrap();
    let admitted = read_frame(&mut holder).unwrap().expect("reply");
    assert_eq!(admitted.kind, FrameKind::Admitted);

    // The shard gauges see the held reservation: one shard, full.
    let gauges = itesp_serve::server::metrics_command(daemon.metrics, b'S').expect("metrics S");
    assert!(gauges.contains("\"in_flight\": 1"), "got {gauges}");
    assert!(gauges.contains("\"queue_depth\": 1"), "got {gauges}");

    // Second tenant: the queue is full, so the daemon must say Busy
    // immediately rather than queueing the socket.
    let err = run_once(addr, &hello(2, "ITESP"), &records(2, 64)).unwrap_err();
    assert!(matches!(err, ServeError::Busy), "got {err:?}");
    assert!(err.is_retryable());

    // The holder finishes; its slot frees only after its stats land.
    let recs = records(1, 64);
    write_frame(
        &mut holder,
        FrameKind::Records,
        &encode_records_frame(&recs),
    )
    .unwrap();
    write_frame(&mut holder, FrameKind::End, &encode_end(recs.len() as u64)).unwrap();
    let result = read_frame(&mut holder).unwrap().expect("result");
    assert_eq!(result.kind, FrameKind::Result);
    drop(holder);

    // Now the retrying client path gets through.
    let reply = run_with_retry(
        &daemon.state_dir,
        &hello(2, "ITESP"),
        &records(2, 64),
        5,
        Duration::from_millis(20),
    )
    .expect("retry succeeds once the slot frees");
    assert!(reply.stats_json.contains("\"tenant\": 2"));
    daemon.drain();
}

#[test]
fn hostile_clients_do_not_take_the_daemon_down() {
    let daemon = TestDaemon::start(scratch_dir("hostile"), 2, 4);
    let addr = daemon.traffic;
    let recs = records(9, 256);
    for mode in [
        ChaosMode::Garbage,
        ChaosMode::Oversized,
        ChaosMode::DisconnectMidFrame,
        ChaosMode::SlowLoris,
    ] {
        misbehave(addr, mode, &hello(9, "ITESP"), &recs).expect("chaos client ran");
        assert!(daemon.alive(), "daemon died after {mode:?}");
    }
    // A disconnect mid-frame must have freed its admission slot: all
    // four slots... er, all slots are available for honest tenants.
    let reply = run_once(addr, &hello(10, "ITESP"), &records(10, 128)).expect("honest tenant");
    assert!(reply.stats_json.contains("\"tenant\": 10"));
    daemon.drain();
}

#[test]
fn drain_refuses_new_hellos_with_a_typed_error() {
    let daemon = TestDaemon::start(scratch_dir("drainrefuse"), 2, 4);
    // Open the connection *before* the drain so the accept loop picks
    // it up, then send the Hello after the flag flips.
    let mut stream = TcpStream::connect(daemon.traffic).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let _ = itesp_serve::server::metrics_command(daemon.metrics, b'D');
    std::thread::sleep(Duration::from_millis(50));
    write_frame(&mut stream, FrameKind::Hello, &hello(5, "ITESP").encode()).unwrap();
    stream.flush().unwrap();
    let reply = read_frame(&mut stream).unwrap().expect("refusal frame");
    assert_eq!(reply.kind, FrameKind::ErrorFrame);
    let (code, _msg) = itesp_serve::protocol::decode_error(&reply.payload).unwrap();
    assert_eq!(code, ServeError::Draining.code());
    drop(stream);
    // A second `D` during the drain window is harmless.
    daemon.drain();
}

#[test]
fn drain_then_restart_recovers_byte_identical_stats() {
    let state = scratch_dir("recover");
    let daemon = TestDaemon::start(state.clone(), 2, 4);
    for tenant in 1..=4u64 {
        run_once(
            daemon.traffic,
            &hello(tenant, "ITESP"),
            &records(tenant, 200),
        )
        .expect("seed tenant");
    }
    let reference = daemon.tenants_json();
    assert!(reference.contains("\"tenant\": 4"));
    daemon.drain();

    // A restarted daemon serves the recovered registry immediately.
    let reborn = TestDaemon::start(state, 2, 4);
    assert_eq!(
        reborn.tenants_json(),
        reference,
        "recovered per-tenant stats must be byte-identical"
    );
    // And keeps accepting work on top of the recovered state.
    run_once(reborn.traffic, &hello(5, "ITESP"), &records(5, 200)).expect("post-recovery tenant");
    assert!(reborn.tenants_json().contains("\"tenant\": 5"));
    reborn.drain();
}
