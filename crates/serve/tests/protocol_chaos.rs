//! Protocol robustness property tests: a seeded corpus of hostile wire
//! blobs, replayed both against the pure codec and against a live
//! daemon. Every case must produce a *typed* error (or a clean close)
//! — never a panic, never a hang, never a daemon death.
//!
//! The corpus is regenerated from `ITESP_TEST_SEED` (default 42), so a
//! failure report of seed + case index replays exactly:
//!
//! ```text
//! ITESP_TEST_SEED=1234 cargo test -p itesp-serve --test protocol_chaos
//! ```

mod common;

use std::io::{Cursor, Write};
use std::net::TcpStream;
use std::time::Duration;

use itesp_reliability::env_seed;
use itesp_serve::chaos::{corpus, ChaosRng};
use itesp_serve::client::run_once;
use itesp_serve::protocol::{read_frame, records_frame_cells, Hello};
use itesp_serve::ServeError;
use itesp_trace::StreamDecoder;

use common::{hello, records, scratch_dir, TestDaemon};

const CASES_PER_KIND: usize = 8;

/// Pure codec: every corpus blob decodes to a typed error, an
/// incomplete read, or (by construction never) a valid frame — and the
/// decoder must not panic on any of them.
#[test]
fn corpus_never_panics_the_codec() {
    let seed = env_seed(42);
    for (i, case) in corpus(seed, CASES_PER_KIND).iter().enumerate() {
        let verdict = std::panic::catch_unwind(|| {
            let mut cursor = Cursor::new(case.bytes.clone());
            // Drain the cursor frame by frame until error or EOF; a
            // blob may legitimately contain one well-formed frame
            // (the wrong-opening-kind cases) before the garbage.
            loop {
                match read_frame(&mut cursor) {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(_) => break,
                }
            }
        });
        assert!(
            verdict.is_ok(),
            "codec panicked on case {i} ({}) with ITESP_TEST_SEED={seed}",
            case.label
        );
    }
}

/// Random bytes are never a valid Hello, and the decoder says so with
/// a typed error rather than a panic.
#[test]
fn random_hello_payloads_yield_typed_errors() {
    let seed = env_seed(42);
    let mut rng = ChaosRng::new(seed ^ 0x48454C4C);
    for i in 0..64 {
        let n = rng.below(96) as usize;
        let payload: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
        let verdict = std::panic::catch_unwind(|| Hello::decode(&payload));
        let decoded = verdict.unwrap_or_else(|_| {
            panic!("Hello::decode panicked on case {i} with ITESP_TEST_SEED={seed}")
        });
        // A random blob passing full validation would be astonishing;
        // what matters is that failure is typed.
        if let Err(e) = decoded {
            assert!(e.code() > 0);
        }
    }
}

/// Records framing: corrupt counts and odd splits surface as typed
/// errors from `records_frame_cells` / `StreamDecoder`, never panics.
#[test]
fn record_stream_corruption_is_typed() {
    let seed = env_seed(42);
    let mut rng = ChaosRng::new(seed ^ 0x5245_4353);
    for _ in 0..64 {
        let n = rng.below(256) as usize;
        let payload: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
        match records_frame_cells(&payload) {
            Ok((_count, cells)) => {
                let mut decoder = StreamDecoder::new();
                let mut out = Vec::new();
                // Bad op bytes and trailing cells must be typed trace
                // errors, not panics.
                if decoder.push(cells, &mut out).is_ok() {
                    let _ = decoder.finish();
                }
            }
            Err(e) => assert!(e.code() > 0),
        }
    }
    // Declared count disagreeing with the byte length is an error.
    let mut payload = Vec::new();
    payload.extend_from_slice(&7u32.to_le_bytes());
    payload.extend_from_slice(&[0u8; 13]); // one cell, seven declared
    assert!(matches!(
        records_frame_cells(&payload),
        Err(ServeError::Malformed(_))
    ));
}

/// The live daemon survives the entire corpus thrown at its traffic
/// port — liveness probe still answers, an honest request still
/// completes, and the deterministic registry is untouched by any of it.
#[test]
fn live_daemon_survives_the_corpus() {
    let seed = env_seed(42);
    let daemon = TestDaemon::start(scratch_dir("corpus"), 2, 4);

    // Seed one honest tenant so there is registry state to protect.
    run_once(daemon.traffic, &hello(1, "ITESP"), &records(1, 128)).expect("honest tenant");
    let reference = daemon.tenants_json();

    for (i, case) in corpus(seed, CASES_PER_KIND).iter().enumerate() {
        let mut stream = TcpStream::connect(daemon.traffic).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // The peer may close mid-write (typed refusal already sent) —
        // that is the daemon doing its job, not a test failure.
        let _ = stream.write_all(&case.bytes);
        let _ = stream.flush();
        let _ = read_frame(&mut stream); // typed error frame or close
        drop(stream);
        assert!(
            daemon.alive(),
            "daemon died on case {i} ({}) with ITESP_TEST_SEED={seed}",
            case.label
        );
    }

    assert_eq!(
        daemon.tenants_json(),
        reference,
        "hostile bytes must not perturb the deterministic registry"
    );
    run_once(daemon.traffic, &hello(2, "ITESP"), &records(2, 128))
        .expect("daemon still serves honest tenants after the corpus");
    daemon.drain();
}
