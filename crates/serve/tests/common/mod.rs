//! Shared harness for the serve integration tests: boot a daemon
//! in-process, talk to it over real sockets, drain it cleanly.
#![allow(dead_code)] // each test binary uses a different subset

use std::net::SocketAddr;
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::Duration;

use itesp_serve::client::CHUNK_RECORDS;
use itesp_serve::protocol::{Hello, PROTOCOL_VERSION};
use itesp_serve::server::metrics_command;
use itesp_serve::{Server, ServerConfig};
use itesp_trace::{benchmark, TraceRecord, WorkloadGen};

/// A fresh scratch state directory (removed on [`TestDaemon::drain`]).
pub fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("itesp-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A daemon running on its own thread, bound to ephemeral ports.
pub struct TestDaemon {
    pub traffic: SocketAddr,
    pub metrics: SocketAddr,
    pub state_dir: PathBuf,
    handle: JoinHandle<Result<(), itesp_serve::ServeError>>,
}

impl TestDaemon {
    /// Boot with a config tuned for fast tests: short read deadline,
    /// snapshot on every completion.
    pub fn start(state_dir: PathBuf, shards: usize, queue_depth: usize) -> TestDaemon {
        let mut cfg = ServerConfig::new(&state_dir);
        cfg.shards = shards;
        cfg.queue_depth = queue_depth;
        cfg.snap_every = 1;
        cfg.read_timeout = Duration::from_millis(500);
        let server = Server::start(cfg).expect("daemon start");
        let traffic = server.traffic_addr();
        let metrics = server.metrics_addr();
        let handle = std::thread::spawn(move || server.run());
        TestDaemon {
            traffic,
            metrics,
            state_dir,
            handle,
        }
    }

    /// Scrape the deterministic per-tenant stats JSON (`T`).
    pub fn tenants_json(&self) -> String {
        metrics_command(self.metrics, b'T').expect("metrics T")
    }

    /// Liveness probe (`P`).
    pub fn alive(&self) -> bool {
        matches!(metrics_command(self.metrics, b'P'), Ok(s) if s == "ok\n")
    }

    /// Trigger a drain (`D`) and wait for the daemon to exit cleanly.
    pub fn drain(self) {
        let _ = metrics_command(self.metrics, b'D');
        self.handle
            .join()
            .expect("daemon thread")
            .expect("clean drain");
    }
}

/// A well-formed Hello for `tenant`, scheme ITESP unless overridden.
pub fn hello(tenant: u64, scheme: &str) -> Hello {
    Hello {
        version: PROTOCOL_VERSION,
        tenant,
        request_seq: 1,
        seed: 7,
        scheme: scheme.into(),
        benchmark: "mcf".into(),
        working_set_mb: benchmark("mcf").unwrap().working_set_mb,
        fault_rate: 0.0,
    }
}

/// Deterministic per-tenant trace: each tenant streams different bytes.
pub fn records(tenant: u64, ops: usize) -> Vec<TraceRecord> {
    let b = benchmark("mcf").unwrap();
    WorkloadGen::for_benchmark(b, 0xC0FFEE ^ tenant)
        .take(ops)
        .collect()
}

/// Enough records to span several frames (exercises chunk reassembly).
pub fn multi_frame_ops() -> usize {
    2 * CHUNK_RECORDS + 17
}
