//! Worker panic isolation, in its own test binary: this test sets the
//! process-global `ITESP_SERVE_CHAOS` directive, so it must not share
//! a process with other tests that run tenants.

mod common;

use itesp_serve::chaos::CHAOS_ENV;
use itesp_serve::client::run_once;
use itesp_serve::ServeError;

use common::{hello, records, scratch_dir, TestDaemon};

#[test]
fn worker_panic_is_isolated_per_tenant() {
    // The drill directive: every request from tenant 13 panics inside
    // the shard worker.
    std::env::set_var(CHAOS_ENV, "panic-tenant=13");
    let daemon = TestDaemon::start(scratch_dir("panic"), 2, 4);

    // The cursed tenant gets a typed error after the retry budget —
    // not a hung socket, not a daemon death.
    let err = run_once(daemon.traffic, &hello(13, "ITESP"), &records(13, 64)).unwrap_err();
    assert!(
        matches!(err, ServeError::WorkerPanicked { .. }),
        "got {err:?}"
    );
    assert!(daemon.alive(), "daemon must survive the worker panic");

    // Tenants sharing the panicked worker's shard still complete:
    // 13 % 2 == 1, and so is 15 % 2.
    let reply =
        run_once(daemon.traffic, &hello(15, "ITESP"), &records(15, 64)).expect("same-shard tenant");
    assert!(reply.stats_json.contains("\"tenant\": 15"));
    let reply =
        run_once(daemon.traffic, &hello(2, "ITESP"), &records(2, 64)).expect("other-shard tenant");
    assert!(reply.stats_json.contains("\"tenant\": 2"));

    // The panicked request never lands in the deterministic registry.
    assert!(!daemon.tenants_json().contains("\"tenant\": 13"));
    std::env::remove_var(CHAOS_ENV);
    daemon.drain();
}
