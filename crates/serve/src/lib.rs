//! `itesp-serve`: the simulator as a long-running traffic endpoint.
//!
//! Batch binaries treat "millions of users" as a trace parameter; this
//! crate treats them as *tenants*: concurrent TCP clients streaming
//! length-prefixed trace records at a daemon that multiplexes them onto
//! sharded [`itesp_sim::System`] instances. The robustness layer is the
//! point — admission control with explicit `Busy` rejections, bounded
//! queues that backpressure the socket, per-connection retry policies
//! shared with the batch side via [`itesp_orchestrate`], panic-isolated
//! shard workers, and a SIGTERM drain that snapshots security state via
//! [`itesp_snap`] so a restarted daemon recovers where it left off.
//!
//! Module map:
//! - [`error`] — typed `ServeError` for every way a connection can fail.
//! - [`protocol`] — the `ITSV` length-prefixed frame codec.
//! - [`tenant`] — per-tenant simulation: streamed records → `RunResult`.
//! - [`registry`] — crash-consistent per-tenant stats, snapshot wire format.
//! - [`shard`] — bounded-queue shard workers with panic isolation.
//! - [`server`] — accept loop, admission control, drain, metrics endpoint.
//! - [`chaos`] — fault injection used by the `figserve` drill.
//! - [`client`] — a well-behaved (and deliberately ill-behaved) test client.

pub mod chaos;
pub mod client;
pub mod error;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod shard;
pub mod tenant;

pub use error::ServeError;
pub use protocol::{Frame, FrameKind, MAX_FRAME};
pub use registry::Registry;
pub use server::{Server, ServerConfig};
pub use tenant::{run_tenant, TenantRequest, TenantStats};
