//! A tenant client: the well-behaved path with retry, plus the
//! deliberately ill-behaved chaos variants the drills use.
//!
//! The retrying client mirrors production reality: ports change across
//! daemon restarts, so every attempt re-reads the `ports` file; `Busy`
//! and transport failures back off (doubling) and retry; protocol and
//! parameter errors do not retry — resending identical bytes
//! reproduces them.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::Duration;

use itesp_trace::TraceRecord;

use crate::chaos::ChaosMode;
use crate::error::ServeError;
use crate::protocol::{
    decode_error, encode_end, encode_records_frame, read_frame, write_frame, FrameKind, Hello,
    MAGIC,
};

/// Records per `Records` frame — deliberately unaligned with typical
/// socket buffering so frame boundaries and cell boundaries disagree.
pub const CHUNK_RECORDS: usize = 997;

/// A successful reply: the daemon's `Result` JSON, verbatim.
#[derive(Debug, Clone)]
pub struct ClientReply {
    pub stats_json: String,
}

/// Reconstruct a coarse [`ServeError`] from an `ErrorFrame`.
fn error_from_wire(code: u16, msg: String) -> ServeError {
    match code {
        12 => ServeError::Busy,
        13 => ServeError::Draining,
        14 => ServeError::Timeout { ms: 0, attempts: 0 },
        15 => ServeError::WorkerPanicked {
            message: msg,
            attempts: 0,
        },
        _ => ServeError::Malformed(format!("server error {code}: {msg}")),
    }
}

/// Run one request against a known traffic address, no retry.
///
/// # Errors
/// Typed transport, protocol, and server-reported failures.
pub fn run_once(
    addr: SocketAddr,
    hello: &Hello,
    records: &[TraceRecord],
) -> Result<ClientReply, ServeError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(300)))?;
    write_frame(&mut stream, FrameKind::Hello, &hello.encode())?;
    let Some(reply) = read_frame(&mut stream)? else {
        return Err(ServeError::Truncated { needed: 9, got: 0 });
    };
    match reply.kind {
        FrameKind::Admitted => {}
        FrameKind::Busy => return Err(ServeError::Busy),
        FrameKind::ErrorFrame => {
            let (code, msg) = decode_error(&reply.payload)?;
            return Err(error_from_wire(code, msg));
        }
        other => {
            return Err(ServeError::Malformed(format!(
                "expected Admitted/Busy, got {other:?}"
            )))
        }
    }
    for chunk in records.chunks(CHUNK_RECORDS) {
        write_frame(
            &mut stream,
            FrameKind::Records,
            &encode_records_frame(chunk),
        )?;
    }
    write_frame(
        &mut stream,
        FrameKind::End,
        &encode_end(records.len() as u64),
    )?;
    let Some(reply) = read_frame(&mut stream)? else {
        return Err(ServeError::Truncated { needed: 9, got: 0 });
    };
    match reply.kind {
        FrameKind::Result => Ok(ClientReply {
            stats_json: String::from_utf8_lossy(&reply.payload).into_owned(),
        }),
        FrameKind::ErrorFrame => {
            let (code, msg) = decode_error(&reply.payload)?;
            Err(error_from_wire(code, msg))
        }
        other => Err(ServeError::Malformed(format!(
            "expected Result, got {other:?}"
        ))),
    }
}

/// Run one request against a daemon's *state dir*, retrying transient
/// failures. Each attempt re-reads the ports file, so the client
/// follows the daemon across restarts; the backoff doubles per retry.
///
/// # Errors
/// The last failure once `retries` are exhausted, or immediately for a
/// non-retryable error.
pub fn run_with_retry(
    state_dir: &Path,
    hello: &Hello,
    records: &[TraceRecord],
    retries: u32,
    backoff: Duration,
) -> Result<ClientReply, ServeError> {
    let mut wait = backoff;
    let mut attempt = 0;
    loop {
        attempt += 1;
        let result = read_ports_and_run(state_dir, hello, records);
        match result {
            Ok(reply) => return Ok(reply),
            Err(e) if e.is_retryable() && attempt <= retries => {
                std::thread::sleep(wait);
                wait = wait.saturating_mul(2);
            }
            Err(e) => return Err(e),
        }
    }
}

fn read_ports_and_run(
    state_dir: &Path,
    hello: &Hello,
    records: &[TraceRecord],
) -> Result<ClientReply, ServeError> {
    let (traffic, _metrics) = crate::server::read_ports(state_dir)?;
    run_once(SocketAddr::from(([127, 0, 0, 1], traffic)), hello, records)
}

/// A deliberately ill-behaved client for the chaos drills. Every mode
/// returns `Ok(())` when the *daemon* behaved (stayed up, answered
/// with a typed error or closed the socket) — the caller separately
/// asserts the daemon's health and stats.
///
/// # Errors
/// Only unexpected local I/O failures (e.g. could not connect).
pub fn misbehave(
    addr: SocketAddr,
    mode: ChaosMode,
    hello: &Hello,
    records: &[TraceRecord],
) -> Result<(), ServeError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    match mode {
        ChaosMode::DisconnectMidFrame => {
            write_frame(&mut stream, FrameKind::Hello, &hello.encode())?;
            let _ = read_frame(&mut stream)?; // Admitted
                                              // Start a Records frame, then vanish mid-payload.
            let payload = encode_records_frame(&records[..records.len().min(100)]);
            let mut partial = Vec::new();
            partial.extend_from_slice(MAGIC);
            partial.push(FrameKind::Records.to_u8());
            partial.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            partial.extend_from_slice(&payload[..payload.len() / 2]);
            stream.write_all(&partial)?;
            stream.flush()?;
            drop(stream); // RST/FIN mid-frame
        }
        ChaosMode::SlowLoris => {
            // Trickle the Hello a byte at a time, slower than the
            // daemon's read deadline can tolerate forever. The daemon
            // must cut us off rather than hold the socket.
            let wire = {
                let mut w = Vec::new();
                write_frame(&mut w, FrameKind::Hello, &hello.encode())?;
                w
            };
            for b in wire.iter().take(6) {
                if stream.write_all(&[*b]).is_err() {
                    return Ok(()); // daemon already hung up — correct
                }
                let _ = stream.flush();
                std::thread::sleep(Duration::from_millis(400));
            }
            // Stop sending entirely; wait for the daemon to hang up.
            let mut buf = [0u8; 16];
            use std::io::Read;
            let _ = stream.read(&mut buf);
        }
        ChaosMode::Garbage => {
            stream.write_all(b"GET / HTTP/1.1\r\n\r\n")?;
            stream.flush()?;
            let _ = read_frame(&mut stream); // typed error or close
        }
        ChaosMode::Oversized => {
            let mut wire = Vec::new();
            wire.extend_from_slice(MAGIC);
            wire.push(FrameKind::Records.to_u8());
            wire.extend_from_slice(&u32::MAX.to_le_bytes());
            stream.write_all(&wire)?;
            stream.flush()?;
            let _ = read_frame(&mut stream);
        }
    }
    Ok(())
}
