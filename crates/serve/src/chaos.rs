//! Fault injection for the serve drills.
//!
//! Two halves:
//!
//! * **Server-side** — `ITESP_SERVE_CHAOS` directives parsed by the
//!   daemon. `panic-tenant=<id>` makes [`crate::tenant::run_tenant`]
//!   panic for that tenant, the deliberate worker panic the drill uses
//!   to prove shard isolation. A malformed directive is a hard error
//!   at startup (the repo's `ITESP_*` convention), not a silent no-op.
//! * **Client-side** — [`ChaosMode`] behaviors a hostile client can
//!   exhibit (disconnect mid-frame, slow-loris, garbage, oversized
//!   declarations) plus a seeded corpus of malformed wire blobs for
//!   the protocol property tests, replayable via `ITESP_TEST_SEED`.

use crate::protocol::{FrameKind, HEADER, MAGIC, MAX_FRAME};

/// Env var the daemon reads chaos directives from.
pub const CHAOS_ENV: &str = "ITESP_SERVE_CHAOS";

/// The tenant whose requests must panic in the worker, if any.
///
/// # Panics
/// On a malformed directive — misconfiguration must surface, not
/// silently disable the drill.
pub fn panic_tenant() -> Option<u64> {
    let spec = std::env::var(CHAOS_ENV).ok()?;
    let mut target = None;
    for directive in spec.split(',').filter(|d| !d.trim().is_empty()) {
        let d = directive.trim();
        let Some(id) = d.strip_prefix("panic-tenant=") else {
            panic!("{CHAOS_ENV}: unknown directive {d:?} (want panic-tenant=<id>)");
        };
        target = Some(
            id.parse()
                .unwrap_or_else(|_| panic!("{CHAOS_ENV}: panic-tenant wants a u64, got {id:?}")),
        );
    }
    target
}

/// Ways a chaotic client misbehaves on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Drop the connection partway through a Records frame.
    DisconnectMidFrame,
    /// Trickle the request a few bytes at a time with long pauses, so
    /// a daemon without read deadlines would hold the socket forever.
    SlowLoris,
    /// Open with bytes that are not a frame at all.
    Garbage,
    /// Declare a frame length past [`MAX_FRAME`].
    Oversized,
}

/// Tiny deterministic generator (xorshift64*) so the chaos corpus
/// depends only on the seed — `vendor/rand` is a dev-dependency and
/// this must run inside the daemon's own tests and drills.
#[derive(Debug, Clone)]
pub struct ChaosRng(u64);

impl ChaosRng {
    pub fn new(seed: u64) -> Self {
        // Splitmix-style scramble so adjacent seeds diverge; zero
        // state would be a fixed point of the xorshift, so fall back
        // to an arbitrary odd constant.
        let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        ChaosRng(if x == 0 { 0x9E37_79B9_7F4A_7C15 } else { x })
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// One corpus entry: hostile bytes plus what the daemon must answer.
#[derive(Debug, Clone)]
pub struct CorpusCase {
    pub label: &'static str,
    pub bytes: Vec<u8>,
}

/// A seeded corpus of malformed wire blobs. Every case must yield a
/// typed [`crate::ServeError`] — never a panic, never a hang. The same
/// seed regenerates the same corpus, so a failure report of
/// `ITESP_TEST_SEED=<seed>` plus the case index replays exactly.
pub fn corpus(seed: u64, cases_per_kind: usize) -> Vec<CorpusCase> {
    let mut rng = ChaosRng::new(seed);
    let mut out = Vec::new();
    for _ in 0..cases_per_kind {
        // Pure garbage: random bytes, random length (may start with a
        // byte of the magic by chance — still must not be accepted).
        let n = 1 + rng.below(64) as usize;
        let bytes: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
        out.push(CorpusCase {
            label: "garbage",
            bytes,
        });

        // Valid header, oversized declared length.
        let mut bytes = Vec::with_capacity(HEADER);
        bytes.extend_from_slice(MAGIC);
        bytes.push(FrameKind::Records.to_u8());
        let len = MAX_FRAME as u64 + 1 + rng.below(u32::MAX as u64 - MAX_FRAME as u64);
        bytes.extend_from_slice(&(len as u32).to_le_bytes());
        out.push(CorpusCase {
            label: "oversized",
            bytes,
        });

        // Truncated: a legitimate Hello header + partial payload.
        let declared = 16 + rng.below(64) as u32;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(FrameKind::Hello.to_u8());
        bytes.extend_from_slice(&declared.to_le_bytes());
        let sent = rng.below(u64::from(declared)) as usize;
        bytes.extend((0..sent).map(|_| rng.next_u64() as u8));
        out.push(CorpusCase {
            label: "truncated",
            bytes,
        });

        // Unknown kind with a plausible length.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(100 + rng.below(100) as u8);
        bytes.extend_from_slice(&8u32.to_le_bytes());
        bytes.extend_from_slice(&rng.next_u64().to_le_bytes());
        out.push(CorpusCase {
            label: "unknown-kind",
            bytes,
        });

        // A well-formed frame of the wrong kind to open with, followed
        // by interleaved garbage.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(FrameKind::End.to_u8());
        bytes.extend_from_slice(&8u32.to_le_bytes());
        bytes.extend_from_slice(&rng.next_u64().to_le_bytes());
        let n = rng.below(32) as usize;
        bytes.extend((0..n).map(|_| rng.next_u64() as u8));
        out.push(CorpusCase {
            label: "wrong-opening-kind",
            bytes,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_per_seed() {
        let a = corpus(42, 3);
        let b = corpus(42, 3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.bytes, y.bytes);
            assert_eq!(x.label, y.label);
        }
        let c = corpus(43, 3);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.bytes != y.bytes),
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn rng_is_not_a_fixed_point_at_zero_seed() {
        let mut r = ChaosRng::new(0);
        let vals: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(vals.windows(2).all(|w| w[0] != w[1]));
    }
}
