//! The `ITSV` length-prefixed frame protocol.
//!
//! Every message on the traffic port is one frame:
//!
//! ```text
//! b"ITSV" | kind: u8 | len: u32 LE | payload[len]
//! ```
//!
//! Clients send `Hello` (who am I, what scheme, how many records),
//! then `Records` frames of 13-byte trace cells, then `End`. The
//! daemon answers `Admitted` or `Busy` after `Hello`, and `Result`
//! (a JSON [`crate::TenantStats`]) or `ErrorFrame` (code + message)
//! after `End`. Reading is strict: a declared length past
//! [`MAX_FRAME`] is rejected *before* any payload is buffered, and a
//! disconnect mid-frame is [`ServeError::Truncated`], never a panic.

use std::io::{ErrorKind, Read, Write};

use itesp_trace::TraceRecord;

use crate::error::ServeError;

/// Protocol version spoken by this build.
pub const PROTOCOL_VERSION: u16 = 1;

/// Frame magic.
pub const MAGIC: &[u8; 4] = b"ITSV";

/// Hard cap on a single frame's payload. Records frames chunk a trace
/// into pieces under this; anything declaring more is hostile.
pub const MAX_FRAME: usize = 1 << 20;

/// Frame header size: magic + kind + len.
pub const HEADER: usize = 4 + 1 + 4;

/// Frame kinds. Client-to-daemon kinds are low, daemon-to-client high.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    Hello,
    Records,
    End,
    Admitted,
    Busy,
    Result,
    ErrorFrame,
}

impl FrameKind {
    pub fn to_u8(self) -> u8 {
        match self {
            FrameKind::Hello => 1,
            FrameKind::Records => 2,
            FrameKind::End => 3,
            FrameKind::Admitted => 16,
            FrameKind::Busy => 17,
            FrameKind::Result => 18,
            FrameKind::ErrorFrame => 19,
        }
    }

    pub fn from_u8(b: u8) -> Result<Self, ServeError> {
        Ok(match b {
            1 => FrameKind::Hello,
            2 => FrameKind::Records,
            3 => FrameKind::End,
            16 => FrameKind::Admitted,
            17 => FrameKind::Busy,
            18 => FrameKind::Result,
            19 => FrameKind::ErrorFrame,
            other => return Err(ServeError::UnknownKind(other)),
        })
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub kind: FrameKind,
    pub payload: Vec<u8>,
}

/// Read exactly `buf.len()` bytes, reporting a clean disconnect
/// mid-read as [`ServeError::Truncated`] with byte counts.
fn read_exact_or_truncated(r: &mut impl Read, buf: &mut [u8]) -> Result<(), ServeError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(ServeError::Truncated {
                    needed: buf.len(),
                    got,
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Read one frame. `Ok(None)` is a clean EOF *at a frame boundary*
/// (the peer closed between frames); EOF anywhere else is
/// [`ServeError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, ServeError> {
    let mut header = [0u8; HEADER];
    let mut got = 0;
    while got < HEADER {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(ServeError::Truncated {
                    needed: HEADER,
                    got,
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    if &header[..4] != MAGIC {
        return Err(ServeError::BadMagic(
            header[..4].try_into().expect("4 bytes"),
        ));
    }
    let kind = FrameKind::from_u8(header[4])?;
    let len = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return Err(ServeError::Oversized {
            len,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; len];
    read_exact_or_truncated(r, &mut payload)?;
    Ok(Some(Frame { kind, payload }))
}

/// Write one frame.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> Result<(), ServeError> {
    debug_assert!(payload.len() <= MAX_FRAME);
    let mut buf = Vec::with_capacity(HEADER + payload.len());
    buf.extend_from_slice(MAGIC);
    buf.push(kind.to_u8());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// `Hello` payload: everything the daemon needs to admit, place, and
/// later recompute a request deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct Hello {
    pub version: u16,
    /// Tenant identity; shard placement and stats are keyed on it.
    pub tenant: u64,
    /// Idempotency key: re-completing the same (tenant, seq) after a
    /// crash-retry overwrites identically instead of double-counting.
    pub request_seq: u64,
    /// Seed for the tenant's RAS pipeline (0 fault rate = unused).
    pub seed: u64,
    /// Scheme label from [`itesp_core::Scheme::ALL`].
    pub scheme: String,
    /// Benchmark name, for reporting and working-set sizing.
    pub benchmark: String,
    /// Working-set megabytes used by page mapping.
    pub working_set_mb: u64,
    /// Poisson fault rate for the online RAS pipeline; 0.0 = off.
    pub fault_rate: f64,
}

impl Hello {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.tenant.to_le_bytes());
        out.extend_from_slice(&self.request_seq.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        put_str(&mut out, &self.scheme);
        put_str(&mut out, &self.benchmark);
        out.extend_from_slice(&self.working_set_mb.to_le_bytes());
        out.extend_from_slice(&self.fault_rate.to_bits().to_le_bytes());
        out
    }

    pub fn decode(buf: &[u8]) -> Result<Self, ServeError> {
        let mut c = Cursor { buf, pos: 0 };
        let hello = Hello {
            version: c.u16("version")?,
            tenant: c.u64("tenant")?,
            request_seq: c.u64("request_seq")?,
            seed: c.u64("seed")?,
            scheme: c.str("scheme")?,
            benchmark: c.str("benchmark")?,
            working_set_mb: c.u64("working_set_mb")?,
            fault_rate: f64::from_bits(c.u64("fault_rate")?),
        };
        c.done()?;
        if !hello.fault_rate.is_finite() || hello.fault_rate < 0.0 {
            return Err(ServeError::Malformed(format!(
                "fault_rate {} not a finite non-negative number",
                hello.fault_rate
            )));
        }
        Ok(hello)
    }
}

/// `Records` payload: count + that many 13-byte cells.
pub fn encode_records_frame(records: &[TraceRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + records.len() * itesp_trace::STREAM_CELL);
    out.extend_from_slice(&(records.len() as u32).to_le_bytes());
    out.extend_from_slice(&itesp_trace::encode_records(records));
    out
}

/// Split a `Records` payload into (declared count, cell bytes).
pub fn records_frame_cells(payload: &[u8]) -> Result<(u32, &[u8]), ServeError> {
    if payload.len() < 4 {
        return Err(ServeError::Malformed(format!(
            "Records frame of {} bytes has no count",
            payload.len()
        )));
    }
    let count = u32::from_le_bytes(payload[..4].try_into().expect("4 bytes"));
    let cells = &payload[4..];
    if cells.len() != count as usize * itesp_trace::STREAM_CELL {
        return Err(ServeError::Malformed(format!(
            "Records frame declares {count} cells but carries {} bytes",
            cells.len()
        )));
    }
    Ok((count, cells))
}

/// `End` payload: total records the client believes it streamed.
pub fn encode_end(total: u64) -> Vec<u8> {
    total.to_le_bytes().to_vec()
}

pub fn decode_end(payload: &[u8]) -> Result<u64, ServeError> {
    let bytes: [u8; 8] = payload.try_into().map_err(|_| {
        ServeError::Malformed(format!("End frame of {} bytes, want 8", payload.len()))
    })?;
    Ok(u64::from_le_bytes(bytes))
}

/// `ErrorFrame` payload: code u16 + UTF-8 message.
pub fn encode_error(e: &ServeError) -> Vec<u8> {
    let msg = e.to_string();
    let mut out = Vec::with_capacity(2 + msg.len());
    out.extend_from_slice(&e.code().to_le_bytes());
    out.extend_from_slice(msg.as_bytes());
    out
}

/// Decode an `ErrorFrame` payload into (code, message).
pub fn decode_error(payload: &[u8]) -> Result<(u16, String), ServeError> {
    if payload.len() < 2 {
        return Err(ServeError::Malformed(
            "ErrorFrame shorter than its code".into(),
        ));
    }
    let code = u16::from_le_bytes(payload[..2].try_into().expect("2 bytes"));
    let msg = String::from_utf8_lossy(&payload[2..]).into_owned();
    Ok((code, msg))
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked little-endian reader over a payload slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize, what: &str) -> Result<&[u8], ServeError> {
        if self.pos + n > self.buf.len() {
            return Err(ServeError::Malformed(format!(
                "payload ends inside {what}: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self, what: &str) -> Result<u16, ServeError> {
        Ok(u16::from_le_bytes(
            self.take(2, what)?.try_into().expect("2 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn str(&mut self, what: &str) -> Result<String, ServeError> {
        let len = self.u16(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ServeError::Malformed(format!("{what} is not UTF-8")))
    }

    fn done(&self) -> Result<(), ServeError> {
        if self.pos != self.buf.len() {
            return Err(ServeError::Malformed(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor as IoCursor;

    fn hello() -> Hello {
        Hello {
            version: PROTOCOL_VERSION,
            tenant: 7,
            request_seq: 3,
            seed: 0xC0FFEE,
            scheme: "ITESP".into(),
            benchmark: "mcf".into(),
            working_set_mb: 1153,
            fault_rate: 0.0,
        }
    }

    #[test]
    fn frame_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Hello, &hello().encode()).unwrap();
        write_frame(&mut wire, FrameKind::End, &encode_end(42)).unwrap();
        let mut r = IoCursor::new(wire);
        let f1 = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(f1.kind, FrameKind::Hello);
        assert_eq!(Hello::decode(&f1.payload).unwrap(), hello());
        let f2 = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(decode_end(&f2.payload).unwrap(), 42);
        assert!(
            read_frame(&mut r).unwrap().is_none(),
            "clean EOF at boundary"
        );
    }

    #[test]
    fn eof_mid_frame_is_truncated_not_none() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::End, &encode_end(5)).unwrap();
        for cut in 1..wire.len() {
            let mut r = IoCursor::new(wire[..cut].to_vec());
            let err = read_frame(&mut r).unwrap_err();
            assert!(
                matches!(err, ServeError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn oversized_length_rejected_before_buffering() {
        let mut wire = Vec::new();
        wire.extend_from_slice(MAGIC);
        wire.push(FrameKind::Records.to_u8());
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut IoCursor::new(wire)).unwrap_err();
        assert!(matches!(err, ServeError::Oversized { .. }), "{err}");
    }

    #[test]
    fn garbage_magic_and_kind_are_typed() {
        let mut wire = b"JUNK\x01\x00\x00\x00\x00".to_vec();
        let err = read_frame(&mut IoCursor::new(wire.clone())).unwrap_err();
        assert!(matches!(err, ServeError::BadMagic(_)), "{err}");
        wire[..4].copy_from_slice(MAGIC);
        wire[4] = 200;
        let err = read_frame(&mut IoCursor::new(wire)).unwrap_err();
        assert!(matches!(err, ServeError::UnknownKind(200)), "{err}");
    }

    #[test]
    fn hello_rejects_truncation_trailing_bytes_and_bad_floats() {
        let good = hello().encode();
        for cut in 0..good.len() {
            assert!(
                Hello::decode(&good[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
        let mut extra = good.clone();
        extra.push(0);
        assert!(Hello::decode(&extra).is_err());
        let mut h = hello();
        h.fault_rate = f64::NAN;
        assert!(Hello::decode(&h.encode()).is_err());
    }

    #[test]
    fn records_frame_checks_count_against_bytes() {
        let recs: Vec<TraceRecord> = vec![
            TraceRecord {
                gap: 1,
                op: itesp_trace::MemOp::Read,
                vaddr: 64,
            },
            TraceRecord {
                gap: 2,
                op: itesp_trace::MemOp::Write,
                vaddr: 128,
            },
        ];
        let payload = encode_records_frame(&recs);
        let (count, cells) = records_frame_cells(&payload).unwrap();
        assert_eq!(count, 2);
        assert_eq!(cells.len(), 2 * itesp_trace::STREAM_CELL);
        assert!(records_frame_cells(&payload[..payload.len() - 1]).is_err());
        assert!(records_frame_cells(&payload[..3]).is_err());
    }

    #[test]
    fn error_frame_round_trips_code_and_message() {
        let e = ServeError::Busy;
        let (code, msg) = decode_error(&encode_error(&e)).unwrap();
        assert_eq!(code, e.code());
        assert!(msg.contains("busy"));
        assert!(decode_error(&[1]).is_err());
    }
}
