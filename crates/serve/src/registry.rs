//! Crash-consistent per-tenant statistics.
//!
//! Two sections with deliberately different guarantees:
//!
//! * **Tenants** — keyed by tenant id, holding the latest
//!   [`TenantStats`] per tenant. Every field is a pure function of the
//!   request bytes, and completion is idempotent on
//!   `(tenant, request_seq)`: a crash-retry that recomputes a request
//!   overwrites identically instead of double-counting. This section's
//!   pretty-printed JSON is the byte-identity artifact the chaos drill
//!   compares.
//! * **Operational counters** — admissions, busy rejects, panics,
//!   timeouts. Honest but *not* deterministic across runs (they depend
//!   on timing and injected faults), so they are reported separately
//!   and excluded from the identity comparison.
//!
//! Snapshots use the [`itesp_snap`] wire format and store: the drain
//! path appends the encoded registry to the snapshot/WAL store, and a
//! restarted daemon recovers via `load_latest_good` + `verify_fresh`
//! — the same crash-safety and anti-rollback machinery the simulator's
//! checkpoints use.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use itesp_snap::{SnapError, SnapReader, SnapWriter, SnapshotMeta, SnapshotStore, StoreError};
use serde::Serialize;

use crate::tenant::TenantStats;

/// Snapshot files retained by the daemon's store.
pub const KEEP_SNAPSHOTS: usize = 4;

/// Operational (non-deterministic) counters. Plain totals, reported
/// under the `"counters"` key of the full stats view.
#[derive(Debug, Default, Serialize)]
pub struct OpsCounters {
    pub admitted: u64,
    pub busy_rejects: u64,
    pub drain_rejects: u64,
    pub protocol_errors: u64,
    pub worker_panics: u64,
    pub timeouts: u64,
    pub completed: u64,
    pub snapshots: u64,
    pub recovered_seq: u64,
}

#[derive(Debug, Default)]
struct Counters {
    admitted: AtomicU64,
    busy_rejects: AtomicU64,
    drain_rejects: AtomicU64,
    protocol_errors: AtomicU64,
    worker_panics: AtomicU64,
    timeouts: AtomicU64,
    completed: AtomicU64,
    snapshots: AtomicU64,
    recovered_seq: AtomicU64,
}

/// The daemon's shared stats registry. Cheap to lock: completions are
/// per-request, not per-record.
#[derive(Debug, Default)]
pub struct Registry {
    tenants: Mutex<BTreeMap<u64, TenantStats>>,
    counters: Counters,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a completed request, idempotently: a stale completion
    /// (an older `request_seq` racing a retry of a newer one) never
    /// overwrites a fresher result, and re-completing the same seq
    /// overwrites with identical bytes.
    pub fn complete(&self, stats: TenantStats) {
        let mut tenants = self.tenants.lock().expect("registry lock");
        let fresh = tenants
            .get(&stats.tenant)
            .is_none_or(|prev| stats.request_seq >= prev.request_seq);
        if fresh {
            tenants.insert(stats.tenant, stats);
        }
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count_admitted(&self) {
        self.counters.admitted.fetch_add(1, Ordering::Relaxed);
    }
    pub fn count_busy(&self) {
        self.counters.busy_rejects.fetch_add(1, Ordering::Relaxed);
    }
    pub fn count_drain_reject(&self) {
        self.counters.drain_rejects.fetch_add(1, Ordering::Relaxed);
    }
    pub fn count_protocol_error(&self) {
        self.counters
            .protocol_errors
            .fetch_add(1, Ordering::Relaxed);
    }
    pub fn count_worker_panic(&self) {
        self.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
    }
    pub fn count_timeout(&self) {
        self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    pub fn completed(&self) -> u64 {
        self.counters.completed.load(Ordering::Relaxed)
    }

    fn counters_view(&self) -> OpsCounters {
        let c = &self.counters;
        OpsCounters {
            admitted: c.admitted.load(Ordering::Relaxed),
            busy_rejects: c.busy_rejects.load(Ordering::Relaxed),
            drain_rejects: c.drain_rejects.load(Ordering::Relaxed),
            protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
            worker_panics: c.worker_panics.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            snapshots: c.snapshots.load(Ordering::Relaxed),
            recovered_seq: c.recovered_seq.load(Ordering::Relaxed),
        }
    }

    /// The deterministic section: per-tenant stats as pretty JSON, in
    /// tenant-id order. Byte-identical across retries, restarts, and
    /// chaos, given the same completed request set.
    pub fn deterministic_json(&self) -> String {
        let tenants = self.tenants.lock().expect("registry lock");
        serde_json::to_string_pretty(&*tenants).expect("tenant stats serialize")
    }

    /// Everything: tenants plus operational counters. (Spliced by
    /// hand — the vendored serde derive cannot express a borrowed
    /// aggregate struct.)
    pub fn full_json(&self) -> String {
        let tenants = self.deterministic_json();
        let counters =
            serde_json::to_string_pretty(&self.counters_view()).expect("counters serialize");
        format!("{{\n  \"tenants\": {tenants},\n  \"counters\": {counters}\n}}")
    }

    /// Encode the registry into the snapshot wire format.
    pub fn encode(&self) -> Vec<u8> {
        let tenants = self.tenants.lock().expect("registry lock");
        let mut w = SnapWriter::new();
        w.section("SRVT", 1);
        w.seq(tenants.values(), |w, t| {
            w.u64(t.tenant);
            w.u64(t.request_seq);
            w.str(&t.scheme);
            w.str(&t.benchmark);
            w.u64(t.records);
            w.u64(t.cycles);
            w.u64(t.baseline_cycles);
            w.f64(t.slowdown);
            w.f64(t.meta_per_access);
            w.u64(t.metadata_cache_accesses);
            w.u64(t.metadata_cache_hits);
            w.u64(t.parity_cache_accesses);
            w.u64(t.parity_cache_hits);
            w.u64(t.ras_faults_injected);
            w.u64(t.ras_detections);
            w.u64(t.ras_corrections);
            w.u64(t.ras_sdc_events);
            w.u64(t.ras_due_events);
        });
        w.into_bytes()
    }

    /// Replace this registry's tenants with a decoded snapshot payload.
    ///
    /// # Errors
    /// [`SnapError`] on a corrupt or version-skewed payload.
    pub fn restore(&self, payload: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(payload);
        r.section("SRVT", 1)?;
        let n = r.seq_len("tenants")?;
        let mut fresh = BTreeMap::new();
        for _ in 0..n {
            let t = TenantStats {
                tenant: r.u64("tenant")?,
                request_seq: r.u64("request_seq")?,
                scheme: r.str("scheme")?.to_owned(),
                benchmark: r.str("benchmark")?.to_owned(),
                records: r.u64("records")?,
                cycles: r.u64("cycles")?,
                baseline_cycles: r.u64("baseline_cycles")?,
                slowdown: r.f64("slowdown")?,
                meta_per_access: r.f64("meta_per_access")?,
                metadata_cache_accesses: r.u64("metadata_cache_accesses")?,
                metadata_cache_hits: r.u64("metadata_cache_hits")?,
                parity_cache_accesses: r.u64("parity_cache_accesses")?,
                parity_cache_hits: r.u64("parity_cache_hits")?,
                ras_faults_injected: r.u64("ras_faults_injected")?,
                ras_detections: r.u64("ras_detections")?,
                ras_corrections: r.u64("ras_corrections")?,
                ras_sdc_events: r.u64("ras_sdc_events")?,
                ras_due_events: r.u64("ras_due_events")?,
            };
            fresh.insert(t.tenant, t);
        }
        r.finish()?;
        *self.tenants.lock().expect("registry lock") = fresh;
        Ok(())
    }

    /// Durably snapshot the registry (the drain path, and every
    /// `snap_every` completions), pruning to [`KEEP_SNAPSHOTS`].
    ///
    /// # Errors
    /// [`StoreError`] from the underlying store.
    pub fn snapshot_to(&self, store: &SnapshotStore) -> Result<SnapshotMeta, StoreError> {
        let meta = store.append(self.completed(), &self.encode())?;
        store.prune(KEEP_SNAPSHOTS)?;
        self.counters.snapshots.fetch_add(1, Ordering::Relaxed);
        Ok(meta)
    }

    /// Recover from the freshest valid snapshot, enforcing
    /// anti-rollback against the WAL head. An empty store is a clean
    /// first boot, not an error.
    ///
    /// # Errors
    /// [`StoreError`] for a corrupt store or a rollback attempt.
    pub fn recover_from(&self, store: &SnapshotStore) -> Result<Option<SnapshotMeta>, StoreError> {
        match store.load_latest_good() {
            Ok((meta, payload, _skipped)) => {
                store.verify_fresh(meta.seq)?;
                self.restore(&payload).map_err(|e| StoreError::Torn {
                    path: store.dir().to_path_buf(),
                    detail: format!("registry payload: {e}"),
                })?;
                self.counters
                    .recovered_seq
                    .store(meta.seq, Ordering::Relaxed);
                Ok(Some(meta))
            }
            Err(StoreError::NoSnapshot { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(tenant: u64, seq: u64, cycles: u64) -> TenantStats {
        TenantStats {
            tenant,
            request_seq: seq,
            scheme: "ITESP".into(),
            benchmark: "mcf".into(),
            records: 100,
            cycles,
            baseline_cycles: cycles / 2,
            slowdown: 2.0,
            meta_per_access: 0.75,
            metadata_cache_accesses: 9,
            metadata_cache_hits: 6,
            parity_cache_accesses: 3,
            parity_cache_hits: 1,
            ras_faults_injected: 0,
            ras_detections: 0,
            ras_corrections: 0,
            ras_sdc_events: 0,
            ras_due_events: 0,
        }
    }

    #[test]
    fn completion_is_idempotent_and_ordered() {
        let reg = Registry::new();
        reg.complete(stats(1, 1, 1000));
        reg.complete(stats(1, 2, 2000));
        let after_two = reg.deterministic_json();
        // A crash-retry re-delivers seq 2: identical overwrite.
        reg.complete(stats(1, 2, 2000));
        assert_eq!(reg.deterministic_json(), after_two);
        // A stale straggler (seq 1 finishing late) cannot regress.
        reg.complete(stats(1, 1, 1000));
        assert_eq!(reg.deterministic_json(), after_two);
        // But completions *are* all counted operationally.
        assert_eq!(reg.completed(), 4);
    }

    #[test]
    fn snapshot_round_trip_is_byte_identical() {
        let reg = Registry::new();
        reg.complete(stats(3, 1, 500));
        reg.complete(stats(1, 4, 900));
        let json = reg.deterministic_json();

        let other = Registry::new();
        other.restore(&reg.encode()).unwrap();
        assert_eq!(other.deterministic_json(), json);
    }

    #[test]
    fn store_recovery_enforces_anti_rollback() {
        let dir = std::env::temp_dir().join(format!("itesp-serve-reg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::open(&dir).unwrap();

        let reg = Registry::new();
        assert!(reg.recover_from(&store).unwrap().is_none(), "clean boot");
        reg.complete(stats(1, 1, 100));
        reg.snapshot_to(&store).unwrap();
        reg.complete(stats(2, 1, 200));
        reg.snapshot_to(&store).unwrap();

        let fresh = Registry::new();
        let meta = fresh.recover_from(&store).unwrap().unwrap();
        assert_eq!(meta.seq, 2);
        assert_eq!(fresh.deterministic_json(), reg.deterministic_json());

        // Delete the newest snapshot file: recovery must refuse to
        // present the stale survivor as the latest state.
        std::fs::remove_file(dir.join(format!("snap-{:016}.bin", 2u64))).unwrap();
        let err = Registry::new().recover_from(&store).unwrap_err();
        assert!(matches!(err, StoreError::RollbackDetected { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_payload_is_a_typed_error() {
        let reg = Registry::new();
        reg.complete(stats(1, 1, 100));
        // Structural corruption: break the section tag.
        let mut bytes = reg.encode();
        bytes[0] ^= 0xFF;
        assert!(Registry::new().restore(&bytes).is_err());
        // Truncation mid-record.
        let mut bytes = reg.encode();
        bytes.truncate(bytes.len() - 3);
        assert!(Registry::new().restore(&bytes).is_err());
        assert!(Registry::new().restore(b"junk").is_err());
    }
}
