//! Typed errors for every way a serving connection can fail.
//!
//! The robustness contract of the daemon is that hostile or broken
//! input — truncated frames, oversized lengths, garbage magic,
//! disconnects mid-cell, a panicking shard worker — always surfaces as
//! a [`ServeError`], never a panic, and each variant maps to a stable
//! numeric code carried on the wire in an `ErrorFrame` so clients can
//! branch without parsing prose.

use std::fmt;
use std::io;

use itesp_trace::TraceError;

/// Why a request could not be served.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (reset, refused, broken pipe, ...).
    Io(io::Error),
    /// The peer stopped sending mid-frame.
    Truncated { needed: usize, got: usize },
    /// Frame header did not start with `ITSV`.
    BadMagic([u8; 4]),
    /// Frame kind byte outside the protocol.
    UnknownKind(u8),
    /// Declared frame length past [`crate::protocol::MAX_FRAME`].
    Oversized { len: usize, max: usize },
    /// A structurally valid frame whose payload does not decode.
    Malformed(String),
    /// Hello spoke a protocol version this build does not.
    BadVersion { got: u16, want: u16 },
    /// Hello named a scheme label not in the matrix.
    UnknownScheme(String),
    /// Streamed trace bytes failed to decode.
    Trace(TraceError),
    /// More records than the per-request cap.
    TooManyRecords { limit: u64 },
    /// `End` total disagreed with the records actually streamed.
    RecordCount { declared: u64, got: u64 },
    /// Admission control rejected the request: the shard's queue is
    /// full. Retry later.
    Busy,
    /// The daemon is draining (SIGTERM received); no new admissions.
    Draining,
    /// The shard worker exceeded its deadline.
    Timeout { ms: u64, attempts: u32 },
    /// The shard worker panicked; the shard survives, this request
    /// does not.
    WorkerPanicked { message: String, attempts: u32 },
    /// The simulation rejected the request parameters.
    Engine(String),
    /// The peer idled past the read deadline (slow-loris defense).
    SlowPeer,
}

impl ServeError {
    /// Stable wire code for `ErrorFrame` payloads.
    pub fn code(&self) -> u16 {
        match self {
            ServeError::Io(_) => 1,
            ServeError::Truncated { .. } => 2,
            ServeError::BadMagic(_) => 3,
            ServeError::UnknownKind(_) => 4,
            ServeError::Oversized { .. } => 5,
            ServeError::Malformed(_) => 6,
            ServeError::BadVersion { .. } => 7,
            ServeError::UnknownScheme(_) => 8,
            ServeError::Trace(_) => 9,
            ServeError::TooManyRecords { .. } => 10,
            ServeError::RecordCount { .. } => 11,
            ServeError::Busy => 12,
            ServeError::Draining => 13,
            ServeError::Timeout { .. } => 14,
            ServeError::WorkerPanicked { .. } => 15,
            ServeError::Engine(_) => 16,
            ServeError::SlowPeer => 17,
        }
    }

    /// Should a well-behaved client retry this failure? `Busy`,
    /// `Draining`, timeouts, worker panics, and transport errors are
    /// transient (the daemon may have restarted or the queue emptied);
    /// protocol and parameter errors are not — resending the same bytes
    /// reproduces them.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServeError::Io(_)
                | ServeError::Busy
                | ServeError::Draining
                | ServeError::Timeout { .. }
                | ServeError::WorkerPanicked { .. }
                | ServeError::Truncated { .. }
        )
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "transport error: {e}"),
            ServeError::Truncated { needed, got } => {
                write!(
                    f,
                    "peer disconnected mid-frame: needed {needed} bytes, got {got}"
                )
            }
            ServeError::BadMagic(m) => write!(f, "bad frame magic {m:02x?} (want \"ITSV\")"),
            ServeError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            ServeError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte cap")
            }
            ServeError::Malformed(what) => write!(f, "malformed payload: {what}"),
            ServeError::BadVersion { got, want } => {
                write!(f, "protocol version {got}, this daemon speaks {want}")
            }
            ServeError::UnknownScheme(s) => write!(f, "unknown scheme label {s:?}"),
            ServeError::Trace(e) => write!(f, "trace stream: {e}"),
            ServeError::TooManyRecords { limit } => {
                write!(f, "record stream exceeds the per-request cap of {limit}")
            }
            ServeError::RecordCount { declared, got } => {
                write!(f, "End declared {declared} records, stream carried {got}")
            }
            ServeError::Busy => write!(f, "busy: shard queue full, retry later"),
            ServeError::Draining => write!(f, "draining: daemon is shutting down"),
            ServeError::Timeout { ms, attempts } => {
                write!(f, "request timed out after {ms} ms ({attempts} attempt(s))")
            }
            ServeError::WorkerPanicked { message, attempts } => {
                write!(
                    f,
                    "shard worker panicked ({attempts} attempt(s)): {message}"
                )
            }
            ServeError::Engine(e) => write!(f, "engine rejected request: {e}"),
            ServeError::SlowPeer => write!(f, "peer too slow: read deadline exceeded"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        // A read timeout is the slow-loris defense firing, not a
        // generic transport fault; keep the two distinguishable.
        if matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        ) {
            ServeError::SlowPeer
        } else {
            ServeError::Io(e)
        }
    }
}

impl From<TraceError> for ServeError {
    fn from(e: TraceError) -> Self {
        ServeError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct_and_stable() {
        let errs: Vec<ServeError> = vec![
            ServeError::Io(io::Error::other("x")),
            ServeError::Truncated { needed: 4, got: 1 },
            ServeError::BadMagic(*b"XXXX"),
            ServeError::UnknownKind(99),
            ServeError::Oversized { len: 9, max: 1 },
            ServeError::Malformed("m".into()),
            ServeError::BadVersion { got: 0, want: 1 },
            ServeError::UnknownScheme("z".into()),
            ServeError::Trace(TraceError::EmptyMix),
            ServeError::TooManyRecords { limit: 1 },
            ServeError::RecordCount {
                declared: 2,
                got: 1,
            },
            ServeError::Busy,
            ServeError::Draining,
            ServeError::Timeout { ms: 1, attempts: 1 },
            ServeError::WorkerPanicked {
                message: "p".into(),
                attempts: 1,
            },
            ServeError::Engine("e".into()),
            ServeError::SlowPeer,
        ];
        let mut codes: Vec<u16> = errs.iter().map(ServeError::code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errs.len(), "duplicate error codes");
    }

    #[test]
    fn retryability_separates_transient_from_protocol_errors() {
        assert!(ServeError::Busy.is_retryable());
        assert!(ServeError::Draining.is_retryable());
        assert!(ServeError::Timeout { ms: 1, attempts: 1 }.is_retryable());
        assert!(!ServeError::BadMagic(*b"ABCD").is_retryable());
        assert!(!ServeError::UnknownScheme("x".into()).is_retryable());
        assert!(!ServeError::RecordCount {
            declared: 1,
            got: 0
        }
        .is_retryable());
    }

    #[test]
    fn read_timeout_maps_to_slow_peer() {
        let e: ServeError = io::Error::new(io::ErrorKind::WouldBlock, "t").into();
        assert!(matches!(e, ServeError::SlowPeer));
        let e: ServeError = io::Error::new(io::ErrorKind::ConnectionReset, "r").into();
        assert!(matches!(e, ServeError::Io(_)));
    }
}
