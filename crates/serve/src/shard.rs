//! Sharded engine workers with bounded queues and panic isolation.
//!
//! Tenants hash to shards (`tenant % shards`), each shard is one
//! worker thread draining a bounded queue, and every job runs under
//! [`itesp_orchestrate::run_policied`] — the same watchdog/retry/
//! backoff machinery the batch campaigns use. A panicking simulation
//! (injected by the chaos harness, or a real bug) is caught inside the
//! policy, surfaces as a typed outcome to exactly one client, and the
//! shard keeps serving.
//!
//! Admission control and backpressure are both the `pending` counter:
//! a connection must win a reservation (`try_admit`) *before* the
//! daemon reads its trace stream, and a full shard answers `Busy`
//! immediately — the socket of an unadmitted client is never read
//! further, which is the backpressure.
//!
//! Workers — not connection handlers — write completions into the
//! [`Registry`] and drop the reservation, so "all reservations
//! released" implies "registry fully up to date": the invariant the
//! SIGTERM drain snapshot relies on. The client connection may be long
//! gone by then; the result still lands in the registry, and the
//! tenant's retry after reconnecting recomputes byte-identical stats.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

use itesp_orchestrate::{run_policied, JobOutcome, JobPolicy};
use itesp_snap::SnapshotStore;

use crate::registry::Registry;
use crate::tenant::{run_tenant, TenantRequest, TenantStats};

use crate::error::ServeError;

/// What a connection handler gets back for one submitted request.
pub type Outcome = JobOutcome<Result<TenantStats, ServeError>>;

struct Job {
    req: TenantRequest,
    reply: mpsc::Sender<Outcome>,
}

struct Shard {
    tx: SyncSender<Job>,
    /// Reservations outstanding: admitted, queued, or running.
    pending: Arc<AtomicUsize>,
}

/// The daemon's worker pool.
pub struct ShardPool {
    shards: Vec<Shard>,
    capacity: usize,
}

impl ShardPool {
    /// Spawn `shards` workers, each admitting at most `queue_depth`
    /// outstanding requests. Completions land in `registry`; every
    /// `snap_every` completions the registry is snapshotted to
    /// `store` (when present).
    pub fn spawn(
        shards: usize,
        queue_depth: usize,
        policy: JobPolicy,
        registry: Arc<Registry>,
        store: Option<Arc<Mutex<SnapshotStore>>>,
        snap_every: u64,
    ) -> Self {
        let shards = shards.max(1);
        let capacity = queue_depth.max(1);
        let built = (0..shards)
            .map(|i| {
                let (tx, rx) = mpsc::sync_channel::<Job>(capacity);
                let pending = Arc::new(AtomicUsize::new(0));
                let worker_pending = Arc::clone(&pending);
                let registry = Arc::clone(&registry);
                let store = store.clone();
                let policy = policy.clone();
                thread::Builder::new()
                    .name(format!("itesp-shard-{i}"))
                    .spawn(move || {
                        worker_loop(rx, policy, registry, store, snap_every, worker_pending)
                    })
                    .expect("spawn shard worker");
                Shard { tx, pending }
            })
            .collect();
        ShardPool {
            shards: built,
            capacity,
        }
    }

    /// Which shard serves a tenant.
    pub fn shard_of(&self, tenant: u64) -> usize {
        (tenant % self.shards.len() as u64) as usize
    }

    /// Reserve a slot on the tenant's shard, or report `Busy`. The
    /// returned token releases the reservation when dropped unarmed
    /// (the connection died before `End`), or hands it to the worker
    /// on [`AdmitToken::submit`].
    pub fn try_admit(&self, tenant: u64) -> Result<AdmitToken<'_>, ServeError> {
        let shard = &self.shards[self.shard_of(tenant)];
        let admitted = shard
            .pending
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |p| {
                (p < self.capacity).then_some(p + 1)
            })
            .is_ok();
        if !admitted {
            return Err(ServeError::Busy);
        }
        Ok(AdmitToken { shard, armed: true })
    }

    /// Reservations outstanding across all shards (0 = fully drained).
    pub fn pending_total(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.pending.load(Ordering::Acquire))
            .sum()
    }

    /// Point-in-time load gauges, one per shard. `in_flight` is the
    /// shard's reservation count (admitted, queued, or running) and
    /// `queue_depth` its admission bound, so `in_flight == queue_depth`
    /// is the shard answering `Busy`. Operational telemetry for the
    /// metrics port — deliberately *not* part of the deterministic `T`
    /// report, since a gauge depends on when you look.
    pub fn gauges(&self) -> Vec<ShardGauge> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, s)| ShardGauge {
                shard,
                in_flight: s.pending.load(Ordering::Acquire),
                queue_depth: self.capacity,
            })
            .collect()
    }
}

/// One shard's load at a point in time (see [`ShardPool::gauges`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct ShardGauge {
    pub shard: usize,
    /// Reservations outstanding: admitted, queued, or running.
    pub in_flight: usize,
    /// Admission bound (reservations at which the shard goes `Busy`).
    pub queue_depth: usize,
}

/// A won admission reservation, tied to one shard.
pub struct AdmitToken<'a> {
    shard: &'a Shard,
    armed: bool,
}

impl AdmitToken<'_> {
    /// Hand the request to the shard worker. The reservation now
    /// belongs to the worker, which releases it after the completion
    /// is registered. Returns the channel the outcome arrives on.
    pub fn submit(mut self, req: TenantRequest) -> Receiver<Outcome> {
        let (reply, outcome_rx) = mpsc::channel();
        let mut job = Job { req, reply };
        self.armed = false;
        loop {
            match self.shard.tx.try_send(job) {
                Ok(()) => return outcome_rx,
                // The reservation bounds outstanding jobs at the
                // channel's capacity, so a full queue is transient
                // (the worker is between recv and done); block briefly
                // — this is backpressure, not an error.
                Err(TrySendError::Full(j)) => {
                    job = j;
                    thread::sleep(std::time::Duration::from_millis(1));
                }
                Err(TrySendError::Disconnected(j)) => {
                    // Worker gone (only during teardown): report as a
                    // panic outcome so the client sees a typed error.
                    self.shard.pending.fetch_sub(1, Ordering::AcqRel);
                    let _ = j.reply.send(JobOutcome::Panicked {
                        message: "shard worker unavailable".into(),
                        attempts: 0,
                    });
                    return outcome_rx;
                }
            }
        }
    }
}

impl Drop for AdmitToken<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.shard.pending.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

fn worker_loop(
    rx: mpsc::Receiver<Job>,
    policy: JobPolicy,
    registry: Arc<Registry>,
    store: Option<Arc<Mutex<SnapshotStore>>>,
    snap_every: u64,
    pending: Arc<AtomicUsize>,
) {
    while let Ok(job) = rx.recv() {
        let req = job.req;
        let outcome: Outcome = run_policied(&policy, move || run_tenant(&req));
        match &outcome {
            JobOutcome::Ok(Ok(stats)) => {
                registry.complete(stats.clone());
                if let Some(store) = &store {
                    if snap_every > 0 && registry.completed().is_multiple_of(snap_every) {
                        let store = store.lock().expect("snapshot store lock");
                        if let Err(e) = registry.snapshot_to(&store) {
                            eprintln!("[serve: periodic snapshot failed: {e}]");
                        }
                    }
                }
            }
            JobOutcome::Ok(Err(_)) => {}
            JobOutcome::Panicked { .. } => registry.count_worker_panic(),
            JobOutcome::TimedOut { .. } => registry.count_timeout(),
            JobOutcome::Skipped => {}
        }
        // Release the reservation only after the registry is updated
        // (the drain path treats pending == 0 as "stats are final"),
        // and before the reply, so a caller woken by `recv` observes
        // both the registry write and the freed slot.
        pending.fetch_sub(1, Ordering::AcqRel);
        let _ = job.reply.send(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Hello, PROTOCOL_VERSION};
    use itesp_trace::{benchmark, TraceRecord, WorkloadGen};

    fn request(tenant: u64, ops: usize) -> TenantRequest {
        let b = benchmark("mcf").unwrap();
        let records: Vec<TraceRecord> = WorkloadGen::for_benchmark(b, tenant).take(ops).collect();
        TenantRequest {
            hello: Hello {
                version: PROTOCOL_VERSION,
                tenant,
                request_seq: 1,
                seed: tenant,
                scheme: "ITESP".into(),
                benchmark: "mcf".into(),
                working_set_mb: b.working_set_mb,
                fault_rate: 0.0,
            },
            records,
        }
    }

    #[test]
    fn admission_bounds_and_busy_rejection() {
        let registry = Arc::new(Registry::new());
        let pool = ShardPool::spawn(1, 2, JobPolicy::serial(), registry, None, 0);
        let t1 = pool.try_admit(1).unwrap();
        let _t2 = pool.try_admit(1).unwrap();
        assert!(matches!(pool.try_admit(1), Err(ServeError::Busy)));
        // Dropping an unarmed token releases the slot.
        drop(t1);
        assert!(pool.try_admit(1).is_ok());
    }

    #[test]
    fn gauges_track_reservations_per_shard() {
        let registry = Arc::new(Registry::new());
        let pool = ShardPool::spawn(2, 3, JobPolicy::serial(), registry, None, 0);
        assert_eq!(
            pool.gauges(),
            vec![
                ShardGauge {
                    shard: 0,
                    in_flight: 0,
                    queue_depth: 3
                },
                ShardGauge {
                    shard: 1,
                    in_flight: 0,
                    queue_depth: 3
                },
            ]
        );
        // Tenant 1 hashes to shard 1; its reservations show up there.
        let t1 = pool.try_admit(1).unwrap();
        let _t2 = pool.try_admit(1).unwrap();
        let g = pool.gauges();
        assert_eq!(g[0].in_flight, 0);
        assert_eq!(g[1].in_flight, 2);
        drop(t1);
        assert_eq!(pool.gauges()[1].in_flight, 1);
    }

    #[test]
    fn jobs_complete_into_the_registry() {
        let registry = Arc::new(Registry::new());
        let pool = ShardPool::spawn(2, 4, JobPolicy::serial(), Arc::clone(&registry), None, 0);
        let rx = pool.try_admit(5).unwrap().submit(request(5, 200));
        let outcome = rx.recv().unwrap();
        let stats = outcome.ok().unwrap().unwrap();
        assert_eq!(stats.tenant, 5);
        assert_eq!(registry.completed(), 1);
        // Reservation released only after registration.
        assert_eq!(pool.pending_total(), 0);
    }

    #[test]
    fn tenants_land_on_stable_shards() {
        let registry = Arc::new(Registry::new());
        let pool = ShardPool::spawn(3, 1, JobPolicy::serial(), registry, None, 0);
        assert_eq!(pool.shard_of(0), 0);
        assert_eq!(pool.shard_of(7), 1);
        assert_eq!(pool.shard_of(8), 2);
        assert_eq!(pool.shard_of(7), pool.shard_of(7));
    }
}
