//! `itesp-serve` — the simulator as a long-running traffic endpoint.
//!
//! ```text
//! ITESP_SERVE_STATE=/path/to/state itesp-serve
//! ```
//!
//! Environment (all optional except noted; malformed values are hard
//! errors, per the repo's `ITESP_*` convention):
//!
//! * `ITESP_SERVE_STATE` — state directory (`ports` file + `snaps/`).
//!   Default `serve-state` under the working directory.
//! * `ITESP_SERVE_SHARDS` — engine shards / worker threads (default 4).
//! * `ITESP_SERVE_QUEUE` — admitted requests per shard (default 8).
//! * `ITESP_SERVE_SNAP_EVERY` — snapshot the registry every N
//!   completions (default 8; 0 = drain-time only).
//! * `ITESP_SERVE_TIMEOUT_MS` — per-attempt worker deadline
//!   (default 120000).
//! * `ITESP_SERVE_RETRIES` — worker retries per request (default 1).
//! * `ITESP_SERVE_READ_TIMEOUT_MS` — socket read deadline, the
//!   slow-loris defense (default 5000).
//! * `ITESP_SERVE_CHAOS` — fault-injection directives (see
//!   `itesp_serve::chaos`).
//!
//! SIGTERM drains: new admissions are refused, in-flight requests
//! finish, the stats registry is snapshotted, and the process exits 0.
//! A restart recovers the registry from the snapshot store.

use std::time::Duration;

use itesp_serve::server::{install_sigterm_handler, Server};
use itesp_serve::ServerConfig;

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{name} not a u64: {s:?}")),
        Err(_) => default,
    }
}

fn main() {
    install_sigterm_handler();
    let state_dir = std::env::var("ITESP_SERVE_STATE").unwrap_or_else(|_| "serve-state".into());
    let mut cfg = ServerConfig::new(state_dir);
    cfg.shards = env_u64("ITESP_SERVE_SHARDS", cfg.shards as u64) as usize;
    cfg.queue_depth = env_u64("ITESP_SERVE_QUEUE", cfg.queue_depth as u64) as usize;
    cfg.snap_every = env_u64("ITESP_SERVE_SNAP_EVERY", cfg.snap_every);
    cfg.policy.timeout = Some(Duration::from_millis(env_u64(
        "ITESP_SERVE_TIMEOUT_MS",
        120_000,
    )));
    cfg.policy.retries = env_u64("ITESP_SERVE_RETRIES", u64::from(cfg.policy.retries)) as u32;
    cfg.read_timeout = Duration::from_millis(env_u64("ITESP_SERVE_READ_TIMEOUT_MS", 5_000));

    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("itesp-serve: failed to start: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "[itesp-serve: traffic {} metrics {}]",
        server.traffic_addr(),
        server.metrics_addr()
    );
    match server.run() {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("itesp-serve: fatal: {e}");
            std::process::exit(1);
        }
    }
}
