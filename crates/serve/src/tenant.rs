//! Per-tenant simulation: streamed records in, deterministic stats out.
//!
//! A tenant request is self-contained — identity, scheme, seed, and
//! the full virtual trace — so recomputing it after a retry, a worker
//! panic, or a daemon restart produces *byte-identical* stats. That
//! property is what the chaos drill's byte-identity assertion rests
//! on, and why the registry can treat re-completion as an idempotent
//! overwrite.

use serde::Serialize;

use itesp_core::{EngineConfig, Scheme};
use itesp_dram::{AddressMapping, DramConfig};
use itesp_sim::{RasConfig, RunResult, System, SystemConfig};
use itesp_trace::{MultiProgram, TraceRecord};

use crate::chaos;
use crate::error::ServeError;
use crate::protocol::Hello;

/// One admitted request, ready for a shard worker.
#[derive(Debug, Clone)]
pub struct TenantRequest {
    pub hello: Hello,
    pub records: Vec<TraceRecord>,
}

/// The deterministic per-tenant result. Every field is a pure function
/// of the request bytes; operational counters (rejects, retries) live
/// in the registry's separate, explicitly non-deterministic section.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantStats {
    pub tenant: u64,
    pub request_seq: u64,
    pub scheme: String,
    pub benchmark: String,
    pub records: u64,
    /// Execution time under the requested scheme, CPU cycles.
    pub cycles: u64,
    /// Execution time of the same trace under `Unsecure`.
    pub baseline_cycles: u64,
    /// `cycles / baseline_cycles` — the serving-side slowdown figure.
    pub slowdown: f64,
    /// Extra metadata transactions per data access.
    pub meta_per_access: f64,
    pub metadata_cache_accesses: u64,
    pub metadata_cache_hits: u64,
    pub parity_cache_accesses: u64,
    pub parity_cache_hits: u64,
    /// RAS counters (all zero when the request set `fault_rate` 0).
    pub ras_faults_injected: u64,
    pub ras_detections: u64,
    pub ras_corrections: u64,
    pub ras_sdc_events: u64,
    pub ras_due_events: u64,
}

/// Run one tenant request to completion on this shard.
///
/// # Errors
/// [`ServeError::UnknownScheme`] / [`ServeError::Engine`] for bad
/// parameters, [`ServeError::Trace`] for an empty trace.
///
/// # Panics
/// Only when the chaos harness (`ITESP_SERVE_CHAOS=panic-tenant=<id>`)
/// targets this tenant — the deliberate injected worker panic the
/// drill uses to prove shard isolation. The shard worker catches it.
pub fn run_tenant(req: &TenantRequest) -> Result<TenantStats, ServeError> {
    if chaos::panic_tenant() == Some(req.hello.tenant) {
        panic!(
            "chaos: injected worker panic for tenant {}",
            req.hello.tenant
        );
    }
    let scheme = Scheme::from_label(&req.hello.scheme)
        .map_err(|_| ServeError::UnknownScheme(req.hello.scheme.clone()))?;
    let mp = MultiProgram::from_virtual(
        vec![req.records.clone()],
        &req.hello.benchmark,
        req.hello.working_set_mb.max(1),
    )?;
    let result = run_scheme(&mp, scheme, &req.hello)?;
    let baseline = if scheme == Scheme::Unsecure {
        result.clone()
    } else {
        // The baseline is always fault-free: slowdown isolates the
        // security scheme's cost, not the RAS pipeline's.
        run_scheme(
            &mp,
            Scheme::Unsecure,
            &Hello {
                fault_rate: 0.0,
                ..req.hello.clone()
            },
        )?
    };
    Ok(TenantStats {
        tenant: req.hello.tenant,
        request_seq: req.hello.request_seq,
        scheme: req.hello.scheme.clone(),
        benchmark: req.hello.benchmark.clone(),
        records: req.records.len() as u64,
        cycles: result.cycles,
        baseline_cycles: baseline.cycles,
        slowdown: result.cycles as f64 / baseline.cycles.max(1) as f64,
        meta_per_access: result.engine.meta_per_access(),
        metadata_cache_accesses: result.metadata_cache.accesses,
        metadata_cache_hits: result.metadata_cache.hits,
        parity_cache_accesses: result.parity_cache.accesses,
        parity_cache_hits: result.parity_cache.hits,
        ras_faults_injected: result.ras.faults_injected,
        ras_detections: result.ras.detections,
        ras_corrections: result.ras.corrections,
        ras_sdc_events: result.ras.sdc_events,
        ras_due_events: result.ras.due_events,
    })
}

fn run_scheme(mp: &MultiProgram, scheme: Scheme, hello: &Hello) -> Result<RunResult, ServeError> {
    let dram = DramConfig::table_iii().with_mapping(AddressMapping::RowBufferHit4);
    let engine = EngineConfig::single_tenant(scheme, dram.geometry.capacity_bytes());
    engine
        .validate()
        .map_err(|e| ServeError::Engine(e.to_string()))?;
    let mut cfg = SystemConfig::table_iii(dram, engine);
    if hello.fault_rate > 0.0 {
        cfg = cfg.with_ras(RasConfig::new(hello.seed).with_fault_rate(hello.fault_rate));
    }
    Ok(System::new(cfg, mp).run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::PROTOCOL_VERSION;
    use itesp_trace::{benchmark, WorkloadGen};

    fn request(tenant: u64, scheme: &str, ops: usize) -> TenantRequest {
        let b = benchmark("mcf").unwrap();
        let records: Vec<TraceRecord> = WorkloadGen::for_benchmark(b, 11).take(ops).collect();
        TenantRequest {
            hello: Hello {
                version: PROTOCOL_VERSION,
                tenant,
                request_seq: 1,
                seed: 5,
                scheme: scheme.into(),
                benchmark: "mcf".into(),
                working_set_mb: b.working_set_mb,
                fault_rate: 0.0,
            },
            records,
        }
    }

    #[test]
    fn recomputation_is_byte_identical() {
        let req = request(1, "ITESP", 400);
        let a = run_tenant(&req).unwrap();
        let b = run_tenant(&req).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string_pretty(&a).unwrap(),
            serde_json::to_string_pretty(&b).unwrap()
        );
        assert!(a.slowdown >= 1.0, "secured scheme at least as slow");
        assert_eq!(a.records, 400);
    }

    #[test]
    fn unsecure_baseline_has_unit_slowdown() {
        let s = run_tenant(&request(2, "Unsecure", 300)).unwrap();
        assert_eq!(s.cycles, s.baseline_cycles);
        assert!((s.slowdown - 1.0).abs() < 1e-12);
        assert_eq!(s.meta_per_access, 0.0);
    }

    #[test]
    fn bad_parameters_are_typed_errors() {
        let mut req = request(3, "NotAScheme", 50);
        assert!(matches!(
            run_tenant(&req),
            Err(ServeError::UnknownScheme(_))
        ));
        req.hello.scheme = "ITESP".into();
        req.records.clear();
        // An empty trace still simulates (zero ops) rather than
        // erroring: the mapper accepts an empty program.
        let s = run_tenant(&req).unwrap();
        assert_eq!(s.records, 0);
    }

    #[test]
    fn ras_counters_populate_under_fault_injection() {
        let mut req = request(4, "ITESP", 600);
        // Rate is per million DRAM cycles; a 600-op trace runs for a
        // short cycle count, so inject aggressively to guarantee hits.
        req.hello.fault_rate = 1e5;
        let s = run_tenant(&req).unwrap();
        assert!(
            s.ras_faults_injected > 0,
            "fault rate 1e5/Mcycle over 600 ops"
        );
        // And the run stays deterministic under injection.
        assert_eq!(s, run_tenant(&req).unwrap());
    }
}
