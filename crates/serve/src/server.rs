//! The daemon: accept loop, admission control, drain, metrics.
//!
//! Two listeners on ephemeral loopback ports, published atomically in
//! a `ports` file under the state directory (ports change across
//! restarts; clients re-read the file per retry attempt):
//!
//! * **traffic** — `ITSV` framed requests, one request per connection.
//! * **metrics** — single-byte commands: `T` returns the deterministic
//!   per-tenant stats JSON (the byte-identity artifact), `A` the full
//!   view including operational counters, `S` the per-shard queue-depth
//!   and in-flight gauges, `D` triggers a drain, `P` answers `ok`
//!   (liveness).
//!
//! ## Drain
//!
//! SIGTERM (or `D`) flips the drain flag: new Hellos are refused with
//! a typed `Draining` error, admitted requests run to completion, and
//! once every reservation is released — which the shard workers only
//! do *after* registering the completion — the registry is snapshotted
//! through [`itesp_snap`] and the daemon exits. A restarted daemon
//! recovers the registry from the freshest valid snapshot with the
//! anti-rollback check enforced, so per-tenant stats survive both
//! graceful drains and SIGKILL (modulo requests completed after the
//! last snapshot, which clients simply retry — recomputation is
//! byte-identical).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use itesp_core::Scheme;
use itesp_orchestrate::{JobOutcome, JobPolicy};
use itesp_snap::SnapshotStore;
use itesp_trace::StreamDecoder;

use crate::error::ServeError;
use crate::protocol::{
    self, encode_error, read_frame, write_frame, FrameKind, Hello, PROTOCOL_VERSION,
};
use crate::registry::Registry;
use crate::shard::ShardPool;
use crate::tenant::TenantRequest;

/// Process-wide SIGTERM latch. The handler must be async-signal-safe:
/// one atomic store, nothing else.
static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: i32) {
    TERM.store(true, Ordering::SeqCst);
}

/// Install the SIGTERM handler (libc `signal`, already linked — the
/// crate keeps its zero-external-deps rule). Call once from `main`.
#[cfg(unix)]
pub fn install_sigterm_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
pub fn install_sigterm_handler() {}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Engine shards = worker threads.
    pub shards: usize,
    /// Outstanding requests admitted per shard (queued + running).
    pub queue_depth: usize,
    /// Timeout/retry policy each shard job runs under.
    pub policy: JobPolicy,
    /// State directory: `ports` file + `snaps/` snapshot store.
    pub state_dir: PathBuf,
    /// Snapshot the registry every N completions (0 = drain-only).
    pub snap_every: u64,
    /// Per-read socket deadline — the slow-loris defense.
    pub read_timeout: Duration,
    /// Per-request record cap.
    pub max_records: u64,
}

impl ServerConfig {
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        ServerConfig {
            shards: 4,
            queue_depth: 8,
            policy: JobPolicy {
                workers: 1,
                timeout: Some(Duration::from_secs(120)),
                retries: 1,
                backoff: Duration::from_millis(50),
            },
            state_dir: state_dir.into(),
            snap_every: 8,
            read_timeout: Duration::from_secs(5),
            max_records: 5_000_000,
        }
    }
}

/// A running daemon.
pub struct Server {
    cfg: ServerConfig,
    registry: Arc<Registry>,
    pool: Arc<ShardPool>,
    draining: Arc<AtomicBool>,
    store: Arc<Mutex<SnapshotStore>>,
    traffic: TcpListener,
    metrics: TcpListener,
}

impl Server {
    /// Bind, recover state, publish ports, spawn shards.
    ///
    /// # Errors
    /// Fails on I/O errors and — deliberately — on a corrupt store or
    /// an anti-rollback violation: refusing to serve from rolled-back
    /// security state is the point.
    pub fn start(cfg: ServerConfig) -> Result<Server, ServeError> {
        std::fs::create_dir_all(&cfg.state_dir).map_err(ServeError::Io)?;
        let store = SnapshotStore::open(cfg.state_dir.join("snaps"))
            .map_err(|e| ServeError::Engine(format!("snapshot store: {e}")))?;
        let registry = Arc::new(Registry::new());
        match registry.recover_from(&store) {
            Ok(Some(meta)) => {
                eprintln!("[serve: recovered registry snapshot seq {}]", meta.seq)
            }
            Ok(None) => {}
            Err(e) => return Err(ServeError::Engine(format!("recovery refused: {e}"))),
        }
        let store = Arc::new(Mutex::new(store));
        let pool = Arc::new(ShardPool::spawn(
            cfg.shards,
            cfg.queue_depth,
            cfg.policy.clone(),
            Arc::clone(&registry),
            Some(Arc::clone(&store)),
            cfg.snap_every,
        ));
        let traffic = TcpListener::bind("127.0.0.1:0").map_err(ServeError::Io)?;
        let metrics = TcpListener::bind("127.0.0.1:0").map_err(ServeError::Io)?;
        let server = Server {
            cfg,
            registry,
            pool,
            draining: Arc::new(AtomicBool::new(false)),
            store,
            traffic,
            metrics,
        };
        server.publish_ports()?;
        Ok(server)
    }

    pub fn traffic_addr(&self) -> SocketAddr {
        self.traffic.local_addr().expect("bound listener")
    }

    pub fn metrics_addr(&self) -> SocketAddr {
        self.metrics.local_addr().expect("bound listener")
    }

    /// Atomically (tmp + rename) publish the two ports.
    fn publish_ports(&self) -> Result<(), ServeError> {
        let body = format!(
            "traffic={}\nmetrics={}\n",
            self.traffic_addr().port(),
            self.metrics_addr().port()
        );
        let tmp = self
            .cfg
            .state_dir
            .join(format!("ports.tmp.{}", std::process::id()));
        std::fs::write(&tmp, body).map_err(ServeError::Io)?;
        std::fs::rename(&tmp, self.cfg.state_dir.join("ports")).map_err(ServeError::Io)?;
        Ok(())
    }

    /// Programmatic drain trigger (tests; the metrics `D` command and
    /// SIGTERM land on the same flag).
    pub fn trigger_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Serve until drained. Returns once the drain snapshot is durable.
    ///
    /// # Errors
    /// Only fatal I/O on the listeners; per-connection failures are
    /// handled (typed error to that client) without surfacing here.
    pub fn run(self) -> Result<(), ServeError> {
        self.traffic.set_nonblocking(true).map_err(ServeError::Io)?;
        self.metrics.set_nonblocking(true).map_err(ServeError::Io)?;
        let conns = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        loop {
            let draining = self.draining.load(Ordering::SeqCst) || TERM.load(Ordering::SeqCst);
            if draining {
                break;
            }
            let mut idle = true;
            match self.traffic.accept() {
                Ok((stream, _)) => {
                    idle = false;
                    self.spawn_traffic(stream, &conns);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => return Err(ServeError::Io(e)),
            }
            match self.metrics.accept() {
                Ok((stream, _)) => {
                    idle = false;
                    self.spawn_metrics(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => return Err(ServeError::Io(e)),
            }
            if idle {
                thread::sleep(Duration::from_millis(2));
            }
        }

        // Drain: connections still open get typed `Draining` refusals
        // for new Hellos (the flag is checked per request); admitted
        // work finishes. Reservations are released only after the
        // registry is updated, so pending == 0 means stats are final.
        self.draining.store(true, Ordering::SeqCst);
        eprintln!("[serve: draining — refusing new admissions]");
        while self.pool.pending_total() > 0 || conns.load(Ordering::Acquire) > 0 {
            // Keep answering metrics scrapes during the drain.
            if let Ok((stream, _)) = self.metrics.accept() {
                self.spawn_metrics(stream);
            }
            thread::sleep(Duration::from_millis(5));
        }
        let store = self.store.lock().expect("snapshot store lock");
        let meta = self
            .registry
            .snapshot_to(&store)
            .map_err(|e| ServeError::Engine(format!("drain snapshot: {e}")))?;
        eprintln!(
            "[serve: drained — snapshot seq {} covers {} completion(s)]",
            meta.seq,
            self.registry.completed()
        );
        Ok(())
    }

    fn spawn_traffic(&self, stream: TcpStream, conns: &Arc<std::sync::atomic::AtomicUsize>) {
        let registry = Arc::clone(&self.registry);
        let pool = Arc::clone(&self.pool);
        let draining = Arc::clone(&self.draining);
        let handler_conns = Arc::clone(conns);
        let read_timeout = self.cfg.read_timeout;
        let max_records = self.cfg.max_records;
        conns.fetch_add(1, Ordering::AcqRel);
        let spawned = thread::Builder::new()
            .name("itesp-serve-conn".into())
            .spawn(move || {
                // The connection handler must never take the daemon
                // down: a panic here (it would be a bug — all expected
                // failures are typed) is caught, counted, and the
                // socket dropped.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    handle_connection(
                        stream,
                        &registry,
                        &pool,
                        &draining,
                        read_timeout,
                        max_records,
                    )
                }));
                if result.is_err() {
                    registry.count_protocol_error();
                    eprintln!("[serve: connection handler panicked — connection dropped]");
                }
                handler_conns.fetch_sub(1, Ordering::AcqRel);
            });
        if spawned.is_err() {
            conns.fetch_sub(1, Ordering::AcqRel);
        }
    }

    fn spawn_metrics(&self, stream: TcpStream) {
        let registry = Arc::clone(&self.registry);
        let pool = Arc::clone(&self.pool);
        let draining = Arc::clone(&self.draining);
        let _ = thread::Builder::new()
            .name("itesp-serve-metrics".into())
            .spawn(move || {
                let _ = handle_metrics(stream, &registry, &pool, &draining);
            });
    }
}

/// One metrics command per connection.
fn handle_metrics(
    mut stream: TcpStream,
    registry: &Registry,
    pool: &ShardPool,
    draining: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut cmd = [0u8; 1];
    stream.read_exact(&mut cmd)?;
    let body = match cmd[0] {
        b'T' => registry.deterministic_json(),
        b'A' => registry.full_json(),
        b'S' => {
            let mut json = serde_json::to_string_pretty(&pool.gauges()).expect("gauges serialize");
            json.push('\n');
            json
        }
        b'D' => {
            draining.store(true, Ordering::SeqCst);
            "draining\n".to_owned()
        }
        b'P' => "ok\n".to_owned(),
        other => format!("unknown command {other:#04x} (want T|A|S|D|P)\n"),
    };
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// One request per connection: Hello, records, End, reply.
fn handle_connection(
    mut stream: TcpStream,
    registry: &Registry,
    pool: &ShardPool,
    draining: &AtomicBool,
    read_timeout: Duration,
    max_records: u64,
) {
    if let Err(e) = serve_request(
        &mut stream,
        registry,
        pool,
        draining,
        read_timeout,
        max_records,
    ) {
        registry.count_protocol_error();
        // Best effort: the peer may already be gone (that is often
        // exactly what the error says).
        let _ = write_frame(&mut stream, FrameKind::ErrorFrame, &encode_error(&e));
    }
}

fn serve_request(
    stream: &mut TcpStream,
    registry: &Registry,
    pool: &ShardPool,
    draining: &AtomicBool,
    read_timeout: Duration,
    max_records: u64,
) -> Result<(), ServeError> {
    stream.set_read_timeout(Some(read_timeout))?;

    let Some(frame) = read_frame(stream)? else {
        return Ok(()); // connected and left without a word
    };
    if frame.kind != FrameKind::Hello {
        return Err(ServeError::Malformed(format!(
            "expected Hello, got {:?}",
            frame.kind
        )));
    }
    let hello = Hello::decode(&frame.payload)?;
    if hello.version != PROTOCOL_VERSION {
        return Err(ServeError::BadVersion {
            got: hello.version,
            want: PROTOCOL_VERSION,
        });
    }
    // Reject bad parameters before spending a queue slot.
    Scheme::from_label(&hello.scheme)
        .map_err(|_| ServeError::UnknownScheme(hello.scheme.clone()))?;

    if draining.load(Ordering::SeqCst) || TERM.load(Ordering::SeqCst) {
        registry.count_drain_reject();
        write_frame(
            stream,
            FrameKind::ErrorFrame,
            &encode_error(&ServeError::Draining),
        )?;
        return Ok(());
    }
    let token = match pool.try_admit(hello.tenant) {
        Ok(t) => t,
        Err(_) => {
            registry.count_busy();
            write_frame(stream, FrameKind::Busy, &[])?;
            return Ok(());
        }
    };
    registry.count_admitted();
    write_frame(stream, FrameKind::Admitted, &[])?;

    // Stream the trace. The admission token is held through the whole
    // read: if the client disconnects mid-frame or trickles past the
    // read deadline, the token drops and the slot frees immediately.
    let mut decoder = StreamDecoder::new();
    let mut records = Vec::new();
    let declared_total = loop {
        let Some(frame) = read_frame(stream)? else {
            return Err(ServeError::Truncated {
                needed: protocol::HEADER,
                got: 0,
            });
        };
        match frame.kind {
            FrameKind::Records => {
                let (_count, cells) = protocol::records_frame_cells(&frame.payload)?;
                decoder.push(cells, &mut records)?;
                if records.len() as u64 > max_records {
                    return Err(ServeError::TooManyRecords { limit: max_records });
                }
            }
            FrameKind::End => break protocol::decode_end(&frame.payload)?,
            other => {
                return Err(ServeError::Malformed(format!(
                    "expected Records or End, got {other:?}"
                )))
            }
        }
    };
    let total = decoder.finish()?;
    if total != declared_total {
        return Err(ServeError::RecordCount {
            declared: declared_total,
            got: total,
        });
    }

    let outcome = token
        .submit(TenantRequest { hello, records })
        .recv()
        .map_err(|_| ServeError::Engine("shard reply channel closed".into()))?;
    match outcome {
        JobOutcome::Ok(Ok(stats)) => {
            let json = serde_json::to_string_pretty(&stats).expect("stats serialize");
            write_frame(stream, FrameKind::Result, json.as_bytes())
        }
        JobOutcome::Ok(Err(e)) => write_frame(stream, FrameKind::ErrorFrame, &encode_error(&e)),
        JobOutcome::Panicked { message, attempts } => write_frame(
            stream,
            FrameKind::ErrorFrame,
            &encode_error(&ServeError::WorkerPanicked { message, attempts }),
        ),
        JobOutcome::TimedOut { timeout, attempts } => write_frame(
            stream,
            FrameKind::ErrorFrame,
            &encode_error(&ServeError::Timeout {
                ms: timeout.as_millis() as u64,
                attempts,
            }),
        ),
        JobOutcome::Skipped => write_frame(
            stream,
            FrameKind::ErrorFrame,
            &encode_error(&ServeError::Engine("job skipped by filter".into())),
        ),
    }
}

/// Read the `ports` file a daemon published under `state_dir`.
///
/// # Errors
/// I/O errors, plus a malformed file (partial write never happens —
/// the daemon renames atomically — so malformed means wrong dir).
pub fn read_ports(state_dir: &Path) -> Result<(u16, u16), ServeError> {
    let text = std::fs::read_to_string(state_dir.join("ports"))?;
    let mut traffic = None;
    let mut metrics = None;
    for line in text.lines() {
        if let Some(v) = line.strip_prefix("traffic=") {
            traffic = v.trim().parse().ok();
        } else if let Some(v) = line.strip_prefix("metrics=") {
            metrics = v.trim().parse().ok();
        }
    }
    match (traffic, metrics) {
        (Some(t), Some(m)) => Ok((t, m)),
        _ => Err(ServeError::Malformed(format!(
            "ports file in {} is incomplete",
            state_dir.display()
        ))),
    }
}

/// Send one metrics command and return the response body.
///
/// # Errors
/// Transport errors talking to the metrics port.
pub fn metrics_command(addr: SocketAddr, cmd: u8) -> Result<String, ServeError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.write_all(&[cmd])?;
    // Half-close the write side so the daemon sees EOF after the
    // command byte and the read below terminates on its close.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut body = String::new();
    stream.read_to_string(&mut body)?;
    Ok(body)
}
