//! # itesp-orchestrate — fault-tolerant job execution policies
//!
//! The one timeout/retry/backoff implementation shared by the batch
//! side (`itesp-bench`'s `run_jobs` fan-out and checkpointed campaigns)
//! and the serving side (`itesp-serve`'s per-connection policies).
//!
//! [`run_isolated`] fans jobs across worker threads, but each job
//! attempt runs under `catch_unwind` (one panicking job no longer
//! poisons the whole fan-out), optionally under a watchdog deadline,
//! and failed attempts retry with exponential backoff. Every job
//! resolves to a [`JobOutcome`] instead of `T`, so the caller decides
//! what a failure costs: `run_jobs` aborts the binary, the campaign
//! layer records it in a failure manifest and keeps going, and a serve
//! connection turns it into a typed error frame for that client alone.
//!
//! [`run_policied`] is the single-job entry point: one attempt chain
//! under the same policy, for callers (shard workers, connection
//! handlers) that execute jobs one at a time rather than fanning out.
//!
//! This crate is deliberately environment-free — policy comes in as a
//! [`JobPolicy`] value, which keeps the layer testable without touching
//! process-global env vars. (`itesp-bench` owns the env/CLI parsing.)

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// How one job ended, after all retry attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome<T> {
    /// The job returned a result.
    Ok(T),
    /// Every attempt panicked; `message` is the last panic payload.
    Panicked { message: String, attempts: u32 },
    /// Every attempt overran the watchdog deadline. The hung attempt
    /// threads are abandoned (they cannot be killed), so their work is
    /// discarded even if they eventually finish.
    TimedOut { timeout: Duration, attempts: u32 },
    /// The job was not run (filtered out by `ITESP_JOB_ONLY`).
    Skipped,
}

impl<T> JobOutcome<T> {
    /// Whether the job produced a result.
    pub fn is_ok(&self) -> bool {
        matches!(self, JobOutcome::Ok(_))
    }

    /// The result, if any.
    pub fn ok(self) -> Option<T> {
        match self {
            JobOutcome::Ok(v) => Some(v),
            _ => None,
        }
    }

    /// Short failure description for manifests and logs (`None` for
    /// `Ok`/`Skipped`).
    pub fn failure(&self) -> Option<String> {
        match self {
            JobOutcome::Ok(_) | JobOutcome::Skipped => None,
            JobOutcome::Panicked { message, attempts } => {
                Some(format!("panicked after {attempts} attempt(s): {message}"))
            }
            JobOutcome::TimedOut { timeout, attempts } => Some(format!(
                "timed out after {attempts} attempt(s) of {:.1} s",
                timeout.as_secs_f64()
            )),
        }
    }
}

/// Execution policy for one fan-out (or one serve connection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPolicy {
    /// Worker threads (clamped to the job count; 1 = serial).
    pub workers: usize,
    /// Per-attempt watchdog deadline. `None` runs attempts in the
    /// worker thread itself with no deadline.
    pub timeout: Option<Duration>,
    /// Extra attempts after a failed one.
    pub retries: u32,
    /// Sleep before the first retry; doubles per subsequent retry.
    pub backoff: Duration,
}

impl Default for JobPolicy {
    fn default() -> Self {
        JobPolicy {
            workers: 1,
            timeout: None,
            retries: 0,
            backoff: Duration::from_millis(100),
        }
    }
}

impl JobPolicy {
    /// Serial, no deadline, no retry — the unit-test baseline.
    pub fn serial() -> Self {
        Self::default()
    }

    /// Same policy with a different worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

/// Render a panic payload (the `Box<dyn Any>` from `catch_unwind`).
fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload was not a string".to_owned()
    }
}

/// One attempt failure, before the retry policy decides what to do.
enum AttemptError {
    Panicked(String),
    TimedOut(Duration),
}

/// Run `f(job)` once: in-thread when there is no deadline, under a
/// detached watchdog thread otherwise. A timed-out attempt's thread is
/// abandoned, not killed — which is why `f` must be `'static` and
/// shared via `Arc`.
fn run_once<T, F>(job: usize, timeout: Option<Duration>, f: &Arc<F>) -> Result<T, AttemptError>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    let Some(timeout) = timeout else {
        return catch_unwind(AssertUnwindSafe(|| f(job)))
            .map_err(|p| AttemptError::Panicked(payload_message(p)));
    };
    let (tx, rx) = mpsc::channel();
    let fc = Arc::clone(f);
    let spawned = std::thread::Builder::new()
        .name(format!("itesp-job-{job}"))
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| fc(job))).map_err(payload_message);
            // The receiver is gone if the watchdog already gave up.
            let _ = tx.send(result);
        });
    if let Err(e) = spawned {
        return Err(AttemptError::Panicked(format!(
            "could not spawn job thread: {e}"
        )));
    }
    match rx.recv_timeout(timeout) {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(message)) => Err(AttemptError::Panicked(message)),
        Err(_) => Err(AttemptError::TimedOut(timeout)),
    }
}

/// Run one job to completion under the retry policy.
fn run_attempts<T, F>(job: usize, policy: &JobPolicy, f: &Arc<F>) -> JobOutcome<T>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    let attempts = policy.retries + 1;
    let mut backoff = policy.backoff;
    for attempt in 1..=attempts {
        match run_once(job, policy.timeout, f) {
            Ok(v) => return JobOutcome::Ok(v),
            Err(e) if attempt == attempts => {
                return match e {
                    AttemptError::Panicked(message) => JobOutcome::Panicked { message, attempts },
                    AttemptError::TimedOut(timeout) => JobOutcome::TimedOut { timeout, attempts },
                }
            }
            Err(_) => {
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
        }
    }
    unreachable!("attempt loop always returns")
}

/// Run a single job under the policy's watchdog deadline, retry
/// budget, and panic isolation — the serving-side counterpart of
/// [`run_isolated`]. `policy.workers` is ignored (there is one job).
///
/// `f` should be deterministic — retries re-invoke it expecting the
/// same result, exactly as the batch fan-out does.
pub fn run_policied<T, F>(policy: &JobPolicy, f: F) -> JobOutcome<T>
where
    T: Send + 'static,
    F: Fn() -> T + Send + Sync + 'static,
{
    run_attempts(0, policy, &Arc::new(move |_job| f()))
}

/// Fan the jobs named by `indices` across `policy.workers` threads with
/// per-job panic isolation, watchdog deadlines, and retry. Returns one
/// [`JobOutcome`] per index, **aligned with `indices`** regardless of
/// completion order; `on_done(index, outcome)` fires as each job
/// settles (under a lock, so it may write checkpoints without further
/// synchronization).
///
/// `f` must be deterministic per index — retries and resumed runs
/// re-invoke it with the same index and expect the same result.
pub fn run_isolated<T, F, C>(
    indices: &[usize],
    policy: &JobPolicy,
    f: Arc<F>,
    on_done: C,
) -> Vec<JobOutcome<T>>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
    C: FnMut(usize, &JobOutcome<T>) + Send,
{
    let n = indices.len();
    let mut slots: Vec<Option<JobOutcome<T>>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    if n == 0 {
        return Vec::new();
    }
    let workers = policy.workers.clamp(1, n);
    let done = Mutex::new((slots, on_done));
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let run_worker = || loop {
            let pos = next.fetch_add(1, Ordering::Relaxed);
            if pos >= n {
                break;
            }
            let outcome = run_attempts(indices[pos], policy, &f);
            let mut guard = done.lock().expect("orchestrator lock");
            let (slots, on_done) = &mut *guard;
            on_done(indices[pos], &outcome);
            slots[pos] = Some(outcome);
        };
        // One "worker" is this thread; extras are spawned. With
        // workers == 1 this is a plain serial loop (no threads at all
        // unless a timeout is set).
        let handles: Vec<_> = (1..workers).map(|_| s.spawn(run_worker)).collect();
        run_worker();
        for h in handles {
            // Workers cannot panic: job panics are caught per-attempt.
            h.join().expect("orchestrator worker panicked");
        }
    });
    let (slots, _) = done.into_inner().expect("orchestrator lock");
    slots
        .into_iter()
        .map(|s| s.expect("every job slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn ok_results_align_with_indices() {
        let indices: Vec<usize> = vec![5, 2, 9, 0];
        let out = run_isolated(
            &indices,
            &JobPolicy::serial().with_workers(3),
            Arc::new(|i: usize| i * 10),
            |_, _| {},
        );
        let values: Vec<usize> = out.into_iter().map(|o| o.ok().unwrap()).collect();
        assert_eq!(values, vec![50, 20, 90, 0]);
    }

    #[test]
    fn panicking_job_is_isolated() {
        let out = run_isolated(
            &[0, 1, 2],
            &JobPolicy::serial().with_workers(2),
            Arc::new(|i: usize| {
                assert!(i != 1, "job one detonates");
                i
            }),
            |_, _| {},
        );
        assert_eq!(out[0], JobOutcome::Ok(0));
        assert_eq!(out[2], JobOutcome::Ok(2));
        match &out[1] {
            JobOutcome::Panicked { message, attempts } => {
                assert!(message.contains("job one detonates"), "{message}");
                assert_eq!(*attempts, 1);
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn timed_out_job_reports_deadline() {
        let policy = JobPolicy {
            timeout: Some(Duration::from_millis(25)),
            ..JobPolicy::serial()
        };
        let out = run_isolated(
            &[0, 1],
            &policy,
            Arc::new(|i: usize| {
                if i == 0 {
                    std::thread::sleep(Duration::from_secs(60));
                }
                i
            }),
            |_, _| {},
        );
        match out[0] {
            JobOutcome::TimedOut { timeout, attempts } => {
                assert_eq!(timeout, Duration::from_millis(25));
                assert_eq!(attempts, 1);
            }
            ref other => panic!("expected TimedOut, got {other:?}"),
        }
        assert_eq!(out[1], JobOutcome::Ok(1));
    }

    #[test]
    fn transient_panic_is_retried_until_success() {
        static TRIES: AtomicU32 = AtomicU32::new(0);
        let policy = JobPolicy {
            retries: 3,
            backoff: Duration::from_millis(1),
            ..JobPolicy::serial()
        };
        let out = run_isolated(
            &[7],
            &policy,
            Arc::new(|i: usize| {
                if TRIES.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("transient");
                }
                i
            }),
            |_, _| {},
        );
        assert_eq!(out[0], JobOutcome::Ok(7));
        assert_eq!(TRIES.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn retries_are_bounded() {
        static TRIES: AtomicU32 = AtomicU32::new(0);
        let policy = JobPolicy {
            retries: 2,
            backoff: Duration::from_millis(1),
            ..JobPolicy::serial()
        };
        let out: Vec<JobOutcome<usize>> = run_isolated(
            &[0],
            &policy,
            Arc::new(|_| {
                TRIES.fetch_add(1, Ordering::SeqCst);
                panic!("always fails");
            }),
            |_, _| {},
        );
        match &out[0] {
            JobOutcome::Panicked { attempts, .. } => assert_eq!(*attempts, 3),
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert_eq!(TRIES.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn on_done_sees_every_job_exactly_once() {
        let mut seen = Vec::new();
        run_isolated(
            &[3, 1, 4, 1, 5],
            &JobPolicy::serial().with_workers(4),
            Arc::new(|i: usize| i),
            |i, o: &JobOutcome<usize>| {
                assert!(o.is_ok());
                seen.push(i);
            },
        );
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 1, 3, 4, 5]);
    }

    #[test]
    fn run_policied_single_job_paths() {
        // Success.
        assert_eq!(
            run_policied(&JobPolicy::serial(), || 41 + 1),
            JobOutcome::Ok(42)
        );
        // Panic isolation with a bounded retry budget.
        static TRIES: AtomicU32 = AtomicU32::new(0);
        let policy = JobPolicy {
            retries: 1,
            backoff: Duration::from_millis(1),
            ..JobPolicy::serial()
        };
        let out: JobOutcome<u32> = run_policied(&policy, || {
            TRIES.fetch_add(1, Ordering::SeqCst);
            panic!("connection job detonates");
        });
        match out {
            JobOutcome::Panicked { message, attempts } => {
                assert!(message.contains("detonates"), "{message}");
                assert_eq!(attempts, 2);
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert_eq!(TRIES.load(Ordering::SeqCst), 2);
        // Watchdog deadline.
        let policy = JobPolicy {
            timeout: Some(Duration::from_millis(20)),
            ..JobPolicy::serial()
        };
        let out: JobOutcome<()> = run_policied(&policy, || {
            std::thread::sleep(Duration::from_secs(60));
        });
        assert!(matches!(out, JobOutcome::TimedOut { .. }), "{out:?}");
    }
}
