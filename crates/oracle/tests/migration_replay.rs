//! Cross-node anti-rollback oracle for live migration.
//!
//! A migration blob is a full serialized enclave (tree geometry, page
//! map, counters, ledger — never key material). If an attacker records
//! one on the wire and replays it after the migration commits, they
//! are attempting a *cross-node* rollback: resurrecting the enclave's
//! pre-migration counters somewhere in the cluster. The per-enclave
//! migration epoch is the defence — the commit bumps it, permanently
//! staling every earlier capture — and this oracle attacks it
//! directly, on every node, for every capture point:
//!
//! * a blob captured mid-flight and replayed after the commit must be
//!   rejected with [`MigrateError::EpochStale`] on **every** node,
//!   with node state untouched;
//! * a blob delivered to a node that is not the migration's
//!   destination must be rejected even at the *current* epoch;
//! * a second migration stales the first hop's blob by a further
//!   epoch, and directory epochs only ever grow.
//!
//! Seeds are replayable via `ITESP_TEST_SEED`.

use itesp_core::Scheme;
use itesp_migrate::{
    peek_header, Cluster, ClusterConfig, ClusterWorkload, MigrateError, Residence,
};
use itesp_oracle::with_seeds;
use itesp_trace::{benchmark, ChurnConfig, ChurnWorkload};

const NODES: usize = 3;

fn workload(seed: u64) -> ClusterWorkload {
    let w = ChurnWorkload::generate(
        benchmark("mcf").expect("table IV has mcf"),
        &ChurnConfig {
            slots: 2,
            sessions_per_slot: 2,
            ops_per_session: 250,
            mean_arrival_gap: 10_000.0,
            footprint_pages: 16,
            free_fraction: 0.3,
            seed,
        },
    );
    ClusterWorkload::from_churn(&w, 6)
}

fn cluster(seed: u64) -> Cluster {
    let mut cfg = ClusterConfig::small(NODES, 2, Scheme::Itesp);
    cfg.master = seed ^ 0x6d16_9a7e_0000_0001;
    cfg.seed = seed.rotate_left(11) ^ 0x6d16;
    Cluster::new(cfg, workload(seed))
}

/// Step until tenant 0 is admitted somewhere.
fn run_until_live(c: &mut Cluster, seed: u64) -> usize {
    while c.directory().entry(0).is_none() {
        c.step()
            .unwrap_or_else(|e| panic!("cluster step failed: {e} (seed {seed})"));
    }
    match c.directory().entry(0).unwrap().residence {
        Residence::Live { node } => node,
        other => panic!("tenant 0 admitted into {other:?} (seed {seed})"),
    }
}

#[test]
fn cross_node_migration_replay_is_rejected_everywhere() {
    with_seeds(
        "cross_node_migration_replay_is_rejected_everywhere",
        3,
        |seed| {
            let mut c = cluster(seed);
            let home = run_until_live(&mut c, seed);
            let first_hop = (home + 1) % NODES;
            c.start_migration(0, first_hop)
                .unwrap_or_else(|e| panic!("migration refused: {e} (seed {seed})"));
            let stale = c.inflight_blob(0).expect("transfer in flight");
            let header = peek_header(&stale).expect("blob header decodes");
            assert_eq!(header.tenant, 0, "seed {seed}");
            assert_eq!(
                header.epoch, 1,
                "first hop carries the admit epoch (seed {seed})"
            );

            // Mid-flight, a copy delivered anywhere but the destination is
            // refused at the *current* epoch.
            let bystander = (home + 2) % NODES;
            assert!(
                matches!(
                    c.deliver_blob(bystander, &stale),
                    Err(MigrateError::NotInMigration { tenant: 0, .. })
                ),
                "wrong-node delivery must be refused (seed {seed})"
            );

            // Let the protocol commit; the epoch bumps.
            while c.inflight_blob(0).is_some() {
                c.step()
                    .unwrap_or_else(|e| panic!("cluster step failed: {e} (seed {seed})"));
            }
            let entry = c.directory().entry(0).expect("tenant stays tracked");
            assert_eq!(entry.epoch, 2, "commit bumps the epoch (seed {seed})");

            // The captured blob is now permanently stale — on every node,
            // including its own former source and destination — and a
            // rejection never mutates node state.
            for node in 0..NODES {
                let before = c.node_live_pages();
                match c.deliver_blob(node, &stale) {
                    Err(MigrateError::EpochStale {
                        tenant: 0,
                        blob_epoch: 1,
                        current_epoch,
                    }) => assert_eq!(current_epoch, 2, "seed {seed}"),
                    other => {
                        panic!("node {node}: expected EpochStale, got {other:?} (seed {seed})")
                    }
                }
                assert_eq!(
                    c.node_live_pages(),
                    before,
                    "rejection mutated node {node} (seed {seed})"
                );
            }
            c.check_exactly_one_home()
                .unwrap_or_else(|e| panic!("residency broken: {e} (seed {seed})"));

            // A second hop stales the second blob too, and the first blob
            // falls further behind — epochs only grow.
            let second_hop = (0..NODES)
                .find(|&n| n != first_hop && c.nodes()[n].free_slot().is_some())
                .unwrap_or_else(|| panic!("no node can take the second hop (seed {seed})"));
            c.start_migration(0, second_hop)
                .unwrap_or_else(|e| panic!("second migration refused: {e} (seed {seed})"));
            let second = c.inflight_blob(0).expect("second transfer in flight");
            assert_eq!(peek_header(&second).unwrap().epoch, 2, "seed {seed}");
            while c.inflight_blob(0).is_some() {
                c.step()
                    .unwrap_or_else(|e| panic!("cluster step failed: {e} (seed {seed})"));
            }
            assert_eq!(c.directory().entry(0).unwrap().epoch, 3, "seed {seed}");
            for (blob, blob_epoch) in [(&stale, 1), (&second, 2)] {
                match c.deliver_blob(home, blob) {
                    Err(MigrateError::EpochStale {
                        blob_epoch: got, ..
                    }) => assert_eq!(got, blob_epoch, "seed {seed}"),
                    other => panic!(
                        "epoch-{blob_epoch} blob: expected EpochStale, got {other:?} (seed {seed})"
                    ),
                }
            }

            // The run still completes cleanly after every attack.
            c.run_to_completion()
                .unwrap_or_else(|e| panic!("post-attack run failed: {e} (seed {seed})"));
            c.check_exactly_one_home()
                .unwrap_or_else(|e| panic!("final residency broken: {e} (seed {seed})"));
        },
    );
}
