//! Mutation self-test: the protocol checker must actually fire.
//!
//! Each test builds a [`Channel`] whose timing config has one seeded bug
//! (a shrunken constraint), drives it over a workload that exercises the
//! constraint, and validates the emitted command log against a checker
//! built from the *true* Table III config. The scheduler legitimately
//! schedules as aggressively as its (buggy) config allows, so the
//! checker must reject the log — proving the oracle detects real timing
//! bugs rather than vacuously passing everything.

use itesp_dram::{AddressDecoder, Channel, DramConfig, ReferenceChannel};
use itesp_oracle::workload::{find_addr, run_arrivals, run_stream, Arrival, WorkloadRun};
use itesp_oracle::{ProtocolChecker, ProtocolViolation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic stress mix: dense bursts, row conflicts, mixed
/// reads/writes, and a tail request that forces the run across a
/// refresh interval.
fn stress_mix() -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(0x5EED_0AC1E);
    let mut arrivals: Vec<Arrival> = (0..200)
        .map(|_| {
            (
                rng.gen_range(0u64..3),
                rng.gen_range(0u8..4),
                rng.gen::<u32>(),
                rng.gen::<bool>(),
            )
        })
        .collect();
    // Cross the first refresh deadline with work still pending.
    arrivals.push((2 * DramConfig::table_iii().timing.t_refi, 0, 1, false));
    arrivals
}

/// Run `arrivals` through a channel built with `bad` and validate the
/// log against `truth`; returns the violation the checker must raise.
fn expect_caught(truth: DramConfig, bad: DramConfig, arrivals: &[Arrival]) -> ProtocolViolation {
    let run = run_arrivals(&mut Channel::new(bad), arrivals);
    expect_violation(truth, &run)
}

fn expect_violation(truth: DramConfig, run: &WorkloadRun) -> ProtocolViolation {
    match ProtocolChecker::check_log(truth, &run.log, run.end_cycle) {
        Err(v) => v,
        Ok(()) => panic!("checker failed to catch the seeded timing bug"),
    }
}

/// Shrunken ACT-to-CAS delay: every row miss issues its column access
/// too early.
#[test]
fn catches_shrunken_trcd() {
    let truth = DramConfig::table_iii();
    let mut bad = truth;
    bad.timing.t_rcd = 2;
    let v = expect_caught(truth, bad, &stress_mix());
    assert_eq!(v.rule, "tRCD", "{v}");
}

/// Shrunken CAS-to-CAS spacing (with the matching shorter burst, so the
/// data-bus model doesn't mask it): back-to-back row hits pack too
/// tightly.
#[test]
fn catches_shrunken_tccd() {
    let truth = DramConfig::table_iii();
    let mut bad = truth;
    bad.timing.t_ccd = 1;
    bad.timing.t_burst = 1;
    let v = expect_caught(truth, bad, &stress_mix());
    assert!(
        v.rule == "tCCD" || v.rule == "bus-overlap",
        "expected a CAS-spacing violation, got {v}"
    );
}

/// Shrunken row-activate window: conflicts precharge the row before
/// tRAS expires.
#[test]
fn catches_shrunken_tras() {
    let truth = DramConfig::table_iii();
    let mut bad = truth;
    bad.timing.t_ras = 5;
    let v = expect_caught(truth, bad, &stress_mix());
    assert_eq!(v.rule, "tRAS", "{v}");
}

/// Shrunken precharge latency: the re-activate after a conflict comes
/// too early.
#[test]
fn catches_shrunken_trp() {
    let truth = DramConfig::table_iii();
    let mut bad = truth;
    bad.timing.t_rp = 1;
    let v = expect_caught(truth, bad, &stress_mix());
    assert_eq!(v.rule, "tRP", "{v}");
}

/// Shrunken write recovery: a conflict precharges too soon after the
/// last write burst.
#[test]
fn catches_shrunken_twr() {
    let truth = DramConfig::table_iii();
    let mut bad = truth;
    bad.timing.t_wr = 0;
    let v = expect_caught(truth, bad, &stress_mix());
    assert_eq!(v.rule, "tWR", "{v}");
}

/// Dropped write-to-read turnaround: reads chase writes onto the bus
/// without the tWTR gap. Everything is confined to rank 0 so the
/// write-drain exit hands the bus straight from a write to a read in
/// the same rank.
#[test]
fn catches_dropped_twtr() {
    let truth = DramConfig::table_iii();
    let mut bad = truth;
    bad.timing.t_wtr = 0;
    let dec = AddressDecoder::new(truth.geometry, truth.mapping);
    let mut stream = Vec::new();
    // A drain-triggering burst of writes (high watermark is 40).
    for i in 0..48u32 {
        stream.push((0u64, find_addr(&dec, 0, i % 8, i / 8), true));
    }
    // Row-hit reads into the same banks/rows while the drain is active.
    for b in 0..8u32 {
        stream.push((150, find_addr(&dec, 0, b, 5), false));
    }
    let run = run_stream(&mut Channel::new(bad), &dec, &stream);
    let v = expect_violation(truth, &run);
    assert_eq!(v.rule, "tWTR", "{v}");
}

/// Dropped rank-to-rank turnaround: bursts from different ranks abut on
/// the data bus.
#[test]
fn catches_dropped_trtrs() {
    let truth = DramConfig::table_iii();
    let mut bad = truth;
    bad.timing.t_rtrs = 0;
    let v = expect_caught(truth, bad, &stress_mix());
    assert_eq!(v.rule, "tRTRS", "{v}");
}

/// Reads to several banks of one rank, all at once — the ACT-spacing
/// workload for the tRRD / tFAW mutations.
fn same_rank_act_storm(truth: &DramConfig, banks: u32) -> Vec<(u64, u64, bool)> {
    let dec = AddressDecoder::new(truth.geometry, truth.mapping);
    (0..banks)
        .map(|b| (0u64, find_addr(&dec, 0, b, 1), false))
        .collect()
}

/// Shrunken ACT-to-ACT spacing within a rank.
#[test]
fn catches_shrunken_trrd() {
    let truth = DramConfig::table_iii();
    let mut bad = truth;
    bad.timing.t_rrd = 1;
    let stream = same_rank_act_storm(&truth, 6);
    let dec = AddressDecoder::new(bad.geometry, bad.mapping);
    let run = run_stream(&mut Channel::new(bad), &dec, &stream);
    let v = expect_violation(truth, &run);
    assert_eq!(v.rule, "tRRD", "{v}");
}

/// Shrunken four-activate window. Table III has tFAW == 4*tRRD, which
/// makes tRRD the binding constraint, so the "intended" config here is
/// Table III with a relaxed tRRD (a part where tFAW binds); the seeded
/// bug additionally shrinks tFAW. The checker, built from the intended
/// config, must flag the window violation.
#[test]
fn catches_shrunken_tfaw() {
    let mut truth = DramConfig::table_iii();
    truth.timing.t_rrd = 1;
    let mut bad = truth;
    bad.timing.t_faw = 6;
    let stream = same_rank_act_storm(&truth, 6);
    let dec = AddressDecoder::new(bad.geometry, bad.mapping);
    let run = run_stream(&mut Channel::new(bad), &dec, &stream);
    let v = expect_violation(truth, &run);
    assert_eq!(v.rule, "tFAW", "{v}");
}

/// Shrunken refresh interval: refreshes land off the true deadlines.
#[test]
fn catches_wrong_refresh_cadence() {
    let truth = DramConfig::table_iii();
    let mut bad = truth;
    bad.timing.t_refi = 4000;
    let v = expect_caught(truth, bad, &stress_mix());
    assert_eq!(v.rule, "refresh-deadline", "{v}");
}

/// Shrunken refresh blackout: an activate sneaks into the tRFC window.
#[test]
fn catches_shrunken_trfc() {
    let truth = DramConfig::table_iii();
    let mut bad = truth;
    bad.timing.t_rfc = 40;
    // A read to rank 0 arriving exactly at rank 0's first refresh
    // deadline: the buggy channel activates tRFC_bad after the refresh,
    // well inside the true blackout.
    let dec = AddressDecoder::new(truth.geometry, truth.mapping);
    let addr = find_addr(&dec, 0, 0, 1);
    let stream = vec![(truth.timing.t_refi, addr, false)];
    let run = run_stream(&mut Channel::new(bad), &dec, &stream);
    let v = expect_violation(truth, &run);
    assert_eq!(v.rule, "tRFC", "{v}");
}

/// A skipped refresh (the classic "forgot to refresh" bug, simulated by
/// deleting a refresh command from an otherwise-valid log) is reported
/// at end of run.
#[test]
fn catches_skipped_refresh() {
    let truth = DramConfig::table_iii();
    let run = run_arrivals(&mut Channel::new(truth), &stress_mix());
    // The unmutated log passes...
    ProtocolChecker::check_log(truth, &run.log, run.end_cycle).unwrap();
    // ...but dropping any single refresh must be caught (either as a
    // missed deadline at end of run or as the next refresh of that rank
    // landing off its deadline).
    let refresh_at = run
        .log
        .iter()
        .position(|c| c.cmd == itesp_dram::Command::Refresh)
        .expect("stress mix spans a refresh");
    let mut mutated = run.log.clone();
    mutated.remove(refresh_at);
    let v = ProtocolChecker::check_log(truth, &mutated, run.end_cycle)
        .expect_err("checker failed to catch a skipped refresh");
    assert!(
        v.rule == "refresh-missed" || v.rule == "refresh-deadline",
        "{v}"
    );
}

/// The reference scheduler with a seeded bug is caught just the same —
/// the checker is independent of which implementation produced the log.
#[test]
fn catches_mutation_in_reference_channel() {
    let truth = DramConfig::table_iii();
    let mut bad = truth;
    bad.timing.t_rcd = 2;
    let run = run_arrivals(&mut ReferenceChannel::new(bad), &stress_mix());
    let v = expect_violation(truth, &run);
    assert_eq!(v.rule, "tRCD", "{v}");
}
