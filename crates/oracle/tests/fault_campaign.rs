//! Randomized chipkill fault-injection campaign.
//!
//! Every trial injects faults from the `reliability::inject` model into
//! a MAC-consistent codeword and checks the decode outcome against the
//! Table II outcome classes: single-chip-confined faults (bit, pin,
//! whole chip) must be corrected back to the original word; multi-chip
//! faults must be *detected* (the Case 4 DUE class), and nothing may
//! ever be silent — Table II's SDC rates are 2⁻⁶⁴-scaled, so a single
//! silent outcome at campaign scale is a decoder bug, not bad luck.
//!
//! Knobs: `ITESP_FAULT_TRIALS` scales the randomized trial count,
//! `ITESP_TEST_SEED` replays one failing seed (printed on failure).

use itesp_core::mac::mac_block;
use itesp_core::{EngineConfig, Scheme, SecurityEngine};
use itesp_oracle::{
    classify, exhaustive_single_faults, fault_label, random_word, scheme_enabled, with_seeds,
    TrialOutcome, TrialWord,
};
use itesp_reliability::{
    column_parity, correct_shared, inject, shared_parity, table_ii, CodeWord, Correction, Design,
    Fault, FaultStream, ReliabilityParams, TOTAL_CHIPS,
};
use rand::Rng;

/// Randomized trials per seed (override with `ITESP_FAULT_TRIALS`).
fn trials() -> usize {
    std::env::var("ITESP_FAULT_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(384)
}

/// Single faults of every class on every chip — first the exhaustive
/// 27-pattern sweep, then randomized bit positions and chip garbage —
/// are always corrected, naming the faulted chip after all 9 MAC trials.
#[test]
fn fault_campaign_random_single_faults() {
    with_seeds("fault_campaign_random_single_faults", 4, |seed| {
        let mut stream = FaultStream::seeded(seed);
        let sweep: Vec<Fault> =
            exhaustive_single_faults(stream.rng().gen_range(0..8), stream.rng().gen_range(0..8))
                .into_iter()
                .chain((0..trials()).map(|_| stream.next_fault()))
                .collect();
        for fault in sweep {
            let original = random_word(stream.rng());
            let parity = column_parity(&original.word);
            let mut trial = original;
            inject(&mut trial.word, fault, stream.rng());
            match classify(&original.word, &trial, parity) {
                TrialOutcome::Corrected { chip, mac_trials } => {
                    assert_eq!(
                        usize::from(chip),
                        fault.chip(),
                        "{}: corrected the wrong chip",
                        fault_label(&fault)
                    );
                    assert_eq!(
                        mac_trials,
                        TOTAL_CHIPS as u8,
                        "{}: correction skipped candidate chips",
                        fault_label(&fault)
                    );
                }
                outcome => panic!(
                    "{}: single-chip fault must be corrected, got {outcome:?}",
                    fault_label(&fault)
                ),
            }
        }
    });
}

/// Multiple faults confined to one chip are still a single-device error:
/// corrected (or, if the injections XOR-cancel, a benign clean pass).
#[test]
fn fault_campaign_same_chip_multi_faults() {
    with_seeds("fault_campaign_same_chip_multi_faults", 4, |seed| {
        let mut stream = FaultStream::seeded(seed);
        for _ in 0..trials() {
            let original = random_word(stream.rng());
            let parity = column_parity(&original.word);
            let chip = stream.rng().gen_range(0..TOTAL_CHIPS as u8);
            let mut trial = original;
            let n_faults = stream.rng().gen_range(2usize..5);
            let mut faults = Vec::new();
            for _ in 0..n_faults {
                let mut f = stream.next_fault();
                while f.chip() != usize::from(chip) {
                    f = stream.next_fault();
                }
                faults.push(f);
                inject(&mut trial.word, f, stream.rng());
            }
            match classify(&original.word, &trial, parity) {
                TrialOutcome::Corrected { chip: c, .. } => assert!(
                    c == chip || c == u8::MAX,
                    "same-chip faults {faults:?}: corrected chip {c}, expected {chip}"
                ),
                outcome => {
                    panic!("same-chip faults {faults:?} must stay correctable, got {outcome:?}")
                }
            }
        }
    });
}

/// Faults on two (or more) distinct chips exceed the code's correction
/// power: the decoder must detect (Table II Case 4), never silently pass
/// or miscorrect.
#[test]
fn fault_campaign_multi_chip_faults_detected() {
    with_seeds("fault_campaign_multi_chip_faults_detected", 4, |seed| {
        let mut stream = FaultStream::seeded(seed);
        for _ in 0..trials() {
            let original = random_word(stream.rng());
            let parity = column_parity(&original.word);
            let mut trial = original;
            let first = stream.next_fault();
            inject(&mut trial.word, first, stream.rng());
            let mut second = stream.next_fault();
            while second.chip() == first.chip() {
                second = stream.next_fault();
            }
            inject(&mut trial.word, second, stream.rng());
            let outcome = classify(&original.word, &trial, parity);
            assert_eq!(
                outcome,
                TrialOutcome::Detected,
                "{} + {}: multi-chip fault must be a DUE",
                fault_label(&first),
                fault_label(&second)
            );
        }
    });
}

/// ITESP's cross-rank shared parity: with error-free companion blocks
/// the recovered per-block parity corrects any single-chip fault; with a
/// companion corrupted too (the cross-rank double-error pattern whose
/// rate Case 4 charges to ITESP's larger sharing domain), the decode
/// must detect, never silently corrupt.
#[test]
fn fault_campaign_shared_parity_cross_rank() {
    with_seeds("fault_campaign_shared_parity_cross_rank", 4, |seed| {
        let mut stream = FaultStream::seeded(seed);
        for _ in 0..trials() / 4 {
            let target = random_word(stream.rng());
            let companions: Vec<_> = (0..stream.rng().gen_range(1usize..8))
                .map(|_| random_word(stream.rng()).word)
                .collect();
            let shared = shared_parity(companions.iter().chain(std::iter::once(&target.word)));
            let fault = stream.next_fault();
            let mut corrupted = target.word;
            inject(&mut corrupted, fault, stream.rng());

            // Clean companions: correction succeeds through the shared word.
            let (correction, fixed) = correct_shared(
                &corrupted,
                shared,
                &companions,
                &target.key,
                target.counter,
                target.addr,
            );
            match correction {
                Correction::Corrected { chip, .. } => {
                    assert_eq!(usize::from(chip), fault.chip(), "{}", fault_label(&fault));
                    assert_eq!(fixed, target.word, "shared-parity correction wrong");
                }
                Correction::Clean => {
                    assert_eq!(corrupted, target.word, "silently passed a corrupted word")
                }
                other => panic!("{}: shared-parity decode {other:?}", fault_label(&fault)),
            }

            // A simultaneously-corrupted companion poisons the recovered
            // parity: decode must refuse, not fabricate data.
            let mut bad_companions = companions.clone();
            let victim = stream.rng().gen_range(0..bad_companions.len());
            inject(
                &mut bad_companions[victim],
                Fault::Chip {
                    chip: stream.rng().gen_range(0..TOTAL_CHIPS as u8),
                },
                stream.rng(),
            );
            let (correction, fixed) = correct_shared(
                &corrupted,
                shared,
                &bad_companions,
                &target.key,
                target.counter,
                target.addr,
            );
            match correction {
                Correction::Ambiguous | Correction::Uncorrectable => {}
                Correction::Corrected { .. } => assert_eq!(
                    fixed, target.word,
                    "cross-rank double error miscorrected (SDC)"
                ),
                Correction::Clean => {
                    assert_eq!(
                        corrupted, target.word,
                        "cross-rank double error passed clean"
                    )
                }
            }
        }
    });
}

/// SecDDR's decode is the link MAC alone: no column parity was stored
/// (the MAC displaced it in the ECC field), so there is nothing to
/// reconstruct from. A corrupted transfer fails the MAC check — the
/// fault is *detected* — but no candidate-chip loop can run:
/// detect-but-cannot-locate, the DUE class, for every single one of the
/// 27 exhaustive (fault class × chip) patterns and every randomized
/// trial. Never Corrected, and (MAC-collision scaled) never Silent.
fn secddr_decode(original: &CodeWord, trial: &TrialWord) -> TrialOutcome {
    let mac_ok =
        mac_block(&trial.key, &trial.word.data, trial.counter, trial.addr) == trial.word.mac();
    match (mac_ok, trial.word == *original) {
        // Clean pass (injection XOR-cancelled): benign.
        (true, true) => TrialOutcome::Corrected {
            chip: u8::MAX,
            mac_trials: 0,
        },
        // MAC collision on corrupted data: the SDC class.
        (true, false) => TrialOutcome::Silent,
        // MAC mismatch: detected, and that is where it ends.
        (false, _) => TrialOutcome::Detected,
    }
}

#[test]
fn fault_campaign_secddr_detects_but_cannot_locate() {
    if !scheme_enabled(Scheme::SecDdr) {
        return;
    }
    // The engine agrees with the analytic class: detection without any
    // correction resource (the sim's RAS loop reads exactly these).
    let engine = SecurityEngine::new(EngineConfig::paper_default(Scheme::SecDdr));
    assert!(engine.detects_errors());
    assert_eq!(engine.parity_group_share(), 0);
    assert_eq!(engine.recovery_parity_addr(0, 0), None);

    with_seeds(
        "fault_campaign_secddr_detects_but_cannot_locate",
        4,
        |seed| {
            let mut stream = FaultStream::seeded(seed);
            let sweep: Vec<Fault> = exhaustive_single_faults(
                stream.rng().gen_range(0..8),
                stream.rng().gen_range(0..8),
            )
            .into_iter()
            .chain((0..trials() / 2).map(|_| stream.next_fault()))
            .collect();
            for fault in sweep {
                let original = random_word(stream.rng());
                let mut trial = original;
                inject(&mut trial.word, fault, stream.rng());
                // Skip the measure-zero XOR-cancelled injections: the class
                // under test is "corrupted word reaches the decoder".
                if trial.word == original.word {
                    continue;
                }
                assert_eq!(
                    secddr_decode(&original.word, &trial),
                    TrialOutcome::Detected,
                    "{}: SecDDR must detect-but-not-locate (DUE)",
                    fault_label(&fault)
                );
            }
        },
    );
}

/// IRO's reliability story: one XOR parity word per 8-bucket group.
/// With clean companion buckets, a single-chip fault in one bucket is
/// corrected through the recovered group parity (the same decode loop
/// ITESP's shared parity uses); with a second corrupted bucket in the
/// group, the decode must refuse or restore exactly — never fabricate.
#[test]
fn fault_campaign_iroram_bucket_parity_corrects() {
    if !scheme_enabled(Scheme::IrOram) {
        return;
    }
    // Engine-side agreement: an 8-wide parity group, with a recovery
    // address inside the model's parity region.
    let engine = SecurityEngine::new(EngineConfig::paper_default(Scheme::IrOram));
    assert!(engine.detects_errors());
    assert_eq!(engine.parity_group_share(), 8);
    let addr = engine
        .recovery_parity_addr(0, 0)
        .expect("IRO block has a recovery parity line");
    assert!(addr >= engine.parity_base(0));

    with_seeds("fault_campaign_iroram_bucket_parity_corrects", 4, |seed| {
        let mut stream = FaultStream::seeded(seed);
        for _ in 0..trials() / 4 {
            // One 8-bucket parity group: the target bucket word plus 7
            // companions.
            let target = random_word(stream.rng());
            let companions: Vec<CodeWord> =
                (0..7).map(|_| random_word(stream.rng()).word).collect();
            let group = shared_parity(companions.iter().chain(std::iter::once(&target.word)));
            let fault = stream.next_fault();
            let mut corrupted = target.word;
            inject(&mut corrupted, fault, stream.rng());

            let (correction, fixed) = correct_shared(
                &corrupted,
                group,
                &companions,
                &target.key,
                target.counter,
                target.addr,
            );
            match correction {
                Correction::Corrected { chip, mac_trials } => {
                    assert_eq!(usize::from(chip), fault.chip(), "{}", fault_label(&fault));
                    assert_eq!(mac_trials, TOTAL_CHIPS as u8);
                    assert_eq!(fixed, target.word, "bucket-parity correction wrong");
                }
                Correction::Clean => {
                    assert_eq!(corrupted, target.word, "silently passed a corrupted bucket")
                }
                other => panic!(
                    "{}: bucket-parity decode must correct, got {other:?}",
                    fault_label(&fault)
                ),
            }

            // Second fault in the same group: parity is poisoned.
            let mut bad = companions.clone();
            let victim = stream.rng().gen_range(0..bad.len());
            let second = stream.next_fault();
            inject(&mut bad[victim], second, stream.rng());
            let (correction, fixed) = correct_shared(
                &corrupted,
                group,
                &bad,
                &target.key,
                target.counter,
                target.addr,
            );
            match correction {
                Correction::Ambiguous | Correction::Uncorrectable => {}
                Correction::Corrected { .. } => {
                    assert_eq!(fixed, target.word, "double-bucket error miscorrected (SDC)")
                }
                Correction::Clean => {
                    assert_eq!(corrupted, target.word, "double-bucket error passed clean")
                }
            }
        }
    });
}

/// The campaign's observed outcome frequencies are consistent with the
/// Table II analytical model: the SDC classes are MAC-collision scaled
/// (expected silent events over the whole campaign ≈ trials × 2⁻⁶⁴ ≈ 0,
/// and the campaign asserts exactly zero), and the correction loop's 9
/// MAC trials match the model's `rank_devices`.
#[test]
fn fault_campaign_rates_match_table_ii() {
    let p = ReliabilityParams::default();
    for design in [Design::Synergy, Design::Itesp] {
        let rates = table_ii(&p, design);
        // SDC rates are vanishingly small: a campaign of any feasible
        // size expects zero silent corruptions, which is exactly what
        // the injection tests assert.
        let per_event_sdc =
            (rates.case1_sdc + rates.case2_sdc) / (f64::from(p.devices) * p.device_fit);
        assert!(
            per_event_sdc < 1e-15,
            "{design:?}: SDC per device error {per_event_sdc:e} not collision-scaled"
        );
        // DUE rates are not: multi-chip patterns must be detectable, as
        // the multi-chip campaign asserts on every trial.
        assert!(rates.case4_due > 0.0);
    }
    assert_eq!(p.rank_devices as usize, TOTAL_CHIPS);
}
