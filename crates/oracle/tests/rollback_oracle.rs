//! Anti-rollback oracle for the durable security state.
//!
//! Drives a real [`SecurityEngine`] + [`EnclaveManager`] through a
//! scripted enclave lifetime, committing (engine, manager) snapshots
//! into a [`SnapshotStore`] at known points. The store's write-ahead
//! log is the freshness witness, and the oracle checks both halves of
//! the anti-rollback contract:
//!
//! * **every** stale snapshot — intact bytes, valid CRC — is rejected
//!   by [`SnapshotStore::verify_fresh`] when restored *as if latest*
//!   (only deterministic suffix replay may start from old state);
//! * the rejection matters: the oracle exhibits the concrete hazards a
//!   stale restore would smuggle in — a leaf-id freed after the stale
//!   snapshot coming back live, and a write counter rewinding — and
//!   proves state along the committed sequence is monotone (no engine
//!   access count or leaf counter ever decreases, enclave ids never
//!   rewind).
//!
//! Seeds are replayable via `ITESP_TEST_SEED`.

use std::fs;
use std::path::PathBuf;

use itesp_core::{EngineConfig, Scheme, SecurityEngine};
use itesp_enclave::EnclaveManager;
use itesp_oracle::with_seeds;
use itesp_snap::{SnapReader, SnapWriter, SnapshotStore, StoreError};

const SLOTS: usize = 4;

fn tmpdir(seed: u64) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "itesp-rollback-oracle-{}-{seed}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&d);
    d
}

/// One committed state: engine bytes then manager bytes.
fn commit(store: &SnapshotStore, step: u64, engine: &SecurityEngine, mgr: &EnclaveManager) -> u64 {
    let mut w = SnapWriter::new();
    engine.save_state(&mut w);
    mgr.save_state(&mut w);
    store.append(step, &w.into_bytes()).unwrap().seq
}

/// Restore a committed state into a freshly built pair.
fn restore(store: &SnapshotStore, seq: u64, seed: u64) -> (SecurityEngine, EnclaveManager) {
    let (_, payload) = store.load(seq).unwrap();
    let mut engine = SecurityEngine::new(EngineConfig::paper_default(Scheme::Itesp));
    let mut mgr = EnclaveManager::new(SLOTS, seed);
    let mut r = SnapReader::new(&payload);
    engine.load_state(&mut r).unwrap();
    mgr.load_state(&mut r).unwrap();
    r.finish().unwrap();
    (engine, mgr)
}

#[test]
fn stale_snapshots_are_rejected_and_would_resurrect_freed_state() {
    with_seeds(
        "stale_snapshots_are_rejected_and_would_resurrect_freed_state",
        3,
        |seed| {
            let dir = tmpdir(seed);
            let store = SnapshotStore::open(&dir).unwrap();
            let mut engine = SecurityEngine::new(EngineConfig::paper_default(Scheme::Itesp));
            let mut mgr = EnclaveManager::new(SLOTS, seed);

            // Epoch 1: every slot gets an enclave; slot 0 maps pages
            // 0..8 and writes page 3 once.
            for slot in 0..SLOTS {
                mgr.create(&mut engine, slot, 8);
            }
            for vpage in 0..8 {
                let (leaf, _) = mgr.touch_page(&mut engine, 0, vpage, vpage);
                engine.on_access(0, leaf * 64, leaf * 64, true);
            }
            mgr.record_write(0, 3);
            let victim_leaf = mgr.enclave(0).unwrap().leaf_of(3).unwrap();
            let victim_counter = mgr.counter_of(0, victim_leaf).unwrap();
            assert!(victim_counter > 0, "the victim page was written");
            let stale_seq = commit(&store, 1, &engine, &mgr);

            // Epoch 2: the victim page is freed (counters reset, leaf
            // returned) and other counters advance past the snapshot.
            mgr.free_page(&mut engine, 0, 3);
            for _ in 0..4 {
                mgr.record_write(0, 5);
            }
            let mid_seq = commit(&store, 2, &engine, &mgr);

            // Epoch 3: more traffic; the head is the only live truth.
            for slot in 1..SLOTS {
                let (leaf, _) = mgr.touch_page(&mut engine, slot, 0, 100 + slot as u64);
                engine.on_access(slot, leaf * 64, leaf * 64, true);
            }
            let head_seq = commit(&store, 3, &engine, &mgr);

            // Half one: every stale seq is rejected as-if-latest; only
            // the head verifies fresh.
            for stale in [stale_seq, mid_seq] {
                match store.verify_fresh(stale) {
                    Err(StoreError::RollbackDetected {
                        snapshot_seq,
                        wal_seq,
                    }) => {
                        assert_eq!(snapshot_seq, stale);
                        assert_eq!(wal_seq, head_seq);
                    }
                    other => panic!(
                        "stale snapshot {stale} must be detected, got {other:?} (seed {seed})"
                    ),
                }
            }
            store.verify_fresh(head_seq).unwrap();

            // Half two: the hazards are real. The stale state holds
            // exactly what rollback would smuggle back in.
            let (engine_stale, mgr_stale) = restore(&store, stale_seq, seed);
            let (engine_head, mgr_head) = restore(&store, head_seq, seed);

            // Same tenant in slot 0 throughout — no rekey excuses.
            assert_eq!(
                mgr_stale.enclave(0).unwrap().id(),
                mgr_head.enclave(0).unwrap().id()
            );
            // Hazard 1: the freed leaf is live again under the stale
            // state, with its page mapping resurrected.
            assert!(
                !mgr_head
                    .enclave(0)
                    .unwrap()
                    .allocator()
                    .is_live(victim_leaf),
                "head must have freed the victim leaf (seed {seed})"
            );
            assert!(
                mgr_stale
                    .enclave(0)
                    .unwrap()
                    .allocator()
                    .is_live(victim_leaf),
                "stale restore would resurrect freed leaf {victim_leaf} (seed {seed})"
            );
            // Hazard 2: a write counter rewinds (head reset it to 0 at
            // free time after it had advanced; stale still holds the
            // pre-free value, and page 5's counter goes backwards too).
            assert_eq!(
                mgr_stale.counter_of(0, victim_leaf),
                Some(victim_counter),
                "stale restore carries the pre-free counter (seed {seed})"
            );
            let leaf5 = mgr_head.enclave(0).unwrap().leaf_of(5).unwrap();
            assert!(
                mgr_stale.counter_of(0, leaf5).unwrap() < mgr_head.counter_of(0, leaf5).unwrap(),
                "accepting the stale snapshot would rewind a live counter (seed {seed})"
            );
            // Hazard 3: engine traffic counters rewind.
            assert!(
                engine_stale.stats().data_accesses() < engine_head.stats().data_accesses(),
                "accepting the stale snapshot would rewind engine stats (seed {seed})"
            );
            let _ = fs::remove_dir_all(&dir);
        },
    );
}

#[test]
fn committed_sequence_is_monotone() {
    with_seeds("committed_sequence_is_monotone", 3, |seed| {
        let dir = tmpdir(seed ^ 0x4040);
        let store = SnapshotStore::open(&dir).unwrap();
        let mut engine = SecurityEngine::new(EngineConfig::paper_default(Scheme::Itesp));
        let mut mgr = EnclaveManager::new(SLOTS, seed);
        for slot in 0..SLOTS {
            mgr.create(&mut engine, slot, 8);
        }

        // Commit after every burst of writes (no frees or destroys, so
        // every counter is monotone by construction — the oracle
        // verifies the *snapshots* preserve that order).
        let mut seqs = Vec::new();
        for step in 0..6u64 {
            for slot in 0..SLOTS {
                let vpage = step % 4;
                let (leaf, _) = mgr.touch_page(&mut engine, slot, vpage, step * 16 + slot as u64);
                engine.on_access(slot, leaf * 64, leaf * 64, true);
                mgr.record_write(slot, vpage);
            }
            seqs.push(commit(&store, step + 1, &engine, &mgr));
        }

        let records = store.wal_records().unwrap();
        assert_eq!(records.len(), seqs.len());
        for (prev, next) in seqs.iter().zip(&seqs[1..]) {
            let (e0, m0) = restore(&store, *prev, seed);
            let (e1, m1) = restore(&store, *next, seed);
            assert!(
                e0.stats().data_accesses() < e1.stats().data_accesses(),
                "engine access count must advance between commits (seed {seed})"
            );
            for slot in 0..SLOTS {
                let (a, b) = (m0.enclave(slot).unwrap(), m1.enclave(slot).unwrap());
                assert_eq!(a.id(), b.id(), "enclave ids never rewind");
                for vpage in 0..4 {
                    let Some(leaf) = a.leaf_of(vpage) else {
                        continue;
                    };
                    assert_eq!(b.leaf_of(vpage), Some(leaf), "mappings persist");
                    assert!(
                        m0.counter_of(slot, leaf).unwrap() <= m1.counter_of(slot, leaf).unwrap(),
                        "leaf counter rewound across commits (seed {seed})"
                    );
                }
            }
        }
        let _ = fs::remove_dir_all(&dir);
    });
}
