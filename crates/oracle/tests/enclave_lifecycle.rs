//! Lifecycle oracle: leaf-id recycling and cross-tenant replay under
//! randomized enclave churn.
//!
//! Drives the [`EnclaveManager`] through seeded create / touch / write
//! / free / destroy cycles against a real [`SecurityEngine`], shadowing
//! the leaf namespace independently and modeling each tenant's data
//! with the functional [`VerifiedMemory`]. Checked on every step:
//!
//! * a leaf-id is never handed out while still live, and the manager's
//!   allocator agrees with the shadow's live set;
//! * a leaf's model counter is zero immediately after every grant
//!   (fresh or recycled) and immediately after every free;
//! * enclave ids are monotone and MAC keys are never reused across a
//!   slot's tenants;
//! * a malicious-DIMM replay of a *dead* tenant's captured block —
//!   data, MAC, and counter together — fails verification inside the
//!   slot's next tenant.
//!
//! Four fresh seeds x three schemes x 100 cycles ≈ 1200 create/destroy
//! cycles per run (seed-replayable via `ITESP_TEST_SEED`).

use std::collections::HashSet;

use itesp_core::{
    EngineConfig, EngineStats, MacKey, Scheme, SecurityEngine, Snapshot, VerifiedMemory,
};
use itesp_enclave::{EnclaveManager, PAGE_BLOCKS};
use itesp_oracle::with_seeds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SLOTS: usize = 4;
const CYCLES_PER_SCHEME: usize = 100;

/// Blocks in each tenant's functional memory: enough to cover any
/// leaf-id the allocator can mint for a <=32-page footprint (capacity
/// doubles, so at most 64 leaves x 64 blocks).
const VM_BLOCKS: u64 = 64 * PAGE_BLOCKS;

/// Shadow state for one slot's current tenant.
struct Tenant {
    vm: VerifiedMemory,
    key: MacKey,
    footprint: u64,
    /// Leaf-ids currently granted to a mapped page.
    live: HashSet<u64>,
    /// Leaf-ids that have been freed at least once this lifetime.
    freed_once: HashSet<u64>,
    /// Blocks this tenant has written (candidates for capture).
    written: Vec<u64>,
}

/// What the attacker keeps from a destroyed tenant: a fully consistent
/// block capture and the key it was MAC'd under.
struct Capture {
    snap: Snapshot,
    old_key: MacKey,
}

fn block_of(leaf: u64, rng: &mut StdRng) -> u64 {
    leaf * PAGE_BLOCKS + rng.gen_range(0..PAGE_BLOCKS)
}

fn churn(scheme: Scheme, seed: u64, memo: bool) -> (u64, u64, EngineStats) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut engine = SecurityEngine::new(EngineConfig::paper_default(scheme));
    engine.set_tree_memo(memo);
    let mut mgr = EnclaveManager::new(SLOTS, seed);
    let mut tenants: Vec<Option<Tenant>> = (0..SLOTS).map(|_| None).collect();
    let mut captures: Vec<Option<Capture>> = (0..SLOTS).map(|_| None).collect();
    let mut next_ppage = 0u64;
    let mut last_id = None;
    let mut recycles = 0u64;

    for _ in 0..CYCLES_PER_SCHEME {
        let slot = rng.gen_range(0..SLOTS);

        // Evict the incumbent, capturing replay material on the way out.
        if let Some(t) = tenants[slot].take() {
            if let Some(&block) = t.written.last() {
                captures[slot] = Some(Capture {
                    snap: t.vm.snapshot(block),
                    old_key: t.key,
                });
            }
            mgr.destroy(&mut engine, slot);
        }

        let footprint = rng.gen_range(4u64..=32);
        let (id, _) = mgr.create(&mut engine, slot, footprint);
        if let Some(prev) = last_id {
            assert!(id.0 > prev, "enclave ids must be monotone, never reused");
        }
        last_id = Some(id.0);
        let key = mgr.key_of(slot).unwrap();
        let mut tenant = Tenant {
            vm: VerifiedMemory::new(key, VM_BLOCKS),
            key,
            footprint,
            live: HashSet::new(),
            freed_once: HashSet::new(),
            written: Vec::new(),
        };

        // The replay attack: feed the dead tenant's consistent capture
        // to the new tenant's memory. Key freshness must reject it.
        if let Some(cap) = captures[slot].take() {
            assert_ne!(cap.old_key, tenant.key, "slot reuse must rekey");
            tenant.vm.rollback(&cap.snap);
            assert!(
                tenant.vm.read(cap.snap.block).is_err(),
                "a dead enclave's MAC must not verify for the next tenant \
                 (scheme {scheme:?})"
            );
            // Overwriting re-MACs the block under the live key.
            tenant.vm.write(cap.snap.block, [0u8; 64]);
            assert!(tenant.vm.read(cap.snap.block).is_ok());
        }

        // Use phase: touches, writes, and mid-life frees.
        for op in 0..rng.gen_range(8..24) {
            let vpage = rng.gen_range(0..tenant.footprint);
            let already_mapped = mgr.enclave(slot).unwrap().leaf_of(vpage).is_some();
            let (leaf, _) = mgr.touch_page(&mut engine, slot, vpage, next_ppage);
            next_ppage += 1;
            if !already_mapped {
                assert!(
                    tenant.live.insert(leaf),
                    "leaf {leaf} handed out while live (scheme {scheme:?})"
                );
                assert_eq!(
                    mgr.counter_of(slot, leaf),
                    Some(0),
                    "granted leaf must start from a fresh counter"
                );
                if tenant.freed_once.contains(&leaf) {
                    recycles += 1;
                }
            }
            if op == 0 || rng.gen_bool(0.6) {
                mgr.record_write(slot, vpage);
                let block = block_of(leaf, &mut rng);
                tenant.vm.write(block, [rng.gen::<u8>(); 64]);
                tenant.written.push(block);
                engine.on_access(slot, block * 64, block, true);
            } else {
                // Demand reads interleave with the lifecycle so the
                // ancestor memo is alive across install/grow/reset/
                // destroy edges — stale memo state would corrupt the
                // stats compared by `memoized_lifecycle_stats_match`.
                let block = block_of(leaf, &mut rng);
                engine.on_access(slot, block * 64, block, false);
            }
            if rng.gen_bool(0.3) {
                // `min` rather than `iter().next()`: HashSet order varies
                // between runs, and both seed replay and the memo-vs-
                // scalar stats comparison need the drive to be a pure
                // function of the seed.
                if let Some(&victim) = tenant.live.iter().min() {
                    // Free a live page by its leaf; find its vpage.
                    let enc = mgr.enclave(slot).unwrap();
                    let vp = (0..tenant.footprint)
                        .find(|&v| enc.leaf_of(v) == Some(victim))
                        .unwrap();
                    mgr.free_page(&mut engine, slot, vp).unwrap();
                    assert!(tenant.live.remove(&victim));
                    tenant.freed_once.insert(victim);
                    assert_eq!(
                        mgr.counter_of(slot, victim),
                        Some(0),
                        "free must reset the leaf's counter before it can recycle"
                    );
                    assert!(!mgr.enclave(slot).unwrap().allocator().is_live(victim));
                }
            }
            let alloc = mgr.enclave(slot).unwrap().allocator();
            assert_eq!(
                alloc.live_count() as usize,
                tenant.live.len(),
                "allocator and shadow disagree on live leaves"
            );
        }
        tenants[slot] = Some(tenant);
    }

    // Drain the survivors so created == destroyed.
    for (slot, t) in tenants.iter_mut().enumerate() {
        if t.take().is_some() {
            mgr.destroy(&mut engine, slot);
        }
    }
    let s = mgr.stats();
    assert_eq!(s.created, s.destroyed, "every tenant must be torn down");
    assert_eq!(s.created, CYCLES_PER_SCHEME as u64);
    (s.created, recycles, engine.stats().clone())
}

#[test]
fn lifecycle_churn_never_replays_dead_state() {
    let schemes = [
        Scheme::Itesp,
        Scheme::ItSynergySharedParity,
        Scheme::Synergy,
    ];
    let mut cycles = 0u64;
    let mut recycles = 0u64;
    with_seeds("lifecycle_churn_never_replays_dead_state", 4, |seed| {
        for scheme in schemes {
            let (c, r, _) = churn(scheme, seed, true);
            cycles += c;
            recycles += r;
        }
    });
    // The acceptance bar: 1000+ create/destroy cycles, with real
    // leaf-id recycling exercised along the way (single-seed replay
    // runs are exempt from the totals).
    if std::env::var("ITESP_TEST_SEED").is_err() && std::env::var("ITESP_TEST_CASES").is_err() {
        assert!(cycles >= 1000, "only {cycles} lifecycle cycles ran");
        assert!(recycles > 0, "churn never recycled a leaf-id");
    }
}

/// The ancestor-memo fast path must be invisible to lifecycle churn:
/// the same seeded create / touch / write / free / destroy sequence,
/// run once with the memo enabled and once disabled, must produce
/// byte-identical engine statistics. This pins every invalidation edge
/// the lifecycle crosses — private-tree install and grow on create and
/// touch, leaf resets on free, cache repartitioning and partition
/// resets on destroy — since a stale memoized path on any of them
/// would fake a cache hit and skew the traffic counts.
#[test]
fn memoized_lifecycle_stats_match() {
    let schemes = [
        Scheme::Itesp,
        Scheme::ItSynergySharedParity,
        Scheme::Synergy,
    ];
    with_seeds("memoized_lifecycle_stats_match", 2, |seed| {
        for scheme in schemes {
            let (_, _, with_memo) = churn(scheme, seed, true);
            let (_, _, without) = churn(scheme, seed, false);
            assert_eq!(
                with_memo, without,
                "memo changed lifecycle traffic (scheme {scheme:?}, seed {seed})"
            );
        }
    });
}
