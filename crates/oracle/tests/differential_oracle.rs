//! Analytic-vs-functional differential oracle over every scheme.
//!
//! Randomized access streams drive the `itesp-core` traffic engine and
//! the functional `VerifiedMemory` in lockstep; the harness cross-checks
//! tree-walk footprints, miss-case classification, counter values,
//! overflow events, and region containment on every access (see
//! `itesp_oracle::differential` for the full assertion list).

use itesp_core::{EngineConfig, Scheme};
use itesp_oracle::{with_seeds, DifferentialHarness};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every design point in `core::scheme`.
const ALL_SCHEMES: [Scheme; 13] = [
    Scheme::Unsecure,
    Scheme::Vault,
    Scheme::ItVault,
    Scheme::Synergy,
    Scheme::ItSynergy,
    Scheme::ItSynergyParityCache,
    Scheme::ItSynergySharedParity,
    Scheme::ItSynergySharedParityCache,
    Scheme::Itesp,
    Scheme::Syn128,
    Scheme::ItSyn128,
    Scheme::Itesp64,
    Scheme::Itesp128,
];

/// Blocks per enclave in the functional memory. Small enough that the
/// stream revisits blocks (exercising counters, cache hits, and
/// evictions), large enough to span several tree leaves.
const BLOCKS: u64 = 1 << 12;

fn drive(scheme: Scheme, seed: u64, accesses: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut harness = DifferentialHarness::new(scheme, BLOCKS);
    for _ in 0..accesses {
        let enclave = rng.gen_range(0usize..4);
        // Mix a hot working set (locality: cache hits, repeated writes
        // to the same leaf) with cold uniform traffic.
        let block = if rng.gen_bool(0.7) {
            rng.gen_range(0u64..256)
        } else {
            rng.gen_range(0u64..BLOCKS)
        };
        let is_write = rng.gen_bool(0.5);
        let fill = rng.gen::<u8>();
        harness.access(enclave, block, is_write, fill);
    }
    harness.finish();
}

/// The main sweep: every scheme, randomized streams, seed-replayable.
#[test]
fn differential_random_streams_all_schemes() {
    with_seeds("differential_random_streams_all_schemes", 6, |seed| {
        for scheme in ALL_SCHEMES {
            drive(scheme, seed, 1500);
        }
    });
}

/// Column-style mapping (rank stride 1024) defeats ITESP's parity
/// embedding; the fallback external-parity path must still satisfy the
/// oracle (region containment, walk prefixes, counter agreement).
#[test]
fn differential_itesp_embedding_fallback() {
    with_seeds("differential_itesp_embedding_fallback", 4, |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg = EngineConfig::paper_default(Scheme::Itesp);
        cfg.model_overflow = true;
        cfg.rank_stride_blocks = 1024;
        let mut harness = DifferentialHarness::with_config(Scheme::Itesp, cfg, BLOCKS);
        let mut saw_parity = false;
        for _ in 0..1200 {
            let enclave = rng.gen_range(0usize..4);
            let block = rng.gen_range(0u64..BLOCKS);
            let is_write = rng.gen_bool(0.6);
            harness.access(enclave, block, is_write, rng.gen::<u8>());
            saw_parity |= harness.engine().stats().meta_writes
                [itesp_core::MetaKind::Parity.index()]
                > 0
                || harness.engine().stats().meta_reads[itesp_core::MetaKind::Parity.index()] > 0;
        }
        assert!(
            saw_parity,
            "fallback parity path produced no parity traffic"
        );
        harness.finish();
    });
}

/// Dense same-leaf writes overflow the small local counters; engine
/// overflow events and stalls must track the independent shadow
/// tracker exactly (checked per access inside the harness).
#[test]
fn differential_overflow_heavy_writes() {
    for scheme in [
        Scheme::Itesp,
        Scheme::Itesp64,
        Scheme::Itesp128,
        Scheme::Vault,
    ] {
        let mut harness = DifferentialHarness::new(scheme, BLOCKS);
        for i in 0..2000u64 {
            // Hammer a handful of blocks under the same few leaves.
            harness.access(0, i % 8, true, (i % 251) as u8);
        }
        let overflows = harness.engine().stats().overflows;
        harness.finish();
        assert!(
            overflows > 0,
            "{scheme:?}: write hammer produced no overflows"
        );
    }
}

/// Sequential deterministic sweep: every scheme accepts a full pass over
/// the address space with reads verifying after writes.
#[test]
fn differential_sequential_sweep() {
    for scheme in ALL_SCHEMES {
        let mut harness = DifferentialHarness::new(scheme, BLOCKS);
        for block in 0..512u64 {
            harness.access((block % 4) as usize, block, true, (block % 256) as u8);
        }
        for block in 0..512u64 {
            harness.access((block % 4) as usize, block, false, 0);
        }
        harness.finish();
    }
}
