//! Analytic-vs-functional differential oracle over every scheme.
//!
//! Randomized access streams drive the `itesp-core` traffic engine and
//! the functional `VerifiedMemory` in lockstep; the harness cross-checks
//! tree-walk footprints, miss-case classification, counter values,
//! overflow events, and region containment on every access (see
//! `itesp_oracle::differential` for the full assertion list).

use itesp_core::{EngineConfig, MetaKind, MissCase, Scheme, SecurityEngine};
use itesp_oracle::{schemes_under_test, with_seeds, DifferentialHarness};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every design point in `core::scheme`, including the SecDDR and IRO
/// related-work baselines, narrowed by `ITESP_SCHEME_ONLY` when set.
fn all_schemes() -> Vec<Scheme> {
    schemes_under_test(Scheme::ALL)
}

/// Blocks per enclave in the functional memory. Small enough that the
/// stream revisits blocks (exercising counters, cache hits, and
/// evictions), large enough to span several tree leaves.
const BLOCKS: u64 = 1 << 12;

fn drive(scheme: Scheme, seed: u64, accesses: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut harness = DifferentialHarness::new(scheme, BLOCKS);
    for _ in 0..accesses {
        let enclave = rng.gen_range(0usize..4);
        // Mix a hot working set (locality: cache hits, repeated writes
        // to the same leaf) with cold uniform traffic.
        let block = if rng.gen_bool(0.7) {
            rng.gen_range(0u64..256)
        } else {
            rng.gen_range(0u64..BLOCKS)
        };
        let is_write = rng.gen_bool(0.5);
        let fill = rng.gen::<u8>();
        harness.access(enclave, block, is_write, fill);
    }
    harness.finish();
}

/// The main sweep: every scheme, randomized streams, seed-replayable.
#[test]
fn differential_random_streams_all_schemes() {
    with_seeds("differential_random_streams_all_schemes", 6, |seed| {
        for scheme in all_schemes() {
            drive(scheme, seed, 1500);
        }
    });
}

/// The acceptance matrix: ≥ 200 independent randomized streams per
/// scheme, all 15 schemes (shorter streams than the main sweep — the
/// point is seed diversity, not stream depth; boundary effects like
/// ORAM eviction epochs and cache warm-up land at different offsets in
/// every stream).
#[test]
fn differential_stream_matrix() {
    with_seeds("differential_stream_matrix", 200, |seed| {
        for (i, scheme) in all_schemes().into_iter().enumerate() {
            // Decorrelate the per-scheme streams within one seed.
            drive(scheme, seed ^ ((i as u64) << 56), 220);
        }
    });
}

/// Column-style mapping (rank stride 1024) defeats ITESP's parity
/// embedding; the fallback external-parity path must still satisfy the
/// oracle (region containment, walk prefixes, counter agreement).
#[test]
fn differential_itesp_embedding_fallback() {
    if !itesp_oracle::scheme_enabled(Scheme::Itesp) {
        return;
    }
    with_seeds("differential_itesp_embedding_fallback", 4, |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg = EngineConfig::paper_default(Scheme::Itesp);
        cfg.model_overflow = true;
        cfg.rank_stride_blocks = 1024;
        let mut harness = DifferentialHarness::with_config(Scheme::Itesp, cfg, BLOCKS);
        let mut saw_parity = false;
        for _ in 0..1200 {
            let enclave = rng.gen_range(0usize..4);
            let block = rng.gen_range(0u64..BLOCKS);
            let is_write = rng.gen_bool(0.6);
            harness.access(enclave, block, is_write, rng.gen::<u8>());
            saw_parity |= harness.engine().stats().meta_writes
                [itesp_core::MetaKind::Parity.index()]
                > 0
                || harness.engine().stats().meta_reads[itesp_core::MetaKind::Parity.index()] > 0;
        }
        assert!(
            saw_parity,
            "fallback parity path produced no parity traffic"
        );
        harness.finish();
    });
}

/// Dense same-leaf writes overflow the small local counters; engine
/// overflow events and stalls must track the independent shadow
/// tracker exactly (checked per access inside the harness).
#[test]
fn differential_overflow_heavy_writes() {
    for scheme in schemes_under_test([
        Scheme::Itesp,
        Scheme::Itesp64,
        Scheme::Itesp128,
        Scheme::Vault,
    ]) {
        let mut harness = DifferentialHarness::new(scheme, BLOCKS);
        for i in 0..2000u64 {
            // Hammer a handful of blocks under the same few leaves.
            harness.access(0, i % 8, true, (i % 251) as u8);
        }
        let overflows = harness.engine().stats().overflows;
        harness.finish();
        assert!(
            overflows > 0,
            "{scheme:?}: write hammer produced no overflows"
        );
    }
}

/// Sequential deterministic sweep: every scheme accepts a full pass over
/// the address space with reads verifying after writes.
#[test]
fn differential_sequential_sweep() {
    for scheme in all_schemes() {
        let mut harness = DifferentialHarness::new(scheme, BLOCKS);
        for block in 0..512u64 {
            harness.access((block % 4) as usize, block, true, (block % 256) as u8);
        }
        for block in 0..512u64 {
            harness.access((block % 4) as usize, block, false, 0);
        }
        harness.finish();
    }
}

/// SecDDR's defining property, checked end-to-end: a full randomized
/// stream leaves the metadata traffic counters at exactly zero and
/// classifies every access as case A — the link MAC and anti-replay
/// counters never touch memory.
#[test]
fn differential_secddr_never_touches_memory() {
    if !itesp_oracle::scheme_enabled(Scheme::SecDdr) {
        return;
    }
    with_seeds("differential_secddr_never_touches_memory", 3, |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut harness = DifferentialHarness::new(Scheme::SecDdr, BLOCKS);
        for _ in 0..1000 {
            let enclave = rng.gen_range(0usize..4);
            let block = rng.gen_range(0u64..BLOCKS);
            harness.access(enclave, block, rng.gen_bool(0.5), rng.gen::<u8>());
        }
        let stats = harness.engine().stats().clone();
        harness.finish();
        assert_eq!(stats.meta_reads, [0; 3], "SecDDR read metadata");
        assert_eq!(stats.meta_writes, [0; 3], "SecDDR wrote metadata");
        assert_eq!(stats.overflows, 0);
        assert_eq!(stats.case_counts[MissCase::A.index()], 1000);
        assert_eq!(stats.case_counts.iter().sum::<u64>(), 1000);
    });
}

/// IRO's traffic shape, checked end-to-end on top of the per-access
/// shadow lockstep: bucket-path reads on every access, path writebacks
/// and parity read-modify-writes on every eviction epoch.
#[test]
fn differential_iroram_paths_and_eviction_parity() {
    if !itesp_oracle::scheme_enabled(Scheme::IrOram) {
        return;
    }
    with_seeds("differential_iroram_paths_and_eviction_parity", 3, |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut harness = DifferentialHarness::new(Scheme::IrOram, BLOCKS);
        for _ in 0..600 {
            let enclave = rng.gen_range(0usize..4);
            let block = rng.gen_range(0u64..BLOCKS);
            harness.access(enclave, block, rng.gen_bool(0.5), rng.gen::<u8>());
        }
        let stats = harness.engine().stats().clone();
        harness.finish();
        let t = MetaKind::Tree.index();
        let p = MetaKind::Parity.index();
        assert!(stats.meta_reads[t] > 0, "no bucket-path reads");
        assert!(stats.meta_writes[t] > 0, "no eviction path writebacks");
        assert!(stats.meta_reads[p] > 0, "no parity read half of the RMW");
        assert!(stats.meta_writes[p] > 0, "no parity write half of the RMW");
        // Parity RMWs are symmetric: every group read is written back.
        assert_eq!(stats.meta_reads[p], stats.meta_writes[p]);
        // Inline MAC: never separate MAC traffic.
        assert_eq!(stats.meta_reads[MetaKind::Mac.index()], 0);
    });
}

/// IRO's leakage class (`PatternHidden`) has a checkable consequence:
/// the transaction list depends only on the block sequence, never on
/// the read/write flag. Two engines fed the same blocks — one as all
/// reads, one as all writes — must emit byte-identical traffic.
#[test]
fn differential_iroram_traffic_ignores_read_write_flag() {
    if !itesp_oracle::scheme_enabled(Scheme::IrOram) {
        return;
    }
    with_seeds(
        "differential_iroram_traffic_ignores_read_write_flag",
        3,
        |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = EngineConfig::paper_default(Scheme::IrOram);
            let mut reader = SecurityEngine::new(cfg);
            let mut writer = SecurityEngine::new(cfg);
            for _ in 0..800 {
                let block = rng.gen_range(0u64..BLOCKS);
                let r = reader.on_access(0, block * 64, block, false);
                let w = writer.on_access(0, block * 64, block, true);
                assert_eq!(r.mem, w.mem, "read/write traffic diverged");
                assert_eq!(r.case, w.case);
            }
        },
    );
}
