//! The unmutated schedulers obey the DDR3 protocol.
//!
//! Both the optimized [`Channel`] and the [`ReferenceChannel`] are driven
//! over the same randomized arrival mixes as the scheduler-equivalence
//! property tests (plus the fixed corner-case workloads), and every
//! command they emit is validated by the independent protocol checker.

use itesp_dram::{Channel, DramConfig, ReferenceChannel};
use itesp_oracle::workload::{run_arrivals, Arrival};
use itesp_oracle::{with_seeds, ProtocolChecker};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Validate one arrival mix on both scheduler implementations.
fn check_both(arrivals: &[Arrival]) {
    let cfg = DramConfig::table_iii();
    for reference in [false, true] {
        let run = if reference {
            run_arrivals(&mut ReferenceChannel::new(cfg), arrivals)
        } else {
            run_arrivals(&mut Channel::new(cfg), arrivals)
        };
        let which = if reference {
            "ReferenceChannel"
        } else {
            "Channel"
        };
        assert_eq!(
            run.completions.len(),
            arrivals.len(),
            "{which} lost completions"
        );
        if let Err(v) = ProtocolChecker::check_log(cfg, &run.log, run.end_cycle) {
            panic!("{which}: {v}");
        }
    }
}

/// The general mix: mixed gaps, row hits, and same-bank row conflicts.
#[test]
fn protocol_conformance_random_mix() {
    with_seeds("protocol_conformance_random_mix", 48, |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.gen_range(1usize..100);
        let arrivals: Vec<Arrival> = (0..len)
            .map(|_| {
                (
                    rng.gen_range(0u64..8),
                    rng.gen_range(0u8..4),
                    rng.gen::<u32>(),
                    rng.gen::<bool>(),
                )
            })
            .collect();
        check_both(&arrivals);
    });
}

/// Zero-gap bursts: queue saturation, backpressure, and write-drain mode.
#[test]
fn protocol_conformance_bursty_mix() {
    with_seeds("protocol_conformance_bursty_mix", 24, |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.gen_range(32usize..128);
        let arrivals: Vec<Arrival> = (0..len)
            .map(|_| {
                (
                    0,
                    rng.gen_range(0u8..2),
                    rng.gen::<u32>(),
                    rng.gen::<bool>(),
                )
            })
            .collect();
        check_both(&arrivals);
    });
}

/// Reads arriving at every parity of the write-drain flag oscillation.
#[test]
fn protocol_conformance_drain_flag_oscillation() {
    for read_arrival in [901u64, 902, 903, 904] {
        let arrivals: Vec<Arrival> = vec![
            (0, 0, 0, true),
            (0, 1, 0, true),
            (read_arrival, 0, 5, false),
            (1, 0, 9, false),
        ];
        check_both(&arrivals);
    }
}

/// Long idle gaps: refreshes fired by fast-forward/wake logic must land
/// exactly on their staggered deadlines.
#[test]
fn protocol_conformance_idle_gaps_spanning_refresh() {
    let t = DramConfig::table_iii().timing;
    let arrivals: Vec<Arrival> = vec![
        (0, 0, 0, false),
        (t.t_refi + 3, 1, 1, true),
        (2 * t.t_refi, 0, 77, false),
    ];
    check_both(&arrivals);
}
