//! Monte-Carlo cross-check of the Table II closed forms.
//!
//! Simulates the analytical model's own experiment directly: in each
//! scrub window every DRAM device fails independently with probability
//! `FIT x window_hours / 1e9`; a failed device whose sharing domain
//! (its rank for Synergy, the whole system for ITESP) contains another
//! failed device is a Case 4 detected-but-uncorrectable event. The
//! measured DUE frequency must converge on `table_ii`'s closed form,
//! and the campaign-scale SDC expectation must be so MAC-collision
//! suppressed that the zero silent outcomes asserted by the decoder
//! fault campaigns are exactly what the model predicts.
//!
//! Fault rates are scaled up (~1e10 x field FIT) so the quadratic
//! double-error term produces thousands of events in seconds; the
//! closed form is linear in FIT per error, quadratic per window, so the
//! comparison is exact apart from the O(p^2) binomial truncation the
//! tolerance allows for.
//!
//! Knobs: `ITESP_RAS_WINDOWS` scales the window counts,
//! `ITESP_TEST_SEED` replays one failing seed (printed on failure).

use itesp_oracle::with_seeds;
use itesp_reliability::{table_ii, Design, FaultStream, ReliabilityParams};
use rand::rngs::StdRng;
use rand::Rng;

/// Window-count scale factor (override with `ITESP_RAS_WINDOWS`).
fn window_scale() -> f64 {
    std::env::var("ITESP_RAS_WINDOWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// Devices that fail this window: geometric skip-sampling, O(failures)
/// instead of O(devices) per window.
fn failed_devices(rng: &mut StdRng, n: u32, p: f64) -> Vec<u32> {
    let mut v = Vec::new();
    let log1mp = (1.0 - p).ln();
    let mut idx: i64 = -1;
    loop {
        let u: f64 = rng.gen();
        let skip = ((1.0 - u).ln() / log1mp).floor() as i64;
        idx += 1 + skip;
        if idx < 0 || idx >= i64::from(n) {
            return v;
        }
        v.push(idx as u32);
    }
}

/// Count the Case 4 events among this window's failures: failed devices
/// with at least one failed peer in their sharing domain.
fn due_events(failed: &[u32], p: &ReliabilityParams, design: Design) -> u64 {
    if failed.len() < 2 {
        return 0;
    }
    match design {
        // Whole-system sharing: any concurrent pair defeats correction.
        Design::Itesp => failed.len() as u64,
        // Rank-confined sharing: only same-rank pairs interact.
        Design::Synergy => {
            let rank = |d: u32| d / p.rank_devices;
            failed
                .iter()
                .filter(|&&d| failed.iter().any(|&o| o != d && rank(o) == rank(d)))
                .count() as u64
        }
    }
}

struct Campaign {
    design: Design,
    /// Per-device per-window failure probability.
    p_fail: f64,
    windows: u64,
}

fn run_campaign(c: &Campaign, params: &ReliabilityParams, rng: &mut StdRng) {
    let rates = table_ii(params, c.design);
    let hours = c.windows as f64 * params.scrub_hours;

    let mut failures = 0u64;
    let mut due = 0u64;
    for _ in 0..c.windows {
        let failed = failed_devices(rng, params.devices, c.p_fail);
        failures += failed.len() as u64;
        due += due_events(&failed, params, c.design);
    }

    // Raw device-failure frequency converges on n x FIT (sanity: the
    // sampler reproduces the model's linear term).
    let expect_fail = f64::from(params.devices) * c.p_fail * c.windows as f64;
    let fail_tol = 5.0 * expect_fail.sqrt();
    assert!(
        (failures as f64 - expect_fail).abs() < fail_tol,
        "{:?}: {failures} device failures, expected {expect_fail:.0} +/- {fail_tol:.0}",
        c.design
    );

    // Measured Case 4 frequency converges on the closed form. The
    // tolerance is 5 sigma plus the O(p^2) binomial truncation (the
    // closed form charges every peer linearly; the exact process
    // saturates at "at least one peer").
    let expect_due = rates.case4_due * hours / 1e9;
    let due_tol = 5.0 * expect_due.sqrt() + 0.02 * expect_due;
    assert!(
        expect_due > 500.0,
        "{:?}: campaign too small to converge ({expect_due:.1} expected events)",
        c.design
    );
    assert!(
        (due as f64 - expect_due).abs() < due_tol,
        "{:?}: {due} DUE events, Table II closed form expects {expect_due:.0} +/- {due_tol:.0}",
        c.design
    );

    // The SDC classes are MAC-collision suppressed: even at this
    // campaign's inflated fault rate the closed forms predict far less
    // than one silent event, which is why the decoder campaigns assert
    // exactly zero.
    let expect_sdc = (rates.case1_sdc + rates.case2_sdc) * hours / 1e9;
    assert!(
        expect_sdc < 1e-6,
        "{:?}: SDC expectation {expect_sdc:e} not collision-suppressed",
        c.design
    );
}

#[test]
fn measured_due_frequency_matches_table_ii_closed_forms() {
    let scale = window_scale();
    with_seeds(
        "measured_due_frequency_matches_table_ii_closed_forms",
        2,
        |seed| {
            let mut stream = FaultStream::seeded(seed);
            // Synergy's domain is 8 peers: a larger p makes same-rank
            // coincidences common enough to count.
            let p_syn = 2e-3;
            let syn = Campaign {
                design: Design::Synergy,
                p_fail: p_syn,
                windows: (200_000.0 * scale) as u64,
            };
            let params_syn = ReliabilityParams {
                device_fit: p_syn * 1e9,
                ..ReliabilityParams::default()
            };
            run_campaign(&syn, &params_syn, stream.rng());

            // ITESP's domain is the whole system (287 peers), so a much
            // smaller p still yields events — the paper's Case 4 asymmetry.
            let p_it = 1e-4;
            let itesp = Campaign {
                design: Design::Itesp,
                p_fail: p_it,
                windows: (2_000_000.0 * scale) as u64,
            };
            let params_it = ReliabilityParams {
                device_fit: p_it * 1e9,
                ..ReliabilityParams::default()
            };
            run_campaign(&itesp, &params_it, stream.rng());
        },
    );
}
