//! Snapshot round-trip oracle for the security engine.
//!
//! For every scheme in the paper: drive the engine halfway through a
//! seeded access stream, serialize it with
//! [`SecurityEngine::save_state`], restore the bytes into a freshly
//! built engine, and continue *both* engines lockstep over the rest of
//! the stream. Any divergence — per-access outcomes or final
//! statistics — means the snapshot dropped or distorted mutable state.
//! The restored engine must also re-serialize to the exact bytes it
//! was loaded from (the snapshot is a fixed point).
//!
//! Streams use the equivalence oracle's locality shape so the memo and
//! cache paths are genuinely warm at the snapshot point; seeds are
//! replayable via `ITESP_TEST_SEED`.

use itesp_core::{AccessRequest, EngineConfig, Scheme, SecurityEngine};
use itesp_oracle::with_seeds;
use itesp_snap::{SnapReader, SnapWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ACCESSES: usize = 2_000;
const HOT_LEAVES: u64 = 48;
const BLOCKS_PER_LEAF: u64 = 64;

/// Locality-shaped random stream (bursts inside hot leaves, occasional
/// cold excursions) — same shape as the engine-equivalence oracle.
fn gen_stream(rng: &mut StdRng, enclaves: usize) -> Vec<AccessRequest> {
    let mut out = Vec::with_capacity(ACCESSES);
    while out.len() < ACCESSES {
        let enclave = rng.gen_range(0..enclaves);
        let leaf = if rng.gen_bool(0.9) {
            rng.gen_range(0..HOT_LEAVES)
        } else {
            rng.gen_range(0..HOT_LEAVES * 64)
        };
        for _ in 0..rng.gen_range(1..=6u32) {
            let block = leaf * BLOCKS_PER_LEAF + rng.gen_range(0..BLOCKS_PER_LEAF);
            out.push(AccessRequest {
                enclave,
                paddr: block * 64,
                enclave_block: block,
                is_write: rng.gen_bool(0.4),
            });
        }
    }
    out.truncate(ACCESSES);
    out
}

fn snapshot_bytes(engine: &SecurityEngine) -> Vec<u8> {
    let mut w = SnapWriter::new();
    engine.save_state(&mut w);
    w.into_bytes()
}

#[test]
fn restored_engine_continues_identically_for_every_scheme() {
    with_seeds(
        "restored_engine_continues_identically_for_every_scheme",
        3,
        |seed| {
            for scheme in Scheme::ALL {
                let cfg = EngineConfig::paper_default(scheme);
                let mut rng = StdRng::seed_from_u64(seed);
                let stream = gen_stream(&mut rng, cfg.enclaves);

                let mut original = SecurityEngine::new(cfg);
                for r in &stream[..ACCESSES / 2] {
                    original.on_access(r.enclave, r.paddr, r.enclave_block, r.is_write);
                }

                let bytes = snapshot_bytes(&original);
                let mut restored = SecurityEngine::new(cfg);
                let mut r = SnapReader::new(&bytes);
                restored.load_state(&mut r).unwrap_or_else(|e| {
                    panic!("restore failed (scheme {scheme:?}, seed {seed}): {e}")
                });
                r.finish().unwrap();

                // The snapshot is a fixed point: serializing the restored
                // engine reproduces the exact bytes it was loaded from.
                assert_eq!(
                    snapshot_bytes(&restored),
                    bytes,
                    "re-serialization diverged (scheme {scheme:?}, seed {seed})"
                );
                assert_eq!(
                    original.stats(),
                    restored.stats(),
                    "stats diverged at the snapshot point (scheme {scheme:?}, seed {seed})"
                );

                // Continue both lockstep: the restored engine must be
                // indistinguishable from the one that never stopped.
                for (i, r) in stream[ACCESSES / 2..].iter().enumerate() {
                    let a = original.on_access(r.enclave, r.paddr, r.enclave_block, r.is_write);
                    let b = restored.on_access(r.enclave, r.paddr, r.enclave_block, r.is_write);
                    assert_eq!(
                        a, b,
                        "post-restore outcome diverged at suffix access {i} \
                     ({r:?}, scheme {scheme:?}, seed {seed})"
                    );
                }
                assert_eq!(
                    original.stats(),
                    restored.stats(),
                    "final stats diverged (scheme {scheme:?}, seed {seed})"
                );
                assert_eq!(
                    snapshot_bytes(&original),
                    snapshot_bytes(&restored),
                    "final serialized state diverged (scheme {scheme:?}, seed {seed})"
                );
            }
        },
    );
}

#[test]
fn restore_into_a_different_scheme_is_rejected() {
    // A snapshot carries a config fingerprint; feeding Itesp bytes to
    // a Synergy engine must fail loudly, not resume corrupted state.
    let mut itesp = SecurityEngine::new(EngineConfig::paper_default(Scheme::Itesp));
    itesp.on_access(0, 0, 0, true);
    let bytes = snapshot_bytes(&itesp);

    let mut other = SecurityEngine::new(EngineConfig::paper_default(Scheme::Synergy));
    let mut r = SnapReader::new(&bytes);
    let err = other.load_state(&mut r).unwrap_err();
    assert!(
        err.to_string().contains("fingerprint"),
        "mismatch error should name the fingerprint: {err}"
    );
}
