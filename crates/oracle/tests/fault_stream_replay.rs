//! Proof that `ITESP_TEST_SEED` pins *every* fault-campaign RNG — the
//! oracle's `with_seeds` schedule and the runtime `FaultStream` — to
//! one identical, replayable fault sequence.
//!
//! Lives in its own test binary with a single `#[test]`: it mutates
//! `ITESP_TEST_SEED`, which the other oracle tests read.

use itesp_oracle::seeds_for;
use itesp_reliability::{env_seed, Fault, FaultStream, SEED_ENV};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn unified_seed_replays_identical_fault_sequences() {
    std::env::remove_var(SEED_ENV);

    // Without the override, the default flows through.
    assert_eq!(env_seed(999), 999);
    let defaulted: Vec<Fault> = FaultStream::from_env(999).take(32).collect();
    assert_eq!(
        defaulted,
        FaultStream::seeded(999).take(32).collect::<Vec<_>>()
    );

    // With the override, both the oracle's seed schedule and the
    // stream collapse onto the same pinned seed.
    std::env::set_var(SEED_ENV, "12345");
    assert_eq!(env_seed(999), 12345);
    assert_eq!(
        seeds_for("any_campaign_at_all", 7),
        vec![12345],
        "oracle campaigns replay exactly the pinned seed"
    );
    let stream: Vec<Fault> = FaultStream::from_env(999).take(64).collect();
    assert_eq!(
        stream,
        FaultStream::seeded(12345).take(64).collect::<Vec<_>>(),
        "the runtime fault stream honors the same variable"
    );
    // ... and the stream is exactly `Fault::random` over a seeded
    // StdRng, so pre-stream campaigns replay identically too.
    let mut rng = StdRng::seed_from_u64(12345);
    let direct: Vec<Fault> = (0..64).map(|_| Fault::random(&mut rng)).collect();
    assert_eq!(stream, direct);

    std::env::remove_var(SEED_ENV);
}
