//! End-to-end check of the seed replay workflow.
//!
//! Lives in its own test binary: it mutates `ITESP_TEST_SEED` /
//! `ITESP_TEST_CASES`, and the other oracle tests read those variables.
//! Keeping a single `#[test]` here means no other test shares the
//! process while the environment is dirty.

use itesp_oracle::{seeds_for, with_seeds};

#[test]
fn seed_override_and_corpus_ordering() {
    // Hold the env mutations to this test body; unset on every path.
    std::env::remove_var("ITESP_TEST_SEED");
    std::env::remove_var("ITESP_TEST_CASES");

    // Corpus seeds come first, then deterministic fresh seeds derived
    // from the test name.
    let baseline = seeds_for("differential_random_streams_all_schemes", 5);
    assert_eq!(baseline.len(), 6, "1 corpus entry + 5 fresh seeds");
    assert_eq!(
        baseline[0], 15868285386286196526,
        "checked-in corpus seed must be replayed first"
    );
    assert_eq!(
        baseline,
        seeds_for("differential_random_streams_all_schemes", 5),
        "seed schedule must be deterministic"
    );
    // Distinct tests get distinct fresh-seed schedules.
    assert_ne!(
        seeds_for("some_test", 4)[3],
        seeds_for("another_test", 4)[3]
    );

    // ITESP_TEST_SEED pins the schedule to exactly that one seed,
    // corpus included.
    std::env::set_var("ITESP_TEST_SEED", "12345");
    assert_eq!(
        seeds_for("differential_random_streams_all_schemes", 5),
        vec![12345]
    );
    let mut ran = Vec::new();
    with_seeds("anything", 9, |s| ran.push(s));
    assert_eq!(ran, vec![12345], "with_seeds must honor the override");
    std::env::remove_var("ITESP_TEST_SEED");

    // ITESP_TEST_CASES scales the fresh-seed count (corpus still first).
    std::env::set_var("ITESP_TEST_CASES", "2");
    let scaled = seeds_for("differential_random_streams_all_schemes", 64);
    assert_eq!(scaled.len(), 3, "1 corpus entry + 2 fresh seeds");
    assert_eq!(scaled[0], baseline[0]);
    assert_eq!(scaled[1..], baseline[1..3]);
    std::env::remove_var("ITESP_TEST_CASES");

    // A failure inside with_seeds propagates (after printing the replay
    // instructions) so the harness reports the test as failed.
    let result = std::panic::catch_unwind(|| {
        with_seeds("seed_replay_probe", 3, |seed| {
            assert!(seed == u64::MAX, "forced failure");
        })
    });
    assert!(result.is_err(), "with_seeds must propagate the panic");
}
