//! Lockstep equivalence oracle for the optimized security-engine hot
//! path.
//!
//! The [`SecurityEngine`] carries three hot-path optimizations — the
//! per-partition ancestor memo, the shared-allocation burst API, and
//! the batched MAC/parity kernels below it — while
//! [`ReferenceEngine`] is a verbatim scalar twin of the original
//! access path with none of them. This oracle drives both with
//! identical randomized access streams over *every* scheme and asserts
//! access-by-access identical outcomes (traffic list, stall cycles,
//! Figure 3 case) plus identical final statistics. Any divergence is a
//! bug in the optimized path by construction.
//!
//! Streams are generated with deliberate same-leaf runs so the memo
//! fast path actually fires (a uniform stream would almost never
//! produce two consecutive clean hits on one leaf).

use itesp_core::{AccessRequest, EngineConfig, ReferenceEngine, Scheme, SecurityEngine};
use itesp_oracle::with_seeds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ACCESSES: usize = 2_500;
/// Hot leaves per enclave: small enough that same-leaf runs revisit
/// warm paths, large enough to force real capacity misses.
const HOT_LEAVES: u64 = 48;
const BLOCKS_PER_LEAF: u64 = 64;

/// One randomized access with locality: bursts of 1..=6 touches inside
/// a single hot leaf, mixed reads/writes, occasional cold excursions.
fn gen_stream(rng: &mut StdRng, enclaves: usize) -> Vec<AccessRequest> {
    let mut out = Vec::with_capacity(ACCESSES);
    while out.len() < ACCESSES {
        let enclave = rng.gen_range(0..enclaves);
        let leaf = if rng.gen_bool(0.9) {
            rng.gen_range(0..HOT_LEAVES)
        } else {
            rng.gen_range(0..HOT_LEAVES * 64)
        };
        for _ in 0..rng.gen_range(1..=6u32) {
            let block = leaf * BLOCKS_PER_LEAF + rng.gen_range(0..BLOCKS_PER_LEAF);
            out.push(AccessRequest {
                enclave,
                paddr: block * 64,
                enclave_block: block,
                is_write: rng.gen_bool(0.4),
            });
        }
    }
    out.truncate(ACCESSES);
    out
}

/// Optimized engine (memo on) vs the scalar reference twin, access by
/// access, over every tree-lineage scheme in the paper. The reference
/// is deliberately a twin of the *original* 13-scheme access path: it
/// knows nothing of the SecDDR/IRO baselines, so the lockstep sweep is
/// pinned to [`Scheme::TREE_LINEAGE`] (the related-work models get
/// their own shadow oracles in the differential harness).
#[test]
fn optimized_engine_matches_scalar_reference() {
    with_seeds("optimized_engine_matches_scalar_reference", 3, |seed| {
        for scheme in Scheme::TREE_LINEAGE {
            let cfg = EngineConfig::paper_default(scheme);
            let mut rng = StdRng::seed_from_u64(seed);
            let stream = gen_stream(&mut rng, cfg.enclaves);
            let mut opt = SecurityEngine::new(cfg);
            let mut refr = ReferenceEngine::new(cfg);
            for (i, r) in stream.iter().enumerate() {
                let a = opt.on_access(r.enclave, r.paddr, r.enclave_block, r.is_write);
                let b = refr.on_access(r.enclave, r.paddr, r.enclave_block, r.is_write);
                assert_eq!(
                    a, b,
                    "outcome diverged at access {i} ({r:?}, scheme {scheme:?}, seed {seed})"
                );
            }
            assert_eq!(
                opt.stats(),
                refr.stats(),
                "stats diverged (scheme {scheme:?}, seed {seed})"
            );
        }
    });
}

/// The burst API must be a pure repackaging of sequential `on_access`:
/// same transactions in the same order, same per-request slices,
/// stalls, cases, and stats.
#[test]
fn batched_access_matches_sequential() {
    with_seeds("batched_access_matches_sequential", 3, |seed| {
        // Engine-vs-itself, no reference involved: runs over all 15
        // schemes so the burst API is proven for the new models too.
        for scheme in Scheme::ALL {
            let cfg = EngineConfig::paper_default(scheme);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xB0B5);
            let stream = gen_stream(&mut rng, cfg.enclaves);
            let mut seq = SecurityEngine::new(cfg);
            let mut bat = SecurityEngine::new(cfg);
            for (c, chunk) in stream.chunks(4).enumerate() {
                let out = bat.on_access_batch(chunk);
                assert_eq!(out.requests.len(), chunk.len());
                for (l, (r, ro)) in chunk.iter().zip(&out.requests).enumerate() {
                    let a = seq.on_access(r.enclave, r.paddr, r.enclave_block, r.is_write);
                    let slice = &out.mem[ro.mem_start..ro.mem_start + ro.mem_len];
                    assert_eq!(
                        a.mem, slice,
                        "burst {c} lane {l} traffic diverged (scheme {scheme:?}, seed {seed})"
                    );
                    assert_eq!(a.stall_cycles, ro.stall_cycles);
                    assert_eq!(a.case, ro.case);
                }
            }
            assert_eq!(
                seq.stats(),
                bat.stats(),
                "stats diverged (scheme {scheme:?})"
            );
        }
    });
}

/// Toggling the memo off mid-run only drops cached paths — it must
/// never change what traffic subsequent accesses produce relative to a
/// never-memoized engine.
#[test]
fn memo_toggle_preserves_equivalence() {
    with_seeds("memo_toggle_preserves_equivalence", 2, |seed| {
        for scheme in [Scheme::Itesp, Scheme::Vault, Scheme::ItSynergySharedParity] {
            let cfg = EngineConfig::paper_default(scheme);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x7066);
            let stream = gen_stream(&mut rng, cfg.enclaves);
            let mut toggled = SecurityEngine::new(cfg);
            let mut plain = SecurityEngine::new(cfg);
            plain.set_tree_memo(false);
            for (i, r) in stream.iter().enumerate() {
                if i % 500 == 250 {
                    toggled.set_tree_memo(false);
                } else if i % 500 == 0 {
                    toggled.set_tree_memo(true);
                }
                let a = toggled.on_access(r.enclave, r.paddr, r.enclave_block, r.is_write);
                let b = plain.on_access(r.enclave, r.paddr, r.enclave_block, r.is_write);
                assert_eq!(a, b, "toggle diverged at access {i} (scheme {scheme:?})");
            }
            assert_eq!(toggled.stats(), plain.stats());
        }
    });
}
