//! Seed management for the randomized oracle tests.
//!
//! Every randomized test in this crate draws its seeds through
//! [`with_seeds`], which gives three properties:
//!
//! 1. **Reproducibility** — when a seeded case fails, the panic is
//!    annotated with a ready-to-paste `ITESP_TEST_SEED=<seed>` replay
//!    command line before being re-raised.
//! 2. **Replay** — setting `ITESP_TEST_SEED` makes every randomized test
//!    run exactly that one seed.
//! 3. **Regression corpus** — seeds of past failures live in
//!    `crates/oracle/corpus/seeds.txt` (one `test-name seed` pair per
//!    line) and run *before* the fresh seeds, so a fixed bug is retried
//!    first on exactly the input that exposed it.
//!
//! The fresh-seed count can be scaled with `ITESP_TEST_CASES` (a global
//! override applied to every randomized oracle test).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// The checked-in corpus of past-failure seeds.
const CORPUS: &str = include_str!("../corpus/seeds.txt");

/// Parse the corpus entries recorded for `test_name`.
pub fn corpus_seeds(test_name: &str) -> Vec<u64> {
    CORPUS
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (name, seed) = l.split_once(char::is_whitespace)?;
            (name == test_name).then(|| {
                seed.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("corpus seed not a u64: {l:?}"))
            })
        })
        .collect()
}

/// FNV-1a, used to give each test its own deterministic seed sequence.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 step, for decorrelating the per-case seeds.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The seeds `test_name` should run: the `ITESP_TEST_SEED` override if
/// set, otherwise the corpus entries followed by `count` fresh seeds
/// (`count` itself overridable via `ITESP_TEST_CASES`).
pub fn seeds_for(test_name: &str, count: u64) -> Vec<u64> {
    if let Ok(s) = std::env::var("ITESP_TEST_SEED") {
        let seed = s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("ITESP_TEST_SEED not a u64: {s:?}"));
        return vec![seed];
    }
    let count = std::env::var("ITESP_TEST_CASES").ok().map_or(count, |s| {
        s.trim()
            .parse()
            .unwrap_or_else(|_| panic!("ITESP_TEST_CASES not a u64: {s:?}"))
    });
    let base = fnv1a(test_name.as_bytes());
    let mut seeds = corpus_seeds(test_name);
    seeds.extend((0..count).map(|i| splitmix(base ^ splitmix(i))));
    seeds
}

/// Run `f` once per seed from [`seeds_for`]. A panicking case prints the
/// seed and a replay command line, then re-raises the panic so the test
/// still fails.
pub fn with_seeds(test_name: &str, count: u64, mut f: impl FnMut(u64)) {
    for seed in seeds_for(test_name, count) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(seed))) {
            eprintln!(
                "\n[itesp-oracle] randomized test `{test_name}` failed at seed {seed}\n\
                 [itesp-oracle] replay with:\n\
                 [itesp-oracle]   ITESP_TEST_SEED={seed} cargo test -p itesp-oracle --release \
                 {test_name} -- --nocapture\n\
                 [itesp-oracle] if this was a real bug, add `{test_name} {seed}` to \
                 crates/oracle/corpus/seeds.txt\n"
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// True when the environment overrides are active (a user replaying a
    /// seed); the structural assertions below only describe the default
    /// configuration.
    fn env_overridden() -> bool {
        std::env::var("ITESP_TEST_SEED").is_ok() || std::env::var("ITESP_TEST_CASES").is_ok()
    }

    #[test]
    fn fresh_seeds_are_deterministic_and_distinct() {
        if env_overridden() {
            return;
        }
        let a = seeds_for("some-test", 16);
        let b = seeds_for("some-test", 16);
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "seed collision");
        // Different tests draw different sequences.
        assert_ne!(seeds_for("some-test", 4), seeds_for("other-test", 4));
    }

    #[test]
    fn corpus_parses_and_runs_first() {
        for line in CORPUS.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (name, seed) = line
                .split_once(char::is_whitespace)
                .expect("corpus line is `test-name seed`");
            assert!(!name.is_empty());
            seed.trim().parse::<u64>().expect("corpus seed is a u64");
        }
        if env_overridden() {
            return;
        }
        // A test with corpus entries sees them before any fresh seed.
        let corpus = corpus_seeds("differential_random_streams_all_schemes");
        assert!(!corpus.is_empty(), "expected a checked-in corpus entry");
        let all = seeds_for("differential_random_streams_all_schemes", 4);
        assert_eq!(&all[..corpus.len()], &corpus[..]);
    }
}
