//! The `ITESP_SCHEME_ONLY` scheme-filter knob.
//!
//! CI's scheme-matrix job (and anyone bisecting a scheme-specific
//! failure) narrows the oracle and fault-campaign tests to a subset of
//! schemes by setting `ITESP_SCHEME_ONLY` to a comma-separated list of
//! scheme labels, e.g.
//!
//! ```text
//! ITESP_SCHEME_ONLY=SECDDR,IRORAM cargo test -p itesp-oracle
//! ```
//!
//! Labels go through [`Scheme::from_label`], so a typo fails loudly
//! with the full list of valid labels instead of silently running
//! nothing. Unset (or empty) means "all schemes" — the default test
//! matrix is unchanged.

use itesp_core::Scheme;

/// The parsed `ITESP_SCHEME_ONLY` set, or `None` when the knob is
/// unset/empty. Panics (listing every valid label) on an unknown label.
fn only_set() -> Option<Vec<Scheme>> {
    let raw = std::env::var("ITESP_SCHEME_ONLY").ok()?;
    let raw = raw.trim();
    if raw.is_empty() {
        return None;
    }
    Some(
        raw.split(',')
            .map(|l| {
                Scheme::from_label(l.trim()).unwrap_or_else(|e| panic!("ITESP_SCHEME_ONLY: {e}"))
            })
            .collect(),
    )
}

/// Is `scheme` part of the current test matrix?
pub fn scheme_enabled(scheme: Scheme) -> bool {
    only_set().is_none_or(|keep| keep.contains(&scheme))
}

/// Filter a scheme list down to the current test matrix (identity when
/// `ITESP_SCHEME_ONLY` is unset).
pub fn schemes_under_test<I: IntoIterator<Item = Scheme>>(all: I) -> Vec<Scheme> {
    match only_set() {
        None => all.into_iter().collect(),
        Some(keep) => all.into_iter().filter(|s| keep.contains(s)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialized env mutation: these tests set/unset the knob, so they
    /// must not interleave with each other (cargo runs tests in threads).
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn unset_means_all() {
        let _g = ENV_LOCK.lock().unwrap();
        std::env::remove_var("ITESP_SCHEME_ONLY");
        assert_eq!(schemes_under_test(Scheme::ALL).len(), Scheme::ALL.len());
        assert!(scheme_enabled(Scheme::Itesp));
    }

    #[test]
    fn filters_to_the_listed_labels() {
        let _g = ENV_LOCK.lock().unwrap();
        std::env::set_var("ITESP_SCHEME_ONLY", "SECDDR, IRORAM");
        let got = schemes_under_test(Scheme::ALL);
        std::env::remove_var("ITESP_SCHEME_ONLY");
        assert_eq!(got, vec![Scheme::SecDdr, Scheme::IrOram]);
    }

    #[test]
    fn unknown_label_panics_loudly() {
        let _g = ENV_LOCK.lock().unwrap();
        std::env::set_var("ITESP_SCHEME_ONLY", "SECDDR2");
        let r = std::panic::catch_unwind(|| scheme_enabled(Scheme::Itesp));
        std::env::remove_var("ITESP_SCHEME_ONLY");
        let msg = *r
            .expect_err("bad label must panic")
            .downcast::<String>()
            .expect("panic message is a String");
        assert!(msg.contains("SECDDR2"), "panic names the bad label: {msg}");
        assert!(msg.contains("IRORAM"), "panic lists valid labels: {msg}");
    }
}
