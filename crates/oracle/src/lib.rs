//! # itesp-oracle — differential-oracle and fault-injection harness
//!
//! Correctness tooling for the ITESP reproduction, four pillars:
//!
//! 1. [`protocol`] — an independent DDR3 protocol checker that re-derives
//!    every Table III timing constraint from the raw [`itesp_dram::DramConfig`]
//!    and validates recorded command logs from both the optimized
//!    [`itesp_dram::Channel`] and the [`itesp_dram::ReferenceChannel`].
//! 2. [`differential`] — an analytic-vs-functional oracle driving the
//!    `itesp-core` traffic engine and `VerifiedMemory` in lockstep over
//!    randomized access streams.
//! 3. [`faults`] — a randomized chipkill fault-injection campaign whose
//!    outcomes are checked against the Table II analytical classes.
//! 4. [`seed`] — seed printing / replay (`ITESP_TEST_SEED`) and the
//!    checked-in regression corpus (`corpus/seeds.txt`); [`filter`]
//!    narrows any scheme-parameterized test to a label subset via
//!    `ITESP_SCHEME_ONLY` (CI's scheme-matrix job).
//!
//! The crate is test support: production crates must not depend on it
//! (it depends on all of them). See EXPERIMENTS.md § "Oracle test
//! harness" for the workflow.

pub mod differential;
pub mod faults;
pub mod filter;
pub mod protocol;
pub mod seed;
pub mod workload;

pub use differential::DifferentialHarness;
pub use faults::{
    classify, exhaustive_single_faults, fault_label, random_word, TrialOutcome, TrialWord,
};
pub use filter::{scheme_enabled, schemes_under_test};
pub use protocol::{ProtocolChecker, ProtocolViolation};
pub use seed::{seeds_for, with_seeds};
pub use workload::{addr_for, run_arrivals, run_stream, Arrival, Scheduler, WorkloadRun};
