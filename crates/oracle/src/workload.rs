//! Workload generation and lockstep driving for the protocol checker.
//!
//! Mirrors the arrival-mix shapes of `crates/dram/tests/scheduler_equivalence.rs`
//! (the generators cannot be imported from there — integration tests are
//! not a library) and drives any [`Scheduler`] implementation with
//! identical enqueue backpressure, returning the full command log for
//! validation.

use itesp_dram::{
    AddressDecoder, Channel, Completion, DramConfig, IssuedCommand, ReferenceChannel, Request,
    BLOCK_BYTES,
};

/// One element of a generated workload: wait `gap` cycles after the
/// previous arrival, then issue a request derived from `(kind, idx)`.
/// `kind == 0` picks dense low blocks (row hits and bank parallelism);
/// other kinds stride by one row of one bank's address space (row
/// conflicts in the same bank) with the row scaled by `kind`.
pub type Arrival = (u64, u8, u32, bool);

/// The common scheduler surface of [`Channel`] and [`ReferenceChannel`],
/// so workloads can drive either implementation.
pub trait Scheduler {
    fn config(&self) -> &DramConfig;
    fn enable_cmd_log(&mut self);
    fn take_cmd_log(&mut self) -> Vec<IssuedCommand>;
    fn enqueue(&mut self, req: Request) -> bool;
    fn tick(&mut self, now: u64);
    fn is_idle(&self) -> bool;
    fn take_completions(&mut self) -> Vec<Completion>;
}

macro_rules! impl_scheduler {
    ($ty:ty) => {
        impl Scheduler for $ty {
            fn config(&self) -> &DramConfig {
                self.config()
            }
            fn enable_cmd_log(&mut self) {
                self.enable_cmd_log();
            }
            fn take_cmd_log(&mut self) -> Vec<IssuedCommand> {
                self.take_cmd_log()
            }
            fn enqueue(&mut self, req: Request) -> bool {
                self.enqueue(req)
            }
            fn tick(&mut self, now: u64) {
                self.tick(now);
            }
            fn is_idle(&self) -> bool {
                self.is_idle()
            }
            fn take_completions(&mut self) -> Vec<Completion> {
                self.take_completions()
            }
        }
    };
}

impl_scheduler!(Channel);
impl_scheduler!(ReferenceChannel);

/// Map a generated `(kind, idx)` pair to a block address — the same
/// mapping the scheduler-equivalence property tests use.
pub fn addr_for(cfg: &DramConfig, kind: u8, idx: u32) -> u64 {
    let g = cfg.geometry;
    if kind == 0 {
        u64::from(idx % 256) * BLOCK_BYTES
    } else {
        let conflict_stride = u64::from(g.blocks_per_row / 4)
            * u64::from(g.banks_per_rank)
            * u64::from(g.ranks_per_channel)
            * 4
            * BLOCK_BYTES;
        u64::from(idx % 16) * BLOCK_BYTES + u64::from(kind) * conflict_stride
    }
}

/// Result of draining a workload through a scheduler.
#[derive(Debug)]
pub struct WorkloadRun {
    pub log: Vec<IssuedCommand>,
    pub completions: Vec<Completion>,
    /// Last cycle ticked (the channel was idle after this cycle).
    pub end_cycle: u64,
}

/// Drive `sched` with `arrivals` until every request completes, ticking
/// every cycle with the scheduler-equivalence backpressure discipline
/// (a full queue retries next cycle). Panics if the channel fails to
/// drain within a generous deadline.
pub fn run_arrivals<S: Scheduler>(sched: &mut S, arrivals: &[Arrival]) -> WorkloadRun {
    let cfg = *sched.config();
    let dec = AddressDecoder::new(cfg.geometry, cfg.mapping);
    let mut stream: Vec<(u64, u64, bool)> = Vec::new();
    let mut at = 0u64;
    for &(gap, kind, idx, is_write) in arrivals {
        at += gap;
        stream.push((at, addr_for(&cfg, kind, idx), is_write));
    }
    run_stream(sched, &dec, &stream)
}

/// Like [`run_arrivals`], but with explicit `(arrival_cycle, addr,
/// is_write)` triples for handcrafted workloads.
pub fn run_stream<S: Scheduler>(
    sched: &mut S,
    dec: &AddressDecoder,
    stream: &[(u64, u64, bool)],
) -> WorkloadRun {
    sched.enable_cmd_log();
    let mut next = 0usize;
    let mut id = 0u64;
    let mut now = 0u64;
    let mut completions = Vec::new();
    let deadline = 4_000_000u64;
    while (next < stream.len() || !sched.is_idle()) && now < deadline {
        while next < stream.len() && stream[next].0 <= now {
            let (_, addr, is_write) = stream[next];
            let req = Request::new(id, addr, dec.decode(addr), is_write, now);
            if !sched.enqueue(req) {
                break; // full; retry next cycle
            }
            id += 1;
            next += 1;
        }
        sched.tick(now);
        completions.append(&mut sched.take_completions());
        now += 1;
    }
    assert!(now < deadline, "scheduler failed to drain the workload");
    WorkloadRun {
        log: sched.take_cmd_log(),
        completions,
        end_cycle: now.saturating_sub(1),
    }
}

/// Find a block address decoding to the given channel coordinates, by
/// scanning block addresses. Panics if none is found in the first 2^22
/// blocks — enough to cover every (rank, bank, row) pattern the
/// handcrafted workloads ask for.
pub fn find_addr(dec: &AddressDecoder, rank: u32, bank: u32, row: u32) -> u64 {
    for block in 0..(1u64 << 22) {
        let addr = block * BLOCK_BYTES;
        let d = dec.decode(addr);
        if d.channel == 0 && d.rank == rank && d.bank == bank && d.row == row {
            return addr;
        }
    }
    panic!("no block address decodes to rank {rank}, bank {bank}, row {row}");
}
