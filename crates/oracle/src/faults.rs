//! Chipkill fault-injection campaign support.
//!
//! Each trial builds a MAC-consistent codeword, injects one or more
//! faults from [`itesp_reliability::Fault`], runs the chipkill
//! verify-and-correct path, and classifies the result into the outcome
//! classes of the Table II analytical model:
//!
//! * [`TrialOutcome::Corrected`] — the decoder identified a failed chip
//!   and restored the original word (the model's premise: every
//!   single-device error is correctable, after all 9 MAC trials);
//! * [`TrialOutcome::Detected`] — the decoder refused to correct
//!   (ambiguous or no MAC-matching candidate), the DUE class whose rate
//!   Table II's Case 4 computes;
//! * [`TrialOutcome::Silent`] — the decoder either declared a corrupted
//!   word clean or "corrected" it to wrong data. This is the SDC class
//!   (Table II Cases 1–3), whose 2⁻⁶⁴-scaled rates predict **zero**
//!   occurrences at any campaign size this harness can run — so any
//!   observed silent outcome is an oracle failure.

use itesp_core::mac::{mac_block, MacKey};
use itesp_reliability::{verify_and_correct, CodeWord, Correction, Fault};
use rand::{Rng, RngCore};

/// Everything needed to verify one codeword.
#[derive(Debug, Clone, Copy)]
pub struct TrialWord {
    pub word: CodeWord,
    pub key: MacKey,
    pub counter: u64,
    pub addr: u64,
}

/// Build a random, MAC-consistent codeword (what an uncorrupted write
/// would have stored).
pub fn random_word<R: RngCore>(rng: &mut R) -> TrialWord {
    let mut data = [0u8; 64];
    rng.fill(&mut data[..]);
    let key = MacKey {
        k0: rng.gen(),
        k1: rng.gen(),
    };
    let counter = rng.gen_range(1u64..1 << 40);
    let addr = rng.gen_range(0u64..1 << 36) * 64;
    let mac = mac_block(&key, &data, counter, addr);
    TrialWord {
        word: CodeWord::new(data, mac),
        key,
        counter,
        addr,
    }
}

/// Classified result of one injection trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialOutcome {
    /// Restored the original word, naming `chip` after `mac_trials`
    /// reconstruction attempts.
    Corrected { chip: u8, mac_trials: u8 },
    /// Detected but not corrected (ambiguous or uncorrectable).
    Detected,
    /// Declared clean, or corrected to the wrong data: silent corruption.
    Silent,
}

/// Run verify-and-correct on a (possibly corrupted) word and classify
/// the outcome against the pristine original.
pub fn classify(original: &CodeWord, trial: &TrialWord, parity: u64) -> TrialOutcome {
    let (correction, fixed) =
        verify_and_correct(&trial.word, parity, &trial.key, trial.counter, trial.addr);
    match correction {
        Correction::Clean => {
            if trial.word == *original {
                // Nothing was actually corrupted (possible when an
                // injection is XOR-cancelled); treat as a correct pass.
                TrialOutcome::Corrected {
                    chip: u8::MAX,
                    mac_trials: 0,
                }
            } else {
                TrialOutcome::Silent
            }
        }
        Correction::Corrected { chip, mac_trials } => {
            if fixed == *original {
                TrialOutcome::Corrected { chip, mac_trials }
            } else {
                TrialOutcome::Silent
            }
        }
        Correction::Ambiguous | Correction::Uncorrectable => TrialOutcome::Detected,
    }
}

/// All 27 deterministic (fault class × chip) single-fault patterns, the
/// exhaustive sweep the campaign runs before its randomized trials.
pub fn exhaustive_single_faults(beat: u8, pin: u8) -> Vec<Fault> {
    let mut faults = Vec::new();
    for chip in 0..itesp_reliability::TOTAL_CHIPS as u8 {
        faults.push(Fault::Bit { chip, beat, pin });
        faults.push(Fault::Pin { chip, pin });
        faults.push(Fault::Chip { chip });
    }
    faults
}

/// Short label for campaign failure messages.
pub fn fault_label(f: &Fault) -> String {
    match f {
        Fault::Bit { chip, beat, pin } => format!("bit(chip {chip}, beat {beat}, pin {pin})"),
        Fault::Pin { chip, pin } => format!("pin(chip {chip}, pin {pin})"),
        Fault::Chip { chip } => format!("chip({chip})"),
    }
}
