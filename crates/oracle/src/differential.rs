//! Analytic-vs-functional differential oracle.
//!
//! [`DifferentialHarness`] drives two independent models of the same
//! access stream in lockstep and cross-checks them every access:
//!
//! * the **analytic** [`SecurityEngine`], which predicts the metadata
//!   traffic (tree walk, MAC, parity), miss-case classification, and
//!   counter-overflow stalls of each access without materializing any
//!   data; and
//! * the **functional** [`VerifiedMemory`], which actually stores data,
//!   per-block counters, and MACs, and verifies the integrity-tree path
//!   on every read.
//!
//! Cross-checks, per access:
//!
//! 1. **Tree-walk footprint** — the engine's leading run of tree *reads*
//!    must be exactly the leaf-to-root prefix of
//!    [`TreeGeometry::walk`] for the accessed block, mapped through the
//!    partition's tree base address.
//! 2. **Miss-case agreement** — the reported [`MissCase`] must equal
//!    [`MissCase::classify`] recomputed from the observed traffic.
//! 3. **Scheme conformance** — inline-MAC schemes emit no MAC traffic,
//!    parity-free schemes no parity traffic, the unsecure baseline no
//!    metadata at all; every address lands inside its partition's
//!    declared region.
//! 4. **Overflow agreement** — an independent [`OverflowTracker`] fed
//!    the same (leaf, block) keys must agree with the engine's overflow
//!    count and per-access stall cycles.
//! 5. **Counter agreement** — the functional memory's per-block write
//!    counter must equal the harness's shadow write count, and reads
//!    must return the last written data with the integrity check
//!    passing.
//!
//! The analytic checks dispatch on [`Scheme::family`]:
//!
//! * **Tree-walk** schemes get checks 1–4 above, unchanged from the
//!   original 13-scheme oracle;
//! * **link-level** (SecDDR) schemes must emit *no* traffic at all —
//!   zero transactions, case A, zero stall — every single access;
//! * **ORAM** (IRO) schemes are cross-checked against an independent
//!   [`OramShadow`] state twin that predicts the exact bucket-path and
//!   parity transaction list of every access, plus containment of every
//!   address in the engine's declared
//!   [`region_span`](SecurityEngine::region_span).
//!
//! Check 5 (the functional memory) runs for every family: data
//! round-trips and monotone write counters are scheme-independent
//! obligations.

use std::collections::HashMap;

use itesp_core::{
    EngineConfig, MacKey, MetaKind, MissCase, ModelFamily, OramShadow, OverflowTracker, ParityMode,
    Scheme, SchemeSpec, SecurityEngine, TreeGeometry, VerifiedMemory,
};

const BLOCK_BYTES: u64 = 64;

/// Lockstep driver for the analytic engine and the functional memory.
pub struct DifferentialHarness {
    scheme: Scheme,
    spec: SchemeSpec,
    family: ModelFamily,
    engine: SecurityEngine,
    geo: Option<TreeGeometry>,
    /// Independent ORAM state twin (ORAM family only): predicts the
    /// exact transaction list of every access.
    shadow: Option<OramShadow>,
    /// One functional memory per enclave (isolated schemes give each
    /// enclave its own tree; for shared schemes the enclaves still own
    /// disjoint data blocks here, which keeps the counter bookkeeping
    /// per-enclave either way).
    vms: Vec<VerifiedMemory>,
    /// Shadow per-(enclave, block) write counts.
    counts: HashMap<(usize, u64), u64>,
    /// Last written fill byte per (enclave, block).
    data: HashMap<(usize, u64), u8>,
    /// Independent re-derivation of the engine's overflow events.
    overflow: Option<OverflowTracker>,
    accesses: u64,
}

impl DifferentialHarness {
    /// Build the pair of models for `scheme` over `blocks` data blocks
    /// per enclave. Overflow modeling is always on, so the oracle
    /// exercises the counter path for every scheme with a tree.
    pub fn new(scheme: Scheme, blocks: u64) -> Self {
        let mut cfg = EngineConfig::paper_default(scheme);
        cfg.model_overflow = true;
        Self::with_config(scheme, cfg, blocks)
    }

    /// Like [`new`](Self::new) but with a caller-tweaked engine config
    /// (e.g. a rank stride that defeats parity embedding).
    pub fn with_config(scheme: Scheme, cfg: EngineConfig, blocks: u64) -> Self {
        let engine = SecurityEngine::new(cfg);
        let family = scheme.family();
        let geo = engine.geometry().cloned();
        let overflow = geo
            .as_ref()
            .map(|g| OverflowTracker::new(g.local_counter_bits(), g.leaf_arity()));
        let shadow = (family == ModelFamily::Oram).then(|| OramShadow::new(&cfg));
        let vms = (0..cfg.enclaves)
            .map(|e| {
                let key = MacKey {
                    k0: 0x6974_6573_705f_6b30 ^ e as u64,
                    k1: 0x6974_6573_705f_6b31 ^ ((e as u64) << 32),
                };
                VerifiedMemory::new(key, blocks)
            })
            .collect();
        DifferentialHarness {
            scheme,
            spec: scheme.spec(),
            family,
            engine,
            geo,
            shadow,
            vms,
            counts: HashMap::new(),
            data: HashMap::new(),
            overflow,
            accesses: 0,
        }
    }

    pub fn engine(&self) -> &SecurityEngine {
        &self.engine
    }

    /// Metadata partition a given enclave's accesses use.
    fn part_of(&self, enclave: usize) -> usize {
        if self.spec.isolated {
            enclave
        } else {
            0
        }
    }

    /// Drive one access through both models and cross-check them.
    /// Panics with a scheme-and-access annotated message on divergence.
    pub fn access(&mut self, enclave: usize, block: u64, is_write: bool, fill: u8) {
        let label = self.scheme.label();
        let n = self.accesses;
        self.accesses += 1;
        let ctx =
            |what: &str| format!("[{label}] access #{n} block {block} write={is_write}: {what}");

        let part = self.part_of(enclave);
        let paddr = block * BLOCK_BYTES;
        let outcome = self.engine.on_access(enclave, paddr, block, is_write);

        match self.family {
            ModelFamily::TreeWalk => self.check_tree_walk(part, block, is_write, &outcome, &ctx),
            ModelFamily::LinkLevel => {
                // SecDDR's entire claim is *zero* memory-side cost:
                // the MAC rides the ECC pins and the anti-replay
                // counters never leave the chip. Any transaction, any
                // stall, or any classification other than case A is a
                // model bug.
                assert!(
                    outcome.mem.is_empty(),
                    "{}",
                    ctx("link-level scheme emitted memory traffic")
                );
                assert_eq!(outcome.case, MissCase::A, "{}", ctx("link-level case != A"));
                assert_eq!(
                    outcome.stall_cycles,
                    0,
                    "{}",
                    ctx("link-level scheme stalled")
                );
            }
            ModelFamily::Oram => {
                // The shadow twin steps its own position map, stash
                // schedule, and parity state: the engine must emit the
                // byte-exact transaction list the shadow predicts.
                let shadow = self.shadow.as_mut().expect("ORAM family has a shadow");
                let expected_case = shadow.expected_case();
                let expected = shadow.expect_access(block);
                assert_eq!(
                    outcome.mem.as_slice(),
                    expected,
                    "{}",
                    ctx("ORAM traffic diverged from the shadow's prediction")
                );
                assert_eq!(
                    outcome.case,
                    expected_case,
                    "{}",
                    ctx("ORAM miss case diverged from the shadow")
                );
                assert_eq!(
                    outcome.stall_cycles,
                    0,
                    "{}",
                    ctx("ORAM access reported an overflow stall")
                );
                for m in &outcome.mem {
                    self.assert_in_region(m.kind, m.addr, part, &ctx);
                }
            }
        }

        // -- 5. Functional memory ----------------------------------------
        let vm = &mut self.vms[enclave];
        if is_write {
            vm.write(block, [fill; 64]);
            let count = self.counts.entry((enclave, block)).or_insert(0);
            *count += 1;
            self.data.insert((enclave, block), fill);
            assert_eq!(
                vm.snapshot(block).counter,
                *count,
                "{}",
                ctx("functional write counter diverged from shadow count")
            );
        } else if let Some(&expect) = self.data.get(&(enclave, block)) {
            let got = vm
                .read(block)
                .unwrap_or_else(|e| panic!("{}", ctx(&format!("integrity check failed: {e:?}"))));
            assert_eq!(got, [expect; 64], "{}", ctx("read returned stale data"));
        }
    }

    /// Checks 1–4 for the tree-walk family — unchanged from the
    /// original 13-scheme oracle.
    fn check_tree_walk(
        &mut self,
        part: usize,
        block: u64,
        is_write: bool,
        outcome: &itesp_core::AccessOutcome,
        ctx: &dyn Fn(&str) -> String,
    ) {
        // -- 1. Tree-walk footprint --------------------------------------
        // The engine emits the walk's miss prefix as the leading run of
        // tree reads, before any writeback or MAC/parity traffic.
        let walk_misses = outcome
            .mem
            .iter()
            .take_while(|m| m.kind == MetaKind::Tree && !m.is_write)
            .count();
        if let Some(geo) = &self.geo {
            let tree_base = self.engine.tree_base(part);
            let expected: Vec<u64> = geo
                .walk(block)
                .take(walk_misses)
                .map(|node| geo.node_addr(tree_base, node))
                .collect();
            assert_eq!(
                expected.len(),
                walk_misses,
                "{}",
                ctx("more leading tree reads than walk levels")
            );
            let observed: Vec<u64> = outcome.mem[..walk_misses].iter().map(|m| m.addr).collect();
            assert_eq!(
                observed,
                expected,
                "{}",
                ctx("tree-walk footprint diverged from TreeGeometry::walk")
            );
        } else {
            assert!(
                outcome.mem.is_empty(),
                "{}",
                ctx("tree-less scheme emitted metadata traffic")
            );
        }

        // -- 2. Miss-case agreement --------------------------------------
        let mac_reads: Vec<u64> = outcome
            .mem
            .iter()
            .filter(|m| m.kind == MetaKind::Mac && !m.is_write)
            .map(|m| m.addr)
            .collect();
        let mac_missed = !mac_reads.is_empty();
        assert_eq!(
            outcome.case,
            MissCase::classify(mac_missed, walk_misses as u32),
            "{}",
            ctx("miss-case classification disagrees with observed traffic")
        );

        // -- 3. Scheme conformance ---------------------------------------
        if self.spec.mac_inline {
            assert!(
                outcome.mem.iter().all(|m| m.kind != MetaKind::Mac),
                "{}",
                ctx("inline-MAC scheme emitted separate MAC traffic")
            );
        } else {
            let expected_mac = self.engine.mac_base(part) + (block / 8) * BLOCK_BYTES;
            assert!(
                mac_reads.len() <= 1 && mac_reads.iter().all(|&a| a == expected_mac),
                "{}",
                ctx("MAC read does not target the block's MAC line")
            );
        }
        if self.spec.parity == ParityMode::None {
            assert!(
                outcome.mem.iter().all(|m| m.kind != MetaKind::Parity),
                "{}",
                ctx("parity-free scheme emitted parity traffic")
            );
        }
        if !is_write
            && matches!(
                self.spec.parity,
                ParityMode::PerBlock | ParityMode::Shared(_)
            )
        {
            assert!(
                outcome
                    .mem
                    .iter()
                    .all(|m| m.kind != MetaKind::Parity || m.is_write),
                "{}",
                ctx("data read fetched parity (parity is write-path only)")
            );
        }
        for m in &outcome.mem {
            self.assert_in_region(m.kind, m.addr, part, &ctx);
        }

        // -- 4. Overflow agreement ---------------------------------------
        let mut expected_stall = 0;
        if is_write {
            if let (Some(of), Some(geo)) = (self.overflow.as_mut(), self.geo.as_ref()) {
                let node_key = ((part as u64) << 48) | geo.leaf_of(block).index;
                let block_key = ((part as u64) << 48) | block;
                expected_stall = of.on_write(node_key, block_key);
            }
        }
        assert_eq!(
            outcome.stall_cycles,
            expected_stall,
            "{}",
            ctx("overflow stall cycles diverged from the shadow tracker")
        );
    }

    /// `(base, size)` of partition `part`'s region for `kind` — the
    /// size comes straight from the model's own declaration, so the
    /// containment check holds for every family (tree storage bytes,
    /// MAC/parity stripes, ORAM bucket tree, or zero for link-level).
    fn region(&self, kind: MetaKind, part: usize) -> (u64, u64) {
        let base = match kind {
            MetaKind::Tree => self.engine.tree_base(part),
            MetaKind::Mac => self.engine.mac_base(part),
            MetaKind::Parity => self.engine.parity_base(part),
        };
        (base, self.engine.region_span(kind))
    }

    fn in_region(&self, kind: MetaKind, addr: u64, part: usize) -> bool {
        let (base, size) = self.region(kind, part);
        addr >= base && addr < base + size
    }

    fn assert_in_region(
        &self,
        kind: MetaKind,
        addr: u64,
        part: usize,
        ctx: &dyn Fn(&str) -> String,
    ) {
        let (base, size) = self.region(kind, part);
        assert!(
            self.in_region(kind, addr, part),
            "{}",
            ctx(&format!(
                "{kind:?} access at {addr:#x} outside region [{base:#x}, {:#x})",
                base + size
            ))
        );
    }

    /// End-of-stream checks: total overflow agreement, miss-case count
    /// conservation, and a drain whose writebacks all land in declared
    /// metadata regions.
    pub fn finish(mut self) {
        let label = self.scheme.label();
        let stats = self.engine.stats().clone();
        assert_eq!(
            stats.case_counts.iter().sum::<u64>(),
            self.accesses,
            "[{label}] miss-case counts do not sum to the access count"
        );
        if let Some(of) = &self.overflow {
            assert_eq!(
                stats.overflows,
                of.overflows(),
                "[{label}] engine overflow count diverged from the shadow tracker"
            );
        }
        let parts = self.engine.partitions();
        let drained = self.engine.drain();
        for m in &drained {
            assert!(
                (0..parts).any(|p| self.in_region(m.kind, m.addr, p)),
                "[{label}] drained {:?} writeback at {:#x} outside every partition region",
                m.kind,
                m.addr
            );
        }
    }
}
