//! Independent DDR3 protocol checker.
//!
//! [`ProtocolChecker`] re-derives every Table III timing constraint from
//! the raw [`DramConfig`] and validates a recorded command stream against
//! them. It deliberately shares **no** state-tracking code with the
//! schedulers: where [`itesp_dram::bank`] keeps `next_*` earliest-issue
//! cycles that it updates as commands issue, the checker keeps only the
//! *history* of observed commands (last ACT / RD / WR / PRE time per bank,
//! a tFAW sliding window per rank, the observed data-bus schedule) and
//! re-evaluates each constraint as an inequality over that history. A
//! bookkeeping bug in the scheduler therefore cannot self-justify here.
//!
//! Checked rules, by command:
//!
//! * `ACT`  — bank must be closed; tRC since last ACT (same bank); tRP
//!   since last PRE; tRRD since last ACT in the rank; at most 4 ACTs per
//!   rank in any tFAW window; not inside a refresh blackout (tRFC).
//! * `RD`/`WR` — row must be open and match the command's row (CAS to
//!   open row); tRCD since the opening ACT; tCCD since the rank's last
//!   same-direction CAS; write-to-read (tCWD+tBURST+tWTR) and
//!   read-to-write (tCAS+tBURST+tRTRS-tCWD) turnarounds; data-bus burst
//!   non-overlap plus tRTRS on rank switch; not inside a refresh blackout.
//! * `PRE`  — row must be open and match; tRAS since ACT; tRTP since the
//!   last read; write recovery (tCWD+tBURST+tWR) since the last write.
//! * `Refresh` — must land exactly on the rank's staggered tREFI
//!   deadline; closes the rank's open rows (the scheduler force-closes
//!   them without logging PREs); blocks the rank for tRFC.
//!
//! Channel-level rules: command cycles are non-decreasing, at most one
//! non-refresh command issues per cycle (single command bus; refresh is
//! rank-internal and exempt), and the flat bank index must belong to the
//! command's rank. [`ProtocolChecker::finish`] additionally verifies no
//! refresh deadline up to the end of the run was skipped.

use itesp_dram::{Command, DramConfig, IssuedCommand};

/// A single protocol violation, reported with enough context to debug the
/// offending command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolViolation {
    /// DRAM cycle of the offending command (or the end-of-run cycle for
    /// missed-refresh violations).
    pub cycle: u64,
    pub rank: u32,
    /// Flat bank index within the channel.
    pub bank: u32,
    /// Short rule identifier, e.g. `"tFAW"` or `"refresh-deadline"`.
    pub rule: &'static str,
    /// Human-readable explanation with the violated inequality.
    pub detail: String,
}

impl std::fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "protocol violation [{}] at cycle {} (rank {}, bank {}): {}",
            self.rule, self.cycle, self.rank, self.bank, self.detail
        )
    }
}

impl std::error::Error for ProtocolViolation {}

#[derive(Debug, Clone, Copy, Default)]
struct BankHistory {
    open_row: Option<u32>,
    last_activate: Option<u64>,
    last_precharge: Option<u64>,
    last_read: Option<u64>,
    last_write: Option<u64>,
}

#[derive(Debug, Clone)]
struct RankHistory {
    /// Times of the most recent ACTs in this rank (sliding tFAW window;
    /// only the last four matter).
    recent_acts: Vec<u64>,
    last_read: Option<u64>,
    last_write: Option<u64>,
    /// End of the current refresh blackout (start + tRFC), 0 if none yet.
    refresh_busy_until: u64,
    /// Next expected refresh deadline for this rank.
    next_refresh_deadline: u64,
}

/// Validates a per-channel command log against the DDR3 timing rules.
///
/// Feed commands in log order via [`observe`](Self::observe); call
/// [`finish`](Self::finish) with the final simulated cycle to check for
/// skipped refreshes. [`check_log`](Self::check_log) does both.
#[derive(Debug, Clone)]
pub struct ProtocolChecker {
    cfg: DramConfig,
    banks: Vec<BankHistory>,
    ranks: Vec<RankHistory>,
    /// Cycle the data bus becomes free after the last CAS burst.
    bus_free_at: u64,
    /// Rank that drove the last data burst (for tRTRS).
    bus_last_rank: Option<u32>,
    /// Cycle of the last non-refresh command (single command bus).
    last_cmd_cycle: Option<u64>,
    /// Cycle of the most recent command of any kind (log ordering).
    last_seen_cycle: u64,
}

impl ProtocolChecker {
    pub fn new(cfg: DramConfig) -> Self {
        let g = cfg.geometry;
        let t = cfg.timing;
        let nbanks = (g.ranks_per_channel * g.banks_per_rank) as usize;
        let ranks = (0..u64::from(g.ranks_per_channel))
            .map(|r| RankHistory {
                recent_acts: Vec::new(),
                last_read: None,
                last_write: None,
                refresh_busy_until: 0,
                // Same staggered first deadline the controller derives
                // from tREFI; re-stated here rather than read back from
                // the scheduler.
                next_refresh_deadline: t.t_refi + r * (t.t_refi / 16).max(1),
            })
            .collect();
        ProtocolChecker {
            cfg,
            banks: vec![BankHistory::default(); nbanks],
            ranks,
            bus_free_at: 0,
            bus_last_rank: None,
            last_cmd_cycle: None,
            last_seen_cycle: 0,
        }
    }

    /// Validate one command and fold it into the history.
    pub fn observe(&mut self, cmd: &IssuedCommand) -> Result<(), ProtocolViolation> {
        let t = self.cfg.timing;
        let g = self.cfg.geometry;
        let now = cmd.cycle;
        let violation = |rule: &'static str, detail: String| ProtocolViolation {
            cycle: now,
            rank: cmd.rank,
            bank: cmd.bank,
            rule,
            detail,
        };

        if now < self.last_seen_cycle {
            return Err(violation(
                "log-order",
                format!(
                    "command at cycle {now} after one at {}",
                    self.last_seen_cycle
                ),
            ));
        }
        self.last_seen_cycle = now;

        if cmd.rank >= g.ranks_per_channel {
            return Err(violation("rank-range", format!("rank {}", cmd.rank)));
        }
        let rank = &mut self.ranks[cmd.rank as usize];

        if cmd.cmd == Command::Refresh {
            // Refresh is rank-internal: it does not occupy the shared
            // command bus, and several ranks may refresh the same cycle.
            if now != rank.next_refresh_deadline {
                return Err(violation(
                    "refresh-deadline",
                    format!(
                        "refresh at {now}, expected deadline {}",
                        rank.next_refresh_deadline
                    ),
                ));
            }
            rank.next_refresh_deadline += t.t_refi;
            rank.refresh_busy_until = now + t.t_rfc;
            // The controller force-closes the rank's open rows without
            // issuing PRE commands; mirror that here.
            let base = (cmd.rank * g.banks_per_rank) as usize;
            for b in &mut self.banks[base..base + g.banks_per_rank as usize] {
                b.open_row = None;
            }
            return Ok(());
        }

        // One shared command bus per channel: at most one non-refresh
        // command per cycle.
        if self.last_cmd_cycle == Some(now) {
            return Err(violation(
                "command-bus",
                "two non-refresh commands in one cycle".to_string(),
            ));
        }
        self.last_cmd_cycle = Some(now);

        let nbanks = g.ranks_per_channel * g.banks_per_rank;
        if cmd.bank >= nbanks || cmd.bank / g.banks_per_rank != cmd.rank {
            return Err(violation(
                "bank-range",
                format!("flat bank {} not in rank {}", cmd.bank, cmd.rank),
            ));
        }
        let bank = &mut self.banks[cmd.bank as usize];

        // `need(earliest, ...)`: the constraint `now >= earliest`.
        let need = |earliest: u64, rule: &'static str, detail: String| {
            if now < earliest {
                Err(violation(
                    rule,
                    format!("{detail}: earliest legal cycle {earliest}, issued at {now}"),
                ))
            } else {
                Ok(())
            }
        };

        match cmd.cmd {
            Command::Activate => {
                if let Some(row) = bank.open_row {
                    return Err(violation(
                        "act-open-bank",
                        format!("ACT while row {row} is open"),
                    ));
                }
                need(
                    rank.refresh_busy_until,
                    "tRFC",
                    "ACT in refresh blackout".into(),
                )?;
                if let Some(a) = bank.last_activate {
                    need(a + t.t_rc, "tRC", format!("ACT {a} -> ACT"))?;
                }
                if let Some(p) = bank.last_precharge {
                    need(p + t.t_rp, "tRP", format!("PRE {p} -> ACT"))?;
                }
                if let Some(&a) = rank.recent_acts.last() {
                    need(a + t.t_rrd, "tRRD", format!("rank ACT {a} -> ACT"))?;
                }
                // tFAW: no more than 4 ACTs per rank in any tFAW window,
                // i.e. the 4th-most-recent ACT must be at least tFAW old.
                if rank.recent_acts.len() >= 4 {
                    let fourth = rank.recent_acts[rank.recent_acts.len() - 4];
                    need(fourth + t.t_faw, "tFAW", format!("4 ACTs since {fourth}"))?;
                }
                bank.open_row = Some(cmd.row);
                bank.last_activate = Some(now);
                rank.recent_acts.push(now);
                if rank.recent_acts.len() > 4 {
                    rank.recent_acts.remove(0);
                }
            }
            Command::Read | Command::Write => {
                let is_write = cmd.cmd == Command::Write;
                match bank.open_row {
                    None => {
                        return Err(violation(
                            "cas-closed-bank",
                            "CAS to a bank with no open row".to_string(),
                        ));
                    }
                    Some(row) if row != cmd.row => {
                        return Err(violation(
                            "cas-row-mismatch",
                            format!("CAS to row {} but row {row} is open", cmd.row),
                        ));
                    }
                    Some(_) => {}
                }
                need(
                    rank.refresh_busy_until,
                    "tRFC",
                    "CAS in refresh blackout".into(),
                )?;
                let act = bank.last_activate.expect("open row implies a recorded ACT");
                need(act + t.t_rcd, "tRCD", format!("ACT {act} -> CAS"))?;
                if is_write {
                    if let Some(w) = rank.last_write {
                        need(w + t.t_ccd, "tCCD", format!("WR {w} -> WR"))?;
                    }
                    if let Some(r) = rank.last_read {
                        // Read-to-write turnaround: the write burst
                        // (starting at now + tCWD) must clear the read
                        // burst plus the bus turnaround.
                        let earliest = (r + t.t_cas + t.t_burst + t.t_rtrs).saturating_sub(t.t_cwd);
                        need(earliest, "rd-wr-turnaround", format!("RD {r} -> WR"))?;
                    }
                } else {
                    if let Some(r) = rank.last_read {
                        need(r + t.t_ccd, "tCCD", format!("RD {r} -> RD"))?;
                    }
                    if let Some(w) = rank.last_write {
                        need(
                            w + t.t_cwd + t.t_burst + t.t_wtr,
                            "tWTR",
                            format!("WR {w} -> RD"),
                        )?;
                    }
                }
                // Data-bus schedule: the burst starts tCWD (write) or
                // tCAS (read) after the command and occupies tBURST
                // cycles; switching driving ranks costs tRTRS.
                let start = now + if is_write { t.t_cwd } else { t.t_cas };
                let bus_earliest = if self.bus_last_rank.is_some_and(|r| r != cmd.rank) {
                    self.bus_free_at + t.t_rtrs
                } else {
                    self.bus_free_at
                };
                if start < bus_earliest {
                    return Err(violation(
                        if start < self.bus_free_at {
                            "bus-overlap"
                        } else {
                            "tRTRS"
                        },
                        format!(
                            "burst starts {start}, bus free at {} (last rank {:?})",
                            self.bus_free_at, self.bus_last_rank
                        ),
                    ));
                }
                self.bus_free_at = start + t.t_burst;
                self.bus_last_rank = Some(cmd.rank);
                if is_write {
                    bank.last_write = Some(now);
                    rank.last_write = Some(now);
                } else {
                    bank.last_read = Some(now);
                    rank.last_read = Some(now);
                }
            }
            Command::Precharge => {
                match bank.open_row {
                    None => {
                        return Err(violation(
                            "pre-closed-bank",
                            "PRE on a bank with no open row".to_string(),
                        ));
                    }
                    Some(row) if row != cmd.row => {
                        return Err(violation(
                            "pre-row-mismatch",
                            format!("PRE logs row {} but row {row} is open", cmd.row),
                        ));
                    }
                    Some(_) => {}
                }
                let act = bank.last_activate.expect("open row implies a recorded ACT");
                need(act + t.t_ras, "tRAS", format!("ACT {act} -> PRE"))?;
                if let Some(r) = bank.last_read {
                    need(r + t.t_rtp, "tRTP", format!("RD {r} -> PRE"))?;
                }
                if let Some(w) = bank.last_write {
                    need(
                        w + t.t_cwd + t.t_burst + t.t_wr,
                        "tWR",
                        format!("WR {w} -> PRE"),
                    )?;
                }
                bank.open_row = None;
                bank.last_precharge = Some(now);
            }
            Command::Refresh => unreachable!("handled above"),
        }
        Ok(())
    }

    /// Check that no refresh deadline at or before `end_cycle` was
    /// skipped. Call after the final tick of the run.
    pub fn finish(&self, end_cycle: u64) -> Result<(), ProtocolViolation> {
        for (r, rank) in self.ranks.iter().enumerate() {
            if rank.next_refresh_deadline <= end_cycle {
                return Err(ProtocolViolation {
                    cycle: end_cycle,
                    rank: r as u32,
                    bank: 0,
                    rule: "refresh-missed",
                    detail: format!(
                        "rank {r} refresh due at {} never issued by cycle {end_cycle}",
                        rank.next_refresh_deadline
                    ),
                });
            }
        }
        Ok(())
    }

    /// Validate a whole command log and the end-of-run refresh deadlines.
    pub fn check_log(
        cfg: DramConfig,
        log: &[IssuedCommand],
        end_cycle: u64,
    ) -> Result<(), ProtocolViolation> {
        let mut checker = ProtocolChecker::new(cfg);
        for cmd in log {
            checker.observe(cmd)?;
        }
        checker.finish(end_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::table_iii()
    }

    fn ic(cycle: u64, cmd: Command, rank: u32, bank: u32, row: u32) -> IssuedCommand {
        IssuedCommand {
            cycle,
            cmd,
            rank,
            bank,
            row,
        }
    }

    /// A legal ACT -> RD -> PRE -> ACT sequence on one bank passes.
    #[test]
    fn accepts_legal_single_bank_sequence() {
        let c = cfg();
        let t = c.timing;
        let log = vec![
            ic(0, Command::Activate, 0, 0, 7),
            ic(t.t_rcd, Command::Read, 0, 0, 7),
            ic(t.t_ras, Command::Precharge, 0, 0, 7),
            ic(t.t_ras + t.t_rp, Command::Activate, 0, 0, 8),
        ];
        ProtocolChecker::check_log(c, &log, t.t_ras + t.t_rp).unwrap();
    }

    #[test]
    fn rejects_cas_before_trcd() {
        let c = cfg();
        let log = vec![
            ic(0, Command::Activate, 0, 0, 7),
            ic(c.timing.t_rcd - 1, Command::Read, 0, 0, 7),
        ];
        let e = ProtocolChecker::check_log(c, &log, 100).unwrap_err();
        assert_eq!(e.rule, "tRCD");
    }

    #[test]
    fn rejects_cas_to_closed_bank_and_wrong_row() {
        let c = cfg();
        let e = ProtocolChecker::check_log(c, &[ic(5, Command::Read, 0, 0, 1)], 10).unwrap_err();
        assert_eq!(e.rule, "cas-closed-bank");
        let log = vec![
            ic(0, Command::Activate, 0, 0, 7),
            ic(c.timing.t_rcd, Command::Write, 0, 0, 9),
        ];
        let e = ProtocolChecker::check_log(c, &log, 100).unwrap_err();
        assert_eq!(e.rule, "cas-row-mismatch");
    }

    #[test]
    fn rejects_activate_on_open_bank_and_pre_on_closed() {
        let c = cfg();
        let log = vec![
            ic(0, Command::Activate, 0, 0, 7),
            ic(c.timing.t_rc, Command::Activate, 0, 0, 8),
        ];
        let e = ProtocolChecker::check_log(c, &log, 100).unwrap_err();
        assert_eq!(e.rule, "act-open-bank");
        let e =
            ProtocolChecker::check_log(c, &[ic(3, Command::Precharge, 0, 0, 0)], 10).unwrap_err();
        assert_eq!(e.rule, "pre-closed-bank");
    }

    #[test]
    fn rejects_early_precharge_against_tras() {
        let c = cfg();
        let log = vec![
            ic(0, Command::Activate, 0, 0, 7),
            ic(c.timing.t_ras - 1, Command::Precharge, 0, 0, 7),
        ];
        let e = ProtocolChecker::check_log(c, &log, 100).unwrap_err();
        assert_eq!(e.rule, "tRAS");
    }

    #[test]
    fn rejects_two_commands_in_one_cycle() {
        let c = cfg();
        let log = vec![
            ic(0, Command::Activate, 0, 0, 7),
            ic(0, Command::Activate, 0, 1, 7),
        ];
        let e = ProtocolChecker::check_log(c, &log, 100).unwrap_err();
        assert_eq!(e.rule, "command-bus");
    }

    #[test]
    fn rejects_fifth_activate_inside_faw_window() {
        // Table III has tFAW == 4*tRRD, which makes tRRD the binding
        // constraint; raise tFAW so the window rule is isolated.
        let mut c = cfg();
        c.timing.t_faw = 30;
        let t = c.timing;
        // ACTs to 5 different banks of rank 0, spaced exactly tRRD; the
        // 5th lands at 4*tRRD = 20 < acts[0] + tFAW = 30.
        let log: Vec<IssuedCommand> = (0..5)
            .map(|i| ic(u64::from(i) * t.t_rrd, Command::Activate, 0, i, 1))
            .collect();
        let e = ProtocolChecker::check_log(c, &log, 100).unwrap_err();
        assert_eq!(e.rule, "tFAW");
    }

    #[test]
    fn rejects_refresh_off_deadline_and_missed_refresh() {
        let c = cfg();
        let t = c.timing;
        let e =
            ProtocolChecker::check_log(c, &[ic(12, Command::Refresh, 0, 0, 0)], 100).unwrap_err();
        assert_eq!(e.rule, "refresh-deadline");
        // No refresh at all by the first deadline.
        let e = ProtocolChecker::check_log(c, &[], t.t_refi + 1).unwrap_err();
        assert_eq!(e.rule, "refresh-missed");
    }

    #[test]
    fn refresh_closes_rows_without_precharge() {
        let c = cfg();
        let t = c.timing;
        let deadline = t.t_refi; // rank 0's first deadline
        let log = vec![
            ic(0, Command::Activate, 0, 0, 7),
            ic(t.t_rcd, Command::Read, 0, 0, 7),
            ic(deadline, Command::Refresh, 0, 0, 0),
            // After the blackout the bank is closed: ACT is legal (tRC
            // long expired), and a CAS without ACT would be rejected.
            ic(deadline + t.t_rfc, Command::Activate, 0, 0, 9),
        ];
        let mut checker = ProtocolChecker::new(c);
        for cmd in &log {
            checker.observe(cmd).unwrap();
        }
    }

    #[test]
    fn rejects_act_inside_refresh_blackout() {
        let c = cfg();
        let t = c.timing;
        let log = vec![
            ic(t.t_refi, Command::Refresh, 0, 0, 0),
            ic(t.t_refi + t.t_rfc - 1, Command::Activate, 0, 0, 1),
        ];
        let e = ProtocolChecker::check_log(c, &log, t.t_refi + t.t_rfc).unwrap_err();
        assert_eq!(e.rule, "tRFC");
    }

    #[test]
    fn rejects_bus_overlap_and_missing_rank_turnaround() {
        let c = cfg();
        let t = c.timing;
        // Two reads, same rank, different banks, closer than tBURST on
        // the data bus (tCCD == tBURST for Table III, so seed the second
        // bank's ACT early and violate via cross-rank tRTRS instead).
        let log = vec![
            ic(0, Command::Activate, 0, 0, 1),
            ic(1, Command::Activate, 1, 8, 1),
            ic(t.t_rcd, Command::Read, 0, 0, 1),
            // Rank switch: burst must wait tRTRS past the previous burst.
            ic(t.t_rcd + t.t_burst, Command::Read, 1, 8, 1),
        ];
        let e = ProtocolChecker::check_log(c, &log, 1000).unwrap_err();
        assert_eq!(e.rule, "tRTRS");
    }
}
