//! Split-counter state and local-counter overflow tracking.
//!
//! High-arity trees shrink the per-block local counters (3 bits in
//! SYN128, 2 bits in ITESP 128, 5 bits in ITESP 64 — Section V-D). When
//! a block's local counter overflows, the node's shared global counter
//! is bumped and *every* block under the node must be re-encrypted; the
//! paper charges 4 K cycles for a 128-arity node. [`OverflowTracker`]
//! counts those events, mirroring the paper's separate "long Pin-based
//! simulation that does not model per-cycle effects, but models counter
//! values".

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Overflow penalty for a 128-arity node, in CPU cycles (Section IV).
pub const OVERFLOW_PENALTY_128: u64 = 4096;

/// Tracks per-block write counts relative to each leaf node's last
/// re-encryption ("rebase"), and reports local-counter overflows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverflowTracker {
    /// Writes before a local counter of this width overflows.
    period: u64,
    /// Re-encryption penalty per overflow, scaled to the node arity.
    penalty: u64,
    /// Current rebase epoch per leaf node.
    node_epoch: HashMap<u64, u32>,
    /// Per-block (epoch, writes-since-rebase).
    block_writes: HashMap<u64, (u32, u64)>,
    overflows: u64,
}

impl OverflowTracker {
    /// Track overflows for `local_bits`-bit local counters on nodes of
    /// `arity` children.
    ///
    /// # Panics
    /// Panics if `local_bits` is 0 or larger than 32.
    pub fn new(local_bits: u32, arity: u64) -> Self {
        assert!((1..=32).contains(&local_bits));
        OverflowTracker {
            period: 1u64 << local_bits,
            // Re-encryption walks all children: cost scales with arity,
            // calibrated to 4K cycles at arity 128.
            penalty: OVERFLOW_PENALTY_128 * arity / 128,
            node_epoch: HashMap::new(),
            block_writes: HashMap::new(),
            overflows: 0,
        }
    }

    /// Record a write to `block` whose counters live in leaf `node`.
    /// Returns the stall penalty in CPU cycles (0 if no overflow).
    pub fn on_write(&mut self, node: u64, block: u64) -> u64 {
        let epoch = *self.node_epoch.entry(node).or_insert(0);
        let entry = self.block_writes.entry(block).or_insert((epoch, 0));
        if entry.0 != epoch {
            // Node was re-encrypted since this block's last write: the
            // local counter was reset.
            *entry = (epoch, 0);
        }
        entry.1 += 1;
        if entry.1 >= self.period {
            // Local counter overflow: bump the global counter and
            // re-encrypt everything under the node.
            self.overflows += 1;
            *self.node_epoch.get_mut(&node).expect("inserted above") += 1;
            self.penalty
        } else {
            0
        }
    }

    /// Total overflows observed.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Stall cycles charged per overflow.
    pub fn penalty(&self) -> u64 {
        self.penalty
    }

    /// Serialize for a crash-recovery snapshot. Maps are written in
    /// sorted key order so identical state gives identical bytes.
    pub fn save_state(&self, w: &mut itesp_snap::SnapWriter) {
        w.section("OVFL", 1);
        w.u64(self.period);
        w.u64(self.penalty);
        w.u64(self.overflows);
        let mut nodes: Vec<_> = self.node_epoch.iter().collect();
        nodes.sort_unstable_by_key(|(k, _)| **k);
        w.seq(nodes.into_iter(), |w, (k, v)| {
            w.u64(*k);
            w.u64(u64::from(*v));
        });
        let mut blocks: Vec<_> = self.block_writes.iter().collect();
        blocks.sort_unstable_by_key(|(k, _)| **k);
        w.seq(blocks.into_iter(), |w, (k, (epoch, writes))| {
            w.u64(*k);
            w.u64(u64::from(*epoch));
            w.u64(*writes);
        });
    }

    /// Restore from [`OverflowTracker::save_state`] bytes.
    pub fn load_state(r: &mut itesp_snap::SnapReader) -> Result<Self, itesp_snap::SnapError> {
        r.section("OVFL", 1)?;
        let period = r.u64("overflow period")?;
        let penalty = r.u64("overflow penalty")?;
        let overflows = r.u64("overflow count")?;
        let n = r.seq_len("overflow node epochs")?;
        let mut node_epoch = HashMap::with_capacity(n);
        for _ in 0..n {
            let k = r.u64("node key")?;
            node_epoch.insert(k, r.u64("node epoch")? as u32);
        }
        let n = r.seq_len("overflow block writes")?;
        let mut block_writes = HashMap::with_capacity(n);
        for _ in 0..n {
            let k = r.u64("block key")?;
            let epoch = r.u64("block epoch")? as u32;
            let writes = r.u64("block writes")?;
            block_writes.insert(k, (epoch, writes));
        }
        Ok(OverflowTracker {
            period,
            penalty,
            node_epoch,
            block_writes,
            overflows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_after_period_writes() {
        let mut t = OverflowTracker::new(2, 128); // period 4
        assert_eq!(t.on_write(0, 10), 0);
        assert_eq!(t.on_write(0, 10), 0);
        assert_eq!(t.on_write(0, 10), 0);
        assert_eq!(t.on_write(0, 10), OVERFLOW_PENALTY_128);
        assert_eq!(t.overflows(), 1);
    }

    #[test]
    fn rebase_resets_all_blocks_under_node() {
        let mut t = OverflowTracker::new(2, 128);
        // Block 11 accumulates 3 writes under node 0.
        for _ in 0..3 {
            assert_eq!(t.on_write(0, 11), 0);
        }
        // Block 10 overflows the node -> re-encryption resets block 11 too.
        for _ in 0..3 {
            t.on_write(0, 10);
        }
        assert!(t.on_write(0, 10) > 0);
        // Block 11 starts over: 4 more writes to overflow again.
        for _ in 0..3 {
            assert_eq!(t.on_write(0, 11), 0, "block 11 should have been reset");
        }
        assert!(t.on_write(0, 11) > 0);
    }

    #[test]
    fn wider_counters_overflow_less() {
        let mut narrow = OverflowTracker::new(2, 128);
        let mut wide = OverflowTracker::new(5, 128);
        for _ in 0..1000 {
            narrow.on_write(0, 1);
            wide.on_write(0, 1);
        }
        assert!(narrow.overflows() > 5 * wide.overflows());
    }

    #[test]
    fn penalty_scales_with_arity() {
        assert_eq!(OverflowTracker::new(3, 128).penalty(), 4096);
        assert_eq!(OverflowTracker::new(3, 64).penalty(), 2048);
    }

    #[test]
    fn independent_nodes_do_not_interact() {
        let mut t = OverflowTracker::new(2, 128);
        for _ in 0..3 {
            t.on_write(0, 1);
        }
        // Writes to another node's block don't advance node 0.
        for _ in 0..10 {
            t.on_write(7, 99);
        }
        assert!(t.on_write(0, 1) > 0, "node 0 was one write from overflow");
    }
}
