//! The workspace error taxonomy.
//!
//! [`Error`] is the one type the binaries and the simulator report:
//! leaf-crate errors (`itesp_dram::ConfigError`, `itesp_trace::TraceError`)
//! convert into it via `From`, and engine/scheme construction failures
//! are native variants. Written by hand in the `thiserror` style
//! (`Display` carries the message, `source()` chains to the wrapped
//! error) since no derive crate is available offline.

use itesp_dram::ConfigError;
use itesp_trace::TraceError;

/// Why an experiment component could not be constructed.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Invalid DRAM configuration.
    Dram(ConfigError),
    /// Invalid trace/workload parameters or benchmark name.
    Trace(TraceError),
    /// Invalid security-engine configuration.
    Engine(EngineConfigError),
    /// A scheme label that names no evaluated design point.
    UnknownScheme(String),
}

/// Why a [`crate::EngineConfig`] cannot be instantiated.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineConfigError {
    /// Zero co-scheduled enclaves.
    NoEnclaves,
    /// Zero cache associativity.
    NoWays,
    /// Data or enclave capacity below one cache block.
    CapacityTooSmall { field: &'static str, bytes: u64 },
    /// The per-structure metadata cache slice cannot form a valid
    /// set-associative cache (must be a `ways * 64`-byte multiple with a
    /// power-of-two set count).
    CacheSliceInvalid {
        budget: usize,
        partitions: usize,
        structures: usize,
        slice: usize,
        ways: usize,
    },
    /// Rank stride of zero blocks (parity sharing needs a stride).
    NoRankStride,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Dram(_) => write!(f, "invalid DRAM configuration"),
            Error::Trace(_) => write!(f, "invalid workload"),
            Error::Engine(_) => write!(f, "invalid security-engine configuration"),
            Error::UnknownScheme(label) => write!(
                f,
                "unknown scheme {label:?} (expected one of {})",
                crate::Scheme::ALL
                    .iter()
                    .map(|s| s.label())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        }
    }
}

impl std::fmt::Display for EngineConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineConfigError::NoEnclaves => write!(f, "enclave count must be positive"),
            EngineConfigError::NoWays => write!(f, "cache associativity must be positive"),
            EngineConfigError::CapacityTooSmall { field, bytes } => {
                write!(
                    f,
                    "{field} must cover at least one 64 B block, got {bytes} B"
                )
            }
            EngineConfigError::CacheSliceInvalid {
                budget,
                partitions,
                structures,
                slice,
                ways,
            } => write!(
                f,
                "metadata cache budget {budget} B split over {partitions} partition(s) x \
                 {structures} structure(s) leaves {slice} B per cache, which cannot form a \
                 {ways}-way cache (needs a ways x 64 B multiple with a power-of-two set count)"
            ),
            EngineConfigError::NoRankStride => {
                write!(f, "rank stride must be at least one block")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Dram(e) => Some(e),
            Error::Trace(e) => Some(e),
            Error::Engine(e) => Some(e),
            Error::UnknownScheme(_) => None,
        }
    }
}

impl std::error::Error for EngineConfigError {}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error::Dram(e)
    }
}

impl From<TraceError> for Error {
    fn from(e: TraceError) -> Self {
        Error::Trace(e)
    }
}

impl From<EngineConfigError> for Error {
    fn from(e: EngineConfigError) -> Self {
        Error::Engine(e)
    }
}

/// Render an error with its full `source()` chain, `": "`-separated —
/// the one-line form the binaries print (`invalid workload: unknown
/// benchmark "mfc" (not in Table IV)`).
pub fn render_chain(e: &dyn std::error::Error) -> String {
    let mut out = e.to_string();
    let mut cur = e.source();
    while let Some(src) = cur {
        out.push_str(": ");
        out.push_str(&src.to_string());
        cur = src.source();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn wrapped_errors_chain_through_source() {
        let e = Error::from(TraceError::UnknownBenchmark("nope".into()));
        let src = e.source().expect("wraps the trace error");
        assert!(src.to_string().contains("nope"), "{src}");

        let e = Error::from(ConfigError::Zero { field: "t_burst" });
        assert!(e.source().unwrap().to_string().contains("t_burst"));

        assert!(Error::UnknownScheme("X".into()).source().is_none());
    }

    #[test]
    fn render_chain_joins_outer_and_inner_messages() {
        let e = Error::from(TraceError::UnknownBenchmark("mfc".into()));
        let msg = render_chain(&e);
        assert!(msg.starts_with("invalid workload: "), "{msg}");
        assert!(msg.contains("unknown benchmark mfc"), "{msg}");
    }

    #[test]
    fn unknown_scheme_lists_valid_labels() {
        let msg = Error::UnknownScheme("BOGUS".into()).to_string();
        assert!(msg.contains("BOGUS"), "{msg}");
        assert!(msg.contains("ITESP"), "{msg}");
        assert!(msg.contains("VAULT"), "{msg}");
    }
}
