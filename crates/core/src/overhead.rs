//! Metadata memory-capacity overheads (Table I).
//!
//! Computes, for each organization, the fraction of protected memory
//! consumed by (a) the integrity tree and (b) the MAC/parity structures.
//! Synergy's MAC is free (it displaces the ECC bits on the 9th chip),
//! so its MAC/parity column is only the correction parity; ITESP's is
//! zero because the parity lives inside the tree.

use serde::{Deserialize, Serialize};

use crate::tree::TreeGeometry;

/// One Table I row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadRow {
    pub organization: String,
    /// Integrity-tree storage / data storage.
    pub tree: f64,
    /// Separate MAC + parity storage / data storage.
    pub mac_parity: f64,
}

impl OverheadRow {
    pub fn total(&self) -> f64 {
        self.tree + self.mac_parity
    }
}

/// Span used to evaluate the asymptotic overheads (large enough that
/// upper-level rounding is negligible).
const EVAL_BLOCKS: u64 = (64u64 << 30) / 64;

/// Compute all Table I rows.
pub fn table_i() -> Vec<OverheadRow> {
    let row = |name: &str, geo: TreeGeometry, mac_parity: f64| OverheadRow {
        organization: name.to_owned(),
        tree: geo.storage_overhead(),
        mac_parity,
    };
    vec![
        // VAULT: 8 B MAC + 8 B of correction metadata rolled into the
        // MAC/parity column as 12.5% (the ECC lives on the 9th chip).
        row("VAULT", TreeGeometry::vault(EVAL_BLOCKS), 0.125),
        // Synergy128: MAC inline (free); 64-bit parity per 64 B block.
        row(
            "Synergy128, x8 chips",
            TreeGeometry::syn128(EVAL_BLOCKS),
            0.125,
        ),
        // x16 chips need twice the parity for chipkill.
        row(
            "Synergy128, x16 chips",
            TreeGeometry::syn128(EVAL_BLOCKS),
            0.25,
        ),
        // ITESP embeds parity in the tree: zero separate storage.
        row("ITESP64", TreeGeometry::itesp64(EVAL_BLOCKS), 0.0),
        row("ITESP128", TreeGeometry::itesp128(EVAL_BLOCKS), 0.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct(x: f64) -> f64 {
        (x * 1000.0).round() / 10.0
    }

    #[test]
    fn table_i_matches_paper() {
        let rows = table_i();
        let by_name = |n: &str| rows.iter().find(|r| r.organization == n).unwrap();

        let vault = by_name("VAULT");
        assert!((pct(vault.tree) - 1.6).abs() <= 0.1, "{}", pct(vault.tree));
        assert_eq!(pct(vault.mac_parity), 12.5);
        assert!((pct(vault.total()) - 14.1).abs() <= 0.2);

        let syn8 = by_name("Synergy128, x8 chips");
        assert!((pct(syn8.tree) - 0.8).abs() <= 0.1);
        assert!((pct(syn8.total()) - 13.3).abs() <= 0.2);

        let syn16 = by_name("Synergy128, x16 chips");
        assert!((pct(syn16.total()) - 25.8).abs() <= 0.2);

        let itesp64 = by_name("ITESP64");
        assert!((pct(itesp64.total()) - 1.6).abs() <= 0.1);
        assert_eq!(itesp64.mac_parity, 0.0);

        let itesp128 = by_name("ITESP128");
        assert!((pct(itesp128.total()) - 0.8).abs() <= 0.1);
    }

    /// Exact node counts at the 64 GB (2³⁰-block) evaluation span, so
    /// any drift in the tree-geometry arithmetic is caught to the node,
    /// not hidden inside a percentage tolerance.
    #[test]
    fn table_i_exact_values() {
        assert_eq!(EVAL_BLOCKS, 1 << 30);

        // VAULT: 64-ary leaf level, 32/16/.../16-ary above:
        // 16,777,216 + 524,288 + 32,768 + 2,048 + 128 + 8 nodes.
        let vault = TreeGeometry::vault(EVAL_BLOCKS);
        assert_eq!(vault.total_nodes(), 17_336_456);
        assert_eq!(vault.storage_bytes(), 17_336_456 * 64);
        assert_eq!(vault.storage_overhead(), 17_336_456.0 / EVAL_BLOCKS as f64);

        // 128-ary organizations: 8,388,608 + 65,536 + 512 + 4.
        assert_eq!(TreeGeometry::syn128(EVAL_BLOCKS).total_nodes(), 8_454_660);
        assert_eq!(TreeGeometry::itesp128(EVAL_BLOCKS).total_nodes(), 8_454_660);
        // ITESP64's 64-ary leaf level exactly doubles every level.
        assert_eq!(TreeGeometry::itesp64(EVAL_BLOCKS).total_nodes(), 16_909_320);

        // The MAC/parity columns are exact by construction.
        let rows = table_i();
        let mp = |n: &str| {
            rows.iter()
                .find(|r| r.organization == n)
                .unwrap()
                .mac_parity
        };
        assert_eq!(mp("VAULT"), 0.125);
        assert_eq!(mp("Synergy128, x8 chips"), 0.125);
        assert_eq!(mp("Synergy128, x16 chips"), 0.25);
        assert_eq!(mp("ITESP64"), 0.0);
        assert_eq!(mp("ITESP128"), 0.0);
    }

    #[test]
    fn itesp_is_an_order_of_magnitude_smaller_than_synergy() {
        let rows = table_i();
        let syn = rows
            .iter()
            .find(|r| r.organization.starts_with("Synergy128, x8"))
            .unwrap()
            .total();
        let itesp = rows
            .iter()
            .find(|r| r.organization == "ITESP128")
            .unwrap()
            .total();
        assert!(syn / itesp > 10.0);
    }
}
