//! Keyed message authentication codes.
//!
//! Every data block carries a 64-bit MAC computed over the block's
//! contents, its encryption counter, and its address (Section III-F:
//! `MAC = f(Data, Counter, Key)`); the address binding prevents block
//! relocation. We implement SipHash-2-4 from scratch — a keyed PRF that
//! is entirely adequate for a simulator and lets the reliability engine
//! run real trial-correction loops (Section II-C) where candidate blocks
//! are accepted only when their MAC matches.

use serde::{Deserialize, Serialize};

/// A 128-bit MAC key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacKey {
    pub k0: u64,
    pub k1: u64,
}

impl MacKey {
    /// Derive a per-enclave key from a master seed (a stand-in for the
    /// processor's key-derivation function).
    pub fn derive(master: u64, enclave: u64) -> Self {
        MacKey {
            k0: splitmix(master ^ enclave.wrapping_mul(0xA076_1D64_78BD_642F)),
            k1: splitmix(
                master
                    .wrapping_add(enclave)
                    .wrapping_mul(0xE703_7ED1_A0B4_28DB),
            ),
        }
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SipHash-2-4 over an arbitrary byte message.
pub fn siphash24(key: &MacKey, msg: &[u8]) -> u64 {
    let mut v0 = 0x736f_6d65_7073_6575u64 ^ key.k0;
    let mut v1 = 0x646f_7261_6e64_6f6du64 ^ key.k1;
    let mut v2 = 0x6c79_6765_6e65_7261u64 ^ key.k0;
    let mut v3 = 0x7465_6462_7974_6573u64 ^ key.k1;

    macro_rules! sipround {
        () => {
            v0 = v0.wrapping_add(v1);
            v1 = v1.rotate_left(13);
            v1 ^= v0;
            v0 = v0.rotate_left(32);
            v2 = v2.wrapping_add(v3);
            v3 = v3.rotate_left(16);
            v3 ^= v2;
            v0 = v0.wrapping_add(v3);
            v3 = v3.rotate_left(21);
            v3 ^= v0;
            v2 = v2.wrapping_add(v1);
            v1 = v1.rotate_left(17);
            v1 ^= v2;
            v2 = v2.rotate_left(32);
        };
    }

    let mut chunks = msg.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        v3 ^= m;
        sipround!();
        sipround!();
        v0 ^= m;
    }
    // Final block: remaining bytes plus the length in the top byte.
    let rem = chunks.remainder();
    let mut last = [0u8; 8];
    last[..rem.len()].copy_from_slice(rem);
    last[7] = msg.len() as u8;
    let m = u64::from_le_bytes(last);
    v3 ^= m;
    sipround!();
    sipround!();
    v0 ^= m;

    v2 ^= 0xff;
    sipround!();
    sipround!();
    sipround!();
    sipround!();
    v0 ^ v1 ^ v2 ^ v3
}

/// Compute the 64-bit MAC of a 64-byte data block.
///
/// Binds the data to its counter value and physical address, matching
/// `MAC = f(Data, Counter, Key)` with address tweak.
pub fn mac_block(key: &MacKey, data: &[u8; 64], counter: u64, addr: u64) -> u64 {
    let mut msg = [0u8; 80];
    msg[..64].copy_from_slice(data);
    msg[64..72].copy_from_slice(&counter.to_le_bytes());
    msg[72..80].copy_from_slice(&addr.to_le_bytes());
    siphash24(key, &msg)
}

/// Compute the hash stored in a tree node: `Hash = g(node, parent_counter,
/// key)` (Section III-F). The parity words inside an ITESP leaf are part
/// of `node_bytes` — "padding before the leaf node is sent through the
/// hash function".
pub fn hash_node(key: &MacKey, node_bytes: &[u8], parent_counter: u64) -> u64 {
    let mut msg = Vec::with_capacity(node_bytes.len() + 8);
    msg.extend_from_slice(node_bytes);
    msg.extend_from_slice(&parent_counter.to_le_bytes());
    siphash24(key, &msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Official SipHash-2-4 test vectors: key 000102...0f, message
    /// prefixes of 00 01 02 ... — all 64 entries of the reference
    /// implementation's `vectors_sip64` table.
    #[test]
    fn siphash_reference_vectors() {
        let key = MacKey {
            k0: u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]),
            k1: u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]),
        };
        let expected: [u64; 64] = [
            0x726f_db47_dd0e_0e31,
            0x74f8_39c5_93dc_67fd,
            0x0d6c_8009_d9a9_4f5a,
            0x8567_6696_d7fb_7e2d,
            0xcf27_94e0_2771_87b7,
            0x1876_5564_cd99_a68d,
            0xcbc9_466e_58fe_e3ce,
            0xab02_00f5_8b01_d137,
            0x93f5_f579_9a93_2462,
            0x9e00_82df_0ba9_e4b0,
            0x7a5d_bbc5_94dd_b9f3,
            0xf4b3_2f46_226b_ada7,
            0x751e_8fbc_860e_e5fb,
            0x14ea_5627_c084_3d90,
            0xf723_ca90_8e7a_f2ee,
            0xa129_ca61_49be_45e5,
            0x3f2a_cc7f_57c2_9bdb,
            0x699a_e9f5_2cbe_4794,
            0x4bc1_b3f0_968d_d39c,
            0xbb6d_c91d_a779_61bd,
            0xbed6_5cf2_1aa2_ee98,
            0xd0f2_cbb0_2e3b_67c7,
            0x9353_6795_e3a3_3e88,
            0xa80c_038c_cd5c_cec8,
            0xb8ad_50c6_f649_af94,
            0xbce1_92de_8a85_b8ea,
            0x17d8_35b8_5bbb_15f3,
            0x2f2e_6163_076b_cfad,
            0xde4d_aaac_a71d_c9a5,
            0xa6a2_5066_8795_6571,
            0xad87_a353_5c49_ef28,
            0x32d8_92fa_d841_c342,
            0x7127_512f_72f2_7cce,
            0xa7f3_2346_f959_78e3,
            0x12e0_b01a_bb05_1238,
            0x15e0_34d4_0fa1_97ae,
            0x314d_ffbe_0815_a3b4,
            0x0279_90f0_2962_3981,
            0xcadc_d4e5_9ef4_0c4d,
            0x9abf_d876_6a33_735c,
            0x0e3e_a96b_5304_a7d0,
            0xad0c_42d6_fc58_5992,
            0x1873_06c8_9bc2_15a9,
            0xd4a6_0abc_f379_2b95,
            0xf935_451d_e4f2_1df2,
            0xa953_8f04_1975_5787,
            0xdb9a_cddf_f56c_a510,
            0xd06c_98cd_5c09_75eb,
            0xe612_a3cb_9ecb_a951,
            0xc766_e62c_fcad_af96,
            0xee64_435a_9752_fe72,
            0xa192_d576_b245_165a,
            0x0a87_87bf_8ecb_74b2,
            0x81b3_e73d_20b4_9b6f,
            0x7fa8_220b_a3b2_ecea,
            0x2457_31c1_3ca4_2499,
            0xb78d_bfaf_3a8d_83bd,
            0xea1a_d565_322a_1a0b,
            0x60e6_1c23_a379_5013,
            0x6606_d7e4_4628_2b93,
            0x6ca4_ecb1_5c5f_91e1,
            0x9f62_6da1_5c96_25f3,
            0xe51b_3860_8ef2_5f57,
            0x958a_324c_eb06_4572,
        ];
        let msg: Vec<u8> = (0u8..64).collect();
        for (len, want) in expected.iter().enumerate() {
            assert_eq!(
                siphash24(&key, &msg[..len]),
                *want,
                "vector mismatch at len {len}"
            );
        }
    }

    #[test]
    fn mac_changes_with_data_counter_and_addr() {
        let key = MacKey::derive(42, 0);
        let data = [0u8; 64];
        let base = mac_block(&key, &data, 1, 0x1000);
        let mut tweaked = data;
        tweaked[5] ^= 1;
        assert_ne!(base, mac_block(&key, &tweaked, 1, 0x1000));
        assert_ne!(base, mac_block(&key, &data, 2, 0x1000));
        assert_ne!(base, mac_block(&key, &data, 1, 0x1040));
        assert_eq!(base, mac_block(&key, &data, 1, 0x1000));
    }

    #[test]
    fn replay_of_old_counter_is_detected() {
        // A replayed (data, MAC) pair from counter 1 fails under counter 2.
        let key = MacKey::derive(7, 3);
        let data = [0xABu8; 64];
        let old_mac = mac_block(&key, &data, 1, 0x40);
        let current = mac_block(&key, &data, 2, 0x40);
        assert_ne!(old_mac, current);
    }

    #[test]
    fn derived_keys_differ_per_enclave() {
        let a = MacKey::derive(99, 0);
        let b = MacKey::derive(99, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn node_hash_depends_on_parent_counter() {
        let key = MacKey::derive(1, 1);
        let node = [0x5Au8; 64];
        assert_ne!(hash_node(&key, &node, 10), hash_node(&key, &node, 11));
    }
}
