//! Keyed message authentication codes.
//!
//! Every data block carries a 64-bit MAC computed over the block's
//! contents, its encryption counter, and its address (Section III-F:
//! `MAC = f(Data, Counter, Key)`); the address binding prevents block
//! relocation. We implement SipHash-2-4 from scratch — a keyed PRF that
//! is entirely adequate for a simulator and lets the reliability engine
//! run real trial-correction loops (Section II-C) where candidate blocks
//! are accepted only when their MAC matches.

use serde::{Deserialize, Serialize};

/// A 128-bit MAC key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacKey {
    pub k0: u64,
    pub k1: u64,
}

impl MacKey {
    /// Derive a per-enclave key from a master seed (a stand-in for the
    /// processor's key-derivation function).
    pub fn derive(master: u64, enclave: u64) -> Self {
        MacKey {
            k0: splitmix(master ^ enclave.wrapping_mul(0xA076_1D64_78BD_642F)),
            k1: splitmix(
                master
                    .wrapping_add(enclave)
                    .wrapping_mul(0xE703_7ED1_A0B4_28DB),
            ),
        }
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SipHash-2-4 over an arbitrary byte message.
pub fn siphash24(key: &MacKey, msg: &[u8]) -> u64 {
    let mut v0 = 0x736f_6d65_7073_6575u64 ^ key.k0;
    let mut v1 = 0x646f_7261_6e64_6f6du64 ^ key.k1;
    let mut v2 = 0x6c79_6765_6e65_7261u64 ^ key.k0;
    let mut v3 = 0x7465_6462_7974_6573u64 ^ key.k1;

    macro_rules! sipround {
        () => {
            v0 = v0.wrapping_add(v1);
            v1 = v1.rotate_left(13);
            v1 ^= v0;
            v0 = v0.rotate_left(32);
            v2 = v2.wrapping_add(v3);
            v3 = v3.rotate_left(16);
            v3 ^= v2;
            v0 = v0.wrapping_add(v3);
            v3 = v3.rotate_left(21);
            v3 ^= v0;
            v2 = v2.wrapping_add(v1);
            v1 = v1.rotate_left(17);
            v1 ^= v2;
            v2 = v2.rotate_left(32);
        };
    }

    let mut chunks = msg.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        v3 ^= m;
        sipround!();
        sipround!();
        v0 ^= m;
    }
    // Final block: remaining bytes plus the length in the top byte.
    let rem = chunks.remainder();
    let mut last = [0u8; 8];
    last[..rem.len()].copy_from_slice(rem);
    last[7] = msg.len() as u8;
    let m = u64::from_le_bytes(last);
    v3 ^= m;
    sipround!();
    sipround!();
    v0 ^= m;

    v2 ^= 0xff;
    sipround!();
    sipround!();
    sipround!();
    sipround!();
    v0 ^ v1 ^ v2 ^ v3
}

/// One SipHash round applied to a single lane's `[v0, v1, v2, v3]`
/// state — the scalar twin of the 4-lane round in [`siphash24_batch`],
/// used to drain ragged per-lane tails.
#[inline(always)]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// One SipHash round applied to four independent lanes at once. The
/// state is carried structure-of-arrays (`v0[lane]`, ...) so every
/// operation is four independent u64 ops — the shape LLVM turns into
/// full-width vector instructions on stable Rust, no `std::simd`
/// needed.
#[inline(always)]
fn sipround4(v0: &mut [u64; 4], v1: &mut [u64; 4], v2: &mut [u64; 4], v3: &mut [u64; 4]) {
    for l in 0..4 {
        v0[l] = v0[l].wrapping_add(v1[l]);
        v1[l] = v1[l].rotate_left(13);
        v1[l] ^= v0[l];
        v0[l] = v0[l].rotate_left(32);
        v2[l] = v2[l].wrapping_add(v3[l]);
        v3[l] = v3[l].rotate_left(16);
        v3[l] ^= v2[l];
        v0[l] = v0[l].wrapping_add(v3[l]);
        v3[l] = v3[l].rotate_left(21);
        v3[l] ^= v0[l];
        v2[l] = v2[l].wrapping_add(v1[l]);
        v1[l] = v1[l].rotate_left(17);
        v1[l] ^= v2[l];
        v2[l] = v2[l].rotate_left(32);
    }
}

/// Compression word `w` of a message: full little-endian words followed
/// by the padded final block (remainder bytes, length in the top byte)
/// — exactly the word stream [`siphash24`] consumes.
#[inline(always)]
fn message_word(msg: &[u8], w: usize) -> u64 {
    let full = msg.len() / 8;
    if w < full {
        u64::from_le_bytes(msg[w * 8..w * 8 + 8].try_into().expect("8-byte word"))
    } else {
        debug_assert_eq!(w, full, "word index past the final block");
        let rem = &msg[full * 8..];
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        last[7] = msg.len() as u8;
        u64::from_le_bytes(last)
    }
}

/// Four independent SipHash-2-4 computations in one pass.
///
/// Lane `l` hashes `msgs[l]` under `keys[l]`; the result matches
/// [`siphash24`] lane for lane. All four lane states advance through
/// each compression round together in `[u64; 4]` arrays (explicit
/// lanes on stable Rust). Messages may have *ragged* lengths: lanes
/// run in lockstep while every lane still has words, then each
/// finished lane drains its tail and finalizes with the scalar-twin
/// round. Equal-length messages — the [`mac_block_x4`] case, always
/// 80 bytes — stay in lockstep end to end.
pub fn siphash24_batch(keys: &[MacKey; 4], msgs: [&[u8]; 4]) -> [u64; 4] {
    let mut v0 = [0u64; 4];
    let mut v1 = [0u64; 4];
    let mut v2 = [0u64; 4];
    let mut v3 = [0u64; 4];
    for l in 0..4 {
        v0[l] = 0x736f_6d65_7073_6575u64 ^ keys[l].k0;
        v1[l] = 0x646f_7261_6e64_6f6du64 ^ keys[l].k1;
        v2[l] = 0x6c79_6765_6e65_7261u64 ^ keys[l].k0;
        v3[l] = 0x7465_6462_7974_6573u64 ^ keys[l].k1;
    }

    // Words per lane, final padded block included.
    let words: [usize; 4] = std::array::from_fn(|l| msgs[l].len() / 8 + 1);
    let lockstep = *words.iter().min().expect("four lanes");
    for w in 0..lockstep {
        let m: [u64; 4] = std::array::from_fn(|l| message_word(msgs[l], w));
        for l in 0..4 {
            v3[l] ^= m[l];
        }
        sipround4(&mut v0, &mut v1, &mut v2, &mut v3);
        sipround4(&mut v0, &mut v1, &mut v2, &mut v3);
        for l in 0..4 {
            v0[l] ^= m[l];
        }
    }

    if words.iter().all(|&n| n == lockstep) {
        // Equal lengths: finalize all four lanes together.
        for v in v2.iter_mut() {
            *v ^= 0xff;
        }
        for _ in 0..4 {
            sipround4(&mut v0, &mut v1, &mut v2, &mut v3);
        }
        std::array::from_fn(|l| v0[l] ^ v1[l] ^ v2[l] ^ v3[l])
    } else {
        // Ragged tails: drain each lane's remaining words and finalize
        // it independently.
        std::array::from_fn(|l| {
            let mut v = [v0[l], v1[l], v2[l], v3[l]];
            for w in lockstep..words[l] {
                let m = message_word(msgs[l], w);
                v[3] ^= m;
                sipround(&mut v);
                sipround(&mut v);
                v[0] ^= m;
            }
            v[2] ^= 0xff;
            for _ in 0..4 {
                sipround(&mut v);
            }
            v[0] ^ v[1] ^ v[2] ^ v[3]
        })
    }
}

/// SipHash-2-4 over a message of whole little-endian u64 words, without
/// materializing the byte buffer. Matches `siphash24(key, bytes)` for
/// `bytes` = the words' little-endian concatenation — the counter and
/// summary packings the functional verifier hashes.
pub fn siphash24_words(key: &MacKey, words: &[u64]) -> u64 {
    let mut v = [
        0x736f_6d65_7073_6575u64 ^ key.k0,
        0x646f_7261_6e64_6f6du64 ^ key.k1,
        0x6c79_6765_6e65_7261u64 ^ key.k0,
        0x7465_6462_7974_6573u64 ^ key.k1,
    ];
    for &m in words {
        v[3] ^= m;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= m;
    }
    // Whole-word messages have an empty remainder: the final block is
    // just the byte length (truncated to u8, as in the byte path) in
    // the top byte.
    let m = ((words.len() as u64 * 8) & 0xFF) << 56;
    v[3] ^= m;
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^= m;
    v[2] ^= 0xff;
    for _ in 0..4 {
        sipround(&mut v);
    }
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

/// Compute the 64-bit MAC of a 64-byte data block.
///
/// Binds the data to its counter value and physical address, matching
/// `MAC = f(Data, Counter, Key)` with address tweak.
pub fn mac_block(key: &MacKey, data: &[u8; 64], counter: u64, addr: u64) -> u64 {
    let mut msg = [0u8; 80];
    msg[..64].copy_from_slice(data);
    msg[64..72].copy_from_slice(&counter.to_le_bytes());
    msg[72..80].copy_from_slice(&addr.to_le_bytes());
    siphash24(key, &msg)
}

/// Four [`mac_block`] computations in one 4-lane pass. Every lane's
/// message is the same 80-byte layout, so the lanes stay in lockstep
/// through the whole hash — this is the unit the reliability engine's
/// trial-correction loop and the batched verifier drain bursts with.
pub fn mac_block_x4(
    keys: &[MacKey; 4],
    data: [&[u8; 64]; 4],
    counters: [u64; 4],
    addrs: [u64; 4],
) -> [u64; 4] {
    let mut bufs = [[0u8; 80]; 4];
    for l in 0..4 {
        bufs[l][..64].copy_from_slice(data[l]);
        bufs[l][64..72].copy_from_slice(&counters[l].to_le_bytes());
        bufs[l][72..80].copy_from_slice(&addrs[l].to_le_bytes());
    }
    siphash24_batch(
        keys,
        [&bufs[0][..], &bufs[1][..], &bufs[2][..], &bufs[3][..]],
    )
}

/// Compute the hash stored in a tree node: `Hash = g(node, parent_counter,
/// key)` (Section III-F). The parity words inside an ITESP leaf are part
/// of `node_bytes` — "padding before the leaf node is sent through the
/// hash function".
pub fn hash_node(key: &MacKey, node_bytes: &[u8], parent_counter: u64) -> u64 {
    // Nodes are one cache block; hash from a stack buffer instead of a
    // per-call allocation (oversized callers keep the heap path).
    let len = node_bytes.len();
    if len <= 248 {
        let mut buf = [0u8; 256];
        buf[..len].copy_from_slice(node_bytes);
        buf[len..len + 8].copy_from_slice(&parent_counter.to_le_bytes());
        siphash24(key, &buf[..len + 8])
    } else {
        let mut msg = Vec::with_capacity(len + 8);
        msg.extend_from_slice(node_bytes);
        msg.extend_from_slice(&parent_counter.to_le_bytes());
        siphash24(key, &msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The official reference key 000102...0f.
    fn reference_key() -> MacKey {
        MacKey {
            k0: u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]),
            k1: u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]),
        }
    }

    /// Official SipHash-2-4 test vectors: key 000102...0f, message
    /// prefixes of 00 01 02 ... — all 64 entries of the reference
    /// implementation's `vectors_sip64` table. Shared by the scalar and
    /// 4-lane batch paths.
    const SIP64_VECTORS: [u64; 64] = [
        0x726f_db47_dd0e_0e31,
        0x74f8_39c5_93dc_67fd,
        0x0d6c_8009_d9a9_4f5a,
        0x8567_6696_d7fb_7e2d,
        0xcf27_94e0_2771_87b7,
        0x1876_5564_cd99_a68d,
        0xcbc9_466e_58fe_e3ce,
        0xab02_00f5_8b01_d137,
        0x93f5_f579_9a93_2462,
        0x9e00_82df_0ba9_e4b0,
        0x7a5d_bbc5_94dd_b9f3,
        0xf4b3_2f46_226b_ada7,
        0x751e_8fbc_860e_e5fb,
        0x14ea_5627_c084_3d90,
        0xf723_ca90_8e7a_f2ee,
        0xa129_ca61_49be_45e5,
        0x3f2a_cc7f_57c2_9bdb,
        0x699a_e9f5_2cbe_4794,
        0x4bc1_b3f0_968d_d39c,
        0xbb6d_c91d_a779_61bd,
        0xbed6_5cf2_1aa2_ee98,
        0xd0f2_cbb0_2e3b_67c7,
        0x9353_6795_e3a3_3e88,
        0xa80c_038c_cd5c_cec8,
        0xb8ad_50c6_f649_af94,
        0xbce1_92de_8a85_b8ea,
        0x17d8_35b8_5bbb_15f3,
        0x2f2e_6163_076b_cfad,
        0xde4d_aaac_a71d_c9a5,
        0xa6a2_5066_8795_6571,
        0xad87_a353_5c49_ef28,
        0x32d8_92fa_d841_c342,
        0x7127_512f_72f2_7cce,
        0xa7f3_2346_f959_78e3,
        0x12e0_b01a_bb05_1238,
        0x15e0_34d4_0fa1_97ae,
        0x314d_ffbe_0815_a3b4,
        0x0279_90f0_2962_3981,
        0xcadc_d4e5_9ef4_0c4d,
        0x9abf_d876_6a33_735c,
        0x0e3e_a96b_5304_a7d0,
        0xad0c_42d6_fc58_5992,
        0x1873_06c8_9bc2_15a9,
        0xd4a6_0abc_f379_2b95,
        0xf935_451d_e4f2_1df2,
        0xa953_8f04_1975_5787,
        0xdb9a_cddf_f56c_a510,
        0xd06c_98cd_5c09_75eb,
        0xe612_a3cb_9ecb_a951,
        0xc766_e62c_fcad_af96,
        0xee64_435a_9752_fe72,
        0xa192_d576_b245_165a,
        0x0a87_87bf_8ecb_74b2,
        0x81b3_e73d_20b4_9b6f,
        0x7fa8_220b_a3b2_ecea,
        0x2457_31c1_3ca4_2499,
        0xb78d_bfaf_3a8d_83bd,
        0xea1a_d565_322a_1a0b,
        0x60e6_1c23_a379_5013,
        0x6606_d7e4_4628_2b93,
        0x6ca4_ecb1_5c5f_91e1,
        0x9f62_6da1_5c96_25f3,
        0xe51b_3860_8ef2_5f57,
        0x958a_324c_eb06_4572,
    ];

    #[test]
    fn siphash_reference_vectors() {
        let key = reference_key();
        let msg: Vec<u8> = (0u8..64).collect();
        for (len, want) in SIP64_VECTORS.iter().enumerate() {
            assert_eq!(
                siphash24(&key, &msg[..len]),
                *want,
                "vector mismatch at len {len}"
            );
        }
    }

    /// The 4-lane batch must reproduce every official vector, with
    /// equal-length lanes (the fully-lockstep path).
    #[test]
    fn siphash_batch_reference_vectors_equal_lanes() {
        let key = reference_key();
        let keys = [key; 4];
        let msg: Vec<u8> = (0u8..64).collect();
        for (len, want) in SIP64_VECTORS.iter().enumerate() {
            let got = siphash24_batch(&keys, [&msg[..len]; 4]);
            assert_eq!(got, [*want; 4], "equal-lane mismatch at len {len}");
        }
    }

    /// The 4-lane batch must reproduce every official vector with
    /// *ragged* per-lane lengths: every length 0..64 appears in some
    /// lane alongside three deliberately different lengths, exercising
    /// the lockstep-prefix + scalar-tail split.
    #[test]
    fn siphash_batch_reference_vectors_ragged_lanes() {
        let key = reference_key();
        let keys = [key; 4];
        let msg: Vec<u8> = (0u8..64).collect();
        for len in 0..SIP64_VECTORS.len() {
            let lens = [len, (len + 1) % 64, (len + 17) % 64, (len + 40) % 64];
            let msgs: [&[u8]; 4] = [
                &msg[..lens[0]],
                &msg[..lens[1]],
                &msg[..lens[2]],
                &msg[..lens[3]],
            ];
            let got = siphash24_batch(&keys, msgs);
            for l in 0..4 {
                assert_eq!(
                    got[l], SIP64_VECTORS[lens[l]],
                    "ragged mismatch, lane {l} len {} (base {len})",
                    lens[l]
                );
            }
        }
    }

    /// Batch lanes are fully independent: distinct keys and messages
    /// per lane must each match the scalar twin, across word-boundary
    /// tail lengths (0 and 7 mod 8 included).
    #[test]
    fn siphash_batch_matches_scalar_with_distinct_keys() {
        let keys = [
            MacKey::derive(1, 0),
            MacKey::derive(2, 1),
            MacKey::derive(3, 2),
            MacKey::derive(4, 3),
        ];
        let msg: Vec<u8> = (0..=255u8).map(|b| b.wrapping_mul(31) ^ 0x5A).collect();
        for base in [0usize, 1, 7, 8, 9, 63, 64, 65, 120] {
            let lens = [base, base + 3, base + 8, base + 15];
            let msgs: [&[u8]; 4] = [
                &msg[..lens[0]],
                &msg[..lens[1]],
                &msg[..lens[2]],
                &msg[..lens[3]],
            ];
            let got = siphash24_batch(&keys, msgs);
            for l in 0..4 {
                assert_eq!(
                    got[l],
                    siphash24(&keys[l], msgs[l]),
                    "lane {l} diverged from scalar at len {}",
                    lens[l]
                );
            }
        }
    }

    /// `mac_block_x4` is exactly four `mac_block` calls.
    #[test]
    fn mac_block_x4_matches_scalar() {
        let keys = [
            MacKey::derive(10, 0),
            MacKey::derive(10, 1),
            MacKey::derive(11, 0),
            MacKey::derive(12, 5),
        ];
        let mut blocks = [[0u8; 64]; 4];
        for (l, b) in blocks.iter_mut().enumerate() {
            for (i, byte) in b.iter_mut().enumerate() {
                *byte = (i as u8).wrapping_mul(l as u8 + 3) ^ 0xC3;
            }
        }
        let counters = [1u64, 0, u64::MAX, 0x1234_5678];
        let addrs = [0u64, 0x40, 0xFFFF_FFC0, 0xDEAD_0000];
        let got = mac_block_x4(
            &keys,
            [&blocks[0], &blocks[1], &blocks[2], &blocks[3]],
            counters,
            addrs,
        );
        for l in 0..4 {
            assert_eq!(
                got[l],
                mac_block(&keys[l], &blocks[l], counters[l], addrs[l]),
                "lane {l}"
            );
        }
    }

    /// `siphash24_words` matches the byte path on the words' LE
    /// concatenation for every whole-word length the verifier packs.
    #[test]
    fn siphash_words_matches_byte_path() {
        let key = MacKey::derive(77, 7);
        let words: Vec<u64> = (0..130u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        for n in [0usize, 1, 2, 7, 8, 16, 64, 127, 128, 130] {
            let bytes: Vec<u8> = words[..n].iter().flat_map(|w| w.to_le_bytes()).collect();
            assert_eq!(
                siphash24_words(&key, &words[..n]),
                siphash24(&key, &bytes),
                "word-path mismatch at {n} words"
            );
        }
    }

    #[test]
    fn mac_changes_with_data_counter_and_addr() {
        let key = MacKey::derive(42, 0);
        let data = [0u8; 64];
        let base = mac_block(&key, &data, 1, 0x1000);
        let mut tweaked = data;
        tweaked[5] ^= 1;
        assert_ne!(base, mac_block(&key, &tweaked, 1, 0x1000));
        assert_ne!(base, mac_block(&key, &data, 2, 0x1000));
        assert_ne!(base, mac_block(&key, &data, 1, 0x1040));
        assert_eq!(base, mac_block(&key, &data, 1, 0x1000));
    }

    #[test]
    fn replay_of_old_counter_is_detected() {
        // A replayed (data, MAC) pair from counter 1 fails under counter 2.
        let key = MacKey::derive(7, 3);
        let data = [0xABu8; 64];
        let old_mac = mac_block(&key, &data, 1, 0x40);
        let current = mac_block(&key, &data, 2, 0x40);
        assert_ne!(old_mac, current);
    }

    #[test]
    fn derived_keys_differ_per_enclave() {
        let a = MacKey::derive(99, 0);
        let b = MacKey::derive(99, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn node_hash_depends_on_parent_counter() {
        let key = MacKey::derive(1, 1);
        let node = [0x5Au8; 64];
        assert_ne!(hash_node(&key, &node, 10), hash_node(&key, &node, 11));
    }

    /// The stack-buffer fast path and the heap fallback agree with a
    /// straight concat-and-hash on both sides of the 248-byte cutoff.
    #[test]
    fn node_hash_stack_and_heap_paths_agree() {
        let key = MacKey::derive(9, 4);
        for len in [0usize, 1, 64, 247, 248, 249, 300] {
            let node: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(7)).collect();
            let mut msg = node.clone();
            msg.extend_from_slice(&0xFACE_u64.to_le_bytes());
            assert_eq!(
                hash_node(&key, &node, 0xFACE),
                siphash24(&key, &msg),
                "hash_node mismatch at node len {len}"
            );
        }
    }
}
