//! Keyed message authentication codes.
//!
//! Every data block carries a 64-bit MAC computed over the block's
//! contents, its encryption counter, and its address (Section III-F:
//! `MAC = f(Data, Counter, Key)`); the address binding prevents block
//! relocation. We implement SipHash-2-4 from scratch — a keyed PRF that
//! is entirely adequate for a simulator and lets the reliability engine
//! run real trial-correction loops (Section II-C) where candidate blocks
//! are accepted only when their MAC matches.

use serde::{Deserialize, Serialize};

/// A 128-bit MAC key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacKey {
    pub k0: u64,
    pub k1: u64,
}

impl MacKey {
    /// Derive a per-enclave key from a master seed (a stand-in for the
    /// processor's key-derivation function).
    pub fn derive(master: u64, enclave: u64) -> Self {
        MacKey {
            k0: splitmix(master ^ enclave.wrapping_mul(0xA076_1D64_78BD_642F)),
            k1: splitmix(
                master
                    .wrapping_add(enclave)
                    .wrapping_mul(0xE703_7ED1_A0B4_28DB),
            ),
        }
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SipHash-2-4 over an arbitrary byte message.
pub fn siphash24(key: &MacKey, msg: &[u8]) -> u64 {
    let mut v0 = 0x736f_6d65_7073_6575u64 ^ key.k0;
    let mut v1 = 0x646f_7261_6e64_6f6du64 ^ key.k1;
    let mut v2 = 0x6c79_6765_6e65_7261u64 ^ key.k0;
    let mut v3 = 0x7465_6462_7974_6573u64 ^ key.k1;

    macro_rules! sipround {
        () => {
            v0 = v0.wrapping_add(v1);
            v1 = v1.rotate_left(13);
            v1 ^= v0;
            v0 = v0.rotate_left(32);
            v2 = v2.wrapping_add(v3);
            v3 = v3.rotate_left(16);
            v3 ^= v2;
            v0 = v0.wrapping_add(v3);
            v3 = v3.rotate_left(21);
            v3 ^= v0;
            v2 = v2.wrapping_add(v1);
            v1 = v1.rotate_left(17);
            v1 ^= v2;
            v2 = v2.rotate_left(32);
        };
    }

    let mut chunks = msg.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        v3 ^= m;
        sipround!();
        sipround!();
        v0 ^= m;
    }
    // Final block: remaining bytes plus the length in the top byte.
    let rem = chunks.remainder();
    let mut last = [0u8; 8];
    last[..rem.len()].copy_from_slice(rem);
    last[7] = msg.len() as u8;
    let m = u64::from_le_bytes(last);
    v3 ^= m;
    sipround!();
    sipround!();
    v0 ^= m;

    v2 ^= 0xff;
    sipround!();
    sipround!();
    sipround!();
    sipround!();
    v0 ^ v1 ^ v2 ^ v3
}

/// Compute the 64-bit MAC of a 64-byte data block.
///
/// Binds the data to its counter value and physical address, matching
/// `MAC = f(Data, Counter, Key)` with address tweak.
pub fn mac_block(key: &MacKey, data: &[u8; 64], counter: u64, addr: u64) -> u64 {
    let mut msg = [0u8; 80];
    msg[..64].copy_from_slice(data);
    msg[64..72].copy_from_slice(&counter.to_le_bytes());
    msg[72..80].copy_from_slice(&addr.to_le_bytes());
    siphash24(key, &msg)
}

/// Compute the hash stored in a tree node: `Hash = g(node, parent_counter,
/// key)` (Section III-F). The parity words inside an ITESP leaf are part
/// of `node_bytes` — "padding before the leaf node is sent through the
/// hash function".
pub fn hash_node(key: &MacKey, node_bytes: &[u8], parent_counter: u64) -> u64 {
    let mut msg = Vec::with_capacity(node_bytes.len() + 8);
    msg.extend_from_slice(node_bytes);
    msg.extend_from_slice(&parent_counter.to_le_bytes());
    siphash24(key, &msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Official SipHash-2-4 test vector (key 000102...0f, msg 00 01 ... ).
    #[test]
    fn siphash_reference_vectors() {
        let key = MacKey {
            k0: u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]),
            k1: u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]),
        };
        // From the SipHash reference implementation's vectors_sip64.
        let expected: [u64; 4] = [
            0x726f_db47_dd0e_0e31,
            0x74f8_39c5_93dc_67fd,
            0x0d6c_8009_d9a9_4f5a,
            0x8567_6696_d7fb_7e2d,
        ];
        let msg: Vec<u8> = (0u8..16).collect();
        for (len, want) in expected.iter().enumerate() {
            assert_eq!(
                siphash24(&key, &msg[..len]),
                *want,
                "vector mismatch at len {len}"
            );
        }
    }

    #[test]
    fn mac_changes_with_data_counter_and_addr() {
        let key = MacKey::derive(42, 0);
        let data = [0u8; 64];
        let base = mac_block(&key, &data, 1, 0x1000);
        let mut tweaked = data;
        tweaked[5] ^= 1;
        assert_ne!(base, mac_block(&key, &tweaked, 1, 0x1000));
        assert_ne!(base, mac_block(&key, &data, 2, 0x1000));
        assert_ne!(base, mac_block(&key, &data, 1, 0x1040));
        assert_eq!(base, mac_block(&key, &data, 1, 0x1000));
    }

    #[test]
    fn replay_of_old_counter_is_detected() {
        // A replayed (data, MAC) pair from counter 1 fails under counter 2.
        let key = MacKey::derive(7, 3);
        let data = [0xABu8; 64];
        let old_mac = mac_block(&key, &data, 1, 0x40);
        let current = mac_block(&key, &data, 2, 0x40);
        assert_ne!(old_mac, current);
    }

    #[test]
    fn derived_keys_differ_per_enclave() {
        let a = MacKey::derive(99, 0);
        let b = MacKey::derive(99, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn node_hash_depends_on_parent_counter() {
        let key = MacKey::derive(1, 1);
        let node = [0x5Au8; 64];
        assert_ne!(hash_node(&key, &node, 10), hash_node(&key, &node, 11));
    }
}
