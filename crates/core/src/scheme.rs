//! The secure-memory designs evaluated in the paper.
//!
//! [`Scheme`] enumerates every bar of Figures 8 and 11; [`SchemeSpec`]
//! is the mechanical description the engine executes. The progression
//! mirrors the paper's narrative:
//!
//! 1. `Vault` — separate MAC + counter tree (VAULT baseline);
//! 2. `ItVault` — + isolated trees and metadata caches;
//! 3. `Synergy` — MAC moved into the ECC field, per-block parity;
//! 4. `ItSynergy` — + isolation;
//! 5. `ItSynergyParityCache` — + coalescing parity cache;
//! 6. `ItSynergySharedParity` — parity shared across 8 ranks (RMW);
//! 7. `ItSynergySharedParityCache` — shared parity + parity cache;
//! 8. `Itesp` — shared parity embedded in the tree leaves;
//! 9. `Syn128` / `ItSyn128` / `Itesp64` / `Itesp128` — the Morphable-
//!    counter family of Figure 11.
//!
//! Two related-work baselines extend the matrix beyond the paper's
//! tree-walk lineage (see PAPERS.md):
//!
//! 10. `SecDdr` — link-level authentication at the DDR interface
//!     (arXiv:2209.00685): per-link MAC carried in the ECC transfer
//!     plus on-chip anti-replay counters, no integrity tree at all;
//! 11. `IrOram` — integrity + reliability on Ring ORAM
//!     (arXiv:2012.14318): every access walks an ORAM bucket path,
//!     with parity-based correction over the buckets.
//!
//! Each scheme is executed by one of three [`ModelFamily`] traffic
//! models behind the `SchemeModel` trait (see [`crate::model`]).

use serde::{Deserialize, Serialize};

use crate::tree::TreeGeometry;

/// How error-correction parity is organized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParityMode {
    /// No separate parity structure (baseline ECC lives in the 9th chip,
    /// transferred inline with data).
    None,
    /// Synergy: one 64-bit parity word per data block, written on every
    /// data write (needs DRAM write masking).
    PerBlock,
    /// Parity XOR-shared by N blocks in different ranks; updates are
    /// read-modify-writes (Section III-C).
    Shared(u64),
    /// Shared parity embedded in the tree leaf (ITESP, Section III-D).
    Embedded,
}

/// Which counter-tree family a scheme uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TreeKind {
    /// No integrity protection (non-secure baseline).
    None,
    /// VAULT arities 64/32/16.
    Vault,
    /// VAULT-based ITESP: leaf 32 + embedded parity.
    VaultItesp,
    /// Morphable, arity 128 throughout (SYN128).
    Morphable128,
    /// ITESP 64: leaf 64 + embedded parity, 128 above.
    MorphItesp64,
    /// ITESP 128: leaf 128 + embedded parity.
    MorphItesp128,
}

impl TreeKind {
    /// Instantiate the geometry over `data_blocks`.
    pub fn geometry(self, data_blocks: u64) -> Option<TreeGeometry> {
        match self {
            TreeKind::None => None,
            TreeKind::Vault => Some(TreeGeometry::vault(data_blocks)),
            TreeKind::VaultItesp => Some(TreeGeometry::vault_itesp(data_blocks)),
            TreeKind::Morphable128 => Some(TreeGeometry::syn128(data_blocks)),
            TreeKind::MorphItesp64 => Some(TreeGeometry::itesp64(data_blocks)),
            TreeKind::MorphItesp128 => Some(TreeGeometry::itesp128(data_blocks)),
        }
    }
}

/// Mechanical description of a secure-memory design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemeSpec {
    pub tree: TreeKind,
    /// Per-enclave trees and metadata-cache partitions (Section III-A).
    pub isolated: bool,
    /// MAC transferred in the ECC field with the data (Synergy) instead
    /// of via a separate MAC structure (VAULT).
    pub mac_inline: bool,
    pub parity: ParityMode,
    /// On-chip coalescing parity cache (never filled by reads).
    pub parity_cached: bool,
}

/// Every evaluated design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Non-secure baseline: plain ECC DIMM.
    Unsecure,
    /// VAULT: separate MAC store + VAULT tree, shared across programs.
    Vault,
    /// VAULT with isolated trees and metadata caches.
    ItVault,
    /// VAULT + Synergy: MAC inline, per-block parity, shared tree.
    Synergy,
    /// Synergy with isolation.
    ItSynergy,
    /// Isolated Synergy plus a coalescing parity cache.
    ItSynergyParityCache,
    /// Isolated Synergy with shared parity, no parity cache.
    ItSynergySharedParity,
    /// Isolated Synergy with shared parity and a parity cache.
    ItSynergySharedParityCache,
    /// The proposal: isolated tree with embedded shared parity.
    Itesp,
    /// Morphable-counter Synergy (arity 128), shared.
    Syn128,
    /// Morphable-counter Synergy with isolation.
    ItSyn128,
    /// ITESP on Morphable counters, leaf arity 64.
    Itesp64,
    /// ITESP on Morphable counters, leaf arity 128.
    Itesp128,
    /// SecDDR baseline: link-level MAC in the ECC transfer + on-chip
    /// anti-replay counters at the DDR interface. No tree, no on-chip
    /// metadata cache pressure, detection-only reliability.
    SecDdr,
    /// IRO baseline: integrity + reliability on Ring ORAM — bucket-path
    /// accesses hide the address trace, bucket parity corrects.
    IrOram,
}

/// Which traffic model executes a scheme (the `SchemeModel`
/// implementations in [`crate::model`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelFamily {
    /// Counter-tree walk per access (every scheme of the paper's own
    /// lineage, including the treeless `Unsecure` degenerate case).
    TreeWalk,
    /// Link-level authentication at the memory interface: zero extra
    /// transactions (SecDDR).
    LinkLevel,
    /// ORAM bucket-path accesses with position remapping (IRO).
    Oram,
}

/// What an off-chip observer learns — the x-axis classes of the
/// `figpareto` sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LeakageClass {
    /// Shared metadata structures: cross-program cache occupancy and
    /// tree-walk timing leak between tenants (VAULT/Synergy family).
    SharedMetadata,
    /// Per-enclave trees and cache partitions close the metadata side
    /// channel; the address trace itself remains visible.
    IsolatedMetadata,
    /// No off-chip metadata at all — only the data address trace is
    /// observable (Unsecure, SecDDR).
    InterfaceOnly,
    /// ORAM: the address trace is hidden too.
    PatternHidden,
}

impl LeakageClass {
    /// Plot ordering: most leaky first.
    pub fn index(self) -> usize {
        match self {
            LeakageClass::SharedMetadata => 0,
            LeakageClass::IsolatedMetadata => 1,
            LeakageClass::InterfaceOnly => 2,
            LeakageClass::PatternHidden => 3,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            LeakageClass::SharedMetadata => "shared-metadata",
            LeakageClass::IsolatedMetadata => "isolated-metadata",
            LeakageClass::InterfaceOnly => "interface-only",
            LeakageClass::PatternHidden => "pattern-hidden",
        }
    }
}

impl Scheme {
    /// Every design point, in the paper's narrative order, then the
    /// related-work baselines.
    pub const ALL: [Scheme; 15] = [
        Scheme::Unsecure,
        Scheme::Vault,
        Scheme::ItVault,
        Scheme::Synergy,
        Scheme::ItSynergy,
        Scheme::ItSynergyParityCache,
        Scheme::ItSynergySharedParity,
        Scheme::ItSynergySharedParityCache,
        Scheme::Itesp,
        Scheme::Syn128,
        Scheme::ItSyn128,
        Scheme::Itesp64,
        Scheme::Itesp128,
        Scheme::SecDdr,
        Scheme::IrOram,
    ];

    /// The paper's own 13 design points — every scheme the scalar
    /// [`crate::ReferenceEngine`] understands. The lockstep equivalence
    /// oracle iterates exactly this set; the related-work baselines
    /// (`SecDdr`, `IrOram`) are deliberately excluded because the
    /// reference twin predates them.
    pub const TREE_LINEAGE: [Scheme; 13] = [
        Scheme::Unsecure,
        Scheme::Vault,
        Scheme::ItVault,
        Scheme::Synergy,
        Scheme::ItSynergy,
        Scheme::ItSynergyParityCache,
        Scheme::ItSynergySharedParity,
        Scheme::ItSynergySharedParityCache,
        Scheme::Itesp,
        Scheme::Syn128,
        Scheme::ItSyn128,
        Scheme::Itesp64,
        Scheme::Itesp128,
    ];

    /// Parse a figure label (e.g. `"ITSYN+SP"`) back into a scheme.
    /// Case-insensitive.
    ///
    /// # Errors
    /// [`crate::Error::UnknownScheme`] listing the valid labels.
    pub fn from_label(label: &str) -> Result<Scheme, crate::Error> {
        Scheme::ALL
            .into_iter()
            .find(|s| s.label().eq_ignore_ascii_case(label))
            .ok_or_else(|| crate::Error::UnknownScheme(label.to_owned()))
    }

    /// The eight Figure 8 bars, in plotting order.
    pub const FIGURE_8: [Scheme; 8] = [
        Scheme::Vault,
        Scheme::ItVault,
        Scheme::Synergy,
        Scheme::ItSynergy,
        Scheme::ItSynergyParityCache,
        Scheme::ItSynergySharedParity,
        Scheme::ItSynergySharedParityCache,
        Scheme::Itesp,
    ];

    /// The Figure 11 bars (Morphable-counter family), in plotting order.
    pub const FIGURE_11: [Scheme; 5] = [
        Scheme::Synergy,
        Scheme::Syn128,
        Scheme::ItSyn128,
        Scheme::Itesp64,
        Scheme::Itesp128,
    ];

    /// Mechanical spec for this design point.
    pub fn spec(self) -> SchemeSpec {
        use Scheme::*;
        match self {
            Unsecure => SchemeSpec {
                tree: TreeKind::None,
                isolated: false,
                mac_inline: true,
                parity: ParityMode::None,
                parity_cached: false,
            },
            Vault => SchemeSpec {
                tree: TreeKind::Vault,
                isolated: false,
                mac_inline: false,
                parity: ParityMode::None,
                parity_cached: false,
            },
            ItVault => SchemeSpec {
                tree: TreeKind::Vault,
                isolated: true,
                mac_inline: false,
                parity: ParityMode::None,
                parity_cached: false,
            },
            Synergy => SchemeSpec {
                tree: TreeKind::Vault,
                isolated: false,
                mac_inline: true,
                parity: ParityMode::PerBlock,
                parity_cached: false,
            },
            ItSynergy => SchemeSpec {
                tree: TreeKind::Vault,
                isolated: true,
                mac_inline: true,
                parity: ParityMode::PerBlock,
                parity_cached: false,
            },
            ItSynergyParityCache => SchemeSpec {
                tree: TreeKind::Vault,
                isolated: true,
                mac_inline: true,
                parity: ParityMode::PerBlock,
                parity_cached: true,
            },
            ItSynergySharedParity => SchemeSpec {
                tree: TreeKind::Vault,
                isolated: true,
                mac_inline: true,
                parity: ParityMode::Shared(8),
                parity_cached: false,
            },
            ItSynergySharedParityCache => SchemeSpec {
                tree: TreeKind::Vault,
                isolated: true,
                mac_inline: true,
                parity: ParityMode::Shared(8),
                parity_cached: true,
            },
            Itesp => SchemeSpec {
                tree: TreeKind::VaultItesp,
                isolated: true,
                mac_inline: true,
                parity: ParityMode::Embedded,
                parity_cached: false,
            },
            Syn128 => SchemeSpec {
                tree: TreeKind::Morphable128,
                isolated: false,
                mac_inline: true,
                parity: ParityMode::PerBlock,
                parity_cached: false,
            },
            ItSyn128 => SchemeSpec {
                tree: TreeKind::Morphable128,
                isolated: true,
                mac_inline: true,
                parity: ParityMode::PerBlock,
                parity_cached: false,
            },
            Itesp64 => SchemeSpec {
                tree: TreeKind::MorphItesp64,
                isolated: true,
                mac_inline: true,
                parity: ParityMode::Embedded,
                parity_cached: false,
            },
            Itesp128 => SchemeSpec {
                tree: TreeKind::MorphItesp128,
                isolated: true,
                mac_inline: true,
                parity: ParityMode::Embedded,
                parity_cached: false,
            },
            // Link-level MAC rides the ECC transfer; anti-replay
            // counters stay on chip. Nothing is cached, nothing walks.
            SecDdr => SchemeSpec {
                tree: TreeKind::None,
                isolated: false,
                mac_inline: true,
                parity: ParityMode::None,
                parity_cached: false,
            },
            // The ORAM bucket tree is not a counter tree (TreeKind
            // drives counter-tree geometry only); bucket parity is
            // XOR-shared by 8 blocks, like the paper's shared parity.
            IrOram => SchemeSpec {
                tree: TreeKind::None,
                isolated: false,
                mac_inline: true,
                parity: ParityMode::Shared(8),
                parity_cached: false,
            },
        }
    }

    /// Which `SchemeModel` implementation executes this scheme.
    pub fn family(self) -> ModelFamily {
        match self {
            Scheme::SecDdr => ModelFamily::LinkLevel,
            Scheme::IrOram => ModelFamily::Oram,
            _ => ModelFamily::TreeWalk,
        }
    }

    /// What an off-chip observer learns under this scheme.
    pub fn leakage_class(self) -> LeakageClass {
        use Scheme::*;
        match self {
            Unsecure | SecDdr => LeakageClass::InterfaceOnly,
            Vault | Synergy | Syn128 => LeakageClass::SharedMetadata,
            IrOram => LeakageClass::PatternHidden,
            _ => LeakageClass::IsolatedMetadata,
        }
    }

    /// Off-chip storage overhead as a fraction of protected data — the
    /// `figpareto` y-axis. Tree fraction from the geometry over the
    /// evaluation span, MAC/parity fractions from the spec (one 8 B MAC
    /// or parity word per 64 B block, shared parity amortized over the
    /// group).
    pub fn storage_overhead(self) -> f64 {
        match self.family() {
            ModelFamily::TreeWalk => {
                let spec = self.spec();
                let tree = spec.tree.geometry(1 << 24).map_or(0.0, |g| {
                    g.storage_bytes() as f64 / ((1u64 << 24) * 64) as f64
                });
                let mac = if spec.mac_inline { 0.0 } else { 0.125 };
                let parity = match spec.parity {
                    ParityMode::None => 0.0,
                    ParityMode::PerBlock => 0.125,
                    ParityMode::Shared(share) => 0.125 / share as f64,
                    ParityMode::Embedded => 0.0, // rides in the leaf
                };
                tree + mac + parity
            }
            // MAC displaces the ECC redundancy on the link; counters
            // never leave the chip.
            ModelFamily::LinkLevel => 0.0,
            // The bucket tree doubles the footprint (2N-1 buckets for N
            // blocks of data at the leaves' slots), plus one parity
            // word per 8-bucket group.
            ModelFamily::Oram => 1.0 + 0.125 / 8.0,
        }
    }

    /// Label used by the figure regenerators.
    pub fn label(self) -> &'static str {
        use Scheme::*;
        match self {
            Unsecure => "UNSECURE",
            Vault => "VAULT",
            ItVault => "ITVAULT",
            Synergy => "SYNERGY",
            ItSynergy => "ITSYNERGY",
            ItSynergyParityCache => "ITSYN+P$",
            ItSynergySharedParity => "ITSYN+SP",
            ItSynergySharedParityCache => "ITSYN+SP+P$",
            Itesp => "ITESP",
            Syn128 => "SYN128",
            ItSyn128 => "ITSYN128",
            Itesp64 => "ITESP64",
            Itesp128 => "ITESP128",
            SecDdr => "SECDDR",
            IrOram => "IRORAM",
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Scheme {
    type Err = crate::Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Scheme::from_label(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_8_has_eight_schemes() {
        assert_eq!(Scheme::FIGURE_8.len(), 8);
        assert_eq!(*Scheme::FIGURE_8.last().unwrap(), Scheme::Itesp);
    }

    #[test]
    fn itesp_is_isolated_inline_and_embedded() {
        let s = Scheme::Itesp.spec();
        assert!(s.isolated);
        assert!(s.mac_inline);
        assert_eq!(s.parity, ParityMode::Embedded);
        assert_eq!(s.tree, TreeKind::VaultItesp);
    }

    #[test]
    fn vault_uses_separate_mac() {
        assert!(!Scheme::Vault.spec().mac_inline);
        assert!(Scheme::Synergy.spec().mac_inline);
    }

    #[test]
    fn unsecure_has_no_metadata() {
        let s = Scheme::Unsecure.spec();
        assert_eq!(s.tree, TreeKind::None);
        assert_eq!(s.parity, ParityMode::None);
        assert!(s.tree.geometry(1 << 20).is_none());
    }

    #[test]
    fn isolation_flags_follow_the_narrative() {
        assert!(!Scheme::Vault.spec().isolated);
        assert!(Scheme::ItVault.spec().isolated);
        assert!(!Scheme::Synergy.spec().isolated);
        assert!(Scheme::ItSynergy.spec().isolated);
    }

    #[test]
    fn shared_parity_span() {
        match Scheme::ItSynergySharedParity.spec().parity {
            ParityMode::Shared(n) => assert_eq!(n, 8),
            other => panic!("expected shared parity, got {other:?}"),
        }
    }

    #[test]
    fn geometries_instantiate() {
        for s in Scheme::FIGURE_8.iter().chain(Scheme::FIGURE_11.iter()) {
            let spec = s.spec();
            let g = spec.tree.geometry(1 << 24);
            assert!(g.is_some(), "{s} should have a tree");
        }
    }

    #[test]
    fn labels_are_unique() {
        use std::collections::HashSet;
        let labels: HashSet<_> = Scheme::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), Scheme::ALL.len());
    }

    #[test]
    fn labels_round_trip_through_from_label() {
        for s in Scheme::ALL {
            assert_eq!(Scheme::from_label(s.label()).unwrap(), s);
            assert_eq!(s.label().parse::<Scheme>().unwrap(), s);
            // Case-insensitive parse.
            assert_eq!(Scheme::from_label(&s.label().to_lowercase()).unwrap(), s);
        }
        match Scheme::from_label("NOT-A-SCHEME") {
            Err(crate::Error::UnknownScheme(l)) => assert_eq!(l, "NOT-A-SCHEME"),
            other => panic!("expected UnknownScheme, got {other:?}"),
        }
    }

    /// Property: for every scheme, every single-character mutation of
    /// its label (append, truncate, or substitute) either stays a valid
    /// label of the *same* scheme (a case flip) or is rejected with
    /// [`crate::Error::UnknownScheme`] whose message enumerates all 15
    /// valid labels — near-misses never silently alias to a neighbor.
    #[test]
    fn label_near_misses_are_rejected_with_the_full_menu() {
        let check_reject = |cand: &str| match Scheme::from_label(cand) {
            Ok(s) => assert!(
                s.label().eq_ignore_ascii_case(cand),
                "near-miss {cand:?} aliased to {s:?}"
            ),
            Err(e @ crate::Error::UnknownScheme(_)) => {
                let msg = e.to_string();
                assert!(msg.contains(&format!("{cand:?}")), "{msg}");
                for s in Scheme::ALL {
                    assert!(msg.contains(s.label()), "missing {} in: {msg}", s.label());
                }
            }
            Err(other) => panic!("expected UnknownScheme for {cand:?}, got {other:?}"),
        };
        for s in Scheme::ALL {
            let label = s.label();
            // Appends.
            for ch in ['2', 'X', ' ', '$'] {
                check_reject(&format!("{label}{ch}"));
            }
            // Truncation.
            check_reject(&label[..label.len() - 1]);
            // Single-character substitutions at every position.
            for i in 0..label.len() {
                for ch in ['Q', '-', '0'] {
                    let mut cand = label.as_bytes().to_vec();
                    cand[i] = ch as u8;
                    check_reject(std::str::from_utf8(&cand).unwrap());
                }
            }
        }
        // The named near-misses from the issue, explicitly.
        for cand in ["SECDDR2", "IR-ORAM", "ITESP_", "SYNERGY64"] {
            assert!(
                matches!(
                    Scheme::from_label(cand),
                    Err(crate::Error::UnknownScheme(_))
                ),
                "{cand:?} must not parse"
            );
        }
    }

    #[test]
    fn tree_lineage_is_all_minus_the_baselines() {
        assert_eq!(Scheme::ALL.len(), 15);
        assert_eq!(Scheme::TREE_LINEAGE.len(), 13);
        assert_eq!(&Scheme::ALL[..13], &Scheme::TREE_LINEAGE[..]);
        for s in Scheme::TREE_LINEAGE {
            assert_eq!(s.family(), ModelFamily::TreeWalk);
        }
        assert_eq!(Scheme::SecDdr.family(), ModelFamily::LinkLevel);
        assert_eq!(Scheme::IrOram.family(), ModelFamily::Oram);
    }

    #[test]
    fn leakage_classes_follow_the_taxonomy() {
        assert_eq!(Scheme::Vault.leakage_class(), LeakageClass::SharedMetadata);
        assert_eq!(
            Scheme::Itesp.leakage_class(),
            LeakageClass::IsolatedMetadata
        );
        assert_eq!(Scheme::SecDdr.leakage_class(), LeakageClass::InterfaceOnly);
        assert_eq!(
            Scheme::Unsecure.leakage_class(),
            LeakageClass::InterfaceOnly
        );
        assert_eq!(Scheme::IrOram.leakage_class(), LeakageClass::PatternHidden);
    }

    #[test]
    fn storage_overheads_are_ordered_sensibly() {
        // No off-chip metadata at the extremes of the security axis.
        assert_eq!(Scheme::Unsecure.storage_overhead(), 0.0);
        assert_eq!(Scheme::SecDdr.storage_overhead(), 0.0);
        // VAULT pays a separate MAC structure on top of its tree.
        assert!(Scheme::Vault.storage_overhead() > Scheme::Itesp.storage_overhead());
        // Embedding parity in the leaves is far cheaper than a
        // per-block parity region, and lands within a rounding error
        // of the shared-parity region it replaces (the paper's win is
        // parity *traffic*, not raw bytes).
        assert!(Scheme::Itesp.storage_overhead() < Scheme::ItSynergy.storage_overhead());
        let itesp = Scheme::Itesp.storage_overhead();
        let shared = Scheme::ItSynergySharedParity.storage_overhead();
        assert!((itesp - shared).abs() / shared < 0.05);
        // ORAM doubles the footprint.
        assert!(Scheme::IrOram.storage_overhead() > 1.0);
    }
}
