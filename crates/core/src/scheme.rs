//! The secure-memory designs evaluated in the paper.
//!
//! [`Scheme`] enumerates every bar of Figures 8 and 11; [`SchemeSpec`]
//! is the mechanical description the engine executes. The progression
//! mirrors the paper's narrative:
//!
//! 1. `Vault` — separate MAC + counter tree (VAULT baseline);
//! 2. `ItVault` — + isolated trees and metadata caches;
//! 3. `Synergy` — MAC moved into the ECC field, per-block parity;
//! 4. `ItSynergy` — + isolation;
//! 5. `ItSynergyParityCache` — + coalescing parity cache;
//! 6. `ItSynergySharedParity` — parity shared across 8 ranks (RMW);
//! 7. `ItSynergySharedParityCache` — shared parity + parity cache;
//! 8. `Itesp` — shared parity embedded in the tree leaves;
//! 9. `Syn128` / `ItSyn128` / `Itesp64` / `Itesp128` — the Morphable-
//!    counter family of Figure 11.

use serde::{Deserialize, Serialize};

use crate::tree::TreeGeometry;

/// How error-correction parity is organized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParityMode {
    /// No separate parity structure (baseline ECC lives in the 9th chip,
    /// transferred inline with data).
    None,
    /// Synergy: one 64-bit parity word per data block, written on every
    /// data write (needs DRAM write masking).
    PerBlock,
    /// Parity XOR-shared by N blocks in different ranks; updates are
    /// read-modify-writes (Section III-C).
    Shared(u64),
    /// Shared parity embedded in the tree leaf (ITESP, Section III-D).
    Embedded,
}

/// Which counter-tree family a scheme uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TreeKind {
    /// No integrity protection (non-secure baseline).
    None,
    /// VAULT arities 64/32/16.
    Vault,
    /// VAULT-based ITESP: leaf 32 + embedded parity.
    VaultItesp,
    /// Morphable, arity 128 throughout (SYN128).
    Morphable128,
    /// ITESP 64: leaf 64 + embedded parity, 128 above.
    MorphItesp64,
    /// ITESP 128: leaf 128 + embedded parity.
    MorphItesp128,
}

impl TreeKind {
    /// Instantiate the geometry over `data_blocks`.
    pub fn geometry(self, data_blocks: u64) -> Option<TreeGeometry> {
        match self {
            TreeKind::None => None,
            TreeKind::Vault => Some(TreeGeometry::vault(data_blocks)),
            TreeKind::VaultItesp => Some(TreeGeometry::vault_itesp(data_blocks)),
            TreeKind::Morphable128 => Some(TreeGeometry::syn128(data_blocks)),
            TreeKind::MorphItesp64 => Some(TreeGeometry::itesp64(data_blocks)),
            TreeKind::MorphItesp128 => Some(TreeGeometry::itesp128(data_blocks)),
        }
    }
}

/// Mechanical description of a secure-memory design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemeSpec {
    pub tree: TreeKind,
    /// Per-enclave trees and metadata-cache partitions (Section III-A).
    pub isolated: bool,
    /// MAC transferred in the ECC field with the data (Synergy) instead
    /// of via a separate MAC structure (VAULT).
    pub mac_inline: bool,
    pub parity: ParityMode,
    /// On-chip coalescing parity cache (never filled by reads).
    pub parity_cached: bool,
}

/// Every evaluated design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Non-secure baseline: plain ECC DIMM.
    Unsecure,
    /// VAULT: separate MAC store + VAULT tree, shared across programs.
    Vault,
    /// VAULT with isolated trees and metadata caches.
    ItVault,
    /// VAULT + Synergy: MAC inline, per-block parity, shared tree.
    Synergy,
    /// Synergy with isolation.
    ItSynergy,
    /// Isolated Synergy plus a coalescing parity cache.
    ItSynergyParityCache,
    /// Isolated Synergy with shared parity, no parity cache.
    ItSynergySharedParity,
    /// Isolated Synergy with shared parity and a parity cache.
    ItSynergySharedParityCache,
    /// The proposal: isolated tree with embedded shared parity.
    Itesp,
    /// Morphable-counter Synergy (arity 128), shared.
    Syn128,
    /// Morphable-counter Synergy with isolation.
    ItSyn128,
    /// ITESP on Morphable counters, leaf arity 64.
    Itesp64,
    /// ITESP on Morphable counters, leaf arity 128.
    Itesp128,
}

impl Scheme {
    /// Every design point, in the paper's narrative order.
    pub const ALL: [Scheme; 13] = [
        Scheme::Unsecure,
        Scheme::Vault,
        Scheme::ItVault,
        Scheme::Synergy,
        Scheme::ItSynergy,
        Scheme::ItSynergyParityCache,
        Scheme::ItSynergySharedParity,
        Scheme::ItSynergySharedParityCache,
        Scheme::Itesp,
        Scheme::Syn128,
        Scheme::ItSyn128,
        Scheme::Itesp64,
        Scheme::Itesp128,
    ];

    /// Parse a figure label (e.g. `"ITSYN+SP"`) back into a scheme.
    /// Case-insensitive.
    ///
    /// # Errors
    /// [`crate::Error::UnknownScheme`] listing the valid labels.
    pub fn from_label(label: &str) -> Result<Scheme, crate::Error> {
        Scheme::ALL
            .into_iter()
            .find(|s| s.label().eq_ignore_ascii_case(label))
            .ok_or_else(|| crate::Error::UnknownScheme(label.to_owned()))
    }

    /// The eight Figure 8 bars, in plotting order.
    pub const FIGURE_8: [Scheme; 8] = [
        Scheme::Vault,
        Scheme::ItVault,
        Scheme::Synergy,
        Scheme::ItSynergy,
        Scheme::ItSynergyParityCache,
        Scheme::ItSynergySharedParity,
        Scheme::ItSynergySharedParityCache,
        Scheme::Itesp,
    ];

    /// The Figure 11 bars (Morphable-counter family), in plotting order.
    pub const FIGURE_11: [Scheme; 5] = [
        Scheme::Synergy,
        Scheme::Syn128,
        Scheme::ItSyn128,
        Scheme::Itesp64,
        Scheme::Itesp128,
    ];

    /// Mechanical spec for this design point.
    pub fn spec(self) -> SchemeSpec {
        use Scheme::*;
        match self {
            Unsecure => SchemeSpec {
                tree: TreeKind::None,
                isolated: false,
                mac_inline: true,
                parity: ParityMode::None,
                parity_cached: false,
            },
            Vault => SchemeSpec {
                tree: TreeKind::Vault,
                isolated: false,
                mac_inline: false,
                parity: ParityMode::None,
                parity_cached: false,
            },
            ItVault => SchemeSpec {
                tree: TreeKind::Vault,
                isolated: true,
                mac_inline: false,
                parity: ParityMode::None,
                parity_cached: false,
            },
            Synergy => SchemeSpec {
                tree: TreeKind::Vault,
                isolated: false,
                mac_inline: true,
                parity: ParityMode::PerBlock,
                parity_cached: false,
            },
            ItSynergy => SchemeSpec {
                tree: TreeKind::Vault,
                isolated: true,
                mac_inline: true,
                parity: ParityMode::PerBlock,
                parity_cached: false,
            },
            ItSynergyParityCache => SchemeSpec {
                tree: TreeKind::Vault,
                isolated: true,
                mac_inline: true,
                parity: ParityMode::PerBlock,
                parity_cached: true,
            },
            ItSynergySharedParity => SchemeSpec {
                tree: TreeKind::Vault,
                isolated: true,
                mac_inline: true,
                parity: ParityMode::Shared(8),
                parity_cached: false,
            },
            ItSynergySharedParityCache => SchemeSpec {
                tree: TreeKind::Vault,
                isolated: true,
                mac_inline: true,
                parity: ParityMode::Shared(8),
                parity_cached: true,
            },
            Itesp => SchemeSpec {
                tree: TreeKind::VaultItesp,
                isolated: true,
                mac_inline: true,
                parity: ParityMode::Embedded,
                parity_cached: false,
            },
            Syn128 => SchemeSpec {
                tree: TreeKind::Morphable128,
                isolated: false,
                mac_inline: true,
                parity: ParityMode::PerBlock,
                parity_cached: false,
            },
            ItSyn128 => SchemeSpec {
                tree: TreeKind::Morphable128,
                isolated: true,
                mac_inline: true,
                parity: ParityMode::PerBlock,
                parity_cached: false,
            },
            Itesp64 => SchemeSpec {
                tree: TreeKind::MorphItesp64,
                isolated: true,
                mac_inline: true,
                parity: ParityMode::Embedded,
                parity_cached: false,
            },
            Itesp128 => SchemeSpec {
                tree: TreeKind::MorphItesp128,
                isolated: true,
                mac_inline: true,
                parity: ParityMode::Embedded,
                parity_cached: false,
            },
        }
    }

    /// Label used by the figure regenerators.
    pub fn label(self) -> &'static str {
        use Scheme::*;
        match self {
            Unsecure => "UNSECURE",
            Vault => "VAULT",
            ItVault => "ITVAULT",
            Synergy => "SYNERGY",
            ItSynergy => "ITSYNERGY",
            ItSynergyParityCache => "ITSYN+P$",
            ItSynergySharedParity => "ITSYN+SP",
            ItSynergySharedParityCache => "ITSYN+SP+P$",
            Itesp => "ITESP",
            Syn128 => "SYN128",
            ItSyn128 => "ITSYN128",
            Itesp64 => "ITESP64",
            Itesp128 => "ITESP128",
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Scheme {
    type Err = crate::Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Scheme::from_label(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_8_has_eight_schemes() {
        assert_eq!(Scheme::FIGURE_8.len(), 8);
        assert_eq!(*Scheme::FIGURE_8.last().unwrap(), Scheme::Itesp);
    }

    #[test]
    fn itesp_is_isolated_inline_and_embedded() {
        let s = Scheme::Itesp.spec();
        assert!(s.isolated);
        assert!(s.mac_inline);
        assert_eq!(s.parity, ParityMode::Embedded);
        assert_eq!(s.tree, TreeKind::VaultItesp);
    }

    #[test]
    fn vault_uses_separate_mac() {
        assert!(!Scheme::Vault.spec().mac_inline);
        assert!(Scheme::Synergy.spec().mac_inline);
    }

    #[test]
    fn unsecure_has_no_metadata() {
        let s = Scheme::Unsecure.spec();
        assert_eq!(s.tree, TreeKind::None);
        assert_eq!(s.parity, ParityMode::None);
        assert!(s.tree.geometry(1 << 20).is_none());
    }

    #[test]
    fn isolation_flags_follow_the_narrative() {
        assert!(!Scheme::Vault.spec().isolated);
        assert!(Scheme::ItVault.spec().isolated);
        assert!(!Scheme::Synergy.spec().isolated);
        assert!(Scheme::ItSynergy.spec().isolated);
    }

    #[test]
    fn shared_parity_span() {
        match Scheme::ItSynergySharedParity.spec().parity {
            ParityMode::Shared(n) => assert_eq!(n, 8),
            other => panic!("expected shared parity, got {other:?}"),
        }
    }

    #[test]
    fn geometries_instantiate() {
        for s in Scheme::FIGURE_8.iter().chain(Scheme::FIGURE_11.iter()) {
            let spec = s.spec();
            let g = spec.tree.geometry(1 << 24);
            assert!(g.is_some(), "{s} should have a tree");
        }
    }

    #[test]
    fn labels_are_unique() {
        use std::collections::HashSet;
        let labels: HashSet<_> = Scheme::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), Scheme::ALL.len());
    }

    #[test]
    fn labels_round_trip_through_from_label() {
        for s in Scheme::ALL {
            assert_eq!(Scheme::from_label(s.label()).unwrap(), s);
            assert_eq!(s.label().parse::<Scheme>().unwrap(), s);
            // Case-insensitive parse.
            assert_eq!(Scheme::from_label(&s.label().to_lowercase()).unwrap(), s);
        }
        match Scheme::from_label("NOT-A-SCHEME") {
            Err(crate::Error::UnknownScheme(l)) => assert_eq!(l, "NOT-A-SCHEME"),
            other => panic!("expected UnknownScheme, got {other:?}"),
        }
    }
}
