//! Scalar reference twin of the security engine's access path.
//!
//! [`ReferenceEngine`] is to [`crate::engine::SecurityEngine`] what the
//! DRAM model's `ReferenceChannel` is to its event-driven channel: a
//! deliberately plain, one-step-at-a-time implementation of the same
//! semantics, kept verbatim as the batched/memoized hot path evolves.
//! It walks every tree level through the cache on every access (no
//! ancestor memo), filters one request at a time (no burst batching),
//! and never takes a vectorized shortcut.
//!
//! The lockstep equivalence tests (`crates/oracle`) drive both engines
//! with identical randomized request streams across all schemes and
//! assert byte-identical transactions, classifications, and statistics.
//! Any divergence is a bug in the optimized path, never grounds to
//! adjust this twin — changes here must re-derive from the paper's
//! semantics, not from what the optimized engine happens to do.

use crate::cache::PartitionedCache;
use crate::counters::OverflowTracker;
use crate::engine::{AccessOutcome, EngineConfig, EngineStats, MetaAccess, MetaKind, MissCase};
use crate::scheme::{ParityMode, SchemeSpec, TreeKind};
use crate::tree::TreeGeometry;

/// Cap on dirty-writeback cascade processing per access — must match
/// the optimized engine's constant.
const MAX_WRITEBACK_CHAIN: usize = 32;

/// The scalar reference engine. Construction mirrors
/// [`crate::engine::SecurityEngine::try_new`] exactly, so both engines
/// start from identical cache geometry and metadata regions.
#[derive(Debug)]
pub struct ReferenceEngine {
    cfg: EngineConfig,
    spec: SchemeSpec,
    geo: Option<TreeGeometry>,
    tree_cache: Option<PartitionedCache>,
    mac_cache: Option<PartitionedCache>,
    parity_cache: Option<PartitionedCache>,
    overflow: Option<OverflowTracker>,
    tree_bases: Vec<u64>,
    mac_bases: Vec<u64>,
    parity_bases: Vec<u64>,
    stats: EngineStats,
}

impl ReferenceEngine {
    /// Build the reference engine for `cfg`.
    ///
    /// # Panics
    /// Panics on an invalid configuration (the optimized engine's
    /// [`EngineConfig::validate`] rules).
    pub fn new(cfg: EngineConfig) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("{e}"));
        let spec = cfg.scheme.spec();
        let span = if spec.isolated {
            cfg.enclave_capacity
        } else {
            cfg.data_capacity
        };
        let geo = spec.tree.geometry(span / 64);

        let parts = if spec.isolated { cfg.enclaves } else { 1 };
        let per_part_budget = cfg.metadata_cache_bytes / parts;
        let needs_mac_cache = spec.tree != TreeKind::None && !spec.mac_inline;
        let needs_parity_cache = spec.parity_cached;
        let split = 1 + usize::from(needs_mac_cache) + usize::from(needs_parity_cache);
        let slice = per_part_budget / split;

        let mk = |bytes: usize| PartitionedCache::new(parts, bytes, cfg.cache_ways);
        let tree_cache = (spec.tree != TreeKind::None).then(|| mk(slice));
        let mac_cache = needs_mac_cache.then(|| mk(slice));
        let parity_cache = needs_parity_cache.then(|| mk(slice));

        let overflow = (cfg.model_overflow && geo.is_some()).then(|| {
            let g = geo.as_ref().expect("checked");
            OverflowTracker::new(g.local_counter_bits(), g.leaf_arity())
        });

        let tree_bytes = geo.as_ref().map_or(0, TreeGeometry::storage_bytes);
        let mac_bytes = span / 8;
        let parity_bytes = span / 8;
        let stripe = tree_bytes + mac_bytes + parity_bytes;
        let mut tree_bases = Vec::with_capacity(parts);
        let mut mac_bases = Vec::with_capacity(parts);
        let mut parity_bases = Vec::with_capacity(parts);
        for p in 0..parts as u64 {
            let base = cfg.data_capacity + p * stripe;
            tree_bases.push(base);
            mac_bases.push(base + tree_bytes);
            parity_bases.push(base + tree_bytes + mac_bytes);
        }

        ReferenceEngine {
            cfg,
            spec,
            geo,
            tree_cache,
            mac_cache,
            parity_cache,
            overflow,
            tree_bases,
            mac_bases,
            parity_bases,
            stats: EngineStats::default(),
        }
    }

    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    fn locate(&self, enclave: usize, paddr: u64, enclave_block: u64) -> (usize, u64) {
        if self.spec.isolated {
            (enclave, enclave_block)
        } else {
            (0, paddr / 64)
        }
    }

    /// Filter one LLC-filtered data access — the scalar twin of
    /// [`crate::engine::SecurityEngine::on_access`].
    pub fn on_access(
        &mut self,
        enclave: usize,
        paddr: u64,
        enclave_block: u64,
        is_write: bool,
    ) -> AccessOutcome {
        if is_write {
            self.stats.data_writes += 1;
        } else {
            self.stats.data_reads += 1;
        }

        let mut mem = Vec::new();
        let (part, block) = self.locate(enclave, paddr, enclave_block);

        let tree_misses = if self.geo.is_some() {
            self.walk_tree(part, block, is_write, &mut mem)
        } else {
            0
        };

        let mac_missed = if self.geo.is_some() && !self.spec.mac_inline {
            self.mac_access(part, block, is_write, &mut mem)
        } else {
            false
        };

        if is_write {
            self.parity_update(part, block, &mut mem);
        }

        let mut stall = 0;
        if is_write {
            if let (Some(of), Some(geo)) = (self.overflow.as_mut(), self.geo.as_ref()) {
                let node_key = ((part as u64) << 48) | geo.leaf_of(block).index;
                let block_key = ((part as u64) << 48) | block;
                let penalty = of.on_write(node_key, block_key);
                if penalty > 0 {
                    self.stats.overflows += 1;
                    self.stats.overflow_stall_cycles += penalty;
                    stall = penalty;
                }
            }
        }

        let case = MissCase::classify(mac_missed, tree_misses);
        self.stats.case_counts[case.index()] += 1;

        for m in &mem {
            if m.is_write {
                self.stats.meta_writes[m.kind.index()] += 1;
            } else {
                self.stats.meta_reads[m.kind.index()] += 1;
            }
        }

        AccessOutcome {
            mem,
            stall_cycles: stall,
            case,
        }
    }

    /// Full leaf-to-top walk through the cache, every access, every
    /// time — no memo.
    fn walk_tree(
        &mut self,
        part: usize,
        block: u64,
        dirty_leaf: bool,
        mem: &mut Vec<MetaAccess>,
    ) -> u32 {
        let geo = self.geo.as_ref().expect("walk_tree requires a tree");
        let cache = self.tree_cache.as_mut().expect("tree implies tree cache");
        let base = self.tree_bases[part];

        let mut misses = 0;
        let mut pending = Vec::new();
        for node in geo.walk(block) {
            let addr = geo.node_addr(base, node);
            let out = cache.access(part, addr, dirty_leaf && node.level == 0);
            if let Some(victim) = out.writeback {
                pending.push(victim);
            }
            if out.hit {
                break;
            }
            mem.push(MetaAccess {
                addr,
                is_write: false,
                kind: MetaKind::Tree,
            });
            misses += 1;
        }

        self.process_writebacks(part, pending, mem);
        misses
    }

    fn process_writebacks(
        &mut self,
        part: usize,
        mut pending: Vec<u64>,
        mem: &mut Vec<MetaAccess>,
    ) {
        let geo = self.geo.as_ref().expect("writebacks imply a tree");
        let cache = self.tree_cache.as_mut().expect("tree cache");
        let tree_base = self.tree_bases[part];
        let parity_base = self.parity_bases[part];
        let mut processed = 0;
        while let Some(victim) = pending.pop() {
            if victim >= parity_base {
                mem.push(MetaAccess {
                    addr: victim,
                    is_write: true,
                    kind: MetaKind::Parity,
                });
                continue;
            }
            mem.push(MetaAccess {
                addr: victim,
                is_write: true,
                kind: MetaKind::Tree,
            });
            processed += 1;
            if processed > MAX_WRITEBACK_CHAIN {
                continue;
            }
            let node = geo.node_at(tree_base, victim);
            if let Some(parent) = geo.parent(node) {
                let paddr = geo.node_addr(tree_base, parent);
                let out = cache.access(part, paddr, true);
                if let Some(v2) = out.writeback {
                    pending.push(v2);
                }
                if !out.hit {
                    mem.push(MetaAccess {
                        addr: paddr,
                        is_write: false,
                        kind: MetaKind::Tree,
                    });
                }
            }
        }
    }

    fn mac_access(
        &mut self,
        part: usize,
        block: u64,
        is_write: bool,
        mem: &mut Vec<MetaAccess>,
    ) -> bool {
        let cache = self.mac_cache.as_mut().expect("separate MAC needs a cache");
        let addr = self.mac_bases[part] + (block / 8) * 64;
        let out = cache.access(part, addr, is_write);
        if let Some(victim) = out.writeback {
            mem.push(MetaAccess {
                addr: victim,
                is_write: true,
                kind: MetaKind::Mac,
            });
        }
        if !out.hit {
            mem.push(MetaAccess {
                addr,
                is_write: false,
                kind: MetaKind::Mac,
            });
        }
        !out.hit
    }

    fn parity_group(&self, block: u64, share: u64) -> u64 {
        let s = self.cfg.rank_stride_blocks.max(1);
        let window = s.saturating_mul(share);
        (block / window) * s + (block % s)
    }

    fn embedding_viable(&self) -> bool {
        let geo = self.geo.as_ref().expect("embedded parity implies tree");
        let s = self.cfg.rank_stride_blocks.max(1);
        s.saturating_mul(geo.parity_share()) <= geo.leaf_arity()
    }

    fn fallback_parity_line(&self, part: usize, block: u64) -> u64 {
        let geo = self.geo.as_ref().expect("embedded parity implies tree");
        let share = geo.parity_share();
        let s = self.cfg.rank_stride_blocks.max(1);
        let window = s.saturating_mul(share).min(geo.data_blocks()).max(1);
        let windows = (geo.data_blocks() / window).max(1);
        let group = (block % s) * windows + (block / window);
        self.parity_bases[part] + (group / 8) * 64
    }

    fn parity_update(&mut self, part: usize, block: u64, mem: &mut Vec<MetaAccess>) {
        let base = self.parity_bases[part];
        match self.spec.parity {
            ParityMode::None => {}
            ParityMode::PerBlock => {
                let line = base + (block / 8) * 64;
                if let Some(cache) = self.parity_cache.as_mut() {
                    let out = cache.access(part, line, true);
                    if let Some(victim) = out.writeback {
                        mem.push(MetaAccess {
                            addr: victim,
                            is_write: true,
                            kind: MetaKind::Parity,
                        });
                    }
                } else {
                    mem.push(MetaAccess {
                        addr: line,
                        is_write: true,
                        kind: MetaKind::Parity,
                    });
                }
            }
            ParityMode::Shared(share) => {
                let group = self.parity_group(block, share);
                let line = base + (group / 8) * 64;
                if let Some(cache) = self.parity_cache.as_mut() {
                    let out = cache.access(part, line, true);
                    if let Some(victim) = out.writeback {
                        mem.push(MetaAccess {
                            addr: victim,
                            is_write: false,
                            kind: MetaKind::Parity,
                        });
                        mem.push(MetaAccess {
                            addr: victim,
                            is_write: true,
                            kind: MetaKind::Parity,
                        });
                    }
                } else {
                    mem.push(MetaAccess {
                        addr: line,
                        is_write: false,
                        kind: MetaKind::Parity,
                    });
                    mem.push(MetaAccess {
                        addr: line,
                        is_write: true,
                        kind: MetaKind::Parity,
                    });
                }
            }
            ParityMode::Embedded => {
                if self.embedding_viable() {
                    // Parity rides in the already-dirtied tree leaf.
                } else {
                    let line = self.fallback_parity_line(part, block);
                    let cache = self.tree_cache.as_mut().expect("tree cache");
                    let out = cache.access(part, line, true);
                    if !out.hit {
                        mem.push(MetaAccess {
                            addr: line,
                            is_write: false,
                            kind: MetaKind::Parity,
                        });
                    }
                    if let Some(victim) = out.writeback {
                        self.process_writebacks(part, vec![victim], mem);
                    }
                }
            }
        }
    }
}
