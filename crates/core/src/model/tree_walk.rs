//! The counter-tree traffic model: every scheme of the paper's own
//! lineage (VAULT, Synergy, the It* isolation points, ITESP, and the
//! Morphable-counter family), plus the treeless `Unsecure` baseline as
//! the degenerate no-tree case.
//!
//! This is the original [`crate::SecurityEngine`] access path moved
//! behind [`SchemeModel`] verbatim — the lockstep equivalence oracle
//! against [`crate::ReferenceEngine`] and the byte-identical figure
//! JSON across the refactor are the proof that only the seam moved,
//! not the semantics.

use std::collections::BTreeSet;

use crate::cache::{largest_valid_capacity, CacheStats, PartitionedCache};
use crate::counters::OverflowTracker;
use crate::engine::{EngineConfig, MetaAccess, MetaKind, MissCase};
use crate::scheme::{ModelFamily, ParityMode, SchemeSpec, TreeKind};
use crate::tree::{NodeId, TreeGeometry};

use super::SchemeModel;

/// Per-enclave region bases for metadata placement in physical memory.
#[derive(Debug, Clone)]
struct Regions {
    tree_bases: Vec<u64>,
    mac_bases: Vec<u64>,
    parity_bases: Vec<u64>,
}

/// One memoized verified tree path: the last-touched leaf and its
/// metadata address. Valid only while the partition's tree cache has
/// seen no other traffic, which guarantees the leaf line is still
/// resident — so a same-leaf access hits at the leaf and stops there,
/// exactly like the full walk would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TreeMemo {
    leaf_index: u64,
    leaf_addr: u64,
}

/// Cap on dirty-writeback cascade processing per access (the lazy
/// hash-propagation chain is almost always 1-2 deep; the cap guards the
/// pathological case).
const MAX_WRITEBACK_CHAIN: usize = 32;

/// Parity-group id for `block` when one parity covers `share` blocks in
/// different ranks: with rank stride S, a group is the blocks
/// `{w + j + k*S | k in 0..share}` within each window `w` of
/// `S * share` blocks.
pub fn parity_group(block: u64, share: u64, rank_stride_blocks: u64) -> u64 {
    let s = rank_stride_blocks.max(1);
    let window = s.saturating_mul(share);
    (block / window) * s + (block % s)
}

/// The tree-walk [`SchemeModel`]. See module docs.
#[derive(Debug)]
pub struct TreeWalkModel {
    cfg: EngineConfig,
    spec: SchemeSpec,
    geo: Option<TreeGeometry>,
    /// Lifecycle override of `geo` per partition: a footprint-sized
    /// private tree installed by an enclave manager (`None` = the
    /// static construction-time tree). Only ever `Some` for isolated
    /// schemes.
    part_geos: Vec<Option<TreeGeometry>>,
    /// Construction-time per-partition, per-structure cache slice,
    /// bytes — the budget unit `repartition_caches` redistributes.
    slice_bytes: usize,
    tree_cache: Option<PartitionedCache>,
    mac_cache: Option<PartitionedCache>,
    parity_cache: Option<PartitionedCache>,
    overflow: Option<OverflowTracker>,
    regions: Regions,
    /// Ancestor memo: per partition, the leaf whose verified path was
    /// the cache's last touch (see [`Self::walk_tree`]). `None` when
    /// anything else has touched that partition's tree cache since.
    tree_memo: Vec<Option<TreeMemo>>,
    /// Runtime toggle for the memo fast path (equivalence tests run
    /// with it off to obtain the scalar reference behavior).
    memo_enabled: bool,
}

impl TreeWalkModel {
    /// Build the model (the caller validated `cfg`).
    pub fn new(cfg: EngineConfig) -> Self {
        let spec = cfg.scheme.spec();
        let span = if spec.isolated {
            cfg.enclave_capacity
        } else {
            cfg.data_capacity
        };
        let geo = spec.tree.geometry(span / 64);

        let parts = if spec.isolated { cfg.enclaves } else { 1 };
        let per_part_budget = cfg.metadata_cache_bytes / parts;

        // Split the budget across the structures the scheme caches.
        let needs_mac_cache = spec.tree != TreeKind::None && !spec.mac_inline;
        let needs_parity_cache = spec.parity_cached;
        let split = 1 + usize::from(needs_mac_cache) + usize::from(needs_parity_cache);
        let slice = per_part_budget / split;

        let mk = |bytes: usize| PartitionedCache::new(parts, bytes, cfg.cache_ways);
        let tree_cache = (spec.tree != TreeKind::None).then(|| mk(slice));
        let mac_cache = needs_mac_cache.then(|| mk(slice));
        let parity_cache = needs_parity_cache.then(|| mk(slice));

        let overflow = (cfg.model_overflow && geo.is_some()).then(|| {
            let g = geo.as_ref().expect("checked");
            OverflowTracker::new(g.local_counter_bits(), g.leaf_arity())
        });

        // Metadata regions live above the data span; each enclave (or
        // the single shared instance) gets its own stripe.
        let tree_bytes = geo.as_ref().map_or(0, TreeGeometry::storage_bytes);
        let mac_bytes = span / 8;
        let parity_bytes = span / 8;
        let stripe = tree_bytes + mac_bytes + parity_bytes;
        let mut tree_bases = Vec::with_capacity(parts);
        let mut mac_bases = Vec::with_capacity(parts);
        let mut parity_bases = Vec::with_capacity(parts);
        for p in 0..parts as u64 {
            let base = cfg.data_capacity + p * stripe;
            tree_bases.push(base);
            mac_bases.push(base + tree_bytes);
            parity_bases.push(base + tree_bytes + mac_bytes);
        }

        TreeWalkModel {
            cfg,
            spec,
            geo,
            part_geos: (0..parts).map(|_| None).collect(),
            slice_bytes: slice,
            tree_cache,
            mac_cache,
            parity_cache,
            overflow,
            regions: Regions {
                tree_bases,
                mac_bases,
                parity_bases,
            },
            tree_memo: (0..parts).map(|_| None).collect(),
            memo_enabled: true,
        }
    }

    /// Walk leaf-to-top until an on-chip hit; returns levels fetched
    /// from memory. Dirty evictions propagate hashes lazily: the victim
    /// is written back and its parent is dirtied.
    ///
    /// Consecutive same-leaf accesses take the ancestor-memo fast path:
    /// when the partition's last tree-cache touch was a clean walk of
    /// this very leaf (leaf hit, no writebacks), the leaf line is still
    /// resident and the scalar walk would perform exactly one hit
    /// access and stop — so the memo path performs exactly that single
    /// access, with no iterator walk and byte-identical cache state and
    /// stats. Any other traffic into the partition's tree cache (longer
    /// walks, writeback cascades, fallback parity lines, lifecycle
    /// flushes) invalidates the memo.
    fn walk_tree(
        &mut self,
        part: usize,
        block: u64,
        dirty_leaf: bool,
        mem: &mut Vec<MetaAccess>,
    ) -> u32 {
        let geo = self.part_geos[part]
            .as_ref()
            .or(self.geo.as_ref())
            .expect("walk_tree requires a tree");
        let leaf_index = geo.leaf_of(block).index;

        if self.memo_enabled {
            if let Some(memo) = self.tree_memo[part] {
                if memo.leaf_index == leaf_index {
                    let cache = self.tree_cache.as_mut().expect("tree implies tree cache");
                    let out = cache.access(part, memo.leaf_addr, dirty_leaf);
                    debug_assert!(
                        out.hit && out.writeback.is_none(),
                        "memoized leaf must still be resident"
                    );
                    return 0;
                }
            }
        }

        let cache = self.tree_cache.as_mut().expect("tree implies tree cache");
        let base = self.regions.tree_bases[part];

        let mut misses = 0;
        let mut pending = Vec::new();
        let mut leaf_addr = 0;
        for node in geo.walk(block) {
            let addr = geo.node_addr(base, node);
            if node.level == 0 {
                leaf_addr = addr;
            }
            let out = cache.access(part, addr, dirty_leaf && node.level == 0);
            if let Some(victim) = out.writeback {
                pending.push(victim);
            }
            if out.hit {
                break;
            }
            mem.push(MetaAccess {
                addr,
                is_write: false,
                kind: MetaKind::Tree,
            });
            misses += 1;
        }

        // Lazy hash propagation for evicted dirty nodes (and plain
        // writes for evicted fallback-parity lines).
        let clean_walk = pending.is_empty();
        self.process_writebacks(part, pending, mem);
        // Memoize only a walk that was a single leaf hit: no
        // allocations, so no line (the leaf included) can have been
        // silently evicted, and the fast path replays it exactly.
        self.tree_memo[part] = (misses == 0 && clean_walk).then_some(TreeMemo {
            leaf_index,
            leaf_addr,
        });
        misses
    }

    /// Handle one unified-cache eviction (and any cascade): tree nodes
    /// are written back and dirty their parent; fallback-parity lines
    /// (addresses in the parity region) are simply written back — the
    /// write half of their read-modify-write.
    fn unified_writeback(&mut self, part: usize, victim: u64, mem: &mut Vec<MetaAccess>) {
        self.process_writebacks(part, vec![victim], mem);
    }

    fn process_writebacks(
        &mut self,
        part: usize,
        mut pending: Vec<u64>,
        mem: &mut Vec<MetaAccess>,
    ) {
        if !pending.is_empty() {
            // Writeback traffic re-touches the partition's tree cache
            // (parent accesses may allocate and evict): drop the memo.
            self.tree_memo[part] = None;
        }
        let geo = self.part_geos[part]
            .as_ref()
            .or(self.geo.as_ref())
            .expect("writebacks imply a tree");
        let cache = self.tree_cache.as_mut().expect("tree cache");
        let tree_base = self.regions.tree_bases[part];
        let parity_base = self.regions.parity_bases[part];
        let mut processed = 0;
        while let Some(victim) = pending.pop() {
            if victim >= parity_base {
                // Fallback shared-parity line: plain write, no parent.
                mem.push(MetaAccess {
                    addr: victim,
                    is_write: true,
                    kind: MetaKind::Parity,
                });
                continue;
            }
            mem.push(MetaAccess {
                addr: victim,
                is_write: true,
                kind: MetaKind::Tree,
            });
            processed += 1;
            if processed > MAX_WRITEBACK_CHAIN {
                continue; // account the write, skip further propagation
            }
            let node = geo.node_at(tree_base, victim);
            if let Some(parent) = geo.parent(node) {
                let paddr = geo.node_addr(tree_base, parent);
                let out = cache.access(part, paddr, true);
                if let Some(v2) = out.writeback {
                    pending.push(v2);
                }
                if !out.hit {
                    mem.push(MetaAccess {
                        addr: paddr,
                        is_write: false,
                        kind: MetaKind::Tree,
                    });
                }
            }
        }
    }

    /// VAULT-style separate MAC structure: one 64 B line holds MACs for
    /// 8 consecutive blocks. Returns whether the MAC missed on-chip.
    fn mac_access(
        &mut self,
        part: usize,
        block: u64,
        is_write: bool,
        mem: &mut Vec<MetaAccess>,
    ) -> bool {
        let cache = self.mac_cache.as_mut().expect("separate MAC needs a cache");
        let addr = self.regions.mac_bases[part] + (block / 8) * 64;
        let out = cache.access(part, addr, is_write);
        if let Some(victim) = out.writeback {
            mem.push(MetaAccess {
                addr: victim,
                is_write: true,
                kind: MetaKind::Mac,
            });
        }
        if !out.hit {
            mem.push(MetaAccess {
                addr,
                is_write: false,
                kind: MetaKind::Mac,
            });
        }
        !out.hit
    }

    fn parity_group(&self, block: u64, share: u64) -> u64 {
        parity_group(block, share, self.cfg.rank_stride_blocks)
    }

    /// External fallback-parity line used when embedding is not viable:
    /// groups are laid out rank-major so consecutive blocks map to
    /// different parity lines (Section V-C).
    fn fallback_parity_line(&self, part: usize, block: u64) -> u64 {
        let geo = self.geo.as_ref().expect("embedded parity implies tree");
        let share = geo.parity_share();
        let s = self.cfg.rank_stride_blocks.max(1);
        let window = s.saturating_mul(share).min(geo.data_blocks()).max(1);
        let windows = (geo.data_blocks() / window).max(1);
        let group = (block % s) * windows + (block / window);
        self.regions.parity_bases[part] + (group / 8) * 64
    }

    fn parity_update(&mut self, part: usize, block: u64, mem: &mut Vec<MetaAccess>) {
        let base = self.regions.parity_bases[part];
        match self.spec.parity {
            ParityMode::None => {}
            ParityMode::PerBlock => {
                // One 64-bit parity word per block, 8 words per line.
                let line = base + (block / 8) * 64;
                if let Some(cache) = self.parity_cache.as_mut() {
                    // Coalescing write buffer: allocate without fetching;
                    // evicted entries become one masked write.
                    let out = cache.access(part, line, true);
                    if let Some(victim) = out.writeback {
                        mem.push(MetaAccess {
                            addr: victim,
                            is_write: true,
                            kind: MetaKind::Parity,
                        });
                    }
                } else {
                    // Baseline Synergy: every data write pays a masked
                    // parity write (a full-occupancy transaction).
                    mem.push(MetaAccess {
                        addr: line,
                        is_write: true,
                        kind: MetaKind::Parity,
                    });
                }
            }
            ParityMode::Shared(share) => {
                let group = self.parity_group(block, share);
                let line = base + (group / 8) * 64;
                if let Some(cache) = self.parity_cache.as_mut() {
                    // The cache holds parity *diffs*; eviction must RMW.
                    let out = cache.access(part, line, true);
                    if let Some(victim) = out.writeback {
                        mem.push(MetaAccess {
                            addr: victim,
                            is_write: false,
                            kind: MetaKind::Parity,
                        });
                        mem.push(MetaAccess {
                            addr: victim,
                            is_write: true,
                            kind: MetaKind::Parity,
                        });
                    }
                } else {
                    // Uncached shared parity: RMW on every data write.
                    mem.push(MetaAccess {
                        addr: line,
                        is_write: false,
                        kind: MetaKind::Parity,
                    });
                    mem.push(MetaAccess {
                        addr: line,
                        is_write: true,
                        kind: MetaKind::Parity,
                    });
                }
            }
            ParityMode::Embedded => {
                if self.embedding_viable() {
                    // Parity lives in the tree leaf the walk already
                    // fetched and dirtied: no extra traffic.
                } else {
                    // The mapping cannot co-locate a parity group in
                    // one leaf (Column): parity falls back to an
                    // external shared structure that shares the unified
                    // metadata cache — fetched on miss (the read half
                    // of the RMW), written back on eviction. Groups are
                    // laid out rank-major, so "consecutive cache lines
                    // are mapped to different shared parity blocks"
                    // (Section V-C) and writes do not coalesce.
                    let line = self.fallback_parity_line(part, block);
                    // This access shares the unified tree cache and can
                    // silently evict the memoized leaf: drop the memo.
                    self.tree_memo[part] = None;
                    let cache = self.tree_cache.as_mut().expect("tree cache");
                    let out = cache.access(part, line, true);
                    if !out.hit {
                        mem.push(MetaAccess {
                            addr: line,
                            is_write: false,
                            kind: MetaKind::Parity,
                        });
                    }
                    if let Some(victim) = out.writeback {
                        self.unified_writeback(part, victim, mem);
                    }
                }
            }
        }
    }
}

impl SchemeModel for TreeWalkModel {
    fn family(&self) -> ModelFamily {
        ModelFamily::TreeWalk
    }

    fn access(
        &mut self,
        part: usize,
        block: u64,
        is_write: bool,
        mem: &mut Vec<MetaAccess>,
    ) -> (u64, MissCase) {
        // 1. Counter-tree walk (verification and, on writes, counter
        //    increment).
        let tree_misses = if self.geo.is_some() {
            self.walk_tree(part, block, is_write, mem)
        } else {
            0
        };

        // 2. Separate MAC structure (VAULT-style only; Synergy's MAC
        //    rides the ECC pins for free).
        let mac_missed = if self.geo.is_some() && !self.spec.mac_inline {
            self.mac_access(part, block, is_write, mem)
        } else {
            false
        };

        // 3. Correction-parity update on writes.
        if is_write {
            self.parity_update(part, block, mem);
        }

        // 4. Local-counter overflow stalls (Figure 11 runs).
        let mut stall = 0;
        if is_write {
            let active = self.part_geos[part].as_ref().or(self.geo.as_ref());
            if let (Some(of), Some(geo)) = (self.overflow.as_mut(), active) {
                let node_key = ((part as u64) << 48) | geo.leaf_of(block).index;
                let block_key = ((part as u64) << 48) | block;
                stall = of.on_write(node_key, block_key);
            }
        }

        (stall, MissCase::classify(mac_missed, tree_misses))
    }

    fn drain(&mut self, mem: &mut Vec<MetaAccess>) {
        self.tree_memo.iter_mut().for_each(|m| *m = None);
        // The unified tree cache can also hold fallback shared-parity
        // lines (embedding not viable); label those as parity on the way
        // out, matching the eviction path in `process_writebacks`.
        if let Some(pc) = &mut self.tree_cache {
            for part in 0..pc.len() {
                let parity_base = self.regions.parity_bases[part];
                for addr in pc.partition_mut(part).flush() {
                    let kind = if addr >= parity_base {
                        MetaKind::Parity
                    } else {
                        MetaKind::Tree
                    };
                    mem.push(MetaAccess {
                        addr,
                        is_write: true,
                        kind,
                    });
                }
            }
        }
        let mut flush = |c: &mut Option<PartitionedCache>, kind: MetaKind, rmw: bool| {
            if let Some(pc) = c {
                for part in 0..pc.len() {
                    for addr in pc.partition_mut(part).flush() {
                        if rmw {
                            mem.push(MetaAccess {
                                addr,
                                is_write: false,
                                kind,
                            });
                        }
                        mem.push(MetaAccess {
                            addr,
                            is_write: true,
                            kind,
                        });
                    }
                }
            }
        };
        flush(&mut self.mac_cache, MetaKind::Mac, false);
        let shared = matches!(self.spec.parity, ParityMode::Shared(_));
        flush(&mut self.parity_cache, MetaKind::Parity, shared);
    }

    fn set_tree_memo(&mut self, enabled: bool) {
        self.memo_enabled = enabled;
        self.tree_memo.iter_mut().for_each(|m| *m = None);
    }

    fn geometry(&self) -> Option<&TreeGeometry> {
        self.geo.as_ref()
    }

    fn active_geometry(&self, part: usize) -> Option<&TreeGeometry> {
        self.part_geos
            .get(part)
            .and_then(Option::as_ref)
            .or(self.geo.as_ref())
    }

    fn partitions(&self) -> usize {
        self.regions.tree_bases.len()
    }

    fn tree_base(&self, part: usize) -> u64 {
        self.regions.tree_bases[part]
    }

    fn mac_base(&self, part: usize) -> u64 {
        self.regions.mac_bases[part]
    }

    fn parity_base(&self, part: usize) -> u64 {
        self.regions.parity_bases[part]
    }

    fn region_span(&self, kind: MetaKind) -> u64 {
        let span = if self.spec.isolated {
            self.cfg.enclave_capacity
        } else {
            self.cfg.data_capacity
        };
        match kind {
            MetaKind::Tree => self.geo.as_ref().map_or(0, TreeGeometry::storage_bytes),
            MetaKind::Mac | MetaKind::Parity => span / 8,
        }
    }

    fn tree_cache_stats(&self) -> CacheStats {
        self.tree_cache
            .as_ref()
            .map(PartitionedCache::stats)
            .unwrap_or_default()
    }

    fn mac_cache_stats(&self) -> CacheStats {
        self.mac_cache
            .as_ref()
            .map(PartitionedCache::stats)
            .unwrap_or_default()
    }

    fn parity_cache_stats(&self) -> CacheStats {
        self.parity_cache
            .as_ref()
            .map(PartitionedCache::stats)
            .unwrap_or_default()
    }

    fn detects_errors(&self) -> bool {
        self.spec.tree != TreeKind::None
    }

    fn parity_group_share(&self) -> u64 {
        match self.spec.parity {
            ParityMode::None => 0,
            ParityMode::PerBlock => 1,
            ParityMode::Shared(share) => share,
            ParityMode::Embedded => self.geo.as_ref().map_or(0, |g| g.parity_share()),
        }
    }

    fn embedding_viable(&self) -> bool {
        let geo = self.geo.as_ref().expect("embedded parity implies tree");
        let s = self.cfg.rank_stride_blocks.max(1);
        s.saturating_mul(geo.parity_share()) <= geo.leaf_arity()
    }

    fn recovery_parity_addr(&self, part: usize, block: u64) -> Option<u64> {
        let base = self.regions.parity_bases[part];
        match self.spec.parity {
            ParityMode::None => None,
            ParityMode::PerBlock => Some(base + (block / 8) * 64),
            ParityMode::Shared(share) => {
                let group = self.parity_group(block, share);
                Some(base + (group / 8) * 64)
            }
            ParityMode::Embedded => {
                if self.embedding_viable() {
                    // Parity rides in the tree leaf covering the block.
                    let geo = self.geo.as_ref().expect("embedded parity implies tree");
                    let leaf = geo.leaf_of(block);
                    Some(geo.node_addr(self.regions.tree_bases[part], leaf))
                } else {
                    Some(self.fallback_parity_line(part, block))
                }
            }
        }
    }

    fn install_tree(&mut self, part: usize, data_blocks: u64, mem: &mut Vec<MetaAccess>) {
        if !self.spec.isolated || self.geo.is_none() {
            return;
        }
        let cap = self.cfg.enclave_capacity / 64;
        let blocks = data_blocks.clamp(1, cap);
        let geo = self
            .spec
            .tree
            .geometry(blocks)
            .expect("isolated schemes have a tree");
        // Any resident lines belong to a previous tenant's layout; the
        // destroy path already discarded them, but be safe against a
        // re-install without an intervening reset.
        self.tree_memo[part] = None;
        if let Some(c) = self.tree_cache.as_mut() {
            c.partition_mut(part).discard();
        }
        let base = self.regions.tree_bases[part];
        mem.extend((0..geo.total_nodes()).map(|i| MetaAccess {
            addr: base + i * 64,
            is_write: true,
            kind: MetaKind::Tree,
        }));
        self.part_geos[part] = Some(geo);
    }

    fn grow_tree(&mut self, part: usize, data_blocks: u64, mem: &mut Vec<MetaAccess>) {
        if !self.spec.isolated || self.geo.is_none() {
            return;
        }
        let Some(old) = self.part_geos[part].as_ref() else {
            self.install_tree(part, data_blocks, mem);
            return;
        };
        let cap = self.cfg.enclave_capacity / 64;
        let blocks = data_blocks.clamp(1, cap);
        if blocks <= old.data_blocks() {
            return;
        }
        let old_nodes = old.total_nodes();
        let new = self
            .spec
            .tree
            .geometry(blocks)
            .expect("isolated schemes have a tree");
        let base = self.regions.tree_bases[part];
        let parity_base = self.regions.parity_bases[part];
        self.tree_memo[part] = None;
        if let Some(c) = self.tree_cache.as_mut() {
            for addr in c.partition_mut(part).flush() {
                // The unified cache can hold fallback-parity lines;
                // label them as in the eviction path.
                let kind = if addr >= parity_base {
                    MetaKind::Parity
                } else {
                    MetaKind::Tree
                };
                mem.push(MetaAccess {
                    addr,
                    is_write: true,
                    kind,
                });
            }
        }
        for i in 0..old_nodes {
            mem.push(MetaAccess {
                addr: base + i * 64,
                is_write: false,
                kind: MetaKind::Tree,
            });
        }
        for i in 0..new.total_nodes() {
            mem.push(MetaAccess {
                addr: base + i * 64,
                is_write: true,
                kind: MetaKind::Tree,
            });
        }
        self.part_geos[part] = Some(new);
    }

    fn reset_partition(&mut self, part: usize, mem: &mut Vec<MetaAccess>) {
        if !self.spec.isolated {
            return;
        }
        let Some(geo) = self.part_geos[part].take() else {
            return;
        };
        self.tree_memo[part] = None;
        for c in [
            &mut self.tree_cache,
            &mut self.mac_cache,
            &mut self.parity_cache,
        ]
        .into_iter()
        .flatten()
        {
            c.partition_mut(part).discard();
        }
        let base = self.regions.tree_bases[part];
        for i in 0..geo.total_nodes() {
            mem.push(MetaAccess {
                addr: base + i * 64,
                is_write: true,
                kind: MetaKind::Tree,
            });
        }
        if !self.spec.mac_inline {
            let mac_base = self.regions.mac_bases[part];
            for line in 0..geo.data_blocks().div_ceil(8) {
                mem.push(MetaAccess {
                    addr: mac_base + line * 64,
                    is_write: true,
                    kind: MetaKind::Mac,
                });
            }
        }
    }

    fn reset_leaves(
        &mut self,
        part: usize,
        first_block: u64,
        count: u64,
        rebuild_parity: bool,
        mem: &mut Vec<MetaAccess>,
    ) {
        let Some(geo) = self.part_geos[part].as_ref().or(self.geo.as_ref()) else {
            // No tree (Unsecure): nothing to reset, and such schemes
            // keep no parity either.
            return;
        };
        if count == 0 || first_block >= geo.data_blocks() {
            return;
        }
        let last = (first_block + count - 1).min(geo.data_blocks() - 1);
        let tree_base = self.regions.tree_bases[part];
        let leaf_addrs: Vec<u64> = (first_block / geo.leaf_arity()..=last / geo.leaf_arity())
            .map(|index| geo.node_addr(tree_base, NodeId { level: 0, index }))
            .collect();
        let mac_lines: Vec<u64> = if self.spec.mac_inline || self.mac_cache.is_none() {
            Vec::new()
        } else {
            let mac_base = self.regions.mac_bases[part];
            (first_block / 8..=last / 8)
                .map(|line| mac_base + line * 64)
                .collect()
        };
        let parity_base = self.regions.parity_bases[part];
        // (line address, pays RMW read) per touched parity line.
        let mut parity_lines: Vec<(u64, bool)> = Vec::new();
        if rebuild_parity {
            match self.spec.parity {
                ParityMode::None => {}
                ParityMode::PerBlock => {
                    for line in first_block / 8..=last / 8 {
                        parity_lines.push((parity_base + line * 64, false));
                    }
                }
                ParityMode::Shared(share) => {
                    let lines: BTreeSet<u64> = (first_block..=last)
                        .map(|b| parity_base + (self.parity_group(b, share) / 8) * 64)
                        .collect();
                    parity_lines.extend(lines.into_iter().map(|l| (l, true)));
                }
                ParityMode::Embedded => {
                    if !self.embedding_viable() {
                        let lines: BTreeSet<u64> = (first_block..=last)
                            .map(|b| self.fallback_parity_line(part, b))
                            .collect();
                        parity_lines.extend(lines.into_iter().map(|l| (l, true)));
                    }
                    // Viable embedding: the leaf rewrite carries the
                    // fresh parity; no extra lines.
                }
            }
        }

        // Recycled leaves must never serve from a memoized path.
        self.tree_memo[part] = None;
        if let Some(c) = self.tree_cache.as_mut() {
            let p = c.partition_mut(part);
            for &addr in &leaf_addrs {
                p.invalidate(addr);
            }
        }
        for &addr in &leaf_addrs {
            mem.push(MetaAccess {
                addr,
                is_write: true,
                kind: MetaKind::Tree,
            });
        }
        if let Some(c) = self.mac_cache.as_mut() {
            let p = c.partition_mut(part);
            for &addr in &mac_lines {
                p.invalidate(addr);
            }
        }
        for &addr in &mac_lines {
            mem.push(MetaAccess {
                addr,
                is_write: true,
                kind: MetaKind::Mac,
            });
        }
        for &(addr, rmw) in &parity_lines {
            // Fallback-embedded lines live in the unified tree cache;
            // a dedicated parity cache holds the others. Either way the
            // stale cached state is superseded by the rebuild.
            if let Some(c) = self.parity_cache.as_mut() {
                c.partition_mut(part).invalidate(addr);
            } else if let Some(c) = self.tree_cache.as_mut() {
                c.partition_mut(part).invalidate(addr);
            }
            if rmw {
                mem.push(MetaAccess {
                    addr,
                    is_write: false,
                    kind: MetaKind::Parity,
                });
            }
            mem.push(MetaAccess {
                addr,
                is_write: true,
                kind: MetaKind::Parity,
            });
        }
    }

    fn save_state(&self, w: &mut itesp_snap::SnapWriter) {
        w.section("TREE", 1);
        // Lifecycle geometry per partition: data_blocks is stored
        // verbatim by TreeGeometry, so the geometry round-trips through
        // `spec.tree.geometry(data_blocks)` exactly.
        w.seq(self.part_geos.iter(), |w, g| {
            w.opt_u64(g.as_ref().map(TreeGeometry::data_blocks));
        });
        let save_cache = |w: &mut itesp_snap::SnapWriter, c: &Option<PartitionedCache>| {
            w.bool(c.is_some());
            if let Some(pc) = c {
                pc.save_state(w);
            }
        };
        save_cache(w, &self.tree_cache);
        save_cache(w, &self.mac_cache);
        save_cache(w, &self.parity_cache);
        w.bool(self.overflow.is_some());
        if let Some(of) = &self.overflow {
            of.save_state(w);
        }
        w.seq(self.tree_memo.iter(), |w, m| match m {
            Some(memo) => {
                w.bool(true);
                w.u64(memo.leaf_index);
                w.u64(memo.leaf_addr);
            }
            None => w.bool(false),
        });
        w.bool(self.memo_enabled);
    }

    fn load_state(&mut self, r: &mut itesp_snap::SnapReader) -> Result<(), itesp_snap::SnapError> {
        r.section("TREE", 1)?;
        let corrupt = |what, at| itesp_snap::SnapError::Corrupt { what, at };
        let parts = self.part_geos.len();
        let n = r.seq_len("partition geometries")?;
        if n != parts {
            return Err(corrupt("partition count (config mismatch)", r.pos()));
        }
        for g in &mut self.part_geos {
            *g = match r.opt_u64("partition data_blocks")? {
                Some(blocks) => Some(
                    self.spec
                        .tree
                        .geometry(blocks)
                        .ok_or(corrupt("partition geometry for treeless scheme", r.pos()))?,
                ),
                None => None,
            };
        }
        let load_cache = |r: &mut itesp_snap::SnapReader,
                          c: &mut Option<PartitionedCache>,
                          what: &'static str|
         -> Result<(), itesp_snap::SnapError> {
            let present = r.bool(what)?;
            if present != c.is_some() {
                return Err(itesp_snap::SnapError::Corrupt { what, at: r.pos() });
            }
            if present {
                *c = Some(PartitionedCache::load_state(r)?);
            }
            Ok(())
        };
        load_cache(r, &mut self.tree_cache, "tree cache presence")?;
        load_cache(r, &mut self.mac_cache, "mac cache presence")?;
        load_cache(r, &mut self.parity_cache, "parity cache presence")?;
        let has_overflow = r.bool("overflow tracker presence")?;
        if has_overflow != self.overflow.is_some() {
            return Err(corrupt("overflow tracker presence", r.pos()));
        }
        if has_overflow {
            self.overflow = Some(OverflowTracker::load_state(r)?);
        }
        let n = r.seq_len("tree memos")?;
        if n != parts {
            return Err(corrupt("tree memo count (config mismatch)", r.pos()));
        }
        for m in &mut self.tree_memo {
            *m = if r.bool("tree memo presence")? {
                Some(TreeMemo {
                    leaf_index: r.u64("memo leaf_index")?,
                    leaf_addr: r.u64("memo leaf_addr")?,
                })
            } else {
                None
            };
        }
        self.memo_enabled = r.bool("memo enabled")?;
        Ok(())
    }

    fn repartition_caches(&mut self, live: &[bool], mem: &mut Vec<MetaAccess>) {
        if !self.spec.isolated {
            return;
        }
        let parts = self.partitions();
        assert_eq!(live.len(), parts, "live mask must cover every partition");
        let ways = self.cfg.cache_ways;
        let min_slice = ways * 64;
        let live_count = live.iter().filter(|&&l| l).count();
        let total = self.slice_bytes * parts;
        let share = if live_count == 0 {
            min_slice
        } else {
            let reserved = (parts - live_count) * min_slice;
            largest_valid_capacity(total.saturating_sub(reserved) / live_count, ways)
        };
        let shared_parity = matches!(self.spec.parity, ParityMode::Shared(_));
        let parity_bases = self.regions.parity_bases.clone();
        // Resizing re-homes or spills lines in every partition.
        self.tree_memo.iter_mut().for_each(|m| *m = None);
        for (cache, kind) in [
            (&mut self.tree_cache, MetaKind::Tree),
            (&mut self.mac_cache, MetaKind::Mac),
            (&mut self.parity_cache, MetaKind::Parity),
        ] {
            let Some(pc) = cache.as_mut() else { continue };
            for p in 0..parts {
                let target = if live[p] { share } else { min_slice };
                for addr in pc.resize_partition(p, target) {
                    let kind = if kind == MetaKind::Tree && addr >= parity_bases[p] {
                        MetaKind::Parity
                    } else {
                        kind
                    };
                    if kind == MetaKind::Parity && shared_parity {
                        // Spilled shared-parity diffs merge via RMW,
                        // as in the eviction and drain paths.
                        mem.push(MetaAccess {
                            addr,
                            is_write: false,
                            kind,
                        });
                    }
                    mem.push(MetaAccess {
                        addr,
                        is_write: true,
                        kind,
                    });
                }
            }
        }
    }
}
