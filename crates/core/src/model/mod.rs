//! The per-scheme traffic models behind [`crate::SecurityEngine`].
//!
//! The engine used to be a single tree-walk pipeline with the treeless
//! baseline squeezed in as `geo == None`; the related-work schemes
//! (SecDDR's link-level authentication, IRO's Ring ORAM paths) break
//! the "every access is a tree path" assumption outright. [`SchemeModel`]
//! is the seam: the engine owns configuration and statistics and
//! dispatches every access, lifecycle operation, and topology query
//! through the trait object; each family owns its caches, regions, and
//! address math.
//!
//! * [`TreeWalkModel`] — the paper's 13 design points, moved verbatim
//!   from the old engine body (the lockstep equivalence oracle against
//!   [`crate::ReferenceEngine`] proves the move changed nothing);
//! * [`LinkLevelModel`] — SecDDR: MAC in the ECC transfer, anti-replay
//!   counters on chip, zero extra memory transactions;
//! * [`OramModel`] — IRO: bucket-path reads per access, deterministic
//!   position remapping, reverse-lexicographic eviction with bucket
//!   parity read-modify-writes.

mod link;
mod oram;
mod tree_walk;

pub use link::LinkLevelModel;
pub use oram::{OramLayout, OramModel, OramShadow};
pub use tree_walk::{parity_group, TreeWalkModel};

use crate::cache::CacheStats;
use crate::engine::{EngineConfig, MetaAccess, MetaKind, MissCase};
use crate::scheme::ModelFamily;
use crate::tree::TreeGeometry;
use itesp_snap::{SnapError, SnapReader, SnapWriter};

/// One scheme family's traffic model. The engine calls it for every
/// data access, drains it at end of run, and forwards the enclave
/// lifecycle; the model appends its metadata transactions to the
/// caller's list (the engine folds them into [`crate::EngineStats`]).
pub trait SchemeModel: std::fmt::Debug + Send {
    /// Which family this model implements.
    fn family(&self) -> ModelFamily;

    /// Filter one data access: append the scheme's extra transactions
    /// to `mem`, return the overflow stall (cycles) and the Figure 3
    /// miss classification. `block` is already in the partition's
    /// domain (enclave block under isolation, `paddr / 64` otherwise).
    fn access(
        &mut self,
        part: usize,
        block: u64,
        is_write: bool,
        mem: &mut Vec<MetaAccess>,
    ) -> (u64, MissCase);

    /// Flush every cache, appending writeback traffic.
    fn drain(&mut self, mem: &mut Vec<MetaAccess>);

    /// Enable/disable the ancestor-memo fast path (tree-walk only).
    fn set_tree_memo(&mut self, _enabled: bool) {}

    /// Construction-time tree geometry, if the scheme walks one.
    fn geometry(&self) -> Option<&TreeGeometry> {
        None
    }

    /// The geometry partition `part` is actually running.
    fn active_geometry(&self, _part: usize) -> Option<&TreeGeometry> {
        self.geometry()
    }

    /// Number of metadata partitions.
    fn partitions(&self) -> usize;

    /// Base physical address of partition `part`'s tree region (ORAM:
    /// the bucket-tree region).
    fn tree_base(&self, part: usize) -> u64;

    /// Base physical address of partition `part`'s MAC region.
    fn mac_base(&self, part: usize) -> u64;

    /// Base physical address of partition `part`'s parity region.
    fn parity_base(&self, part: usize) -> u64;

    /// Size in bytes of one partition's region for `kind` — the bound
    /// the differential oracle checks traffic containment against.
    fn region_span(&self, kind: MetaKind) -> u64;

    fn tree_cache_stats(&self) -> CacheStats {
        CacheStats::default()
    }

    fn mac_cache_stats(&self) -> CacheStats {
        CacheStats::default()
    }

    fn parity_cache_stats(&self) -> CacheStats {
        CacheStats::default()
    }

    /// Can this scheme detect corrupted data at all? Drives the RAS
    /// layer's detected-vs-silent classification (a detecting scheme
    /// without parity raises DUE instead of SDC).
    fn detects_errors(&self) -> bool;

    /// How many blocks share one correction parity (0 = detection-only).
    fn parity_group_share(&self) -> u64;

    /// Embedded-parity viability under the current address mapping
    /// (tree-walk ITESP variants only).
    fn embedding_viable(&self) -> bool {
        false
    }

    /// The memory line recovery of `block` fetches correction parity
    /// from; `None` for detection-only schemes.
    fn recovery_parity_addr(&self, part: usize, block: u64) -> Option<u64>;

    /// Enclave lifecycle: install a footprint-sized private tree.
    fn install_tree(&mut self, _part: usize, _data_blocks: u64, _mem: &mut Vec<MetaAccess>) {}

    /// Enclave lifecycle: grow the installed tree.
    fn grow_tree(&mut self, _part: usize, _data_blocks: u64, _mem: &mut Vec<MetaAccess>) {}

    /// Enclave lifecycle: secure teardown of a partition.
    fn reset_partition(&mut self, _part: usize, _mem: &mut Vec<MetaAccess>) {}

    /// Enclave lifecycle: fresh counters for recycled leaves.
    fn reset_leaves(
        &mut self,
        _part: usize,
        _first_block: u64,
        _count: u64,
        _rebuild_parity: bool,
        _mem: &mut Vec<MetaAccess>,
    ) {
    }

    /// Enclave lifecycle: redistribute cache slices over live tenants.
    fn repartition_caches(&mut self, _live: &[bool], _mem: &mut Vec<MetaAccess>) {}

    /// Serialize the model's mutable state (caches, counters, memos,
    /// position maps — everything not derivable from config) for a
    /// crash-recovery snapshot.
    fn save_state(&self, w: &mut SnapWriter);

    /// Restore state into a freshly built model of the same config
    /// from [`SchemeModel::save_state`] bytes.
    fn load_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError>;
}

/// Instantiate the model for `cfg.scheme` — the single place the
/// engine maps a scheme onto its family.
pub fn build_model(cfg: EngineConfig) -> Box<dyn SchemeModel> {
    match cfg.scheme.family() {
        ModelFamily::TreeWalk => Box::new(TreeWalkModel::new(cfg)),
        ModelFamily::LinkLevel => Box::new(LinkLevelModel::new(cfg)),
        ModelFamily::Oram => Box::new(OramModel::new(cfg)),
    }
}
