//! SecDDR-style link-level authentication (arXiv:2209.00685).
//!
//! Integrity moves from a counter tree to the DDR interface itself:
//! every transfer carries a per-link MAC in the ECC field (as in
//! Synergy's MAC-in-ECC), and replay is prevented by anti-replay
//! counters kept *on chip* on both ends of the link, so no counter is
//! ever fetched from memory. The traffic consequence is radical and is
//! the whole point of the baseline: **zero extra memory transactions**
//! and zero metadata cache pressure — every access classifies as
//! Figure 3 case A.
//!
//! Reliability is the flip side: the MAC detects a corrupted transfer
//! but carries no locate/correct information (the ECC redundancy it
//! displaced did), and there is no parity structure, so every detected
//! chip fault is uncorrectable — the RAS layer classifies it as a DUE,
//! never an SDC and never a correction.

use crate::cache::CacheStats;
use crate::engine::{EngineConfig, MetaAccess, MetaKind, MissCase};
use crate::scheme::ModelFamily;

use super::SchemeModel;

/// The link-level [`SchemeModel`]. Stateless apart from an on-chip
/// write counter standing in for the anti-replay counter — tracked so
/// the model has an observable functional obligation (monotonicity)
/// for the oracle, at zero traffic cost.
#[derive(Debug)]
pub struct LinkLevelModel {
    cfg: EngineConfig,
    /// Anti-replay link counter: total authenticated transfers. Lives
    /// on chip; never generates traffic.
    transfers: u64,
}

impl LinkLevelModel {
    /// Build the model (the caller validated `cfg`).
    pub fn new(cfg: EngineConfig) -> Self {
        LinkLevelModel { cfg, transfers: 0 }
    }

    /// On-chip anti-replay counter value (authenticated transfers so
    /// far) — monotone by construction, exposed for the oracle.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }
}

impl SchemeModel for LinkLevelModel {
    fn family(&self) -> ModelFamily {
        ModelFamily::LinkLevel
    }

    fn access(
        &mut self,
        _part: usize,
        _block: u64,
        _is_write: bool,
        _mem: &mut Vec<MetaAccess>,
    ) -> (u64, MissCase) {
        // The MAC rides the ECC pins of the data transfer itself and
        // the anti-replay counter never leaves the chip: no extra
        // transactions, no stalls, nothing to miss.
        self.transfers += 1;
        (0, MissCase::A)
    }

    fn drain(&mut self, _mem: &mut Vec<MetaAccess>) {}

    fn partitions(&self) -> usize {
        1
    }

    fn tree_base(&self, _part: usize) -> u64 {
        // Degenerate empty regions directly above the data span.
        self.cfg.data_capacity
    }

    fn mac_base(&self, _part: usize) -> u64 {
        self.cfg.data_capacity
    }

    fn parity_base(&self, _part: usize) -> u64 {
        self.cfg.data_capacity
    }

    fn region_span(&self, _kind: MetaKind) -> u64 {
        0
    }

    fn tree_cache_stats(&self) -> CacheStats {
        CacheStats::default()
    }

    fn detects_errors(&self) -> bool {
        // The link MAC catches any corrupted transfer...
        true
    }

    fn parity_group_share(&self) -> u64 {
        // ...but nothing can reconstruct it: detection-only.
        0
    }

    fn recovery_parity_addr(&self, _part: usize, _block: u64) -> Option<u64> {
        None
    }

    fn save_state(&self, w: &mut itesp_snap::SnapWriter) {
        w.section("LINK", 1);
        w.u64(self.transfers);
    }

    fn load_state(&mut self, r: &mut itesp_snap::SnapReader) -> Result<(), itesp_snap::SnapError> {
        r.section("LINK", 1)?;
        self.transfers = r.u64("link transfers")?;
        Ok(())
    }
}
