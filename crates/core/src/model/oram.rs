//! IRO-style integrity + reliability on Ring ORAM (arXiv:2012.14318).
//!
//! Data lives in the slots of a binary bucket tree; each block is
//! mapped to a random leaf, an access reads one block from every
//! bucket on the root-to-leaf path of its current position (Ring
//! ORAM's one-block-per-bucket online read), and the block is remapped
//! to a fresh position. Every `EVICT_RATE` accesses an eviction walks
//! one path in reverse-lexicographic leaf order, reading and
//! rewriting its buckets and updating the XOR parity covering the
//! written buckets (IRO's reliability layer: parity over ORAM buckets,
//! so a dead chip's share of a bucket is reconstructable).
//!
//! The position map and stash are on chip (the paper's recursion is
//! collapsed, as its evaluation configures); integrity rides in
//! per-block MACs inside the buckets, verified on the fly — no counter
//! tree, no metadata cache. Everything is a **pure function of the
//! access history**: position remapping uses a splitmix64 hash of
//! (block, per-block access count), evictions follow a deterministic
//! reverse-lexicographic schedule — which is what lets the
//! differential oracle shadow the model exactly ([`OramShadow`]).

use std::collections::{BTreeSet, HashMap};

use crate::engine::{EngineConfig, MetaAccess, MetaKind, MissCase};
use crate::scheme::ModelFamily;

use super::tree_walk::parity_group;
use super::SchemeModel;

/// Ring ORAM bucket capacity (Z real slots).
pub const BUCKET_SLOTS: u64 = 4;

/// Accesses between evictions (Ring ORAM's A parameter, scaled down to
/// the one-block-per-bucket read model).
pub const EVICT_RATE: u64 = 4;

const POS_SEED: u64 = 0x0013_350c_5a11_u64;

/// splitmix64 — the deterministic position-remap hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A block's first position: a pure function of its index.
pub fn initial_position(block: u64, leaves: u64) -> u64 {
    splitmix64(block ^ POS_SEED) % leaves
}

/// A block's position after its `n`-th access: a pure function of
/// (block, n), so any observer replaying the access history derives
/// the same position map.
pub fn next_position(block: u64, n: u64, leaves: u64) -> u64 {
    splitmix64(block.wrapping_mul(0xA24B_AED4_963E_E407) ^ n.rotate_left(17) ^ POS_SEED) % leaves
}

/// Reverse-lexicographic eviction leaf for eviction number `seq`.
pub fn eviction_leaf(seq: u64, levels: u32, leaves: u64) -> u64 {
    if levels == 0 {
        0
    } else {
        (seq % leaves).reverse_bits() >> (64 - levels)
    }
}

/// The deterministic ORAM layout shared by the model and its oracle
/// shadow: tree shape and region addressing.
#[derive(Debug, Clone, Copy)]
pub struct OramLayout {
    /// Leaf level of the bucket tree (root = level 0).
    pub levels: u32,
    /// `1 << levels`.
    pub leaves: u64,
    /// `2 * leaves - 1` buckets.
    pub bucket_count: u64,
    /// Base address of the bucket-tree region.
    pub tree_base: u64,
    /// Base address of the bucket-parity region.
    pub parity_base: u64,
    /// Rank stride for the recovery parity-group function.
    pub rank_stride_blocks: u64,
}

impl OramLayout {
    /// Derive the layout from the engine configuration.
    pub fn from_config(cfg: &EngineConfig) -> Self {
        let blocks = (cfg.data_capacity / 64).max(1);
        let leaves = (blocks / BUCKET_SLOTS).max(1).next_power_of_two();
        let levels = leaves.trailing_zeros();
        let bucket_count = 2 * leaves - 1;
        let tree_base = cfg.data_capacity;
        let parity_base = tree_base + bucket_count * 64;
        OramLayout {
            levels,
            leaves,
            bucket_count,
            tree_base,
            parity_base,
            rank_stride_blocks: cfg.rank_stride_blocks,
        }
    }

    /// Heap offset of the path bucket at `level` toward `leaf`.
    pub fn path_offset(&self, leaf: u64, level: u32) -> u64 {
        ((1u64 << level) - 1) + (leaf >> (self.levels - level))
    }

    /// Bucket-parity region size, line-aligned (one 8 B parity word per
    /// 8-bucket group).
    pub fn parity_span(&self) -> u64 {
        self.bucket_count.div_ceil(8) * 64
    }

    /// Append the root-to-leaf bucket reads for `leaf`.
    fn push_path_reads(&self, leaf: u64, mem: &mut Vec<MetaAccess>) {
        for level in 0..=self.levels {
            mem.push(MetaAccess {
                addr: self.tree_base + self.path_offset(leaf, level) * 64,
                is_write: false,
                kind: MetaKind::Tree,
            });
        }
    }

    /// Append one eviction: read the path, rewrite it, and RMW the
    /// parity line of every written bucket (deduped, ascending — the
    /// controller batches the XOR updates).
    fn push_eviction(&self, leaf: u64, mem: &mut Vec<MetaAccess>) {
        self.push_path_reads(leaf, mem);
        let mut lines = BTreeSet::new();
        for level in 0..=self.levels {
            let off = self.path_offset(leaf, level);
            mem.push(MetaAccess {
                addr: self.tree_base + off * 64,
                is_write: true,
                kind: MetaKind::Tree,
            });
            lines.insert(self.parity_base + (off / 8) * 64);
        }
        for line in lines {
            mem.push(MetaAccess {
                addr: line,
                is_write: false,
                kind: MetaKind::Parity,
            });
            mem.push(MetaAccess {
                addr: line,
                is_write: true,
                kind: MetaKind::Parity,
            });
        }
    }
}

/// Position-map + eviction-schedule state, advanced one access at a
/// time. The model drives one instance; the differential oracle drives
/// an [`OramShadow`] holding another and compares traffic exactly.
#[derive(Debug, Default, Clone)]
struct OramState {
    /// Current leaf per touched block (untouched blocks are at their
    /// `initial_position`).
    positions: HashMap<u64, u64>,
    /// Per-block access counts (the remap-function argument).
    counts: HashMap<u64, u64>,
    /// Accesses since the last eviction.
    pending_evict: u64,
    /// Evictions issued (reverse-lexicographic schedule index).
    evict_seq: u64,
}

impl OramState {
    /// Advance by one access, appending the traffic; returns the
    /// demand-path read count (the Figure 3 classification input).
    fn step(&mut self, layout: &OramLayout, block: u64, mem: &mut Vec<MetaAccess>) -> u32 {
        let pos = self
            .positions
            .get(&block)
            .copied()
            .unwrap_or_else(|| initial_position(block, layout.leaves));
        layout.push_path_reads(pos, mem);
        let n = self.counts.entry(block).or_insert(0);
        *n += 1;
        self.positions
            .insert(block, next_position(block, *n, layout.leaves));
        self.pending_evict += 1;
        if self.pending_evict == EVICT_RATE {
            self.pending_evict = 0;
            let leaf = eviction_leaf(self.evict_seq, layout.levels, layout.leaves);
            self.evict_seq += 1;
            layout.push_eviction(leaf, mem);
        }
        layout.levels + 1
    }
}

/// The ORAM [`SchemeModel`]. See module docs.
#[derive(Debug)]
pub struct OramModel {
    layout: OramLayout,
    state: OramState,
}

impl OramModel {
    /// Build the model (the caller validated `cfg`).
    pub fn new(cfg: EngineConfig) -> Self {
        OramModel {
            layout: OramLayout::from_config(&cfg),
            state: OramState::default(),
        }
    }

    /// The deterministic layout (shared with the oracle shadow).
    pub fn layout(&self) -> &OramLayout {
        &self.layout
    }
}

impl SchemeModel for OramModel {
    fn family(&self) -> ModelFamily {
        ModelFamily::Oram
    }

    fn access(
        &mut self,
        _part: usize,
        block: u64,
        _is_write: bool,
        mem: &mut Vec<MetaAccess>,
    ) -> (u64, MissCase) {
        // Reads and writes are indistinguishable by design: both fetch
        // the full path and remap (that *is* the leakage protection).
        let reads = self.state.step(&self.layout, block, mem);
        (0, MissCase::classify(false, reads))
    }

    fn drain(&mut self, _mem: &mut Vec<MetaAccess>) {
        // The stash writes back through the eviction schedule; there is
        // no cached metadata to flush.
    }

    fn partitions(&self) -> usize {
        1
    }

    fn tree_base(&self, _part: usize) -> u64 {
        self.layout.tree_base
    }

    fn mac_base(&self, _part: usize) -> u64 {
        // MACs ride inside the buckets; no separate region.
        self.layout.parity_base + self.layout.parity_span()
    }

    fn parity_base(&self, _part: usize) -> u64 {
        self.layout.parity_base
    }

    fn region_span(&self, kind: MetaKind) -> u64 {
        match kind {
            MetaKind::Tree => self.layout.bucket_count * 64,
            MetaKind::Mac => 0,
            MetaKind::Parity => self.layout.parity_span(),
        }
    }

    fn detects_errors(&self) -> bool {
        // Per-block MACs inside the buckets.
        true
    }

    fn parity_group_share(&self) -> u64 {
        8
    }

    fn recovery_parity_addr(&self, _part: usize, block: u64) -> Option<u64> {
        // Bucket parity is XOR-shared by 8 blocks across ranks; the
        // recovery group of a data block follows the same cross-rank
        // group function as the paper's shared parity.
        let group = parity_group(block, 8, self.layout.rank_stride_blocks);
        Some(self.layout.parity_base + (group / 8) * 64)
    }

    fn save_state(&self, w: &mut itesp_snap::SnapWriter) {
        w.section("ORAM", 1);
        let mut positions: Vec<_> = self.state.positions.iter().collect();
        positions.sort_unstable_by_key(|(k, _)| **k);
        w.seq(positions.into_iter(), |w, (k, v)| {
            w.u64(*k);
            w.u64(*v);
        });
        let mut counts: Vec<_> = self.state.counts.iter().collect();
        counts.sort_unstable_by_key(|(k, _)| **k);
        w.seq(counts.into_iter(), |w, (k, v)| {
            w.u64(*k);
            w.u64(*v);
        });
        w.u64(self.state.pending_evict);
        w.u64(self.state.evict_seq);
    }

    fn load_state(&mut self, r: &mut itesp_snap::SnapReader) -> Result<(), itesp_snap::SnapError> {
        r.section("ORAM", 1)?;
        let n = r.seq_len("oram positions")?;
        let mut positions = HashMap::with_capacity(n);
        for _ in 0..n {
            let k = r.u64("position block")?;
            positions.insert(k, r.u64("position leaf")?);
        }
        let n = r.seq_len("oram counts")?;
        let mut counts = HashMap::with_capacity(n);
        for _ in 0..n {
            let k = r.u64("count block")?;
            counts.insert(k, r.u64("count value")?);
        }
        self.state = OramState {
            positions,
            counts,
            pending_evict: r.u64("oram pending_evict")?,
            evict_seq: r.u64("oram evict_seq")?,
        };
        Ok(())
    }
}

/// The oracle's independent twin of the ORAM access model: it keeps
/// its own position map and eviction schedule and predicts the exact
/// transaction list of every access. Any divergence between model and
/// shadow — a stale position, a skipped eviction, a mislabeled parity
/// line — is a bug in one of them.
#[derive(Debug)]
pub struct OramShadow {
    layout: OramLayout,
    state: OramState,
    scratch: Vec<MetaAccess>,
}

impl OramShadow {
    /// Build the shadow from the same configuration as the engine.
    pub fn new(cfg: &EngineConfig) -> Self {
        OramShadow {
            layout: OramLayout::from_config(cfg),
            state: OramState::default(),
            scratch: Vec::new(),
        }
    }

    /// Advance one access and return the expected transactions.
    pub fn expect_access(&mut self, block: u64) -> &[MetaAccess] {
        self.scratch.clear();
        let mut mem = std::mem::take(&mut self.scratch);
        self.state.step(&self.layout, block, &mut mem);
        self.scratch = mem;
        &self.scratch
    }

    /// Expected Figure 3 class of every ORAM access (the demand path
    /// is always fetched in full).
    pub fn expected_case(&self) -> MissCase {
        MissCase::classify(false, self.layout.levels + 1)
    }

    /// The layout (for containment checks).
    pub fn layout(&self) -> &OramLayout {
        &self.layout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::scheme::Scheme;

    fn cfg(blocks: u64) -> EngineConfig {
        let mut c = EngineConfig::paper_default(Scheme::IrOram);
        c.data_capacity = blocks * 64;
        c
    }

    #[test]
    fn layout_shapes_the_bucket_tree() {
        let l = OramLayout::from_config(&cfg(1 << 12));
        // 4096 blocks / Z=4 = 1024 leaves.
        assert_eq!(l.leaves, 1 << 10);
        assert_eq!(l.levels, 10);
        assert_eq!(l.bucket_count, 2 * l.leaves - 1);
        // Root is the first bucket; leaves fill the tail.
        assert_eq!(l.path_offset(0, 0), 0);
        assert_eq!(l.path_offset(0, l.levels), l.leaves - 1);
        assert_eq!(l.path_offset(l.leaves - 1, l.levels), l.bucket_count - 1);
    }

    #[test]
    fn path_offsets_follow_heap_children() {
        let l = OramLayout::from_config(&cfg(1 << 12));
        for leaf in [0u64, 1, 511, 1023] {
            for level in 0..l.levels {
                let parent = l.path_offset(leaf, level);
                let child = l.path_offset(leaf, level + 1);
                assert!(
                    child == 2 * parent + 1 || child == 2 * parent + 2,
                    "leaf {leaf} level {level}: {child} not a child of {parent}"
                );
            }
        }
    }

    #[test]
    fn access_reads_one_bucket_per_level_and_remaps() {
        let mut m = OramModel::new(cfg(1 << 12));
        let mut mem = Vec::new();
        let (stall, case) = m.access(0, 42, false, &mut mem);
        assert_eq!(stall, 0);
        assert_eq!(case, MissCase::G);
        assert_eq!(mem.len() as u32, m.layout.levels + 1);
        assert!(mem.iter().all(|a| !a.is_write && a.kind == MetaKind::Tree));
        // The same block's next access walks a *different* path
        // (remapped) with overwhelming probability at 1024 leaves.
        let mut mem2 = Vec::new();
        m.access(0, 42, false, &mut mem2);
        assert_ne!(mem, mem2, "position must be remapped after an access");
    }

    #[test]
    fn eviction_fires_on_schedule_with_parity_rmw() {
        let mut m = OramModel::new(cfg(1 << 12));
        let per_path = (m.layout.levels + 1) as usize;
        for i in 0..EVICT_RATE - 1 {
            let mut mem = Vec::new();
            m.access(0, i, false, &mut mem);
            assert_eq!(mem.len(), per_path, "no eviction before the A-th access");
        }
        let mut mem = Vec::new();
        m.access(0, 99, true, &mut mem);
        let tree_reads = mem
            .iter()
            .filter(|a| a.kind == MetaKind::Tree && !a.is_write)
            .count();
        let tree_writes = mem
            .iter()
            .filter(|a| a.kind == MetaKind::Tree && a.is_write)
            .count();
        let parity_reads = mem
            .iter()
            .filter(|a| a.kind == MetaKind::Parity && !a.is_write)
            .count();
        let parity_writes = mem
            .iter()
            .filter(|a| a.kind == MetaKind::Parity && a.is_write)
            .count();
        // Demand path + eviction path reads; eviction path writes.
        assert_eq!(tree_reads, 2 * per_path);
        assert_eq!(tree_writes, per_path);
        // Bucket parity is a RMW per touched line.
        assert_eq!(parity_reads, parity_writes);
        assert!(parity_reads > 0);
        // First eviction targets the reverse-lex leaf of seq 0 = leaf 0.
        assert_eq!(eviction_leaf(0, m.layout.levels, m.layout.leaves), 0);
        // And the schedule visits distinct leaves before wrapping.
        let l = m.layout;
        let first_eight: BTreeSet<u64> = (0..8)
            .map(|s| eviction_leaf(s, l.levels, l.leaves))
            .collect();
        assert_eq!(first_eight.len(), 8);
    }

    #[test]
    fn shadow_predicts_the_model_exactly() {
        let c = cfg(1 << 12);
        let mut m = OramModel::new(c);
        let mut sh = OramShadow::new(&c);
        for i in 0..200u64 {
            let block = (i * 37) % (1 << 12);
            let mut mem = Vec::new();
            m.access(0, block, i % 3 == 0, &mut mem);
            assert_eq!(mem.as_slice(), sh.expect_access(block), "access {i}");
        }
    }

    #[test]
    fn traffic_stays_inside_the_regions() {
        let c = cfg(1 << 12);
        let mut m = OramModel::new(c);
        let tree_end = m.tree_base(0) + m.region_span(MetaKind::Tree);
        let parity_end = m.parity_base(0) + m.region_span(MetaKind::Parity);
        let mut mem = Vec::new();
        for i in 0..64u64 {
            m.access(0, i * 101 % (1 << 12), true, &mut mem);
        }
        for a in &mem {
            match a.kind {
                MetaKind::Tree => assert!(a.addr >= m.tree_base(0) && a.addr < tree_end),
                MetaKind::Parity => assert!(a.addr >= m.parity_base(0) && a.addr < parity_end),
                MetaKind::Mac => panic!("ORAM emits no MAC traffic"),
            }
        }
    }

    #[test]
    fn recovery_parity_is_stable_and_in_region() {
        let m = OramModel::new(cfg(1 << 12));
        let a1 = m.recovery_parity_addr(0, 77).unwrap();
        let a2 = m.recovery_parity_addr(0, 77).unwrap();
        assert_eq!(a1, a2, "recovery address must not depend on ORAM state");
        assert!(a1 >= m.parity_base(0));
        assert!(a1 < m.parity_base(0) + m.region_span(MetaKind::Parity));
        assert_eq!(m.parity_group_share(), 8);
    }
}
