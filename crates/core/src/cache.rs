//! Set-associative metadata caches.
//!
//! The paper's systems keep security metadata (counters, tree nodes,
//! MACs, parities) in small dedicated on-chip caches. [`MetaCache`] is a
//! write-back, write-allocate, LRU, set-associative cache of 64-byte
//! metadata blocks. It also tracks the Figure 2 statistic: how many hits
//! each block receives while resident ("metadata block utilization").
//!
//! [`PartitionedCache`] wraps per-enclave instances for the isolated
//! designs: the enclave-id selects a partition, so no two enclaves can
//! interact through cache state (the leakage path of Section III-B).

use serde::{Deserialize, Serialize};

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOutcome {
    pub hit: bool,
    /// Block address of a dirty victim that must be written back, if any.
    pub writeback: Option<u64>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
    hits_since_fill: u64,
}

/// Aggregate statistics for one cache (or one partition).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    pub accesses: u64,
    pub hits: u64,
    pub misses: u64,
    pub writebacks: u64,
    /// Sum over evicted blocks of hits received while resident.
    pub evicted_block_hits: u64,
    /// Number of blocks evicted (denominator for utilization).
    pub evicted_blocks: u64,
}

impl CacheStats {
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Figure 2's metric: mean hits per metadata block while cached.
    pub fn hits_per_block(&self) -> f64 {
        if self.evicted_blocks == 0 {
            0.0
        } else {
            self.evicted_block_hits as f64 / self.evicted_blocks as f64
        }
    }

    pub fn merge(&mut self, o: &CacheStats) {
        self.accesses += o.accesses;
        self.hits += o.hits;
        self.misses += o.misses;
        self.writebacks += o.writebacks;
        self.evicted_block_hits += o.evicted_block_hits;
        self.evicted_blocks += o.evicted_blocks;
    }
}

/// A write-back, LRU, set-associative cache of 64-byte blocks.
#[derive(Debug, Clone)]
pub struct MetaCache {
    lines: Vec<Line>,
    sets: usize,
    ways: usize,
    tick: u64,
    stats: CacheStats,
}

impl MetaCache {
    /// Build a cache of `capacity_bytes` with `ways` associativity.
    ///
    /// # Panics
    /// Panics if the capacity is not a positive multiple of
    /// `ways * 64` or the resulting set count is not a power of two.
    pub fn new(capacity_bytes: usize, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be positive");
        let blocks = capacity_bytes / 64;
        assert!(
            blocks >= ways && blocks.is_multiple_of(ways),
            "capacity {capacity_bytes} incompatible with {ways} ways"
        );
        let sets = blocks / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        MetaCache {
            lines: vec![Line::default(); blocks],
            sets,
            ways,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    pub fn capacity_bytes(&self) -> usize {
        self.lines.len() * 64
    }

    /// Access the metadata block containing byte address `addr`;
    /// `make_dirty` marks the line modified (a metadata update).
    /// Misses allocate; a dirty victim's address is returned for
    /// writeback.
    pub fn access(&mut self, addr: u64, make_dirty: bool) -> CacheOutcome {
        self.tick += 1;
        self.stats.accesses += 1;
        let block = addr >> 6;
        let set = (block as usize) & (self.sets - 1);
        let base = set * self.ways;
        let set_lines = &mut self.lines[base..base + self.ways];

        if let Some(line) = set_lines.iter_mut().find(|l| l.valid && l.tag == block) {
            line.last_use = self.tick;
            line.hits_since_fill += 1;
            line.dirty |= make_dirty;
            self.stats.hits += 1;
            return CacheOutcome {
                hit: true,
                writeback: None,
            };
        }

        self.stats.misses += 1;
        // Victim: an invalid way, else LRU.
        let victim = set_lines.iter().position(|l| !l.valid).unwrap_or_else(|| {
            set_lines
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
                .expect("nonempty set")
        });
        let v = &mut set_lines[victim];
        let mut writeback = None;
        if v.valid {
            self.stats.evicted_blocks += 1;
            self.stats.evicted_block_hits += v.hits_since_fill;
            if v.dirty {
                self.stats.writebacks += 1;
                writeback = Some(v.tag << 6);
            }
        }
        *v = Line {
            tag: block,
            valid: true,
            dirty: make_dirty,
            last_use: self.tick,
            hits_since_fill: 0,
        };
        CacheOutcome {
            hit: false,
            writeback,
        }
    }

    /// Probe without modifying state (used by the covert-channel timer).
    pub fn probe(&self, addr: u64) -> bool {
        let block = addr >> 6;
        let set = (block as usize) & (self.sets - 1);
        self.lines[set * self.ways..(set + 1) * self.ways]
            .iter()
            .any(|l| l.valid && l.tag == block)
    }

    /// Invalidate everything, keeping statistics.
    pub fn flush(&mut self) -> Vec<u64> {
        let mut dirty = Vec::new();
        for l in &mut self.lines {
            if l.valid {
                self.stats.evicted_blocks += 1;
                self.stats.evicted_block_hits += l.hits_since_fill;
                if l.dirty {
                    self.stats.writebacks += 1;
                    dirty.push(l.tag << 6);
                }
            }
            *l = Line::default();
        }
        dirty
    }

    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

/// Per-enclave partitioned metadata cache (Section III-A).
#[derive(Debug, Clone)]
pub struct PartitionedCache {
    partitions: Vec<MetaCache>,
}

impl PartitionedCache {
    /// `per_enclave_bytes` of cache for each of `enclaves` enclaves.
    pub fn new(enclaves: usize, per_enclave_bytes: usize, ways: usize) -> Self {
        PartitionedCache {
            partitions: (0..enclaves)
                .map(|_| MetaCache::new(per_enclave_bytes, ways))
                .collect(),
        }
    }

    /// Access within enclave `e`'s private partition.
    pub fn access(&mut self, e: usize, addr: u64, make_dirty: bool) -> CacheOutcome {
        self.partitions[e].access(addr, make_dirty)
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// True when there are no partitions.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    pub fn partition(&self, e: usize) -> &MetaCache {
        &self.partitions[e]
    }

    pub fn partition_mut(&mut self, e: usize) -> &mut MetaCache {
        &mut self.partitions[e]
    }

    /// Statistics merged across partitions.
    pub fn stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for p in &self.partitions {
            s.merge(p.stats());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = MetaCache::new(4096, 4);
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        // Same 64B block, different byte.
        assert!(c.access(0x13F, false).hit);
        assert!(!c.access(0x140, false).hit);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2 ways, 1 set: 128-byte cache.
        let mut c = MetaCache::new(128, 2);
        c.access(0, false);
        c.access(64, false);
        c.access(0, false); // touch 0: now 64 is LRU
        c.access(128, false); // evicts 64
        assert!(c.access(0, false).hit);
        assert!(!c.access(64, false).hit);
    }

    #[test]
    fn dirty_eviction_returns_writeback_address() {
        let mut c = MetaCache::new(128, 2);
        c.access(0, true);
        c.access(64, false);
        let out = c.access(128, false); // evicts dirty block 0
        assert_eq!(out.writeback, Some(0));
        let out = c.access(192, false); // evicts clean block 64
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn dirty_bit_set_on_hit_too() {
        let mut c = MetaCache::new(128, 2);
        c.access(0, false);
        c.access(0, true); // dirtied by a later update
        c.access(64, false);
        let out = c.access(128, false);
        assert_eq!(out.writeback, Some(0));
    }

    #[test]
    fn utilization_counts_hits_per_resident_block() {
        let mut c = MetaCache::new(128, 2);
        c.access(0, false);
        c.access(0, false);
        c.access(0, false); // 2 hits since fill
        c.access(64, false); // 0 hits
        c.access(128, false); // evicts block 0 (LRU)
        c.access(192, false); // evicts block 64
        let s = c.stats();
        assert_eq!(s.evicted_blocks, 2);
        assert_eq!(s.evicted_block_hits, 2);
        assert_eq!(s.hits_per_block(), 1.0);
    }

    #[test]
    fn probe_does_not_change_state() {
        let mut c = MetaCache::new(4096, 4);
        c.access(0x100, false);
        assert!(c.probe(0x100));
        assert!(!c.probe(0x2000));
        let before = *c.stats();
        c.probe(0x100);
        assert_eq!(before, *c.stats());
    }

    #[test]
    fn flush_returns_dirty_blocks() {
        let mut c = MetaCache::new(4096, 4);
        c.access(0, true);
        c.access(64, false);
        c.access(128, true);
        let mut dirty = c.flush();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![0, 128]);
        assert!(!c.probe(0));
    }

    #[test]
    fn partitions_are_isolated() {
        let mut p = PartitionedCache::new(2, 128, 2);
        p.access(0, 0, false);
        // Same address in the other partition still misses: no sharing.
        assert!(!p.access(1, 0, false).hit);
        assert!(p.access(0, 0, false).hit);
    }

    #[test]
    fn merged_partition_stats() {
        let mut p = PartitionedCache::new(2, 128, 2);
        p.access(0, 0, false);
        p.access(1, 0, false);
        p.access(1, 0, false);
        let s = p.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn invalid_capacity_rejected() {
        let _ = MetaCache::new(100, 4);
    }

    /// The isolation property behind Section III-B: no amount of fill
    /// pressure from one enclave may evict another enclave's lines.
    #[test]
    fn cross_partition_pressure_cannot_evict() {
        let mut p = PartitionedCache::new(2, 128, 2);
        p.access(0, 0x40, true);
        // Enclave 1 thrashes its 2-line partition far beyond capacity.
        for i in 0..64u64 {
            p.access(1, i * 64, true);
        }
        assert!(
            p.partition(0).probe(0x40),
            "enclave 0's line evicted by enclave 1's fill pressure"
        );
        assert!(p.access(0, 0x40, false).hit);
        assert_eq!(p.partition(0).stats().evicted_blocks, 0);
    }

    /// Exact LRU replacement order under a set-aliasing stride: every
    /// `sets * 64` bytes map to the same set, and dirty evictions reveal
    /// the victim, so the full replacement order is observable.
    #[test]
    fn lru_order_exact_under_aliasing_stride() {
        // 1024 B, 4 ways -> 4 sets; stride 4 * 64 = 256 aliases set 0.
        let mut c = MetaCache::new(1024, 4);
        let stride = 4 * 64u64;
        let addr = |i: u64| i * stride;
        for i in 0..4 {
            assert!(!c.access(addr(i), true).hit);
        }
        // Recency now 0 < 1 < 2 < 3; touching 0 and 2 makes it 1 < 3 < 0 < 2.
        assert!(c.access(addr(0), true).hit);
        assert!(c.access(addr(2), true).hit);
        for (fill, victim) in [(4u64, 1u64), (5, 3), (6, 0), (7, 2)] {
            let out = c.access(addr(fill), true);
            assert!(!out.hit);
            assert_eq!(
                out.writeback,
                Some(addr(victim)),
                "filling {fill} must evict the LRU block {victim}"
            );
        }
        // Other sets were never disturbed by the aliasing stream.
        assert!(!c.access(64, false).hit);
        assert_eq!(c.stats().evicted_blocks, 4);
    }

    /// A 1-partition [`PartitionedCache`] is the shared-mode fallback:
    /// it must behave access-for-access like a bare [`MetaCache`] over
    /// the same interleaved multi-enclave stream.
    #[test]
    fn single_partition_matches_bare_cache() {
        let mut shared = PartitionedCache::new(1, 512, 2);
        let mut bare = MetaCache::new(512, 2);
        // Deterministic mixed stream: varied addresses, dirtiness, and
        // enclave ids (all collapse to partition 0 in shared mode).
        let mut x = 0x9E37_79B9u64;
        for i in 0..500u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = (x >> 33) % 64 * 64;
            let dirty = x & 1 == 0;
            assert_eq!(
                shared.access(0, addr, dirty),
                bare.access(addr, dirty),
                "divergence at access {i}"
            );
        }
        assert_eq!(shared.stats(), *bare.stats());
        let (mut a, mut b) = (shared.partition_mut(0).flush(), bare.flush());
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "flush must drain identical dirty sets");
    }

    #[test]
    fn hit_rate_math() {
        let mut c = MetaCache::new(4096, 4);
        c.access(0, false);
        c.access(0, false);
        assert_eq!(c.stats().hit_rate(), 0.5);
    }
}
