//! Set-associative metadata caches.
//!
//! The paper's systems keep security metadata (counters, tree nodes,
//! MACs, parities) in small dedicated on-chip caches. [`MetaCache`] is a
//! write-back, write-allocate, LRU, set-associative cache of 64-byte
//! metadata blocks. It also tracks the Figure 2 statistic: how many hits
//! each block receives while resident ("metadata block utilization").
//!
//! [`PartitionedCache`] wraps per-enclave instances for the isolated
//! designs: the enclave-id selects a partition, so no two enclaves can
//! interact through cache state (the leakage path of Section III-B).

use serde::{Deserialize, Serialize};

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOutcome {
    pub hit: bool,
    /// Block address of a dirty victim that must be written back, if any.
    pub writeback: Option<u64>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
    hits_since_fill: u64,
}

/// Aggregate statistics for one cache (or one partition).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    pub accesses: u64,
    pub hits: u64,
    pub misses: u64,
    pub writebacks: u64,
    /// Sum over evicted blocks of hits received while resident.
    pub evicted_block_hits: u64,
    /// Number of blocks evicted (denominator for utilization).
    pub evicted_blocks: u64,
}

impl CacheStats {
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Figure 2's metric: mean hits per metadata block while cached.
    pub fn hits_per_block(&self) -> f64 {
        if self.evicted_blocks == 0 {
            0.0
        } else {
            self.evicted_block_hits as f64 / self.evicted_blocks as f64
        }
    }

    pub fn merge(&mut self, o: &CacheStats) {
        self.accesses += o.accesses;
        self.hits += o.hits;
        self.misses += o.misses;
        self.writebacks += o.writebacks;
        self.evicted_block_hits += o.evicted_block_hits;
        self.evicted_blocks += o.evicted_blocks;
    }
}

/// Largest capacity no greater than `budget_bytes` that [`MetaCache`]
/// accepts at `ways` associativity: a power-of-two number of sets of
/// `ways * 64` bytes each, never less than one set. Cache repartitioning
/// sizes every partition through this, so redistribution is a pure
/// function of the live-partition set.
pub fn largest_valid_capacity(budget_bytes: usize, ways: usize) -> usize {
    assert!(ways > 0, "associativity must be positive");
    let set_bytes = ways * 64;
    let sets = (budget_bytes / set_bytes).max(1);
    // Round down to a power of two.
    let sets = 1usize << (usize::BITS - 1 - sets.leading_zeros());
    sets * set_bytes
}

/// A write-back, LRU, set-associative cache of 64-byte blocks.
#[derive(Debug, Clone)]
pub struct MetaCache {
    lines: Vec<Line>,
    sets: usize,
    ways: usize,
    tick: u64,
    stats: CacheStats,
}

impl MetaCache {
    /// Build a cache of `capacity_bytes` with `ways` associativity.
    ///
    /// # Panics
    /// Panics if the capacity is not a positive multiple of
    /// `ways * 64` or the resulting set count is not a power of two.
    pub fn new(capacity_bytes: usize, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be positive");
        let blocks = capacity_bytes / 64;
        assert!(
            blocks >= ways && blocks.is_multiple_of(ways),
            "capacity {capacity_bytes} incompatible with {ways} ways"
        );
        let sets = blocks / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        MetaCache {
            lines: vec![Line::default(); blocks],
            sets,
            ways,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    pub fn capacity_bytes(&self) -> usize {
        self.lines.len() * 64
    }

    /// Access the metadata block containing byte address `addr`;
    /// `make_dirty` marks the line modified (a metadata update).
    /// Misses allocate; a dirty victim's address is returned for
    /// writeback.
    pub fn access(&mut self, addr: u64, make_dirty: bool) -> CacheOutcome {
        self.tick += 1;
        self.stats.accesses += 1;
        let block = addr >> 6;
        let set = (block as usize) & (self.sets - 1);
        let base = set * self.ways;
        let set_lines = &mut self.lines[base..base + self.ways];

        if let Some(line) = set_lines.iter_mut().find(|l| l.valid && l.tag == block) {
            line.last_use = self.tick;
            line.hits_since_fill += 1;
            line.dirty |= make_dirty;
            self.stats.hits += 1;
            return CacheOutcome {
                hit: true,
                writeback: None,
            };
        }

        self.stats.misses += 1;
        // Victim: an invalid way, else LRU.
        let victim = set_lines.iter().position(|l| !l.valid).unwrap_or_else(|| {
            set_lines
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
                .expect("nonempty set")
        });
        let v = &mut set_lines[victim];
        let mut writeback = None;
        if v.valid {
            self.stats.evicted_blocks += 1;
            self.stats.evicted_block_hits += v.hits_since_fill;
            if v.dirty {
                self.stats.writebacks += 1;
                writeback = Some(v.tag << 6);
            }
        }
        *v = Line {
            tag: block,
            valid: true,
            dirty: make_dirty,
            last_use: self.tick,
            hits_since_fill: 0,
        };
        CacheOutcome {
            hit: false,
            writeback,
        }
    }

    /// Probe without modifying state (used by the covert-channel timer).
    pub fn probe(&self, addr: u64) -> bool {
        let block = addr >> 6;
        let set = (block as usize) & (self.sets - 1);
        self.lines[set * self.ways..(set + 1) * self.ways]
            .iter()
            .any(|l| l.valid && l.tag == block)
    }

    /// Resize to `capacity_bytes` (same associativity), preserving
    /// resident lines. Lines are re-inserted most-recently-used first:
    /// growth re-homes every line without evicting anything (an old
    /// set's occupants spread across the new sets that its index bits
    /// split into), while shrinking keeps each new set's MRU lines and
    /// spills the rest. Dirty spills are returned for writeback.
    ///
    /// # Panics
    /// Panics on capacities [`MetaCache::new`] would reject.
    pub fn resize(&mut self, capacity_bytes: usize) -> Vec<u64> {
        if capacity_bytes == self.capacity_bytes() {
            return Vec::new();
        }
        let blocks = capacity_bytes / 64;
        assert!(
            blocks >= self.ways && blocks.is_multiple_of(self.ways),
            "capacity {capacity_bytes} incompatible with {} ways",
            self.ways
        );
        let sets = blocks / self.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        let old = std::mem::replace(&mut self.lines, vec![Line::default(); blocks]);
        self.sets = sets;
        let mut live: Vec<Line> = old.into_iter().filter(|l| l.valid).collect();
        live.sort_by_key(|l| std::cmp::Reverse(l.last_use));
        let mut spilled = Vec::new();
        for line in live {
            let set = (line.tag as usize) & (self.sets - 1);
            let base = set * self.ways;
            match self.lines[base..base + self.ways]
                .iter_mut()
                .find(|l| !l.valid)
            {
                Some(slot) => *slot = line,
                None => {
                    self.stats.evicted_blocks += 1;
                    self.stats.evicted_block_hits += line.hits_since_fill;
                    if line.dirty {
                        self.stats.writebacks += 1;
                        spilled.push(line.tag << 6);
                    }
                }
            }
        }
        spilled
    }

    /// Drop the line holding `addr` if resident, discarding dirty
    /// contents (the caller is superseding them in memory, e.g. a
    /// counter reset on page free). Returns whether a line was dropped.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let block = addr >> 6;
        let set = (block as usize) & (self.sets - 1);
        let set_lines = &mut self.lines[set * self.ways..(set + 1) * self.ways];
        if let Some(l) = set_lines.iter_mut().find(|l| l.valid && l.tag == block) {
            self.stats.evicted_blocks += 1;
            self.stats.evicted_block_hits += l.hits_since_fill;
            *l = Line::default();
            true
        } else {
            false
        }
    }

    /// Invalidate everything *without* writing dirty lines back:
    /// secure-teardown semantics, where the contents are dead and the
    /// zeroize traffic is charged separately. Returns how many dirty
    /// lines were discarded.
    pub fn discard(&mut self) -> usize {
        let mut dropped = 0;
        for l in &mut self.lines {
            if l.valid {
                self.stats.evicted_blocks += 1;
                self.stats.evicted_block_hits += l.hits_since_fill;
                dropped += usize::from(l.dirty);
            }
            *l = Line::default();
        }
        dropped
    }

    /// Invalidate everything, keeping statistics.
    pub fn flush(&mut self) -> Vec<u64> {
        let mut dirty = Vec::new();
        for l in &mut self.lines {
            if l.valid {
                self.stats.evicted_blocks += 1;
                self.stats.evicted_block_hits += l.hits_since_fill;
                if l.dirty {
                    self.stats.writebacks += 1;
                    dirty.push(l.tag << 6);
                }
            }
            *l = Line::default();
        }
        dirty
    }

    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Serialize the full cache image for a crash-recovery snapshot:
    /// geometry (partitions are resized at runtime, so the restored
    /// shape cannot be derived from config), every line, the LRU tick,
    /// and statistics.
    pub fn save_state(&self, w: &mut itesp_snap::SnapWriter) {
        w.section("CACH", 1);
        w.usize(self.sets);
        w.usize(self.ways);
        w.u64(self.tick);
        w.seq(self.lines.iter(), |w, l| {
            w.u64(l.tag);
            w.bool(l.valid);
            w.bool(l.dirty);
            w.u64(l.last_use);
            w.u64(l.hits_since_fill);
        });
        let s = &self.stats;
        for v in [
            s.accesses,
            s.hits,
            s.misses,
            s.writebacks,
            s.evicted_block_hits,
            s.evicted_blocks,
        ] {
            w.u64(v);
        }
    }

    /// Rebuild a cache from [`MetaCache::save_state`] bytes.
    pub fn load_state(r: &mut itesp_snap::SnapReader) -> Result<Self, itesp_snap::SnapError> {
        r.section("CACH", 1)?;
        let sets = r.usize("cache sets")?;
        let ways = r.usize("cache ways")?;
        let tick = r.u64("cache tick")?;
        let n = r.seq_len("cache lines")?;
        if !sets.is_power_of_two() || ways == 0 || n != sets * ways {
            return Err(itesp_snap::SnapError::Corrupt {
                what: "cache geometry",
                at: r.pos(),
            });
        }
        let mut lines = Vec::with_capacity(n);
        for _ in 0..n {
            lines.push(Line {
                tag: r.u64("line tag")?,
                valid: r.bool("line valid")?,
                dirty: r.bool("line dirty")?,
                last_use: r.u64("line last_use")?,
                hits_since_fill: r.u64("line hits_since_fill")?,
            });
        }
        let stats = CacheStats {
            accesses: r.u64("cache accesses")?,
            hits: r.u64("cache hits")?,
            misses: r.u64("cache misses")?,
            writebacks: r.u64("cache writebacks")?,
            evicted_block_hits: r.u64("cache evicted_block_hits")?,
            evicted_blocks: r.u64("cache evicted_blocks")?,
        };
        Ok(MetaCache {
            lines,
            sets,
            ways,
            tick,
            stats,
        })
    }
}

/// Per-enclave partitioned metadata cache (Section III-A).
#[derive(Debug, Clone)]
pub struct PartitionedCache {
    partitions: Vec<MetaCache>,
}

impl PartitionedCache {
    /// `per_enclave_bytes` of cache for each of `enclaves` enclaves.
    pub fn new(enclaves: usize, per_enclave_bytes: usize, ways: usize) -> Self {
        PartitionedCache {
            partitions: (0..enclaves)
                .map(|_| MetaCache::new(per_enclave_bytes, ways))
                .collect(),
        }
    }

    /// Access within enclave `e`'s private partition.
    pub fn access(&mut self, e: usize, addr: u64, make_dirty: bool) -> CacheOutcome {
        self.partitions[e].access(addr, make_dirty)
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// True when there are no partitions.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    pub fn partition(&self, e: usize) -> &MetaCache {
        &self.partitions[e]
    }

    pub fn partition_mut(&mut self, e: usize) -> &mut MetaCache {
        &mut self.partitions[e]
    }

    /// Resize partition `e` in place (see [`MetaCache::resize`]); the
    /// other partitions are untouched, so repartitioning can never
    /// evict another enclave's lines.
    pub fn resize_partition(&mut self, e: usize, capacity_bytes: usize) -> Vec<u64> {
        self.partitions[e].resize(capacity_bytes)
    }

    /// Current capacity of every partition, in bytes.
    pub fn capacities(&self) -> Vec<usize> {
        self.partitions.iter().map(|p| p.capacity_bytes()).collect()
    }

    /// Statistics merged across partitions.
    pub fn stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for p in &self.partitions {
            s.merge(p.stats());
        }
        s
    }

    /// Serialize every partition for a crash-recovery snapshot.
    pub fn save_state(&self, w: &mut itesp_snap::SnapWriter) {
        w.seq(self.partitions.iter(), |w, p| p.save_state(w));
    }

    /// Rebuild from [`PartitionedCache::save_state`] bytes.
    pub fn load_state(r: &mut itesp_snap::SnapReader) -> Result<Self, itesp_snap::SnapError> {
        let n = r.seq_len("cache partitions")?;
        let mut partitions = Vec::with_capacity(n);
        for _ in 0..n {
            partitions.push(MetaCache::load_state(r)?);
        }
        Ok(PartitionedCache { partitions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = MetaCache::new(4096, 4);
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        // Same 64B block, different byte.
        assert!(c.access(0x13F, false).hit);
        assert!(!c.access(0x140, false).hit);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2 ways, 1 set: 128-byte cache.
        let mut c = MetaCache::new(128, 2);
        c.access(0, false);
        c.access(64, false);
        c.access(0, false); // touch 0: now 64 is LRU
        c.access(128, false); // evicts 64
        assert!(c.access(0, false).hit);
        assert!(!c.access(64, false).hit);
    }

    #[test]
    fn dirty_eviction_returns_writeback_address() {
        let mut c = MetaCache::new(128, 2);
        c.access(0, true);
        c.access(64, false);
        let out = c.access(128, false); // evicts dirty block 0
        assert_eq!(out.writeback, Some(0));
        let out = c.access(192, false); // evicts clean block 64
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn dirty_bit_set_on_hit_too() {
        let mut c = MetaCache::new(128, 2);
        c.access(0, false);
        c.access(0, true); // dirtied by a later update
        c.access(64, false);
        let out = c.access(128, false);
        assert_eq!(out.writeback, Some(0));
    }

    #[test]
    fn utilization_counts_hits_per_resident_block() {
        let mut c = MetaCache::new(128, 2);
        c.access(0, false);
        c.access(0, false);
        c.access(0, false); // 2 hits since fill
        c.access(64, false); // 0 hits
        c.access(128, false); // evicts block 0 (LRU)
        c.access(192, false); // evicts block 64
        let s = c.stats();
        assert_eq!(s.evicted_blocks, 2);
        assert_eq!(s.evicted_block_hits, 2);
        assert_eq!(s.hits_per_block(), 1.0);
    }

    #[test]
    fn probe_does_not_change_state() {
        let mut c = MetaCache::new(4096, 4);
        c.access(0x100, false);
        assert!(c.probe(0x100));
        assert!(!c.probe(0x2000));
        let before = *c.stats();
        c.probe(0x100);
        assert_eq!(before, *c.stats());
    }

    #[test]
    fn flush_returns_dirty_blocks() {
        let mut c = MetaCache::new(4096, 4);
        c.access(0, true);
        c.access(64, false);
        c.access(128, true);
        let mut dirty = c.flush();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![0, 128]);
        assert!(!c.probe(0));
    }

    #[test]
    fn partitions_are_isolated() {
        let mut p = PartitionedCache::new(2, 128, 2);
        p.access(0, 0, false);
        // Same address in the other partition still misses: no sharing.
        assert!(!p.access(1, 0, false).hit);
        assert!(p.access(0, 0, false).hit);
    }

    #[test]
    fn merged_partition_stats() {
        let mut p = PartitionedCache::new(2, 128, 2);
        p.access(0, 0, false);
        p.access(1, 0, false);
        p.access(1, 0, false);
        let s = p.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn invalid_capacity_rejected() {
        let _ = MetaCache::new(100, 4);
    }

    /// The isolation property behind Section III-B: no amount of fill
    /// pressure from one enclave may evict another enclave's lines.
    #[test]
    fn cross_partition_pressure_cannot_evict() {
        let mut p = PartitionedCache::new(2, 128, 2);
        p.access(0, 0x40, true);
        // Enclave 1 thrashes its 2-line partition far beyond capacity.
        for i in 0..64u64 {
            p.access(1, i * 64, true);
        }
        assert!(
            p.partition(0).probe(0x40),
            "enclave 0's line evicted by enclave 1's fill pressure"
        );
        assert!(p.access(0, 0x40, false).hit);
        assert_eq!(p.partition(0).stats().evicted_blocks, 0);
    }

    /// Exact LRU replacement order under a set-aliasing stride: every
    /// `sets * 64` bytes map to the same set, and dirty evictions reveal
    /// the victim, so the full replacement order is observable.
    #[test]
    fn lru_order_exact_under_aliasing_stride() {
        // 1024 B, 4 ways -> 4 sets; stride 4 * 64 = 256 aliases set 0.
        let mut c = MetaCache::new(1024, 4);
        let stride = 4 * 64u64;
        let addr = |i: u64| i * stride;
        for i in 0..4 {
            assert!(!c.access(addr(i), true).hit);
        }
        // Recency now 0 < 1 < 2 < 3; touching 0 and 2 makes it 1 < 3 < 0 < 2.
        assert!(c.access(addr(0), true).hit);
        assert!(c.access(addr(2), true).hit);
        for (fill, victim) in [(4u64, 1u64), (5, 3), (6, 0), (7, 2)] {
            let out = c.access(addr(fill), true);
            assert!(!out.hit);
            assert_eq!(
                out.writeback,
                Some(addr(victim)),
                "filling {fill} must evict the LRU block {victim}"
            );
        }
        // Other sets were never disturbed by the aliasing stream.
        assert!(!c.access(64, false).hit);
        assert_eq!(c.stats().evicted_blocks, 4);
    }

    /// A 1-partition [`PartitionedCache`] is the shared-mode fallback:
    /// it must behave access-for-access like a bare [`MetaCache`] over
    /// the same interleaved multi-enclave stream.
    #[test]
    fn single_partition_matches_bare_cache() {
        let mut shared = PartitionedCache::new(1, 512, 2);
        let mut bare = MetaCache::new(512, 2);
        // Deterministic mixed stream: varied addresses, dirtiness, and
        // enclave ids (all collapse to partition 0 in shared mode).
        let mut x = 0x9E37_79B9u64;
        for i in 0..500u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = (x >> 33) % 64 * 64;
            let dirty = x & 1 == 0;
            assert_eq!(
                shared.access(0, addr, dirty),
                bare.access(addr, dirty),
                "divergence at access {i}"
            );
        }
        assert_eq!(shared.stats(), *bare.stats());
        let (mut a, mut b) = (shared.partition_mut(0).flush(), bare.flush());
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "flush must drain identical dirty sets");
    }

    #[test]
    fn largest_valid_capacity_rounds_down_to_a_legal_slice() {
        // 4 ways: one set is 256 B. 5000 B -> 19 sets -> 16 sets.
        assert_eq!(largest_valid_capacity(5000, 4), 16 * 256);
        // Exact powers of two pass through.
        assert_eq!(largest_valid_capacity(4096, 4), 4096);
        // Sub-set budgets clamp to the one-set minimum.
        assert_eq!(largest_valid_capacity(10, 4), 256);
        // The result is always accepted by the constructor.
        for budget in [10, 300, 511, 512, 513, 5000, 65536, 100_000] {
            let _ = MetaCache::new(largest_valid_capacity(budget, 4), 4);
        }
    }

    /// Growing a partition re-homes every resident line: nothing is
    /// lost, nothing spilled, and hits keep coming at the new geometry.
    #[test]
    fn resize_growth_preserves_all_lines() {
        let mut c = MetaCache::new(512, 2); // 4 sets
        let addrs: Vec<u64> = (0..8).map(|i| i * 64).collect();
        for &a in &addrs {
            c.access(a, true);
        }
        let spilled = c.resize(2048); // 16 sets
        assert!(spilled.is_empty(), "growth must never evict");
        assert_eq!(c.stats().evicted_blocks, 0);
        for &a in &addrs {
            assert!(c.probe(a), "line {a:#x} lost across growth");
        }
    }

    /// Shrinking keeps the MRU lines and spills the LRU tail; the dirty
    /// spills come back for writeback and the choice is deterministic.
    #[test]
    fn resize_shrink_spills_lru_tail_deterministically() {
        let build = || {
            let mut c = MetaCache::new(512, 2); // 4 sets, 8 lines
            for i in 0..8u64 {
                c.access(i * 64, true);
            }
            c
        };
        let mut a = build();
        let mut b = build();
        let (mut sa, mut sb) = (a.resize(128), b.resize(128)); // down to 1 set
        sa.sort_unstable();
        sb.sort_unstable();
        assert_eq!(sa, sb, "same state must repartition identically");
        // 1 set x 2 ways: the two most recent fills (blocks 6, 7) stay.
        assert!(a.probe(6 * 64) && a.probe(7 * 64));
        assert_eq!(
            sa,
            vec![0, 64, 128, 192, 256, 320],
            "older dirty lines spill"
        );
    }

    /// Satellite invariant: destroying an enclave and redistributing its
    /// ways must never evict a *surviving* partition's lines — only the
    /// resized partition itself may spill, and regrowth spills nothing.
    #[test]
    fn repartition_never_evicts_other_partitions() {
        let mut p = PartitionedCache::new(4, 1024, 4);
        // Warm every partition with dirty lines.
        for e in 0..4 {
            for i in 0..16u64 {
                p.access(e, i * 64, true);
            }
        }
        let before: Vec<CacheStats> = (0..4).map(|e| *p.partition(e).stats()).collect();
        // Enclave 3 dies: survivors 0..3 grow from 1 KiB toward 1365 B
        // budget each -> largest valid slice is still 1 KiB... use a
        // bigger redistribution to force real growth: 2 KiB each.
        for e in 0..3 {
            let spilled = p.resize_partition(e, 2048);
            assert!(spilled.is_empty(), "growth spilled from partition {e}");
        }
        let dead_spill = p.resize_partition(3, 256);
        assert!(!dead_spill.is_empty(), "dead partition shrink must spill");
        for (e, b) in before.iter().enumerate().take(3) {
            let s = p.partition(e).stats();
            assert_eq!(s.evicted_blocks, b.evicted_blocks, "partition {e} evicted");
            assert_eq!(s.writebacks, b.writebacks, "partition {e} wrote back");
            for i in 0..16u64 {
                assert!(p.partition(e).probe(i * 64), "partition {e} lost line {i}");
            }
        }
        // And the redistribution is deterministic: replaying the same
        // history yields byte-identical capacities and spill sets.
        let replay = || {
            let mut q = PartitionedCache::new(4, 1024, 4);
            for e in 0..4 {
                for i in 0..16u64 {
                    q.access(e, i * 64, true);
                }
            }
            let mut spills = Vec::new();
            for e in 0..3 {
                spills.extend(q.resize_partition(e, 2048));
            }
            spills.extend(q.resize_partition(3, 256));
            (q.capacities(), spills)
        };
        assert_eq!(replay(), replay());
    }

    #[test]
    fn invalidate_drops_line_without_writeback() {
        let mut c = MetaCache::new(4096, 4);
        c.access(0x100, true);
        let wb_before = c.stats().writebacks;
        assert!(c.invalidate(0x100));
        assert!(!c.probe(0x100));
        assert!(!c.invalidate(0x100), "second invalidate finds nothing");
        assert_eq!(
            c.stats().writebacks,
            wb_before,
            "no writeback on invalidate"
        );
    }

    #[test]
    fn discard_drops_dirty_state_without_writebacks() {
        let mut c = MetaCache::new(4096, 4);
        c.access(0, true);
        c.access(64, false);
        c.access(128, true);
        assert_eq!(c.discard(), 2);
        assert_eq!(c.stats().writebacks, 0);
        assert!(!c.probe(0) && !c.probe(64) && !c.probe(128));
    }

    #[test]
    fn hit_rate_math() {
        let mut c = MetaCache::new(4096, 4);
        c.access(0, false);
        c.access(0, false);
        assert_eq!(c.stats().hit_rate(), 0.5);
    }
}
