//! # itesp-core — the ITESP secure-memory engine
//!
//! This crate implements the paper's contribution: the metadata machinery
//! of replay-protected memory integrity combined with chipkill-class
//! reliability, in all the design points the paper evaluates.
//!
//! * [`mac`] — keyed MACs (SipHash-2-4) binding data, counter, address;
//! * [`tree`] — counter-tree geometries (VAULT, Morphable, ITESP);
//! * [`counters`] — split-counter overflow tracking (Figure 11);
//! * [`cache`] — metadata caches, shared or per-enclave partitioned;
//! * [`scheme`] — the design points (Figures 8 and 11 bars, plus the
//!   SecDDR and IRO related-work baselines);
//! * [`model`] — the per-scheme traffic models (tree-walk, link-level,
//!   ORAM) behind the [`model::SchemeModel`] trait;
//! * [`engine`] — per-access metadata traffic generation;
//! * [`overhead`] — Table I storage-overhead calculator.
//!
//! ```
//! use itesp_core::{EngineConfig, Scheme, SecurityEngine};
//!
//! let mut engine = SecurityEngine::new(EngineConfig::paper_default(Scheme::Itesp));
//! // A cold read: the tree path is fetched; later accesses hit on-chip.
//! let cold = engine.on_access(0, 0x4000, 0x100, false);
//! let warm = engine.on_access(0, 0x4000, 0x100, false);
//! assert!(cold.mem.len() > warm.mem.len());
//! ```

pub mod cache;
pub mod counters;
pub mod engine;
pub mod error;
pub mod mac;
pub mod model;
pub mod overhead;
pub mod reference;
pub mod scheme;
pub mod tree;
pub mod verify;

pub use cache::{CacheOutcome, CacheStats, MetaCache, PartitionedCache};
pub use counters::{OverflowTracker, OVERFLOW_PENALTY_128};
pub use engine::{
    AccessOutcome, AccessRequest, BatchOutcome, EngineConfig, EngineStats, MetaAccess, MetaKind,
    MissCase, RequestOutcome, SecurityEngine,
};
pub use error::{EngineConfigError, Error};
pub use mac::{hash_node, mac_block, mac_block_x4, siphash24, siphash24_batch, MacKey};
pub use model::{
    build_model, LinkLevelModel, OramLayout, OramModel, OramShadow, SchemeModel, TreeWalkModel,
};
pub use overhead::{table_i, OverheadRow};
pub use reference::ReferenceEngine;
pub use scheme::{LeakageClass, ModelFamily, ParityMode, Scheme, SchemeSpec, TreeKind};
pub use tree::{NodeId, TreeGeometry, NODE_BYTES};
pub use verify::{IntegrityError, Snapshot, VerifiedMemory};
