//! Functional replay-protected memory.
//!
//! The performance engine ([`crate::engine`]) models metadata *traffic*;
//! this module is the functional counterpart: a memory that really
//! stores data blocks, per-block counters, MACs, and an integrity tree,
//! and really detects tampering and replay on every read. It backs the
//! end-to-end security tests and the `integrity_attacks` example.
//!
//! Verification logic follows Section III-F:
//!
//! * `MAC = f(Data, Counter, Key)` — per-block, address-bound, stored in
//!   the ECC field (Synergy/ITESP placement);
//! * each tree node summarizes its children (leaf nodes summarize block
//!   counters), chained up to an **on-chip root** the attacker cannot
//!   touch. Replacing any off-chip state — data, MAC, counter, or a
//!   whole consistent old snapshot — breaks the chain somewhere between
//!   the tampered state and the root.
//!
//! The attacker surface is modeled explicitly: [`VerifiedMemory`] hands
//! out [`Snapshot`]s (what a malicious DIMM could record) and offers
//! `corrupt_*`/`rollback` operations that manipulate the stored state
//! exactly as physical attacks would.

use std::collections::HashMap;

use crate::mac::{mac_block, mac_block_x4, siphash24_words, MacKey};
use crate::tree::{NodeId, TreeGeometry};

/// Upper bound on the counter/summary words one node summary packs: no
/// geometry in the repo has an arity above 128, so summaries hash from
/// a fixed stack buffer instead of a per-call `Vec`.
const MAX_PACK_WORDS: usize = 128;

/// Fixed-capacity word packer for node summaries: collects up to
/// [`MAX_PACK_WORDS`] u64 lanes on the stack and hashes them without
/// materializing a byte buffer (see [`siphash24_words`]).
struct WordPack {
    words: [u64; MAX_PACK_WORDS],
    len: usize,
}

impl WordPack {
    fn new() -> Self {
        WordPack {
            words: [0; MAX_PACK_WORDS],
            len: 0,
        }
    }

    fn push(&mut self, w: u64) {
        assert!(self.len < MAX_PACK_WORDS, "node arity above pack capacity");
        self.words[self.len] = w;
        self.len += 1;
    }

    fn hash(&self, key: &MacKey) -> u64 {
        siphash24_words(key, &self.words[..self.len])
    }
}

/// Why a read failed verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityError {
    /// The block's MAC did not match its data+counter (data or MAC
    /// tampering, or an inconsistent partial replay).
    MacMismatch { block: u64 },
    /// A tree node's stored summary did not match its recomputed value
    /// (counter tampering or a consistent replay of old state).
    TreeMismatch { level: u32, index: u64 },
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityError::MacMismatch { block } => {
                write!(f, "MAC mismatch on block {block}")
            }
            IntegrityError::TreeMismatch { level, index } => {
                write!(f, "integrity-tree mismatch at level {level}, node {index}")
            }
        }
    }
}

impl std::error::Error for IntegrityError {}

/// Everything an attacker can capture about one block at some instant:
/// the off-chip state a malicious DIMM could later replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    pub block: u64,
    pub data: [u8; 64],
    pub mac: u64,
    pub counter: u64,
}

/// A functional replay-protected memory over `data_blocks` blocks.
#[derive(Debug)]
pub struct VerifiedMemory {
    key: MacKey,
    geo: TreeGeometry,
    data: HashMap<u64, [u8; 64]>,
    macs: HashMap<u64, u64>,
    counters: HashMap<u64, u64>,
    /// Stored (off-chip) node summaries.
    summaries: HashMap<NodeId, u64>,
    /// The on-chip root: the summary of the topmost stored level,
    /// folded. The attacker cannot modify this.
    root: u64,
}

impl VerifiedMemory {
    /// A verified memory over `data_blocks` blocks with a VAULT-shaped
    /// tree, all blocks initially zero.
    ///
    /// # Panics
    /// Panics if `data_blocks` is zero.
    pub fn new(key: MacKey, data_blocks: u64) -> Self {
        let geo = TreeGeometry::vault(data_blocks);
        let mut vm = VerifiedMemory {
            key,
            geo,
            data: HashMap::new(),
            macs: HashMap::new(),
            counters: HashMap::new(),
            summaries: HashMap::new(),
            root: 0,
        };
        vm.root = vm.compute_root();
        vm
    }

    /// Number of blocks covered.
    pub fn capacity_blocks(&self) -> u64 {
        self.geo.data_blocks()
    }

    fn addr_of(block: u64) -> u64 {
        block * 64
    }

    /// Recompute a leaf's summary from the counters it covers.
    fn compute_leaf_summary(&self, leaf: NodeId) -> u64 {
        let arity = self.geo.leaf_arity();
        let first = leaf.index * arity;
        let mut pack = WordPack::new();
        for b in first..(first + arity).min(self.geo.data_blocks()) {
            pack.push(self.counters.get(&b).copied().unwrap_or(0));
        }
        pack.hash(&self.key)
    }

    /// Recompute an internal node's summary from its children's stored
    /// summaries.
    fn compute_internal_summary(&self, node: NodeId) -> u64 {
        let child_level = node.level - 1;
        let arity = self.geo.child_arity(node.level);
        let mut pack = WordPack::new();
        for i in 0..arity {
            let child = NodeId {
                level: child_level,
                index: node.index * arity + i,
            };
            pack.push(self.summaries.get(&child).copied().unwrap_or(0));
        }
        pack.hash(&self.key)
    }

    fn compute_summary(&self, node: NodeId) -> u64 {
        if node.level == 0 {
            self.compute_leaf_summary(node)
        } else {
            self.compute_internal_summary(node)
        }
    }

    /// The on-chip root: a hash over the topmost stored level (which is
    /// small by construction: fewer nodes than one parent's arity).
    fn compute_root(&self) -> u64 {
        let top = self.geo.depth() - 1;
        let top_nodes = self.geo.level_count(top);
        let mut pack = WordPack::new();
        for i in 0..top_nodes {
            let node = NodeId {
                level: top,
                index: i,
            };
            pack.push(self.summaries.get(&node).copied().unwrap_or(0));
        }
        pack.hash(&self.key)
    }

    /// Write `data` to `block`: bump the counter, recompute the MAC,
    /// and update the tree path up to the on-chip root.
    ///
    /// # Panics
    /// Panics if `block` is out of range.
    pub fn write(&mut self, block: u64, data: [u8; 64]) {
        assert!(block < self.geo.data_blocks(), "block out of range");
        let counter = self.counters.entry(block).or_insert(0);
        *counter += 1;
        let counter = *counter;
        self.macs.insert(
            block,
            mac_block(&self.key, &data, counter, Self::addr_of(block)),
        );
        self.data.insert(block, data);
        // Recompute the path bottom-up.
        let path: Vec<NodeId> = self.geo.walk(block).collect();
        for node in path {
            let s = self.compute_summary(node);
            self.summaries.insert(node, s);
        }
        self.root = self.compute_root();
    }

    /// Read and verify `block`.
    ///
    /// # Errors
    /// Returns the first verification failure on the MAC or the tree
    /// path; a clean memory never fails.
    ///
    /// # Panics
    /// Panics if `block` is out of range.
    pub fn read(&self, block: u64) -> Result<[u8; 64], IntegrityError> {
        assert!(block < self.geo.data_blocks(), "block out of range");
        let data = self.data.get(&block).copied().unwrap_or([0; 64]);
        let counter = self.counters.get(&block).copied().unwrap_or(0);
        let stored_mac = self.macs.get(&block).copied().unwrap_or_else(|| {
            // Untouched blocks carry the MAC of (zeros, counter 0).
            mac_block(&self.key, &[0; 64], 0, Self::addr_of(block))
        });
        if mac_block(&self.key, &data, counter, Self::addr_of(block)) != stored_mac {
            return Err(IntegrityError::MacMismatch { block });
        }
        self.verify_tree_path(block)?;
        Ok(data)
    }

    /// Verify `block`'s tree path against stored summaries, then the
    /// top level against the on-chip root (the post-MAC half of
    /// [`read`], shared with [`read_batch`]).
    fn verify_tree_path(&self, block: u64) -> Result<(), IntegrityError> {
        for node in self.geo.walk(block) {
            let expect = self.compute_summary(node);
            let stored = self.summaries.get(&node).copied().unwrap_or(0);
            // An untouched subtree legitimately has no stored summary;
            // its recomputed value over all-zero state must then match
            // "unstored" only if nothing below was ever written. We
            // encode that by treating the recomputed-over-defaults value
            // of a never-written path as 0-consistent: check only nodes
            // that have a stored summary or cover written state.
            if stored != 0 && expect != stored {
                return Err(IntegrityError::TreeMismatch {
                    level: node.level,
                    index: node.index,
                });
            }
            if stored == 0 && self.covers_written_state(node) {
                return Err(IntegrityError::TreeMismatch {
                    level: node.level,
                    index: node.index,
                });
            }
        }
        if self.compute_root() != self.root {
            return Err(IntegrityError::TreeMismatch {
                level: self.geo.depth(),
                index: 0,
            });
        }
        Ok(())
    }

    /// Read and verify a drained burst of four blocks, checking all
    /// four MACs in one 4-lane [`mac_block_x4`] pass before the tree
    /// walks — the functional counterpart of the engine's request-queue
    /// batcher. Results are per-block and identical to four [`read`]
    /// calls.
    ///
    /// # Panics
    /// Panics if any block is out of range.
    pub fn read_batch(&self, blocks: [u64; 4]) -> [Result<[u8; 64], IntegrityError>; 4] {
        for &b in &blocks {
            assert!(b < self.geo.data_blocks(), "block out of range");
        }
        let data: [[u8; 64]; 4] =
            std::array::from_fn(|l| self.data.get(&blocks[l]).copied().unwrap_or([0; 64]));
        let counters: [u64; 4] =
            std::array::from_fn(|l| self.counters.get(&blocks[l]).copied().unwrap_or(0));
        let stored: [u64; 4] = std::array::from_fn(|l| {
            self.macs
                .get(&blocks[l])
                .copied()
                .unwrap_or_else(|| mac_block(&self.key, &[0; 64], 0, Self::addr_of(blocks[l])))
        });
        let got = mac_block_x4(
            &[self.key; 4],
            [&data[0], &data[1], &data[2], &data[3]],
            counters,
            std::array::from_fn(|l| Self::addr_of(blocks[l])),
        );
        std::array::from_fn(|l| {
            if got[l] != stored[l] {
                return Err(IntegrityError::MacMismatch { block: blocks[l] });
            }
            self.verify_tree_path(blocks[l]).map(|()| data[l])
        })
    }

    /// Does this node's subtree contain any nonzero counter?
    fn covers_written_state(&self, node: NodeId) -> bool {
        if node.level == 0 {
            let arity = self.geo.leaf_arity();
            let first = node.index * arity;
            (first..first + arity).any(|b| self.counters.get(&b).is_some_and(|&c| c > 0))
        } else {
            // Conservative: only called for nodes on a written block's
            // path, which by construction cover written state.
            true
        }
    }

    /// Capture the off-chip state of `block` (what a malicious DIMM
    /// sees on the bus / stores in its cells).
    pub fn snapshot(&self, block: u64) -> Snapshot {
        Snapshot {
            block,
            data: self.data.get(&block).copied().unwrap_or([0; 64]),
            mac: self
                .macs
                .get(&block)
                .copied()
                .unwrap_or_else(|| mac_block(&self.key, &[0; 64], 0, Self::addr_of(block))),
            counter: self.counters.get(&block).copied().unwrap_or(0),
        }
    }

    /// Attack: flip bits in the stored data (row hammer, malicious
    /// module).
    pub fn corrupt_data(&mut self, block: u64, byte: usize, xor: u8) {
        let entry = self.data.entry(block).or_insert([0; 64]);
        entry[byte] ^= xor;
    }

    /// Attack: tamper with the stored MAC.
    pub fn corrupt_mac(&mut self, block: u64, xor: u64) {
        let addr = Self::addr_of(block);
        let mac = self
            .macs
            .entry(block)
            .or_insert_with(|| mac_block(&self.key, &[0; 64], 0, addr));
        *mac ^= xor;
    }

    /// Attack: tamper with the stored counter (without fixing the tree).
    pub fn corrupt_counter(&mut self, block: u64, delta: u64) {
        *self.counters.entry(block).or_insert(0) += delta;
    }

    /// Attack: replay a previously captured, fully consistent snapshot —
    /// data, MAC, *and* counter together (the strongest replay the
    /// paper's threat model considers; only the tree catches it).
    pub fn rollback(&mut self, snap: &Snapshot) {
        self.data.insert(snap.block, snap.data);
        self.macs.insert(snap.block, snap.mac);
        self.counters.insert(snap.block, snap.counter);
        // The tree is NOT updated: the attacker cannot forge keyed
        // summaries, and the root is on-chip.
    }

    /// Attack: corrupt a stored tree node.
    pub fn corrupt_node(&mut self, level: u32, index: u64, xor: u64) {
        let node = NodeId { level, index };
        let cur = self.summaries.get(&node).copied().unwrap_or(0);
        self.summaries.insert(node, cur ^ xor ^ 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm() -> VerifiedMemory {
        VerifiedMemory::new(MacKey::derive(0xACE, 0), 1 << 16)
    }

    #[test]
    fn round_trip_reads_back_writes() {
        let mut m = vm();
        let a = [7u8; 64];
        let b = [9u8; 64];
        m.write(10, a);
        m.write(4097, b);
        assert_eq!(m.read(10).unwrap(), a);
        assert_eq!(m.read(4097).unwrap(), b);
        // Untouched block reads as zeros, verified.
        assert_eq!(m.read(500).unwrap(), [0; 64]);
    }

    #[test]
    fn overwrites_bump_counters_and_verify() {
        let mut m = vm();
        for i in 0..10u8 {
            m.write(42, [i; 64]);
            assert_eq!(m.read(42).unwrap(), [i; 64]);
        }
    }

    #[test]
    fn data_tampering_is_detected() {
        let mut m = vm();
        m.write(7, [1; 64]);
        m.corrupt_data(7, 33, 0x40);
        assert_eq!(m.read(7), Err(IntegrityError::MacMismatch { block: 7 }));
        // Other blocks unaffected.
        assert!(m.read(8).is_ok());
    }

    #[test]
    fn mac_tampering_is_detected() {
        let mut m = vm();
        m.write(7, [1; 64]);
        m.corrupt_mac(7, 0xDEAD);
        assert_eq!(m.read(7), Err(IntegrityError::MacMismatch { block: 7 }));
    }

    #[test]
    fn counter_tampering_is_detected_by_the_tree() {
        let mut m = vm();
        m.write(7, [1; 64]);
        m.corrupt_counter(7, 1);
        // MAC now fails (counter is a MAC input); if the attacker also
        // recomputed... they can't: the key is on-chip. Either way the
        // read fails.
        assert!(m.read(7).is_err());
    }

    #[test]
    fn consistent_replay_is_detected_by_the_tree() {
        let mut m = vm();
        m.write(7, [1; 64]);
        let old = m.snapshot(7); // a fully valid (data, MAC, counter)
        m.write(7, [2; 64]); // victim overwrites
        m.rollback(&old); // attacker replays the old triple
                          // The MAC *matches* (it was valid once) — only the tree can
                          // catch this, per the paper's threat model.
        let err = m.read(7).unwrap_err();
        assert!(
            matches!(err, IntegrityError::TreeMismatch { .. }),
            "replay must be caught by the tree, got {err:?}"
        );
    }

    #[test]
    fn tree_node_corruption_is_detected() {
        let mut m = vm();
        m.write(7, [1; 64]);
        m.corrupt_node(0, 0, 0x1234);
        assert!(matches!(
            m.read(7),
            Err(IntegrityError::TreeMismatch { level: 0, .. })
        ));
    }

    #[test]
    fn unrelated_subtrees_are_unaffected_by_attacks() {
        let mut m = vm();
        m.write(0, [1; 64]);
        m.write(60_000, [2; 64]);
        m.corrupt_data(0, 0, 1);
        assert!(m.read(0).is_err());
        assert_eq!(m.read(60_000).unwrap(), [2; 64]);
    }

    /// The 4-lane batched read returns exactly what four scalar reads
    /// return — data, errors, and error precedence included.
    #[test]
    fn read_batch_matches_scalar_reads() {
        let mut m = vm();
        m.write(3, [0x11; 64]);
        m.write(4096, [0x22; 64]);
        m.write(9000, [0x33; 64]);
        // Clean burst.
        let blocks = [3u64, 4096, 9000, 77];
        let batch = m.read_batch(blocks);
        for l in 0..4 {
            assert_eq!(batch[l], m.read(blocks[l]), "clean lane {l}");
        }
        // One lane tampered (MAC), one rolled back (tree): lane results
        // must still match the scalar reads lane for lane.
        let old = m.snapshot(9000);
        m.write(9000, [0x44; 64]);
        m.rollback(&old);
        m.corrupt_data(3, 5, 0x80);
        let batch = m.read_batch(blocks);
        for l in 0..4 {
            assert_eq!(batch[l], m.read(blocks[l]), "faulted lane {l}");
        }
        assert!(matches!(
            batch[0],
            Err(IntegrityError::MacMismatch { block: 3 })
        ));
        assert!(batch[1].is_ok());
    }

    #[test]
    fn errors_display_usefully() {
        let e = IntegrityError::MacMismatch { block: 5 };
        assert!(e.to_string().contains("block 5"));
        let e = IntegrityError::TreeMismatch { level: 1, index: 9 };
        assert!(e.to_string().contains("level 1"));
    }
}
