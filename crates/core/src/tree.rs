//! Integrity-tree geometry.
//!
//! A counter tree covers a span of data blocks: leaf nodes hold the
//! per-block encryption counters (split into a shared global counter and
//! small local counters), and every upper node holds counters for its
//! children plus the hash linkage (MEE-style: the child's hash is
//! computed with a counter kept in the parent). The root lives on-chip
//! and is never fetched.
//!
//! Geometries reproduced here (Figures 6 and 7):
//!
//! * **VAULT** — leaf arity 64, then 32, then 16 for all upper levels;
//! * **VAULT-based ITESP** — leaf arity 32 (half the local counters are
//!   replaced by 4 parity words shared by 8 blocks each), upper levels
//!   as VAULT;
//! * **SYN128** (Morphable) — arity 128 throughout;
//! * **ITESP 64** — leaf arity 64 (5-bit locals + parities), 128 above;
//! * **ITESP 128** — arity 128 throughout (2-bit locals + parities).

use serde::{Deserialize, Serialize};

/// Bytes per tree node (one cache block).
pub const NODE_BYTES: u64 = 64;

/// A node position: level 0 is the leaf level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeId {
    pub level: u32,
    pub index: u64,
}

/// Shape of an integrity tree over a fixed span of data blocks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeGeometry {
    /// Data blocks covered by one leaf node.
    leaf_arity: u64,
    /// Child counts for level 1, level 2, ...; the last entry repeats.
    upper_arities: Vec<u64>,
    /// Total data blocks covered.
    data_blocks: u64,
    /// Node count per level, leaf level first, excluding the on-chip root.
    level_counts: Vec<u64>,
    /// Cumulative node offsets per level (for linear storage layout).
    level_offsets: Vec<u64>,
    /// Parity fields embedded per leaf (ITESP), 0 otherwise.
    parities_per_leaf: u64,
    /// Data blocks sharing one embedded parity.
    parity_share: u64,
    /// Local counter width in bits (for overflow modeling).
    local_counter_bits: u32,
}

impl TreeGeometry {
    /// Build a geometry; `data_blocks` is rounded up to one full leaf.
    ///
    /// # Panics
    /// Panics if arities are zero or `data_blocks` is zero.
    pub fn new(
        leaf_arity: u64,
        upper_arities: Vec<u64>,
        data_blocks: u64,
        parities_per_leaf: u64,
        parity_share: u64,
        local_counter_bits: u32,
    ) -> Self {
        assert!(leaf_arity > 0 && data_blocks > 0);
        assert!(!upper_arities.is_empty() && upper_arities.iter().all(|&a| a > 1));
        let mut level_counts = vec![data_blocks.div_ceil(leaf_arity)];
        while *level_counts.last().expect("nonempty") > 1 {
            let level = level_counts.len() - 1; // arity index for next level up
            let arity = *upper_arities
                .get(level)
                .unwrap_or_else(|| upper_arities.last().expect("nonempty"));
            let next = level_counts.last().unwrap().div_ceil(arity);
            if next == 1 {
                // A single node at the next level is the on-chip root;
                // don't store it.
                break;
            }
            level_counts.push(next);
        }
        let mut level_offsets = Vec::with_capacity(level_counts.len());
        let mut acc = 0;
        for &c in &level_counts {
            level_offsets.push(acc);
            acc += c;
        }
        TreeGeometry {
            leaf_arity,
            upper_arities,
            data_blocks,
            level_counts,
            level_offsets,
            parities_per_leaf,
            parity_share,
            local_counter_bits,
        }
    }

    /// VAULT: arity 64 / 32 / 16 / 16 / ... with 6-bit local counters.
    pub fn vault(data_blocks: u64) -> Self {
        Self::new(64, vec![32, 16], data_blocks, 0, 0, 6)
    }

    /// VAULT-based ITESP: leaf arity 32 with 4 embedded parities shared
    /// by 8 blocks each (Figure 6, bottom organization), 4-bit locals.
    pub fn vault_itesp(data_blocks: u64) -> Self {
        Self::new(32, vec![32, 16], data_blocks, 4, 8, 4)
    }

    /// SYN128: Morphable-counter tree, arity 128 throughout, 3-bit locals.
    pub fn syn128(data_blocks: u64) -> Self {
        Self::new(128, vec![128], data_blocks, 0, 0, 3)
    }

    /// ITESP 64: leaf arity 64 (5-bit locals + 8 parities shared by 8),
    /// arity 128 above (Figure 7b).
    pub fn itesp64(data_blocks: u64) -> Self {
        Self::new(64, vec![128], data_blocks, 8, 8, 5)
    }

    /// ITESP 128: arity 128 throughout with 2-bit locals + embedded
    /// parity (Figure 7c).
    pub fn itesp128(data_blocks: u64) -> Self {
        Self::new(128, vec![128], data_blocks, 16, 8, 2)
    }

    pub fn leaf_arity(&self) -> u64 {
        self.leaf_arity
    }

    pub fn data_blocks(&self) -> u64 {
        self.data_blocks
    }

    pub fn local_counter_bits(&self) -> u32 {
        self.local_counter_bits
    }

    pub fn parities_per_leaf(&self) -> u64 {
        self.parities_per_leaf
    }

    pub fn parity_share(&self) -> u64 {
        self.parity_share
    }

    /// Number of stored (in-memory) levels; the root above them is
    /// on-chip.
    pub fn depth(&self) -> u32 {
        self.level_counts.len() as u32
    }

    /// Nodes stored in memory across all levels.
    pub fn total_nodes(&self) -> u64 {
        self.level_counts.iter().sum()
    }

    /// Bytes of in-memory tree storage.
    pub fn storage_bytes(&self) -> u64 {
        self.total_nodes() * NODE_BYTES
    }

    /// Tree storage as a fraction of covered data (Table I column).
    pub fn storage_overhead(&self) -> f64 {
        self.storage_bytes() as f64 / (self.data_blocks * 64) as f64
    }

    /// Number of stored nodes at `level` (level 0 = leaves).
    ///
    /// # Panics
    /// Panics if `level >= depth()`.
    pub fn level_count(&self, level: u32) -> u64 {
        self.level_counts[level as usize]
    }

    /// Children per node at `level` (counters per leaf for level 0).
    pub fn child_arity(&self, level: u32) -> u64 {
        if level == 0 {
            self.leaf_arity
        } else {
            *self
                .upper_arities
                .get((level - 1) as usize)
                .unwrap_or_else(|| self.upper_arities.last().expect("nonempty"))
        }
    }

    /// Leaf node covering data block `block`.
    ///
    /// # Panics
    /// Panics if `block` is outside the covered span.
    pub fn leaf_of(&self, block: u64) -> NodeId {
        assert!(block < self.data_blocks.next_multiple_of(self.leaf_arity));
        NodeId {
            level: 0,
            index: block / self.leaf_arity,
        }
    }

    /// Parent of `node`, or `None` if the parent is the on-chip root.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        let next = node.level + 1;
        if next >= self.depth() {
            return None;
        }
        let arity = *self
            .upper_arities
            .get(node.level as usize)
            .unwrap_or_else(|| self.upper_arities.last().expect("nonempty"));
        Some(NodeId {
            level: next,
            index: node.index / arity,
        })
    }

    /// Byte address of `node` in a linear layout starting at `base`.
    pub fn node_addr(&self, base: u64, node: NodeId) -> u64 {
        debug_assert!(node.index < self.level_counts[node.level as usize]);
        base + (self.level_offsets[node.level as usize] + node.index) * NODE_BYTES
    }

    /// Inverse of [`Self::node_addr`]: which node does `addr` hold?
    ///
    /// # Panics
    /// Panics if `addr` is outside `[base, base + storage_bytes)`.
    pub fn node_at(&self, base: u64, addr: u64) -> NodeId {
        let node_index = (addr - base) / NODE_BYTES;
        assert!(node_index < self.total_nodes(), "address outside tree");
        // Levels are few (<= ~6); linear scan is fine.
        let mut level = 0;
        for (l, &off) in self.level_offsets.iter().enumerate() {
            if node_index >= off {
                level = l;
            }
        }
        NodeId {
            level: level as u32,
            index: node_index - self.level_offsets[level],
        }
    }

    /// Ancestors of the leaf covering `block`, leaf first, root excluded.
    pub fn walk(&self, block: u64) -> Walk<'_> {
        Walk {
            geo: self,
            next: Some(self.leaf_of(block)),
        }
    }
}

/// Iterator over a leaf-to-top path. See [`TreeGeometry::walk`].
#[derive(Debug)]
pub struct Walk<'a> {
    geo: &'a TreeGeometry,
    next: Option<NodeId>,
}

impl Iterator for Walk<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.geo.parent(cur);
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1 GB of data blocks.
    const BLOCKS_1GB: u64 = (1 << 30) / 64;

    #[test]
    fn vault_level_structure() {
        let g = TreeGeometry::vault(BLOCKS_1GB);
        // 16M blocks -> 256K leaves -> 8K L1 -> 512 L2 -> 32 L3 -> 2 L4
        // -> 1 (root, on-chip).
        assert_eq!(g.depth(), 5);
        assert_eq!(g.total_nodes(), 262_144 + 8192 + 512 + 32 + 2);
    }

    #[test]
    fn walk_ends_below_root() {
        let g = TreeGeometry::vault(BLOCKS_1GB);
        let path: Vec<_> = g.walk(12345).collect();
        assert_eq!(path.len() as u32, g.depth());
        assert_eq!(path[0], g.leaf_of(12345));
        for w in path.windows(2) {
            assert_eq!(w[1].level, w[0].level + 1);
        }
    }

    #[test]
    fn vault_overhead_is_about_1_6_percent() {
        let g = TreeGeometry::vault(BLOCKS_1GB * 32);
        let o = g.storage_overhead();
        assert!((o - 0.016).abs() < 0.001, "overhead {o}");
    }

    #[test]
    fn syn128_overhead_is_about_0_8_percent() {
        let g = TreeGeometry::syn128(BLOCKS_1GB * 32);
        let o = g.storage_overhead();
        assert!((o - 0.008).abs() < 0.0005, "overhead {o}");
    }

    #[test]
    fn itesp64_overhead_is_about_1_6_percent() {
        let g = TreeGeometry::itesp64(BLOCKS_1GB * 32);
        let o = g.storage_overhead();
        assert!((o - 0.016).abs() < 0.001, "overhead {o}");
    }

    #[test]
    fn itesp_leaf_covers_half_the_blocks_of_vault() {
        let v = TreeGeometry::vault(BLOCKS_1GB);
        let i = TreeGeometry::vault_itesp(BLOCKS_1GB);
        assert_eq!(v.leaf_arity(), 2 * i.leaf_arity());
        // Twice the leaves: the "larger tree" of Section III-D.
        assert_eq!(i.walk(0).count() as u32, i.depth(),);
        assert!(i.total_nodes() > v.total_nodes());
    }

    #[test]
    fn node_addresses_are_dense_and_invertible() {
        let g = TreeGeometry::vault(1 << 20);
        let base = 0x4000_0000;
        let mut seen = std::collections::HashSet::new();
        for block in (0..(1 << 20)).step_by(4097) {
            for node in g.walk(block) {
                let addr = g.node_addr(base, node);
                assert_eq!(g.node_at(base, addr), node);
                seen.insert(addr);
            }
        }
        assert!(seen.len() > 100);
        for &a in &seen {
            assert!(a >= base && a < base + g.storage_bytes());
        }
    }

    #[test]
    fn consecutive_blocks_share_a_leaf() {
        let g = TreeGeometry::vault(1 << 20);
        assert_eq!(g.leaf_of(0), g.leaf_of(63));
        assert_ne!(g.leaf_of(63), g.leaf_of(64));
    }

    #[test]
    fn parent_aggregates_children() {
        let g = TreeGeometry::vault(1 << 20);
        let l0 = g.leaf_of(0);
        let l31 = g.leaf_of(31 * 64);
        let l32 = g.leaf_of(32 * 64);
        assert_eq!(g.parent(l0), g.parent(l31));
        assert_ne!(g.parent(l0), g.parent(l32));
    }

    #[test]
    fn embedded_parity_parameters() {
        let g = TreeGeometry::vault_itesp(1 << 20);
        assert_eq!(g.parities_per_leaf(), 4);
        assert_eq!(g.parity_share(), 8);
        // 4 parities x 8 blocks each = the leaf's 32-block span.
        assert_eq!(g.parities_per_leaf() * g.parity_share(), g.leaf_arity());
        let g = TreeGeometry::itesp128(1 << 20);
        assert_eq!(g.parities_per_leaf() * g.parity_share(), g.leaf_arity());
    }

    #[test]
    fn local_counter_widths_match_figure_7() {
        assert_eq!(TreeGeometry::syn128(1 << 20).local_counter_bits(), 3);
        assert_eq!(TreeGeometry::itesp64(1 << 20).local_counter_bits(), 5);
        assert_eq!(TreeGeometry::itesp128(1 << 20).local_counter_bits(), 2);
    }

    #[test]
    fn tiny_tree_has_single_stored_level() {
        // 128 blocks under VAULT: 2 leaves, parent is the on-chip root.
        let g = TreeGeometry::vault(128);
        assert_eq!(g.depth(), 1);
        assert_eq!(g.walk(0).count(), 1);
    }
}
